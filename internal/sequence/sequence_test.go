package sequence

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDatasetAdd(t *testing.T) {
	d := NewDataset()
	idx, err := d.Add(Sequence{ID: "a", Values: []float64{1, 2, 3}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if idx != 0 {
		t.Fatalf("idx = %d, want 0", idx)
	}
	idx, err = d.Add(Sequence{ID: "b", Values: []float64{4}})
	if err != nil || idx != 1 {
		t.Fatalf("Add b: idx=%d err=%v", idx, err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.ByID("a") != 0 || d.ByID("b") != 1 || d.ByID("zzz") != -1 {
		t.Fatalf("ByID lookups wrong: %d %d %d", d.ByID("a"), d.ByID("b"), d.ByID("zzz"))
	}
}

func TestDatasetAddErrors(t *testing.T) {
	d := NewDataset()
	if _, err := d.Add(Sequence{ID: "", Values: []float64{1}}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := d.Add(Sequence{ID: "x", Values: nil}); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := d.Add(Sequence{ID: "x", Values: []float64{1}}); err != nil {
		t.Fatalf("valid add rejected: %v", err)
	}
	if _, err := d.Add(Sequence{ID: "x", Values: []float64{2}}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestZeroValueDataset(t *testing.T) {
	var d Dataset
	if _, err := d.Add(Sequence{ID: "a", Values: []float64{1}}); err != nil {
		t.Fatalf("zero-value Add: %v", err)
	}
	if d.ByID("a") != 0 {
		t.Fatal("zero-value ByID failed")
	}
}

func TestRef(t *testing.T) {
	r := Ref{Seq: 2, Start: 3, End: 7}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if got := r.String(); got != "S_2[4:7]" {
		t.Fatalf("String = %q", got)
	}
	d := NewDataset()
	d.MustAdd(Sequence{ID: "a", Values: []float64{0, 1, 2, 3, 4, 5}})
	got := d.Slice(Ref{Seq: 0, Start: 2, End: 5})
	if !reflect.DeepEqual(got, []float64{2, 3, 4}) {
		t.Fatalf("Slice = %v", got)
	}
}

func TestStats(t *testing.T) {
	d := NewDataset()
	d.MustAdd(Sequence{ID: "a", Values: []float64{1, 2, 3}})
	d.MustAdd(Sequence{ID: "b", Values: []float64{-5, 10}})
	st := d.ComputeStats()
	if st.Sequences != 2 || st.TotalElements != 5 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.MinLen != 2 || st.MaxLen != 3 {
		t.Fatalf("len range wrong: %+v", st)
	}
	if st.MinValue != -5 || st.MaxValue != 10 {
		t.Fatalf("value range wrong: %+v", st)
	}
	if math.Abs(st.AvgLen-2.5) > 1e-12 {
		t.Fatalf("AvgLen = %v", st.AvgLen)
	}
	if math.Abs(st.MeanValue-2.2) > 1e-12 {
		t.Fatalf("MeanValue = %v", st.MeanValue)
	}
	mn, mx := d.MinMax()
	if mn != -5 || mx != 10 {
		t.Fatalf("MinMax = %v %v", mn, mx)
	}
}

func TestStatsEmpty(t *testing.T) {
	d := NewDataset()
	st := d.ComputeStats()
	if st.Sequences != 0 || st.TotalElements != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if d.AvgLen() != 0 {
		t.Fatal("empty AvgLen not 0")
	}
	mn, mx := d.MinMax()
	if mn != 0 || mx != 0 {
		t.Fatal("empty MinMax not (0,0)")
	}
}

func TestSortedValues(t *testing.T) {
	d := NewDataset()
	d.MustAdd(Sequence{ID: "a", Values: []float64{3, 1}})
	d.MustAdd(Sequence{ID: "b", Values: []float64{2}})
	got := d.SortedValues()
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("SortedValues = %v", got)
	}
}

func randomDataset(rng *rand.Rand, nSeq, maxLen int) *Dataset {
	d := NewDataset()
	for i := 0; i < nSeq; i++ {
		n := 1 + rng.Intn(maxLen)
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = math.Round(rng.NormFloat64()*1000) / 100
		}
		d.MustAdd(Sequence{ID: "s" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Values: vals})
	}
	return d
}

func datasetsEqual(a, b *Dataset) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Seq(i).ID != b.Seq(i).ID {
			return false
		}
		if !reflect.DeepEqual(a.Seq(i).Values, b.Seq(i).Values) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(rng, 1+rng.Intn(10), 30)
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !datasetsEqual(d, got) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC\x00\x00\x00\x00")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	d := NewDataset()
	d.MustAdd(Sequence{ID: "a", Values: []float64{1, 2, 3}})
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d silently accepted", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := NewDataset()
	d.MustAdd(Sequence{ID: "stock-1", Values: []float64{10.5, 11.25, 10.75}})
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !datasetsEqual(d, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset()
	d.MustAdd(Sequence{ID: "a", Values: []float64{1.5, -2, 0.001}})
	d.MustAdd(Sequence{ID: "b", Values: []float64{42}})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !datasetsEqual(d, got) {
		t.Fatalf("csv round trip mismatch:\n%s", buf.String())
	}
}

func TestCSVComments(t *testing.T) {
	in := "# header\n\na, 1, 2\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if d.Len() != 1 || d.Seq(0).ID != "a" {
		t.Fatalf("parsed wrong: %+v", d.Seq(0))
	}
}

func TestCSVErrors(t *testing.T) {
	for _, in := range []string{"a\n", "a,xyz\n", ",1\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	d := NewDataset()
	d.MustAdd(Sequence{ID: "bad,id", Values: []float64{1}})
	if err := d.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("comma in id accepted by WriteCSV")
	}
}

// Property: binary round trip preserves arbitrary float64 payloads exactly,
// including negative zero and extreme magnitudes.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(vals []float64, seed int64) bool {
		if len(vals) == 0 {
			vals = []float64{0}
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0 // NaN != NaN would fail DeepEqual for the wrong reason
			}
		}
		d := NewDataset()
		d.MustAdd(Sequence{ID: "q", Values: vals})
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return datasetsEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsNonFinite(t *testing.T) {
	d := NewDataset()
	if _, err := d.Add(Sequence{ID: "nan", Values: []float64{1, math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := d.Add(Sequence{ID: "inf", Values: []float64{math.Inf(1)}}); err == nil {
		t.Error("+Inf accepted")
	}
	if _, err := d.Add(Sequence{ID: "ninf", Values: []float64{math.Inf(-1)}}); err == nil {
		t.Error("-Inf accepted")
	}
	if d.Len() != 0 {
		t.Error("rejected sequences were stored")
	}
}
