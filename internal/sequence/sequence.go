// Package sequence defines the data model shared by every layer of the
// library: univariate sequences of continuous values, references to
// subsequences, and an in-memory dataset that owns a collection of sequences.
//
// The index structures (internal/suffixtree, internal/disktree) and the
// search algorithms (internal/core) never copy element values around; they
// pass Ref values that point back into a Dataset.
package sequence

import (
	"fmt"
	"math"
	"sort"
)

// Sequence is a named series of continuous values, e.g. the daily closing
// prices of one stock. Values must not be mutated after the sequence has
// been added to a Dataset that has been indexed.
type Sequence struct {
	// ID is an application-chosen identifier, unique within a Dataset.
	ID string
	// Values holds the elements in time order.
	Values []float64
}

// Len returns the number of elements.
func (s Sequence) Len() int { return len(s.Values) }

// Ref identifies the subsequence Values[Start:End] (half-open interval) of
// the sequence with index Seq inside some Dataset. A Ref with Start==0 and
// End==Len is the whole sequence; a Ref with End==Len is a suffix.
type Ref struct {
	Seq   int // index of the sequence within its Dataset
	Start int // first element, inclusive
	End   int // one past the last element
}

// Len returns the number of elements the reference spans.
func (r Ref) Len() int { return r.End - r.Start }

// String renders the reference in the paper's S_i[p:q] notation
// (1-based, inclusive).
func (r Ref) String() string {
	return fmt.Sprintf("S_%d[%d:%d]", r.Seq, r.Start+1, r.End)
}

// Dataset owns an ordered collection of sequences and answers id and
// subsequence lookups. The zero value is ready to use.
type Dataset struct {
	seqs []Sequence
	byID map[string]int
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{byID: make(map[string]int)}
}

// Add appends a sequence and returns its index. It returns an error when
// the id is empty or duplicated, the sequence has no elements (the
// suffix-tree layers require non-empty sequences), or any element is NaN or
// infinite (distances would silently stop being comparable).
func (d *Dataset) Add(s Sequence) (int, error) {
	if s.ID == "" {
		return 0, fmt.Errorf("sequence: empty id")
	}
	if len(s.Values) == 0 {
		return 0, fmt.Errorf("sequence: %q has no elements", s.ID)
	}
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("sequence: %q element %d is %v", s.ID, i, v)
		}
	}
	if d.byID == nil {
		d.byID = make(map[string]int)
	}
	if _, dup := d.byID[s.ID]; dup {
		return 0, fmt.Errorf("sequence: duplicate id %q", s.ID)
	}
	idx := len(d.seqs)
	d.seqs = append(d.seqs, s)
	d.byID[s.ID] = idx
	return idx, nil
}

// MustAdd is Add for test and generator code where ids are known-valid.
// It panics on error.
func (d *Dataset) MustAdd(s Sequence) int {
	idx, err := d.Add(s)
	if err != nil {
		//lint:ignore panicpath Must-prefix constructor contract (regexp.MustCompile idiom): generators pass ids and values that are valid by construction; Add is the error-returning path
		panic(err)
	}
	return idx
}

// Len returns the number of sequences.
func (d *Dataset) Len() int { return len(d.seqs) }

// Seq returns the sequence at index i.
func (d *Dataset) Seq(i int) Sequence { return d.seqs[i] }

// Values returns the element slice of sequence i. The caller must not
// mutate it.
func (d *Dataset) Values(i int) []float64 { return d.seqs[i].Values }

// ByID returns the index of the sequence with the given id, or -1.
func (d *Dataset) ByID(id string) int {
	if idx, ok := d.byID[id]; ok {
		return idx
	}
	return -1
}

// Slice resolves a Ref to its element values. The returned slice aliases the
// dataset's storage and must not be mutated.
func (d *Dataset) Slice(r Ref) []float64 {
	return d.seqs[r.Seq].Values[r.Start:r.End]
}

// TotalElements returns the sum of all sequence lengths — the paper's M·L̄.
func (d *Dataset) TotalElements() int {
	total := 0
	for _, s := range d.seqs {
		total += len(s.Values)
	}
	return total
}

// AvgLen returns the average sequence length L̄, or 0 for an empty dataset.
func (d *Dataset) AvgLen() float64 {
	if len(d.seqs) == 0 {
		return 0
	}
	return float64(d.TotalElements()) / float64(len(d.seqs))
}

// MinMax returns the smallest and largest element value in the dataset.
// These are the MIN and MAX inputs of the equal-length categorization.
// It returns (0, 0) for an empty dataset.
func (d *Dataset) MinMax() (min, max float64) {
	first := true
	for _, s := range d.seqs {
		for _, v := range s.Values {
			if first {
				min, max = v, v
				first = false
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max
}

// AllValues returns every element of every sequence in one slice, in dataset
// order. Categorizers use it to fit boundaries.
func (d *Dataset) AllValues() []float64 {
	out := make([]float64, 0, d.TotalElements())
	for _, s := range d.seqs {
		out = append(out, s.Values...)
	}
	return out
}

// SortedValues returns AllValues sorted ascending. The maximum-entropy
// categorizer uses it to place quantile boundaries.
func (d *Dataset) SortedValues() []float64 {
	vals := d.AllValues()
	sort.Float64s(vals)
	return vals
}

// Stats summarizes a dataset for reports and EXPERIMENTS.md tables.
type Stats struct {
	Sequences     int
	TotalElements int
	AvgLen        float64
	MinLen        int
	MaxLen        int
	MinValue      float64
	MaxValue      float64
	MeanValue     float64
	StdDev        float64
}

// ComputeStats scans the dataset once and returns its summary statistics.
func (d *Dataset) ComputeStats() Stats {
	st := Stats{Sequences: len(d.seqs)}
	if len(d.seqs) == 0 {
		return st
	}
	st.MinLen = math.MaxInt
	sum, sumSq := 0.0, 0.0
	first := true
	for _, s := range d.seqs {
		n := len(s.Values)
		st.TotalElements += n
		if n < st.MinLen {
			st.MinLen = n
		}
		if n > st.MaxLen {
			st.MaxLen = n
		}
		for _, v := range s.Values {
			if first {
				st.MinValue, st.MaxValue = v, v
				first = false
			} else {
				if v < st.MinValue {
					st.MinValue = v
				}
				if v > st.MaxValue {
					st.MaxValue = v
				}
			}
			sum += v
			sumSq += v * v
		}
	}
	n := float64(st.TotalElements)
	st.AvgLen = n / float64(st.Sequences)
	st.MeanValue = sum / n
	variance := sumSq/n - st.MeanValue*st.MeanValue
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}
