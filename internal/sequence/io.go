package sequence

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Binary dataset format:
//
//	magic   [8]byte  "TWSEQDB1"
//	count   uint32   number of sequences
//	per sequence:
//	  idLen  uint16
//	  id     [idLen]byte
//	  n      uint32   number of elements
//	  values [n]float64, little endian
//
// The format is deliberately flat: datasets are read fully into memory; the
// disk-resident structure is the suffix-tree index, not the raw data.

var binaryMagic = [8]byte{'T', 'W', 'S', 'E', 'Q', 'D', 'B', '1'}

// ErrBadMagic reports that a file is not a twsearch binary dataset.
var ErrBadMagic = errors.New("sequence: bad magic, not a TWSEQDB1 file")

// WriteBinary writes the dataset in the binary format.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(d.seqs))); err != nil {
		return err
	}
	for _, s := range d.seqs {
		if len(s.ID) > math.MaxUint16 {
			return fmt.Errorf("sequence: id %q too long", s.ID[:32])
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s.ID))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Values))); err != nil {
			return err
		}
		for _, v := range s.Values {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sequence: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("sequence: reading count: %w", err)
	}
	d := NewDataset()
	for i := uint32(0); i < count; i++ {
		var idLen uint16
		if err := binary.Read(br, binary.LittleEndian, &idLen); err != nil {
			return nil, fmt.Errorf("sequence: seq %d id length: %w", i, err)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(br, idBuf); err != nil {
			return nil, fmt.Errorf("sequence: seq %d id: %w", i, err)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("sequence: seq %d length: %w", i, err)
		}
		vals := make([]float64, n)
		if err := binary.Read(br, binary.LittleEndian, vals); err != nil {
			return nil, fmt.Errorf("sequence: seq %d values: %w", i, err)
		}
		if _, err := d.Add(Sequence{ID: string(idBuf), Values: vals}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SaveFile writes the dataset to path in the binary format, creating or
// truncating the file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a binary dataset file written by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV writes one line per sequence: id,v1,v2,...,vn. Values are
// formatted with the shortest representation that round-trips.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range d.seqs {
		if strings.ContainsAny(s.ID, ",\n\"") {
			return fmt.Errorf("sequence: id %q not representable in CSV", s.ID)
		}
		if _, err := bw.WriteString(s.ID); err != nil {
			return err
		}
		for _, v := range s.Values {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV. Blank lines and lines
// starting with '#' are skipped.
func ReadCSV(r io.Reader) (*Dataset, error) {
	d := NewDataset()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("sequence: line %d: need id and at least one value", lineNo)
		}
		vals := make([]float64, 0, len(fields)-1)
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("sequence: line %d field %d: %w", lineNo, j+2, err)
			}
			vals = append(vals, v)
		}
		if _, err := d.Add(Sequence{ID: strings.TrimSpace(fields[0]), Values: vals}); err != nil {
			return nil, fmt.Errorf("sequence: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sequence: reading CSV: %w", err)
	}
	return d, nil
}
