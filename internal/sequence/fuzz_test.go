package sequence

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary must never panic on arbitrary bytes, and anything it
// accepts must re-serialize to an equal dataset.
func FuzzReadBinary(f *testing.F) {
	good := NewDataset()
	good.MustAdd(Sequence{ID: "seed", Values: []float64{1, 2.5, -3}})
	var buf bytes.Buffer
	if err := good.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TWSEQDB1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := d.WriteBinary(&out); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip changed length: %d vs %d", d2.Len(), d.Len())
		}
	})
}

// FuzzReadCSV must never panic and must only accept lines it can re-emit.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,1,2,3\nb,4\n")
	f.Add("# comment\n\nx, 1.5 , -2e3\n")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		total := 0
		for i := 0; i < d.Len(); i++ {
			total += len(d.Values(i))
			if d.Seq(i).ID == "" {
				t.Fatal("accepted empty id")
			}
		}
		if d.TotalElements() != total {
			t.Fatal("TotalElements inconsistent")
		}
	})
}
