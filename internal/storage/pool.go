package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Frame is a pinned page in the buffer pool. Callers must Release every
// frame they Get; a pinned frame is never evicted. The frame's fields are
// guarded by its shard's mutex; the page bytes themselves may be read by
// any number of goroutines while the frame is pinned (writers require the
// single-writer discipline of the build pipeline).
type Frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	shard *poolShard
	elem  *list.Element // position in the shard's LRU list, for the frame's lifetime
	// releaseFn is the frame's unpin closure, built once at frame creation
	// so the pool's View hands it out without allocating per call — the
	// same steady-state discipline as the LRU element above.
	releaseFn func()
}

// ID returns the page id this frame holds.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the frame's page bytes. The slice remains valid until the
// frame is released and evicted; do not retain it past Release.
func (fr *Frame) Data() []byte { return fr.data }

// MarkDirty records that the frame's bytes were modified and must be
// written back before eviction.
func (fr *Frame) MarkDirty() {
	fr.shard.mu.Lock()
	fr.dirty = true
	fr.shard.mu.Unlock()
}

// PoolStats counts buffer pool activity since creation.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Add accumulates other into s.
func (s *PoolStats) Add(other PoolStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
}

// maxPoolShards caps the lock striping of a Pool. Eight shards keep
// contention low on any core count we serve while leaving per-shard LRU
// lists large enough to stay useful caches.
const maxPoolShards = 8

// poolShard is one lock stripe of a Pool: an independent LRU cache over the
// pages whose id hashes to it.
type poolShard struct {
	mu       sync.Mutex
	file     *File
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // all frames, front = most recently used; eviction skips pinned
	stats    PoolStats
}

// Pool is a lock-striped LRU buffer pool over one page File, safe for any
// number of concurrent readers: pages are partitioned over shards by id, so
// goroutines contend only when they touch the same stripe, and a miss holds
// only its own shard's lock while the page is read from disk. The total
// capacity is split across the shards (each holding at least one frame);
// eviction is LRU per shard.
type Pool struct {
	file   *File
	shards []poolShard
}

// NewPool wraps file with a pool holding at most capacity pages
// (capacity >= 1) across min(capacity, 8) lock-striped shards.
func NewPool(file *File, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, errors.New("storage: pool capacity must be >= 1")
	}
	n := maxPoolShards
	if capacity < n {
		n = capacity
	}
	p := &Pool{file: file, shards: make([]poolShard, n)}
	for i := range p.shards {
		sh := &p.shards[i]
		// Split the capacity as evenly as possible; early shards take the
		// remainder.
		sh.capacity = capacity / n
		if i < capacity%n {
			sh.capacity++
		}
		sh.file = file
		sh.frames = make(map[PageID]*Frame, sh.capacity)
		sh.lru = list.New()
	}
	return p, nil
}

// File returns the underlying page file.
func (p *Pool) File() *File { return p.file }

// shard maps a page id to its lock stripe.
func (p *Pool) shard(id PageID) *poolShard {
	return &p.shards[int(id)%len(p.shards)]
}

// NumShards returns the number of lock stripes.
func (p *Pool) NumShards() int { return len(p.shards) }

// Stats returns the pool's counters summed over all shards.
func (p *Pool) Stats() PoolStats {
	var total PoolStats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		total.Add(sh.stats)
		sh.mu.Unlock()
	}
	return total
}

// ShardStats returns a copy of each shard's counters, in shard order.
func (p *Pool) ShardStats() []PoolStats {
	out := make([]PoolStats, len(p.shards))
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out[i] = sh.stats
		sh.mu.Unlock()
	}
	return out
}

// Get pins the page and returns its frame, reading it from disk on a miss.
// Concurrent Gets for pages in different shards proceed independently; a
// miss performs its disk read under the shard lock, so at most one reader
// per shard faults a page in at a time.
func (p *Pool) Get(id PageID) (*Frame, error) {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr, ok := sh.frames[id]; ok {
		sh.stats.Hits++
		sh.pin(fr)
		return fr, nil
	}
	sh.stats.Misses++
	fr, err := sh.newFrame(id)
	if err != nil {
		return nil, err
	}
	if err := p.file.ReadPage(id, fr.data); err != nil {
		delete(sh.frames, id)
		return nil, err
	}
	return fr, nil
}

// Alloc extends the file by one page and returns it pinned and zeroed.
// Alloc is part of the single-writer build path and must not race other
// mutations.
func (p *Pool) Alloc() (*Frame, error) {
	id, err := p.file.Alloc()
	if err != nil {
		return nil, err
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.newFrame(id)
}

// newFrame makes room and installs a pinned, zeroed frame for id. The
// caller holds sh.mu.
func (sh *poolShard) newFrame(id PageID) (*Frame, error) {
	if len(sh.frames) >= sh.capacity {
		if err := sh.evictOne(); err != nil {
			return nil, err
		}
	}
	fr := &Frame{id: id, data: make([]byte, PageSize), pins: 1, shard: sh}
	fr.releaseFn = fr.release
	fr.elem = sh.lru.PushFront(fr)
	sh.frames[id] = fr
	return fr, nil
}

// Release unpins a frame obtained from Get or Alloc.
func (p *Pool) Release(fr *Frame) { fr.release() }

// release unpins the frame; it is both Release's body and the cached
// closure View hands to borrowers.
func (fr *Frame) release() {
	sh := fr.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr.pins <= 0 {
		//lint:ignore panicpath pin-accounting assertion: a double Release means some frame is mutable while another reader holds it; continuing would corrupt pages silently
		panic("storage: Release of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		sh.lru.MoveToFront(fr.elem)
	}
}

// View implements PageSource over the pool: it pins the page's frame and
// returns the frame's bytes with the frame's cached unpin closure. On the
// hit path nothing allocates; a miss allocates the frame (and its closure)
// once for the frame's lifetime.
func (p *Pool) View(id PageID) ([]byte, func(), error) {
	fr, err := p.Get(id)
	if err != nil {
		return nil, nil, err
	}
	return fr.data, fr.releaseFn, nil
}

// Close closes the underlying page file. Dirty frames are not flushed —
// writers flush explicitly (FlushAll) before closing, and read-only pools
// have nothing to write back.
func (p *Pool) Close() error { return p.file.Close() }

// pin marks a frame in use and refreshes its recency. The frame keeps its
// list element for its whole lifetime — pin/unpin cycles move it, never
// reallocate it — so the steady-state hot path is allocation-free. The
// caller holds sh.mu.
func (sh *poolShard) pin(fr *Frame) {
	fr.pins++
	sh.lru.MoveToFront(fr.elem)
}

// evictOne writes back and drops the least recently used unpinned frame of
// this shard; pinned frames are skipped in place. The caller holds sh.mu.
func (sh *poolShard) evictOne() error {
	for e := sh.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*Frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := sh.file.WritePage(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
		sh.lru.Remove(e)
		delete(sh.frames, fr.id)
		sh.stats.Evictions++
		return nil
	}
	return fmt.Errorf("storage: pool shard of %d frames fully pinned", sh.capacity)
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (p *Pool) FlushAll() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.dirty {
				if err := p.file.WritePage(fr.id, fr.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				fr.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// PinnedCount returns the number of currently pinned frames; used by tests
// to verify that traversals release everything they touch.
func (p *Pool) PinnedCount() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
