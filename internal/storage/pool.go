package storage

import (
	"container/list"
	"errors"
	"fmt"
)

// Frame is a pinned page in the buffer pool. Callers must Release every
// frame they Get; a pinned frame is never evicted.
type Frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the pool's LRU list (nil while pinned)
}

// ID returns the page id this frame holds.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the frame's page bytes. The slice remains valid until the
// frame is released and evicted; do not retain it past Release.
func (fr *Frame) Data() []byte { return fr.data }

// MarkDirty records that the frame's bytes were modified and must be
// written back before eviction.
func (fr *Frame) MarkDirty() { fr.dirty = true }

// PoolStats counts buffer pool activity since creation.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Pool is an LRU buffer pool over one page File. It is not safe for
// concurrent use; concurrent searches each open their own Pool.
type Pool struct {
	file     *File
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, front = most recently used
	stats    PoolStats
}

// NewPool wraps file with a pool holding at most capacity pages
// (capacity >= 1).
func NewPool(file *File, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, errors.New("storage: pool capacity must be >= 1")
	}
	return &Pool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}, nil
}

// File returns the underlying page file.
func (p *Pool) File() *File { return p.file }

// Stats returns a copy of the pool's counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Get pins the page and returns its frame, reading it from disk on a miss.
func (p *Pool) Get(id PageID) (*Frame, error) {
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.pin(fr)
		return fr, nil
	}
	p.stats.Misses++
	fr, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	if err := p.file.ReadPage(id, fr.data); err != nil {
		delete(p.frames, id)
		return nil, err
	}
	return fr, nil
}

// Alloc extends the file by one page and returns it pinned and zeroed.
func (p *Pool) Alloc() (*Frame, error) {
	id, err := p.file.Alloc()
	if err != nil {
		return nil, err
	}
	fr, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	return fr, nil
}

// newFrame makes room and installs a pinned, zeroed frame for id.
func (p *Pool) newFrame(id PageID) (*Frame, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	fr := &Frame{id: id, data: make([]byte, PageSize), pins: 1}
	p.frames[id] = fr
	return fr, nil
}

// Release unpins a frame obtained from Get or Alloc.
func (p *Pool) Release(fr *Frame) {
	if fr.pins <= 0 {
		//lint:ignore panicpath pin-accounting assertion: a double Release means some frame is mutable while another reader holds it; continuing would corrupt pages silently
		panic("storage: Release of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = p.lru.PushFront(fr)
	}
}

func (p *Pool) pin(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		p.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// evictOne writes back and drops the least recently used unpinned frame.
func (p *Pool) evictOne() error {
	back := p.lru.Back()
	if back == nil {
		return fmt.Errorf("storage: pool of %d frames fully pinned", p.capacity)
	}
	fr := back.Value.(*Frame)
	p.lru.Remove(back)
	fr.elem = nil
	if fr.dirty {
		if err := p.file.WritePage(fr.id, fr.data); err != nil {
			return err
		}
		fr.dirty = false
	}
	delete(p.frames, fr.id)
	p.stats.Evictions++
	return nil
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (p *Pool) FlushAll() error {
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.file.WritePage(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// PinnedCount returns the number of currently pinned frames; used by tests
// to verify that traversals release everything they touch.
func (p *Pool) PinnedCount() int {
	n := 0
	for _, fr := range p.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}
