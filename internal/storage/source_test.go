package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// sourceFixture writes a few recognizable pages into a fresh on-disk page
// file and reopens it read-only.
func sourceFixture(t *testing.T, pages int) (*File, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.bin")
	pf, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < pages; i++ {
		id, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, PageSize)
		for j := range page {
			page[j] = byte(i*31 + j)
		}
		if err := pf.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
		want = append(want, page)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	return ro, want
}

// TestPageSourceContract runs every backend through the same checks: views
// return the exact page bytes, release is callable exactly once per view,
// stats count activity, ShardStats sums to Stats, and out-of-range views
// fail cleanly.
func TestPageSourceContract(t *testing.T) {
	const pages = 6
	for _, backend := range []Backend{BackendPool, BackendMmap, BackendAuto} {
		t.Run(string(backend), func(t *testing.T) {
			pf, want := sourceFixture(t, pages)
			src, err := NewSource(pf, backend, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.File() != pf {
				t.Fatal("File() does not return the underlying file")
			}
			for i := 0; i < pages; i++ {
				page, release, err := src.View(PageID(i + 1))
				if err != nil {
					t.Fatalf("View(%d): %v", i+1, err)
				}
				if len(page) != PageSize {
					t.Fatalf("View(%d) returned %d bytes", i+1, len(page))
				}
				if !bytes.Equal(page, want[i]) {
					t.Fatalf("View(%d) content differs", i+1)
				}
				release()
			}
			st := src.Stats()
			if st.Hits+st.Misses < pages {
				t.Fatalf("stats count %d views, want >= %d", st.Hits+st.Misses, pages)
			}
			var sum PoolStats
			for _, s := range src.ShardStats() {
				sum.Add(s)
			}
			if sum != st {
				t.Fatalf("ShardStats sum %+v != Stats %+v", sum, st)
			}
			if _, _, err := src.View(PageID(pages + 10)); err == nil {
				t.Fatal("View beyond end accepted")
			}
		})
	}
}

// TestNewSourceSelection: the mmap backend degrades to preads on unmappable
// files (in-memory backing), auto falls back to the pool, and unknown names
// are rejected.
func TestNewSourceSelection(t *testing.T) {
	mem, err := CreateMemFile()
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Alloc(); err != nil {
		t.Fatal(err)
	}

	src, err := NewSource(mem, BackendMmap, 4)
	if err != nil {
		t.Fatalf("mmap over mem backing: %v", err)
	}
	if _, ok := src.(*preadSource); !ok {
		t.Fatalf("mmap over mem backing gave %T, want *preadSource", src)
	}
	page, release, err := src.View(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatalf("pread view is %d bytes", len(page))
	}
	release()
	if st := src.Stats(); st.Misses != 1 {
		t.Fatalf("pread stats = %+v, want 1 miss", st)
	}

	auto, err := NewSource(mem, BackendAuto, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := auto.(*Pool); !ok {
		t.Fatalf("auto over mem backing gave %T, want *Pool", auto)
	}

	if _, err := NewSource(mem, Backend("bogus"), 4); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

// TestMmapSourceZeroCopy: on a real file the mmap backend must actually map
// (this test runs on unix builders) and its views must alias one mapping.
func TestMmapSourceZeroCopy(t *testing.T) {
	pf, want := sourceFixture(t, 3)
	src, err := NewSource(pf, BackendMmap, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ms, ok := src.(*mmapSource)
	if !ok {
		t.Skipf("mmap unavailable here (%T)", src)
	}
	a, ra, err := ms.View(1)
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := ms.View(1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("two views of one page do not alias the mapping")
	}
	if !bytes.Equal(a, want[0]) {
		t.Fatal("mapped view content differs")
	}
	ra()
	rb()
	if st := ms.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("mmap stats = %+v, want 2 hits", st)
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendPool, true},
		{"pool", BackendPool, true},
		{"mmap", BackendMmap, true},
		{"auto", BackendAuto, true},
		{"zero-copy", "", false},
	} {
		got, err := ParseBackend(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseBackend(%q) = %q, %v", tc.in, got, err)
		}
	}
	if Backend("").String() != "pool" {
		t.Error("empty backend does not stringify as pool")
	}
}

// TestBackingReadAtContract pins the io.ReaderAt contract both backings must
// share: reads at exact end-of-data return (0, io.EOF), partial tail reads
// return (n, io.EOF), and full reads return nil.
func TestBackingReadAtContract(t *testing.T) {
	const size = PageSize + 100
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}

	osPath := filepath.Join(t.TempDir(), "ra.bin")
	if err := os.WriteFile(osPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	osFile, err := os.Open(osPath)
	if err != nil {
		t.Fatal(err)
	}
	defer osFile.Close()

	mem := &memBacking{}
	if _, err := mem.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	for name, r := range map[string]io.ReaderAt{"os.File": osFile, "memBacking": mem} {
		// Exact end of data: (0, io.EOF).
		buf := make([]byte, 10)
		if n, err := r.ReadAt(buf, size); n != 0 || err != io.EOF {
			t.Errorf("%s: ReadAt at end = (%d, %v), want (0, io.EOF)", name, n, err)
		}
		// Past the end: (0, io.EOF) too.
		if n, err := r.ReadAt(buf, size+50); n != 0 || err != io.EOF {
			t.Errorf("%s: ReadAt past end = (%d, %v), want (0, io.EOF)", name, n, err)
		}
		// Partial tail: (n < len(p), io.EOF) with the right bytes.
		if n, err := r.ReadAt(buf, size-4); n != 4 || err != io.EOF || !bytes.Equal(buf[:4], data[size-4:]) {
			t.Errorf("%s: tail ReadAt = (%d, %v)", name, n, err)
		}
		// Full interior read: (len(p), nil).
		if n, err := r.ReadAt(buf, 100); n != len(buf) || err != nil || !bytes.Equal(buf, data[100:110]) {
			t.Errorf("%s: interior ReadAt = (%d, %v)", name, n, err)
		}
	}

	if _, err := mem.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("memBacking accepted a negative offset")
	}
}

// TestViewConcurrent hammers every backend with 8 goroutines of mixed
// view/release traffic; under -race this is the data-race check for the
// View contract.
func TestViewConcurrent(t *testing.T) {
	const (
		pages      = 12
		goroutines = 8
		iters      = 400
	)
	for _, backend := range []Backend{BackendPool, BackendMmap, BackendAuto} {
		t.Run(string(backend), func(t *testing.T) {
			pf, want := sourceFixture(t, pages)
			src, err := NewSource(pf, backend, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						id := PageID(1 + (g*13+i*7)%pages)
						page, release, err := src.View(id)
						if err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(page, want[id-1]) {
							release()
							errs <- fmt.Errorf("goroutine %d: page %d content differs", g, id)
							return
						}
						release()
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if p, ok := src.(*Pool); ok && p.PinnedCount() != 0 {
				t.Fatalf("%d frames still pinned", p.PinnedCount())
			}
		})
	}
}
