// Package storage provides the disk substrate for the disk-based suffix
// tree: a page-addressed file and an LRU buffer pool with pin counting.
//
// The paper's construction (Section 4.1, after Bieganski et al.) merges
// disk-resident suffix trees with limited main memory; the buffer pool is
// what bounds that memory, and its hit/miss counters feed the benchmark
// harness's I/O accounting.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID addresses a page within a File. Page 0 is the meta page and is
// never handed out by Alloc.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage PageID = ^PageID(0)

const (
	fileMagic   = "TWPAGES1"
	metaCapSize = PageSize - len(fileMagic) - 4 // magic + meta length prefix
)

// backing abstracts where pages live: an OS file or a growable in-memory
// buffer.
type backing interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// memBacking is a growable in-memory byte store implementing backing; it
// powers ":memory:" page files for ephemeral indexes.
type memBacking struct {
	data []byte
}

func (m *memBacking) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: mem read at negative offset %d", off)
	}
	// io.ReaderAt contract: reads at or past end-of-data return io.EOF, and
	// a partial read at the tail returns n < len(p) with io.EOF — the same
	// answers an *os.File gives, so generic consumers (io.SectionReader,
	// PageSource fallbacks) treat both backings alike.
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBacking) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	if int64(len(m.data)) < end {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	return copy(m.data[off:], p), nil
}

func (m *memBacking) Sync() error  { return nil }
func (m *memBacking) Close() error { return nil }

// MemoryPath is the Path() of in-memory page files.
const MemoryPath = ":memory:"

// File is a page-addressed file. Reads (ReadPage, Meta, Copy) are safe for
// concurrent use — they go through ReaderAt and atomic counters — so any
// number of searches may share one File through a Pool. Mutations (Alloc,
// WritePage, SetMeta) are single-writer: the build pipeline owns the file
// exclusively while it writes.
type File struct {
	f        backing
	path     string
	numPages PageID
	readOnly bool

	// pagesRead and pagesWritten count physical page transfers. They are
	// typed atomics, not raw integers behind sync/atomic calls, so every
	// access is atomic by construction — the discipline twlint's atomicmix
	// check enforces on the function-style API.
	pagesRead, pagesWritten atomic.Uint64
}

// CreateMemFile creates a page file backed by process memory — no
// filesystem involved. Useful for ephemeral indexes and tests.
func CreateMemFile() (*File, error) {
	pf := &File{f: &memBacking{}, path: MemoryPath, numPages: 1}
	meta := make([]byte, PageSize)
	copy(meta, fileMagic)
	if _, err := pf.f.WriteAt(meta, 0); err != nil {
		return nil, err
	}
	return pf, nil
}

// CreateFile creates (or truncates) a page file with an empty meta page.
func CreateFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &File{f: f, path: path, numPages: 1}
	meta := make([]byte, PageSize)
	copy(meta, fileMagic)
	if _, err := f.WriteAt(meta, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: writing meta page: %w", err)
	}
	return pf, nil
}

// OpenFile opens an existing page file, verifying its magic.
func OpenFile(path string, readOnly bool) (*File, error) {
	flag := os.O_RDWR
	if readOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < PageSize || st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d is not a whole number of pages", path, st.Size())
	}
	magic := make([]byte, len(fileMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(magic) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s: bad magic", path)
	}
	return &File{
		f:        f,
		path:     path,
		numPages: PageID(st.Size() / PageSize),
		readOnly: readOnly,
	}, nil
}

// Path returns the file's path.
func (pf *File) Path() string { return pf.path }

// NumPages returns the number of pages including the meta page.
func (pf *File) NumPages() PageID { return pf.numPages }

// SizeBytes returns the file size in bytes.
func (pf *File) SizeBytes() int64 { return int64(pf.numPages) * PageSize }

// PagesRead returns the number of physical page reads since open.
func (pf *File) PagesRead() uint64 { return pf.pagesRead.Load() }

// PagesWritten returns the number of physical page writes since open.
func (pf *File) PagesWritten() uint64 { return pf.pagesWritten.Load() }

// Alloc extends the file by one zeroed page and returns its id.
func (pf *File) Alloc() (PageID, error) {
	if pf.readOnly {
		return InvalidPage, errors.New("storage: Alloc on read-only file")
	}
	id := pf.numPages
	zero := make([]byte, PageSize)
	if _, err := pf.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("storage: extending to page %d: %w", id, err)
	}
	pf.numPages++
	pf.pagesWritten.Add(1)
	return id, nil
}

// ReadPage fills buf (which must be PageSize long) with page id.
func (pf *File) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: ReadPage buffer is %d bytes", len(buf))
	}
	if id >= pf.numPages {
		return fmt.Errorf("storage: ReadPage %d beyond end (%d pages)", id, pf.numPages)
	}
	if _, err := pf.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: reading page %d: %w", id, err)
	}
	pf.pagesRead.Add(1)
	return nil
}

// WritePage stores buf (PageSize bytes) as page id. The page must have been
// allocated already.
func (pf *File) WritePage(id PageID, buf []byte) error {
	if pf.readOnly {
		return errors.New("storage: WritePage on read-only file")
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: WritePage buffer is %d bytes", len(buf))
	}
	if id >= pf.numPages {
		return fmt.Errorf("storage: WritePage %d beyond end (%d pages)", id, pf.numPages)
	}
	if _, err := pf.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", id, err)
	}
	pf.pagesWritten.Add(1)
	return nil
}

// SetMeta stores an application blob in the meta page. The blob must fit in
// one page after the magic and length prefix (about 4 KiB).
func (pf *File) SetMeta(blob []byte) error {
	if pf.readOnly {
		return errors.New("storage: SetMeta on read-only file")
	}
	if len(blob) > metaCapSize {
		return fmt.Errorf("storage: meta blob %d bytes exceeds %d", len(blob), metaCapSize)
	}
	page := make([]byte, PageSize)
	copy(page, fileMagic)
	binary.LittleEndian.PutUint32(page[len(fileMagic):], uint32(len(blob)))
	copy(page[len(fileMagic)+4:], blob)
	if _, err := pf.f.WriteAt(page, 0); err != nil {
		return fmt.Errorf("storage: writing meta page: %w", err)
	}
	pf.pagesWritten.Add(1)
	return nil
}

// Meta returns the application blob stored by SetMeta (empty if none).
func (pf *File) Meta() ([]byte, error) {
	page := make([]byte, PageSize)
	if _, err := pf.f.ReadAt(page, 0); err != nil {
		return nil, fmt.Errorf("storage: reading meta page: %w", err)
	}
	pf.pagesRead.Add(1)
	n := binary.LittleEndian.Uint32(page[len(fileMagic):])
	if int(n) > metaCapSize {
		return nil, errors.New("storage: corrupt meta length")
	}
	blob := make([]byte, n)
	copy(blob, page[len(fileMagic)+4:])
	return blob, nil
}

// Sync flushes the file to stable storage.
func (pf *File) Sync() error {
	if pf.readOnly {
		return nil
	}
	return pf.f.Sync()
}

// Close closes the underlying file.
func (pf *File) Close() error { return pf.f.Close() }

// Copy duplicates the whole page file to w (used to snapshot indexes).
func (pf *File) Copy(w io.Writer) error {
	_, err := io.Copy(w, io.NewSectionReader(pf.f, 0, pf.SizeBytes()))
	return err
}
