package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func tempFile(t *testing.T) *File {
	t.Helper()
	pf, err := CreateFile(filepath.Join(t.TempDir(), "pages.bin"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestFileCreateOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	pf, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pf.NumPages() != 1 {
		t.Fatalf("new file has %d pages, want 1 (meta)", pf.NumPages())
	}
	id, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first alloc = %d, want 1", id)
	}
	buf := make([]byte, PageSize)
	copy(buf, "hello pages")
	if err := pf.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if pf2.NumPages() != 2 {
		t.Fatalf("reopened file has %d pages, want 2", pf2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := pf2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("page content mismatch after reopen")
	}
}

func TestFileBoundsAndModes(t *testing.T) {
	pf := tempFile(t)
	buf := make([]byte, PageSize)
	if err := pf.ReadPage(99, buf); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := pf.WritePage(99, buf); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := pf.ReadPage(0, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}

	path := filepath.Join(t.TempDir(), "ro.bin")
	pfw, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pfw.Close()
	ro, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Alloc(); err == nil {
		t.Error("Alloc on read-only file accepted")
	}
	if err := ro.SetMeta([]byte("x")); err == nil {
		t.Error("SetMeta on read-only file accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, true); err == nil {
		t.Fatal("garbage file accepted")
	}
	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, true); err == nil {
		t.Fatal("short file accepted")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	pf := tempFile(t)
	blob := []byte("root=42;symbols=7")
	if err := pf.SetMeta(blob); err != nil {
		t.Fatal(err)
	}
	got, err := pf.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("meta = %q, want %q", got, blob)
	}
	if err := pf.SetMeta(make([]byte, PageSize)); err == nil {
		t.Error("oversized meta accepted")
	}
	// Empty meta on a fresh file.
	pf2 := tempFile(t)
	got2, err := pf2.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 0 {
		t.Fatalf("fresh meta = %q, want empty", got2)
	}
}

func TestPoolHitMissEvict(t *testing.T) {
	pf := tempFile(t)
	pool, err := NewPool(pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three pages, capacity two.
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte('a' + i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		pool.Release(fr)
	}
	// Page ids[0] was evicted (written back); re-fetching it is a miss but
	// content must survive.
	fr, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[0] != 'a' {
		t.Fatalf("evicted page lost content: %q", fr.Data()[0])
	}
	pool.Release(fr)
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if st.Misses == 0 {
		t.Error("no misses recorded")
	}
	// Immediate re-get is a hit.
	before := pool.Stats().Hits
	fr, err = pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(fr)
	if pool.Stats().Hits != before+1 {
		t.Error("re-get did not hit")
	}
}

func TestPoolPinPreventsEviction(t *testing.T) {
	pf := tempFile(t)
	pool, err := NewPool(pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	// Pool is full with a pinned frame: the next alloc must fail, not evict.
	if _, err := pool.Alloc(); err == nil {
		t.Fatal("alloc evicted a pinned frame")
	}
	pool.Release(fr)
	if _, err := pool.Alloc(); err != nil {
		t.Fatalf("alloc after release failed: %v", err)
	}
	if pool.PinnedCount() != 1 {
		t.Fatalf("pinned = %d, want 1", pool.PinnedCount())
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pf := tempFile(t)
	pool, _ := NewPool(pf, 2)
	fr, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(fr)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	pool.Release(fr)
}

func TestPoolFlushAll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	pf, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := NewPool(pf, 4)
	fr, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data(), "dirty data")
	fr.MarkDirty()
	pool.Release(fr)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	pf2, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	buf := make([]byte, PageSize)
	if err := pf2.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("dirty data")) {
		t.Fatal("FlushAll did not persist dirty page")
	}
}

func TestNewPoolBadCapacity(t *testing.T) {
	pf := tempFile(t)
	if _, err := NewPool(pf, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

// Property: any interleaving of writes through a small pool and reads after
// a full flush observes exactly the bytes last written per page — the pool
// is a transparent cache.
func TestQuickPoolTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func() bool {
		pf := mustCreate(t)
		defer pf.Close()
		pool, err := NewPool(pf, 1+rng.Intn(4))
		if err != nil {
			return false
		}
		nPages := 1 + rng.Intn(10)
		want := make(map[PageID]byte)
		var ids []PageID
		for i := 0; i < nPages; i++ {
			fr, err := pool.Alloc()
			if err != nil {
				return false
			}
			ids = append(ids, fr.ID())
			pool.Release(fr)
		}
		// Random writes.
		for op := 0; op < 50; op++ {
			id := ids[rng.Intn(len(ids))]
			fr, err := pool.Get(id)
			if err != nil {
				return false
			}
			b := byte(rng.Intn(256))
			fr.Data()[17] = b
			fr.MarkDirty()
			want[id] = b
			pool.Release(fr)
		}
		if err := pool.FlushAll(); err != nil {
			return false
		}
		// Verify against the raw file, bypassing the pool.
		buf := make([]byte, PageSize)
		for id, b := range want {
			if err := pf.ReadPage(id, buf); err != nil {
				return false
			}
			if buf[17] != b {
				return false
			}
		}
		return pool.PinnedCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func mustCreate(t *testing.T) *File {
	t.Helper()
	pf, err := CreateFile(filepath.Join(t.TempDir(), "q.bin"))
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func TestFileCopy(t *testing.T) {
	pf := tempFile(t)
	id, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "copy me")
	if err := pf.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := pf.Copy(&out); err != nil {
		t.Fatal(err)
	}
	if int64(out.Len()) != pf.SizeBytes() {
		t.Fatalf("copied %d bytes, want %d", out.Len(), pf.SizeBytes())
	}
	if !bytes.Contains(out.Bytes(), []byte("copy me")) {
		t.Fatal("copy lost page content")
	}
}

func TestFileSyncAndPath(t *testing.T) {
	pf := tempFile(t)
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if pf.Path() == "" {
		t.Fatal("empty path")
	}
	// Read-only sync is a no-op, not an error.
	path := filepath.Join(t.TempDir(), "ro.bin")
	w, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	ro, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ro.WritePage(0, make([]byte, PageSize)); err == nil {
		t.Fatal("read-only write accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	pf := tempFile(t)
	id, _ := pf.Alloc()
	buf := make([]byte, PageSize)
	pf.WritePage(id, buf)
	pf.ReadPage(id, buf)
	if pf.PagesWritten() < 2 || pf.PagesRead() < 1 {
		t.Fatalf("counters: wrote %d read %d", pf.PagesWritten(), pf.PagesRead())
	}
}

// TestPoolSharding checks the capacity split and the per-shard stats view.
func TestPoolSharding(t *testing.T) {
	pf := tempFile(t)
	const pages = 40
	ids := make([]PageID, pages)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := pf.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool, err := NewPool(pf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	// Small pools collapse to one shard per frame.
	small, err := NewPool(pf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.NumShards(); got != 3 {
		t.Fatalf("NumShards(cap 3) = %d, want 3", got)
	}
	for _, id := range ids {
		fr, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(id-1) {
			t.Fatalf("page %d holds %d", id, fr.Data()[0])
		}
		pool.Release(fr)
	}
	agg := pool.Stats()
	if agg.Misses != pages {
		t.Fatalf("misses = %d, want %d", agg.Misses, pages)
	}
	shards := pool.ShardStats()
	if len(shards) != pool.NumShards() {
		t.Fatalf("ShardStats len %d != NumShards %d", len(shards), pool.NumShards())
	}
	var sum PoolStats
	for _, s := range shards {
		sum.Add(s)
	}
	if sum != agg {
		t.Fatalf("shard sum %+v != aggregate %+v", sum, agg)
	}
}

// TestPoolConcurrentReaders hammers one pool from many goroutines and checks
// every read observes the bytes written, with no leaked pins. Run under
// -race this is the storage half of the concurrent-search contract.
func TestPoolConcurrentReaders(t *testing.T) {
	pf := tempFile(t)
	const pages = 64
	ids := make([]PageID, pages)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		if err := pf.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool, err := NewPool(pf, 16) // quarter of the pages: constant eviction
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				id := ids[(seed*31+i*7)%pages]
				fr, err := pool.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if fr.Data()[0] != byte(id) {
					errs <- fmt.Errorf("page %d holds %d", id, fr.Data()[0])
					pool.Release(fr)
					return
				}
				pool.Release(fr)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("%d frames left pinned", n)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != workers*400 {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, workers*400)
	}
}
