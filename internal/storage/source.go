package storage

import (
	"fmt"
	"sync/atomic"
)

// PageSource is the read surface of a page file: every reader — the disk
// tree's node decoder, its read-ahead, the validation walk — borrows pages
// through View instead of owning copies. Two implementations ship: the
// lock-striped LRU Pool (portable, copy-on-read, bounded memory) and the
// mmap source (zero-copy slices straight out of the page cache, shared
// across processes). Both are safe for any number of concurrent viewers.
type PageSource interface {
	// View borrows page id. The returned slice is exactly PageSize bytes
	// and is valid only until release is called; callers must not retain
	// it, write to it, or let it escape past release (the twlint viewescape
	// rule). release must be called exactly once, and is safe to call from
	// the goroutine that called View.
	View(id PageID) (page []byte, release func(), err error)
	// File returns the underlying page file.
	File() *File
	// Stats returns the source's unified counters: for a Pool, cache hits,
	// misses and evictions; for an mmap source, Hits counts views served
	// from the mapping; for the pread fallback, Misses counts views (every
	// view is a physical read).
	Stats() PoolStats
	// ShardStats returns per-stripe counters in stripe order; sources
	// without internal striping report a single entry.
	ShardStats() []PoolStats
	// Close releases the source's resources and closes the underlying file.
	Close() error
}

// Backend names a PageSource implementation for open options and flags.
type Backend string

const (
	// BackendPool reads through the lock-striped LRU buffer pool — the
	// portable default with strictly bounded memory.
	BackendPool Backend = "pool"
	// BackendMmap maps the whole file and serves zero-copy views. On
	// platforms (or backings) that cannot map, it degrades to a per-view
	// pread source.
	BackendMmap Backend = "mmap"
	// BackendAuto picks mmap when the file is mappable and the pool
	// otherwise.
	BackendAuto Backend = "auto"
)

// ParseBackend validates a backend name from a flag or option. The empty
// string means the default (pool).
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendPool:
		return BackendPool, nil
	case BackendMmap:
		return BackendMmap, nil
	case BackendAuto:
		return BackendAuto, nil
	}
	return "", fmt.Errorf("storage: unknown backend %q (want pool, mmap or auto)", s)
}

func (b Backend) String() string {
	if b == "" {
		return string(BackendPool)
	}
	return string(b)
}

// NewSource opens a PageSource over f. poolPages bounds the buffer pool
// when the pool backend is selected (or chosen by auto).
func NewSource(f *File, backend Backend, poolPages int) (PageSource, error) {
	switch backend {
	case "", BackendPool:
		return NewPool(f, poolPages)
	case BackendMmap:
		if src, err := newMappedSource(f); err == nil {
			return src, nil
		}
		// Not mappable here (non-unix platform, in-memory backing, or the
		// map call failed): fall back to per-view preads so the mmap
		// backend works everywhere, just without the zero-copy win.
		return &preadSource{f: f}, nil
	case BackendAuto:
		if src, err := newMappedSource(f); err == nil {
			return src, nil
		}
		return NewPool(f, poolPages)
	}
	return nil, fmt.Errorf("storage: unknown backend %q", string(backend))
}

// noopRelease is the shared release for sources whose views need no
// per-view cleanup; handing out one package function keeps View
// allocation-free.
func noopRelease() {}

// mmapSource serves views as zero-copy slices of one contiguous read-only
// mapping of the file. The mapping is established at open and lives until
// Close, so views need no pinning: release is a no-op and any number of
// goroutines read concurrently. Platform support comes from mapFile
// (build-tagged); construction goes through newMappedSource.
type mmapSource struct {
	f     *File
	data  []byte
	unmap func([]byte) error
	views atomic.Uint64
}

// newMappedSource maps f and wraps the mapping, or reports why it cannot
// (not file-backed, empty, or an unsupported platform).
func newMappedSource(f *File) (*mmapSource, error) {
	data, unmap, err := mapFile(f)
	if err != nil {
		return nil, err
	}
	return &mmapSource{f: f, data: data, unmap: unmap}, nil
}

func (s *mmapSource) View(id PageID) ([]byte, func(), error) {
	off := int64(id) * PageSize
	if off < 0 || off+PageSize > int64(len(s.data)) {
		return nil, nil, fmt.Errorf("storage: View %d beyond end (%d pages mapped)", id, len(s.data)/PageSize)
	}
	s.views.Add(1)
	return s.data[off : off+PageSize : off+PageSize], noopRelease, nil
}

func (s *mmapSource) File() *File { return s.f }

// Stats reports every view as a hit: the mapping never does a read the
// caller waits on (faults are the kernel's business), which is what the
// unified counters mean by "served from cache".
func (s *mmapSource) Stats() PoolStats        { return PoolStats{Hits: s.views.Load()} }
func (s *mmapSource) ShardStats() []PoolStats { return []PoolStats{s.Stats()} }

func (s *mmapSource) Close() error {
	err := s.unmap(s.data)
	s.data = nil
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// preadSource is the portable degradation of the mmap backend: every view
// is a fresh PageSize read through the file's ReaderAt. No cache, no
// zero-copy — correct everywhere, including in-memory backings and
// platforms without mmap.
type preadSource struct {
	f     *File
	views atomic.Uint64
}

func (s *preadSource) View(id PageID) ([]byte, func(), error) {
	buf := make([]byte, PageSize)
	if err := s.f.ReadPage(id, buf); err != nil {
		return nil, nil, err
	}
	s.views.Add(1)
	return buf, noopRelease, nil
}

func (s *preadSource) File() *File { return s.f }

// Stats reports every view as a miss: each one paid a physical read.
func (s *preadSource) Stats() PoolStats        { return PoolStats{Misses: s.views.Load()} }
func (s *preadSource) ShardStats() []PoolStats { return []PoolStats{s.Stats()} }

func (s *preadSource) Close() error { return s.f.Close() }
