//go:build unix

package storage

import (
	"errors"
	"syscall"
)

// mapFile maps the whole of f read-only and returns the mapping plus its
// unmap function. It fails — cleanly, so NewSource can fall back — when the
// file is not backed by a real descriptor (in-memory backings) or the map
// call itself is refused.
func mapFile(f *File) ([]byte, func([]byte) error, error) {
	fd, ok := f.f.(interface{ Fd() uintptr })
	if !ok {
		return nil, nil, errors.New("storage: backing is not file-descriptor based")
	}
	size := f.SizeBytes()
	if size <= 0 {
		return nil, nil, errors.New("storage: empty file cannot be mapped")
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
