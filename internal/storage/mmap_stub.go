//go:build !unix

package storage

import "errors"

// mapFile on platforms without the unix mmap surface: always refuses, so
// NewSource degrades the mmap backend to preads and auto picks the pool.
func mapFile(f *File) ([]byte, func([]byte) error, error) {
	return nil, nil, errors.New("storage: mmap is not supported on this platform")
}
