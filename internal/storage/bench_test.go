package storage

import (
	"path/filepath"
	"testing"
)

func benchPool(b *testing.B, capacity, nPages int) (*Pool, []PageID) {
	b.Helper()
	pf, err := CreateFile(filepath.Join(b.TempDir(), "bench.bin"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pf.Close() })
	pool, err := NewPool(pf, capacity)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]PageID, nPages)
	for i := range ids {
		fr, err := pool.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = fr.ID()
		pool.Release(fr)
	}
	return pool, ids
}

func BenchmarkPoolGetHit(b *testing.B) {
	pool, ids := benchPool(b, 64, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := pool.Get(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		pool.Release(fr)
	}
}

func BenchmarkPoolGetMiss(b *testing.B) {
	pool, ids := benchPool(b, 2, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := pool.Get(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		pool.Release(fr)
	}
}
