package benchrun

import (
	"fmt"
	"path/filepath"
	"text/tabwriter"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/sequence"
	"twsearch/internal/workload"
)

// FigureRow is one point of Figure 4 or 5: baseline vs SimSearch-SST_C.
type FigureRow struct {
	// X is the swept parameter: average sequence length (Figure 4) or
	// number of sequences (Figure 5).
	X          int
	Categories int // chosen so the index stays smaller than the database
	IndexKB    int64
	Scan       AlgoResult
	ScanFull   AlgoResult
	SST        AlgoResult
}

// Figure4Lengths is the paper's length sweep (200 sequences each).
var Figure4Lengths = []int{200, 400, 600, 800, 1000}

// Figure5Counts is the paper's sequence-count sweep (length 200 each).
var Figure5Counts = []int{1000, 2000, 4000, 6000, 8000, 10000}

// figureEps is the threshold used for the scalability study; the paper does
// not state one, so we keep the query mix moderately selective.
const figureEps = 10

// Figure4 reproduces Figure 4: query processing effort vs average sequence
// length on the artificial dataset (paper: 200 sequences, lengths 200 to
// 1000). Both curves should grow quadratically, SST_C below SeqScan.
func Figure4(cfg Config) ([]FigureRow, error) {
	cfg = cfg.effective()
	var rows []FigureRow
	for _, length := range Figure4Lengths {
		data := workload.Artificial(workload.ArtificialConfig{
			NumSequences: cfg.scaled(200),
			Len:          length,
			Seed:         cfg.Seed + int64(length),
		})
		row, err := figurePoint(cfg, data, length)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printFigure(cfg, "Figure 4: query effort vs avg sequence length (artificial data)", "len", rows)
	return rows, nil
}

// Figure5 reproduces Figure 5: query processing effort vs number of
// sequences (paper: 1000 to 10000 sequences of length 200). Both curves
// should grow linearly, SST_C below SeqScan.
func Figure5(cfg Config) ([]FigureRow, error) {
	cfg = cfg.effective()
	var rows []FigureRow
	for _, count := range Figure5Counts {
		data := workload.Artificial(workload.ArtificialConfig{
			NumSequences: cfg.scaled(count),
			Len:          200,
			Seed:         cfg.Seed + int64(count),
		})
		row, err := figurePoint(cfg, data, count)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printFigure(cfg, "Figure 5: query effort vs number of sequences (artificial data)", "#seqs", rows)
	return rows, nil
}

// figurePoint measures one sweep point. The category count is chosen, as in
// Section 7.3, to keep the index smaller than the database.
func figurePoint(cfg Config, data *sequence.Dataset, x int) (FigureRow, error) {
	queries := workload.Queries(data, workload.QueryConfig{Count: cfg.Queries, Seed: cfg.Seed + 7})
	row := FigureRow{X: x}
	dbBytes := int64(data.TotalElements()) * 8

	path := filepath.Join(cfg.Dir, "bench-fig.twt")
	var ix *core.Index
	for _, cats := range []int{40, 20, 10, 5, 2} {
		var err error
		ix, err = core.Build(data, path, core.Options{
			Kind: categorize.KindMaxEntropy, Categories: cats, Sparse: true,
		})
		if err != nil {
			return row, err
		}
		if ix.SizeBytes() <= dbBytes || cats == 2 {
			row.Categories = cats
			break
		}
		ix.RemoveFile()
	}
	row.IndexKB = ix.SizeBytes() / 1024
	var err error
	if row.SST, err = runIndexQueries(ix, queries, figureEps); err != nil {
		ix.RemoveFile()
		return row, err
	}
	ix.RemoveFile()
	if row.Scan, err = runScanQueries(data, queries, figureEps, false); err != nil {
		return row, err
	}
	if row.ScanFull, err = runScanQueries(data, queries, figureEps, true); err != nil {
		return row, err
	}
	return row, nil
}

func printFigure(cfg Config, title, xName string, rows []FigureRow) {
	fmt.Fprintln(cfg.Out, title)
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, xName+"\t#cats\tidxKB\tSeqScan(paper)\tSeqScan(+T1)\tSSTc\tspeedup\tanswers/q\t")
	for _, r := range rows {
		su := "-"
		if r.SST.AvgTime > 0 {
			su = fmt.Sprintf("%.1fx", float64(r.ScanFull.AvgTime)/float64(r.SST.AvgTime))
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t\n",
			r.X, r.Categories, r.IndexKB,
			fmtDur(r.ScanFull.AvgTime), fmtDur(r.Scan.AvgTime), fmtDur(r.SST.AvgTime),
			su, fmtCount(r.SST.Answers))
	}
	w.Flush()
}
