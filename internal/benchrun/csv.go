package benchrun

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"
)

// CSV writers for every artifact, so results can be plotted or diffed
// without parsing the human-readable tables. Times are emitted in
// milliseconds, counters as plain numbers.

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable1CSV emits Table 1's size grid.
func WriteTable1CSV(w io.Writer, res Table1Result) error {
	rows := [][]string{{
		"categories",
		"stc_el_inline_kb", "stc_el_ref_kb",
		"stc_me_inline_kb", "stc_me_ref_kb",
		"sstc_el_inline_kb", "sstc_el_ref_kb",
		"sstc_me_inline_kb", "sstc_me_ref_kb",
	}}
	rows = append(rows, []string{
		"ST",
		fmt.Sprint(res.ST.InlineKB), fmt.Sprint(res.ST.FileKB),
		"", "", "", "", "", "",
	})
	for _, r := range res.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Categories),
			fmt.Sprint(r.STcEL.InlineKB), fmt.Sprint(r.STcEL.FileKB),
			fmt.Sprint(r.STcME.InlineKB), fmt.Sprint(r.STcME.FileKB),
			fmt.Sprint(r.SSTcEL.InlineKB), fmt.Sprint(r.SSTcEL.FileKB),
			fmt.Sprint(r.SSTcME.InlineKB), fmt.Sprint(r.SSTcME.FileKB),
		})
	}
	return writeAll(w, rows)
}

// WriteTable2CSV emits Table 2's query effort grid.
func WriteTable2CSV(w io.Writer, res Table2Result) error {
	rows := [][]string{{
		"categories",
		"stc_el_ms", "stc_el_cells",
		"stc_me_ms", "stc_me_cells",
		"sstc_el_ms", "sstc_el_cells",
		"sstc_me_ms", "sstc_me_cells",
	}}
	rows = append(rows, []string{
		"ST", ms(res.ST.AvgTime), fmt.Sprintf("%.0f", res.ST.FilterCells),
		"", "", "", "", "", "",
	})
	for _, r := range res.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Categories),
			ms(r.STcEL.AvgTime), fmt.Sprintf("%.0f", r.STcEL.FilterCells),
			ms(r.STcME.AvgTime), fmt.Sprintf("%.0f", r.STcME.FilterCells),
			ms(r.SSTcEL.AvgTime), fmt.Sprintf("%.0f", r.SSTcEL.FilterCells),
			ms(r.SSTcME.AvgTime), fmt.Sprintf("%.0f", r.SSTcME.FilterCells),
		})
	}
	return writeAll(w, rows)
}

// WriteTable3CSV emits Table 3's threshold sweep.
func WriteTable3CSV(w io.Writer, rows3 []Table3Row) error {
	rows := [][]string{{
		"eps",
		"scan_full_ms", "scan_t1_ms",
		"sstc10_ms", "sstc20_ms", "sstc80_ms",
		"scan_full_cells", "sstc80_cells", "answers_per_query",
	}}
	for _, r := range rows3 {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.Eps),
			ms(r.ScanFull.AvgTime), ms(r.Scan.AvgTime),
			ms(r.SST10.AvgTime), ms(r.SST20.AvgTime), ms(r.SST80.AvgTime),
			fmt.Sprintf("%.0f", r.ScanFull.Cells()),
			fmt.Sprintf("%.0f", r.SST80.Cells()),
			fmt.Sprintf("%.0f", r.SST20.Answers),
		})
	}
	return writeAll(w, rows)
}

// WriteFigureCSV emits a Figure 4/5 sweep; xName labels the swept column.
func WriteFigureCSV(w io.Writer, xName string, frows []FigureRow) error {
	rows := [][]string{{
		xName, "categories", "index_kb",
		"scan_full_ms", "scan_t1_ms", "sstc_ms",
		"scan_full_cells", "sstc_cells", "answers_per_query",
	}}
	for _, r := range frows {
		rows = append(rows, []string{
			fmt.Sprint(r.X), fmt.Sprint(r.Categories), fmt.Sprint(r.IndexKB),
			ms(r.ScanFull.AvgTime), ms(r.Scan.AvgTime), ms(r.SST.AvgTime),
			fmt.Sprintf("%.0f", r.ScanFull.Cells()),
			fmt.Sprintf("%.0f", r.SST.Cells()),
			fmt.Sprintf("%.0f", r.SST.Answers),
		})
	}
	return writeAll(w, rows)
}
