package benchrun

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig(t *testing.T) (Config, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return Config{Scale: 0.04, Queries: 2, Dir: t.TempDir(), Seed: 42, Out: &buf}, &buf
}

func TestTable1Shapes(t *testing.T) {
	cfg, buf := tinyConfig(t)
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(CategoryCounts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.ST.InlineKB == 0 || res.DatabaseKB == 0 {
		t.Fatal("zero sizes")
	}
	for _, r := range res.Rows {
		// Paper shape: ST is the largest in the inline model (equal only
		// when the categorization is effectively lossless at tiny scale);
		// sparse is smaller than dense at the same category count.
		if r.STcME.InlineKB > res.ST.InlineKB {
			t.Errorf("cats=%d: STc-ME inline %d > ST %d", r.Categories, r.STcME.InlineKB, res.ST.InlineKB)
		}
		if r.SSTcME.Leaves >= r.STcME.Leaves {
			t.Errorf("cats=%d: sparse leaves %d >= dense %d", r.Categories, r.SSTcME.Leaves, r.STcME.Leaves)
		}
		if r.SSTcEL.Leaves >= r.STcEL.Leaves {
			t.Errorf("cats=%d: sparse EL leaves %d >= dense %d", r.Categories, r.SSTcEL.Leaves, r.STcEL.Leaves)
		}
	}
	// Sparse index grows with category count (more run breaks).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.SSTcME.Leaves > last.SSTcME.Leaves {
		t.Errorf("SSTc-ME leaves shrank with categories: %d -> %d", first.SSTcME.Leaves, last.SSTcME.Leaves)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("no formatted output")
	}
}

func TestTable2Shapes(t *testing.T) {
	cfg, buf := tinyConfig(t)
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(CategoryCounts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, a := range []AlgoResult{r.STcEL, r.STcME, r.SSTcEL, r.SSTcME} {
			if a.FilterCells == 0 {
				t.Fatalf("cats=%d: zero filter cells", r.Categories)
			}
		}
	}
	if !strings.Contains(buf.String(), "SimSearch-ST:") {
		t.Error("missing ST line")
	}
}

func TestTable3Shapes(t *testing.T) {
	cfg, buf := tinyConfig(t)
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(EpsThresholds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Answer counts grow with eps, and all engines agree on them.
		if r.Scan.Answers != r.SST10.Answers || r.Scan.Answers != r.SST20.Answers ||
			r.Scan.Answers != r.SST80.Answers || r.Scan.Answers != r.ScanFull.Answers {
			t.Fatalf("eps=%v: answer counts disagree: scan %v sst %v/%v/%v",
				r.Eps, r.Scan.Answers, r.SST10.Answers, r.SST20.Answers, r.SST80.Answers)
		}
		if i > 0 && r.Scan.Answers < rows[i-1].Scan.Answers {
			t.Errorf("answers shrank as eps grew")
		}
		// The paper baseline always does at least as much table work as the
		// abandoning scan, and the index filter does less than the paper
		// baseline.
		if r.ScanFull.FilterCells < r.Scan.FilterCells {
			t.Errorf("eps=%v: full scan cheaper than pruned scan", r.Eps)
		}
		if r.SST80.Cells() >= r.ScanFull.Cells() {
			t.Errorf("eps=%v: SST80 cells %v >= paper baseline %v", r.Eps, r.SST80.Cells(), r.ScanFull.Cells())
		}
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("no formatted output")
	}
}

func TestFiguresShapes(t *testing.T) {
	cfg, buf := tinyConfig(t)
	rows4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows4) != len(Figure4Lengths) {
		t.Fatalf("fig4 rows = %d", len(rows4))
	}
	// Work grows with sequence length for the quadratic baseline.
	if rows4[len(rows4)-1].ScanFull.FilterCells <= rows4[0].ScanFull.FilterCells {
		t.Error("fig4: baseline work did not grow with length")
	}

	rows5, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != len(Figure5Counts) {
		t.Fatalf("fig5 rows = %d", len(rows5))
	}
	if rows5[len(rows5)-1].ScanFull.FilterCells <= rows5[0].ScanFull.FilterCells {
		t.Error("fig5: baseline work did not grow with sequence count")
	}
	for _, r := range append(rows4, rows5...) {
		if r.SST.Answers != r.Scan.Answers {
			t.Fatalf("x=%d: index answers %v != scan %v", r.X, r.SST.Answers, r.Scan.Answers)
		}
	}
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "Figure 5") {
		t.Error("missing figure output")
	}
}

func TestAblations(t *testing.T) {
	cfg, buf := tinyConfig(t)
	sparseRows, err := AblationSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sparseRows {
		if r.SparseSize.Leaves >= r.DenseSize.Leaves {
			t.Errorf("cats=%d: sparse not smaller", r.Categories)
		}
		if r.SparseRatio <= 0 || r.SparseRatio >= 1 {
			t.Errorf("cats=%d: compaction ratio %v out of (0,1)", r.Categories, r.SparseRatio)
		}
		if r.Sparse.Answers != r.Dense.Answers {
			t.Errorf("cats=%d: sparse answers differ from dense", r.Categories)
		}
	}

	pruneRows, err := AblationPruning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pruneRows {
		if r.Pruned.Answers != r.Unpruned.Answers {
			t.Errorf("eps=%v: pruning changed answers", r.Eps)
		}
		if r.Unpruned.NodesViews < r.Pruned.NodesViews {
			t.Errorf("eps=%v: pruning increased node visits", r.Eps)
		}
	}

	winRows, err := AblationWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Narrower windows can only shrink the answer set, and the envelope
	// cascade may change work but never answers.
	for i, r := range winRows {
		if i > 0 && r.Result.Answers > winRows[i-1].Result.Answers {
			t.Errorf("window %d has more answers than %d", r.Window, winRows[i-1].Window)
		}
		if r.Result.Answers != r.NoEnvelope.Answers {
			t.Errorf("window %d: envelope cascade changed answers: %v vs %v",
				r.Window, r.Result.Answers, r.NoEnvelope.Answers)
		}
		if r.Result.FilterCells > r.NoEnvelope.FilterCells {
			t.Errorf("window %d: envelope cascade increased filter work: %v > %v",
				r.Window, r.Result.FilterCells, r.NoEnvelope.FilterCells)
		}
	}

	poolRows, err := AblationBufferPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger pools never read more pages.
	for i := 1; i < len(poolRows); i++ {
		if poolRows[i].Result.PagesRead > poolRows[i-1].Result.PagesRead {
			t.Errorf("pool %d pages read %v > pool %d's %v",
				poolRows[i].PoolPages, poolRows[i].Result.PagesRead,
				poolRows[i-1].PoolPages, poolRows[i-1].Result.PagesRead)
		}
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("no ablation output")
	}
}

func TestAblationQueryLength(t *testing.T) {
	cfg, buf := tinyConfig(t)
	rows, err := AblationQueryLength(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.SST.Answers != r.Scan.Answers {
			t.Fatalf("|Q|=%d: answer counts disagree", r.QueryLen)
		}
		if i > 0 && r.Scan.FilterCells <= rows[i-1].Scan.FilterCells {
			t.Errorf("scan work did not grow with |Q| (%d -> %d)", rows[i-1].QueryLen, r.QueryLen)
		}
	}
	if !strings.Contains(buf.String(), "query length") {
		t.Error("no formatted output")
	}
}

func TestArtificialWorkloadTables(t *testing.T) {
	cfg, buf := tinyConfig(t)
	cfg.Workload = WorkloadArtificial
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape conclusions as the stock workload ("similar conclusions
	// from experiments on the artificial sequences").
	for _, r := range res.Rows {
		if r.STcME.InlineKB > res.ST.InlineKB {
			t.Errorf("artificial cats=%d: STc > ST", r.Categories)
		}
		if r.SSTcME.Leaves >= r.STcME.Leaves {
			t.Errorf("artificial cats=%d: sparse not smaller", r.Categories)
		}
	}
	rows3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if r.Scan.Answers != r.SST20.Answers {
			t.Fatalf("artificial eps=%v: answers disagree", r.Eps)
		}
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("no output")
	}
}

func TestCSVWriters(t *testing.T) {
	cfg, _ := tinyConfig(t)
	res1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b1 bytes.Buffer
	if err := WriteTable1CSV(&b1, res1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b1.String(), "\n"); lines != len(res1.Rows)+2 {
		t.Fatalf("table1 csv lines = %d", lines)
	}
	if !strings.HasPrefix(b1.String(), "categories,") {
		t.Fatalf("table1 header: %q", b1.String()[:40])
	}

	rows3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := WriteTable3CSV(&b3, rows3); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b3.String(), "\n"); lines != len(rows3)+1 {
		t.Fatalf("table3 csv lines = %d", lines)
	}

	rows4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b4 bytes.Buffer
	if err := WriteFigureCSV(&b4, "avg_len", rows4); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b4.String(), "avg_len,") {
		t.Fatalf("figure header: %q", b4.String()[:30])
	}
}
