package benchrun

// This file is the shared plumbing of the cmd/bench* trend-line commands:
// machine-context capture, the scaled stock workload they all replay, the
// nearest-rank latency summary, and the JSON emit. The commands differ only
// in what they measure; everything around the measurement lives here so the
// reports stay field-compatible with each other.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"twsearch/internal/sequence"
	"twsearch/internal/workload"
)

// Env records the machine context a benchmark ran under. GOMAXPROCS is what
// the Go scheduler will actually use; NumCPU is the hardware view — they
// differ under cgroup CPU limits or an explicit GOMAXPROCS override, and a
// trend line that mixes the two machine shapes is comparing nothing.
type Env struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// CaptureEnv snapshots the machine context for a benchmark report.
func CaptureEnv() Env {
	return Env{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
}

// StockWorkload builds the scaled Section 7 stock dataset (scale 1.0 = the
// paper's 545 sequences, floored at minSeqs) and a deterministic query batch
// cut from it, exactly as every bench command replays it.
func StockWorkload(scale float64, minSeqs, numQueries int, seed int64) (*sequence.Dataset, [][]float64) {
	n := int(545*scale + 0.5)
	if n < minSeqs {
		n = minSeqs
	}
	data := workload.Stocks(workload.StockConfig{NumSequences: n, Seed: seed})
	qs := workload.QueriesRand(rand.New(rand.NewSource(seed+1)), data,
		workload.QueryConfig{Count: numQueries})
	return data, qs
}

// LatencySummary is the per-query latency distribution of one measurement,
// in the field names the CI trend lines key on.
type LatencySummary struct {
	AvgMS float64 `json:"latency_avg_ms"`
	P50MS float64 `json:"latency_p50_ms"`
	P95MS float64 `json:"latency_p95_ms"`
	P99MS float64 `json:"latency_p99_ms"`
}

// Summarize reduces raw per-query latencies to the standard summary. It
// sorts a copy; the input is not mutated. Empty input yields zeros.
func Summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		AvgMS: ms(sum / time.Duration(len(sorted))),
		P50MS: ms(Percentile(sorted, 50)),
		P95MS: ms(Percentile(sorted, 95)),
		P99MS: ms(Percentile(sorted, 99)),
	}
}

// Percentile picks the p-th percentile of an ascending-sorted latency slice
// by nearest rank: the smallest value with at least p percent of the sample
// at or below it. p is clamped to [1, 100]; the slice must be non-empty.
func Percentile(sorted []time.Duration, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	if p > 100 {
		p = 100
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// WriteJSON writes v to path as indented JSON, the format every BENCH_*.json
// trend file uses.
func WriteJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
