package benchrun

import (
	"fmt"
	"path/filepath"
	"text/tabwriter"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/disktree"
	"twsearch/internal/workload"
)

// AblationSparseRow compares dense ST_C against sparse SST_C at equal
// category counts (the Section 6 design choice).
type AblationSparseRow struct {
	Categories  int
	DenseSize   IndexSize
	SparseSize  IndexSize
	Dense       AlgoResult
	Sparse      AlgoResult
	SparseRatio float64 // compaction ratio r: non-stored / all suffixes
}

// AblationSparse measures what storing only run-head suffixes buys.
func AblationSparse(cfg Config) ([]AblationSparseRow, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()
	total := float64(data.TotalElements())
	var rows []AblationSparseRow
	for _, cats := range []int{10, 20, 80} {
		row := AblationSparseRow{Categories: cats}
		for _, sparse := range []bool{false, true} {
			ix, err := core.Build(data, filepath.Join(cfg.Dir, "bench-abl.twt"), core.Options{
				Kind: categorize.KindMaxEntropy, Categories: cats, Sparse: sparse,
			})
			if err != nil {
				return nil, err
			}
			res, err := runIndexQueries(ix, queries, 30)
			if err != nil {
				ix.RemoveFile()
				return nil, err
			}
			if sparse {
				row.SparseSize = indexSize(ix)
				row.Sparse = res
				row.SparseRatio = 1 - float64(ix.Tree.NumLeaves())/total
			} else {
				row.DenseSize = indexSize(ix)
				row.Dense = res
			}
			ix.RemoveFile()
		}
		rows = append(rows, row)
	}

	fmt.Fprintln(cfg.Out, "Ablation: sparse (SSTc) vs dense (STc) suffix tree, ME, eps=30")
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "#cats\tdenseKB\tsparseKB\tr\tdense t\tsparse t\tdense cells\tsparse cells\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%s\t%s\t%s\t%s\t\n",
			r.Categories, r.DenseSize.FileKB, r.SparseSize.FileKB, r.SparseRatio,
			fmtDur(r.Dense.AvgTime), fmtDur(r.Sparse.AvgTime),
			fmtCount(r.Dense.Cells()), fmtCount(r.Sparse.Cells()))
	}
	w.Flush()
	return rows, nil
}

// AblationPruningRow compares Theorem-1 branch pruning on vs off.
type AblationPruningRow struct {
	Eps      float64
	Pruned   AlgoResult
	Unpruned AlgoResult
}

// AblationPruning measures the paper's R_p reduction factor: identical
// answers with and without Theorem-1 pruning, different work.
func AblationPruning(cfg Config) ([]AblationPruningRow, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()
	ix, err := core.Build(data, filepath.Join(cfg.Dir, "bench-prune.twt"), core.Options{
		Kind: categorize.KindMaxEntropy, Categories: 40, Sparse: true,
	})
	if err != nil {
		return nil, err
	}
	defer ix.RemoveFile()

	var rows []AblationPruningRow
	for _, eps := range []float64{5, 30} {
		row := AblationPruningRow{Eps: eps}
		ix.DisablePruning = false
		if row.Pruned, err = runIndexQueries(ix, queries, eps); err != nil {
			return nil, err
		}
		ix.DisablePruning = true
		if row.Unpruned, err = runIndexQueries(ix, queries, eps); err != nil {
			return nil, err
		}
		ix.DisablePruning = false
		rows = append(rows, row)
	}

	fmt.Fprintln(cfg.Out, "Ablation: Theorem-1 branch pruning (SSTc ME-40)")
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "eps\tpruned t\tunpruned t\tpruned nodes\tunpruned nodes\tRp(nodes)\t")
	for _, r := range rows {
		rp := r.Unpruned.NodesViews / r.Pruned.NodesViews
		fmt.Fprintf(w, "%.0f\t%s\t%s\t%s\t%s\t%.1fx\t\n",
			r.Eps, fmtDur(r.Pruned.AvgTime), fmtDur(r.Unpruned.AvgTime),
			fmtCount(r.Pruned.NodesViews), fmtCount(r.Unpruned.NodesViews), rp)
	}
	w.Flush()
	return rows, nil
}

// AblationWindowRow compares warping-window constraints (the conclusion
// extension), each measured with the envelope lower-bound cascade on
// (Result) and off (NoEnvelope) so band wins and cascade wins stay
// separable in the report.
type AblationWindowRow struct {
	Window     int // -1 = unconstrained
	Result     AlgoResult
	NoEnvelope AlgoResult
}

// AblationWindow measures how a Sakoe–Chiba band changes work and answers,
// and what the envelope cascade saves on top at each band width. Indexes
// are built with EncodingV3 so both cascade tiers (subtree hulls and
// per-row envelope bounds) are in play.
func AblationWindow(cfg Config) ([]AblationWindowRow, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()
	var rows []AblationWindowRow
	for _, window := range []int{-1, 20, 10, 5} {
		ix, err := core.Build(data, filepath.Join(cfg.Dir, "bench-win.twt"), core.Options{
			Kind: categorize.KindMaxEntropy, Categories: 40, Window: window,
			Encoding: disktree.EncodingV3,
		})
		if err != nil {
			return nil, err
		}
		row := AblationWindowRow{Window: window}
		if row.Result, err = runIndexQueries(ix, queries, 30); err != nil {
			ix.RemoveFile()
			return nil, err
		}
		ix.DisableEnvelopes = true
		row.NoEnvelope, err = runIndexQueries(ix, queries, 30)
		ix.RemoveFile()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	fmt.Fprintln(cfg.Out, "Ablation: warping-window constraint × envelope cascade (STc ME-40 v3, eps=30)")
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "window\tenv t\tno-env t\tenv cells\tno-env cells\tpruned/q\tanswers/q\t")
	for _, r := range rows {
		win := "none"
		if r.Window >= 0 {
			win = fmt.Sprintf("%d", r.Window)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			win, fmtDur(r.Result.AvgTime), fmtDur(r.NoEnvelope.AvgTime),
			fmtCount(r.Result.FilterCells), fmtCount(r.NoEnvelope.FilterCells),
			fmtCount(r.Result.EnvelopePruned), fmtCount(r.Result.Answers))
	}
	w.Flush()
	return rows, nil
}

// AblationPoolRow measures buffer pool size vs physical reads.
type AblationPoolRow struct {
	PoolPages int
	Result    AlgoResult
}

// AblationBufferPool reopens one index through pools of different sizes —
// the disk-residency story of Section 4.1.
func AblationBufferPool(cfg Config) ([]AblationPoolRow, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()
	path := filepath.Join(cfg.Dir, "bench-pool.twt")
	built, err := core.Build(data, path, core.Options{
		Kind: categorize.KindMaxEntropy, Categories: 40, Sparse: true,
	})
	if err != nil {
		return nil, err
	}
	scheme := built.Scheme
	built.Close()
	defer func() {
		if f, err := core.Open(data, scheme, path, 8, -1); err == nil {
			f.RemoveFile()
		}
	}()

	var rows []AblationPoolRow
	for _, pages := range []int{4, 16, 64, 256, 1024} {
		ix, err := core.Open(data, scheme, path, pages, -1)
		if err != nil {
			return nil, err
		}
		res, err := runIndexQueries(ix, queries, 30)
		ix.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationPoolRow{PoolPages: pages, Result: res})
	}

	fmt.Fprintln(cfg.Out, "Ablation: buffer pool size (SSTc ME-40, eps=30)")
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "pages\ttime\tpages read/q\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t\n", r.PoolPages, fmtDur(r.Result.AvgTime), fmtCount(r.Result.PagesRead))
	}
	w.Flush()
	return rows, nil
}

// AblationQueryLenRow measures one query length.
type AblationQueryLenRow struct {
	QueryLen int
	Eps      float64
	Scan     AlgoResult
	SST      AlgoResult
}

// AblationQueryLength sweeps the query length — the |Q| factor of the
// paper's complexity formulas (every table row costs |Q| cells). The
// threshold scales with the length so selectivity stays comparable.
func AblationQueryLength(cfg Config) ([]AblationQueryLenRow, error) {
	cfg = cfg.effective()
	data, _ := cfg.stockWorkload()
	ix, err := core.Build(data, filepath.Join(cfg.Dir, "bench-qlen.twt"), core.Options{
		Kind: categorize.KindMaxEntropy, Categories: 40, Sparse: true,
	})
	if err != nil {
		return nil, err
	}
	defer ix.RemoveFile()

	var rows []AblationQueryLenRow
	for _, qlen := range []int{5, 10, 20, 40, 80} {
		queries := workload.Queries(data, workload.QueryConfig{
			Count: cfg.Queries, AvgLen: qlen, Seed: cfg.Seed + int64(qlen),
		})
		eps := 0.75 * float64(qlen)
		row := AblationQueryLenRow{QueryLen: qlen, Eps: eps}
		if row.SST, err = runIndexQueries(ix, queries, eps); err != nil {
			return nil, err
		}
		if row.Scan, err = runScanQueries(data, queries, eps, false); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	fmt.Fprintln(cfg.Out, "Ablation: query length (SSTc ME-40, eps = 0.75*|Q|)")
	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "|Q|\teps\tscan t\tsst t\tscan cells\tsst cells\tanswers/q\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%s\t%s\t%s\t%s\t%s\t\n",
			r.QueryLen, r.Eps, fmtDur(r.Scan.AvgTime), fmtDur(r.SST.AvgTime),
			fmtCount(r.Scan.Cells()), fmtCount(r.SST.Cells()), fmtCount(r.SST.Answers))
	}
	w.Flush()
	return rows, nil
}
