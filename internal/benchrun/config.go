// Package benchrun regenerates every table and figure of the paper's
// evaluation (Section 7): Table 1 (index sizes vs number of categories),
// Table 2 (query times vs number of categories), Table 3 (SeqScan vs
// SimSearch-SST_C across distance thresholds), Figure 4 (scalability in
// sequence length), and Figure 5 (scalability in sequence count) — plus the
// ablations DESIGN.md calls out. It is shared by the root bench_test.go
// (go test -bench) and cmd/benchtables (full paper-scale runs).
package benchrun

import (
	"fmt"
	"io"
	"os"
	"time"

	"twsearch/internal/core"
	"twsearch/internal/sequence"
	"twsearch/internal/workload"
)

// Workload selects the dataset family for the Table 1–3 experiments.
type Workload string

// The two Section 7 dataset families. The paper runs Tables 1–2 on both
// and reports "similar conclusions"; Figures 4–5 are artificial-only by
// construction.
const (
	WorkloadStocks     Workload = "stocks"
	WorkloadArtificial Workload = "artificial"
)

// Config scales and directs one harness run.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the paper's scale
	// (545 stock sequences, average length 232). Benchmarks use a smaller
	// scale to keep -bench runs quick.
	Scale float64
	// Queries is how many queries each measurement averages over.
	Queries int
	// Workload picks the dataset family for the tables (default stocks).
	Workload Workload
	// Dir is the working directory for index files; it must exist.
	Dir string
	// Seed drives every generator.
	Seed int64
	// Out receives the formatted tables; nil discards them.
	Out io.Writer
}

func (c Config) effective() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Queries == 0 {
		c.Queries = 10
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	if c.Workload == "" {
		c.Workload = WorkloadStocks
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < 2 {
		v = 2
	}
	return v
}

// stockWorkload generates the configured Section 7 dataset (stock stand-in
// by default, the paper's artificial random walks otherwise) and its query
// mix.
func (c Config) stockWorkload() (*sequence.Dataset, [][]float64) {
	var data *sequence.Dataset
	if c.Workload == WorkloadArtificial {
		data = workload.Artificial(workload.ArtificialConfig{
			NumSequences: c.scaled(545),
			Len:          232,
			LenJitter:    58,
			Seed:         c.Seed,
		})
	} else {
		data = workload.Stocks(workload.StockConfig{
			NumSequences: c.scaled(545),
			AvgLen:       232,
			Seed:         c.Seed,
		})
	}
	queries := workload.Queries(data, workload.QueryConfig{Count: c.Queries, Seed: c.Seed + 1})
	return data, queries
}

// AlgoResult is one algorithm's averaged measurement over the query set.
type AlgoResult struct {
	AvgTime        time.Duration
	FilterCells    float64
	PostCells      float64
	Candidates     float64
	Answers        float64
	NodesViews     float64
	PagesRead      float64
	EnvelopePruned float64
	LBCells        float64
}

// Cells returns average total table cells.
func (r AlgoResult) Cells() float64 { return r.FilterCells + r.PostCells }

func average(total core.SearchStats, n int) AlgoResult {
	f := float64(n)
	return AlgoResult{
		AvgTime:        total.Elapsed / time.Duration(n),
		FilterCells:    float64(total.FilterCells) / f,
		PostCells:      float64(total.PostCells) / f,
		Candidates:     float64(total.Candidates) / f,
		Answers:        float64(total.Answers) / f,
		NodesViews:     float64(total.NodesVisited) / f,
		PagesRead:      float64(total.PagesRead) / f,
		EnvelopePruned: float64(total.EnvelopePruned) / f,
		LBCells:        float64(total.LBCells) / f,
	}
}

// runIndexQueries averages index searches over the query set.
func runIndexQueries(ix *core.Index, queries [][]float64, eps float64) (AlgoResult, error) {
	var total core.SearchStats
	for _, q := range queries {
		_, stats, err := ix.Search(q, eps)
		if err != nil {
			return AlgoResult{}, err
		}
		total.Add(stats)
	}
	return average(total, len(queries)), nil
}

// runScanQueries averages sequential scans; full selects the paper's
// no-abandon baseline.
func runScanQueries(data *sequence.Dataset, queries [][]float64, eps float64, full bool) (AlgoResult, error) {
	var total core.SearchStats
	for _, q := range queries {
		var stats core.SearchStats
		var err error
		if full {
			_, stats, err = core.SeqScanFull(data, q, eps, -1)
		} else {
			_, stats, err = core.SeqScan(data, q, eps, -1)
		}
		if err != nil {
			return AlgoResult{}, err
		}
		total.Add(stats)
	}
	return average(total, len(queries)), nil
}

// fmtDur renders a duration compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtCount renders large averages compactly.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
