package benchrun

import (
	"fmt"
	"path/filepath"
	"text/tabwriter"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/disktree"
	"twsearch/internal/sequence"
)

// CategoryCounts is the paper's Table 1/2 sweep.
var CategoryCounts = []int{10, 20, 40, 80, 120, 160, 200, 250, 300}

// EpsThresholds is the paper's Table 3 sweep.
var EpsThresholds = []float64{5, 10, 20, 30, 40, 50}

// IndexSize describes one index's storage (Table 1's metric).
type IndexSize struct {
	// FileKB is this implementation's tree file size (labels stored as
	// references into the sequence store).
	FileKB int64
	// InlineKB is the measured file size of the same tree written in the
	// paper's storage model (disktree.LayoutInline, labels copied into
	// records). This is the column whose trend matches the paper's Table 1.
	InlineKB int64
	Nodes    uint64
	Leaves   uint64
}

func indexSize(ix *core.Index) IndexSize {
	t := ix.Tree
	return IndexSize{
		FileKB: t.SizeBytes() / 1024,
		Nodes:  t.NumNodes(),
		Leaves: t.NumLeaves(),
	}
}

// measureBothLayouts builds one configuration in both disk layouts and
// returns the combined size record.
func measureBothLayouts(cfg Config, data *sequence.Dataset, opts core.Options) (IndexSize, error) {
	ref, err := core.Build(data, filepath.Join(cfg.Dir, "bench-size-ref.twt"), opts)
	if err != nil {
		return IndexSize{}, err
	}
	size := indexSize(ref)
	ref.RemoveFile()

	opts.Layout = disktree.LayoutInline
	opts.Build.Layout = disktree.LayoutInline
	inl, err := core.Build(data, filepath.Join(cfg.Dir, "bench-size-inl.twt"), opts)
	if err != nil {
		return IndexSize{}, err
	}
	size.InlineKB = inl.SizeBytes() / 1024
	inl.RemoveFile()
	return size, nil
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	Categories int
	STcEL      IndexSize
	STcME      IndexSize
	SSTcEL     IndexSize
	SSTcME     IndexSize
}

// Table1Result bundles Table 1's output.
type Table1Result struct {
	ST         IndexSize // the exact tree, independent of category count
	DatabaseKB int64
	Rows       []Table1Row
}

// Table1 reproduces Table 1: index sizes of ST, ST_C (EL/ME) and SST_C
// (EL/ME) across category counts, on the stock workload.
func Table1(cfg Config) (Table1Result, error) {
	cfg = cfg.effective()
	data, _ := cfg.stockWorkload()
	var res Table1Result
	res.DatabaseKB = int64(data.TotalElements()) * 8 / 1024

	var err error
	res.ST, err = measureBothLayouts(cfg, data, core.Options{Kind: categorize.KindIdentity})
	if err != nil {
		return res, err
	}

	for _, cats := range CategoryCounts {
		row := Table1Row{Categories: cats}
		for _, cell := range []struct {
			kind   categorize.Kind
			sparse bool
			dst    *IndexSize
		}{
			{categorize.KindEqualLength, false, &row.STcEL},
			{categorize.KindMaxEntropy, false, &row.STcME},
			{categorize.KindEqualLength, true, &row.SSTcEL},
			{categorize.KindMaxEntropy, true, &row.SSTcME},
		} {
			*cell.dst, err = measureBothLayouts(cfg, data, core.Options{
				Kind: cell.kind, Categories: cats, Sparse: cell.sparse,
			})
			if err != nil {
				return res, err
			}
		}
		res.Rows = append(res.Rows, row)
	}

	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(cfg.Out, "Table 1: index sizes (KB, measured inline-label files — the paper's storage model; reference-layout KB in parens)\n")
	fmt.Fprintf(cfg.Out, "database: %d KB, ST: %d KB (%d)\n", res.DatabaseKB, res.ST.InlineKB, res.ST.FileKB)
	fmt.Fprintln(w, "#cats\tSTc-EL\tSTc-ME\tSSTc-EL\tSSTc-ME\t")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%d\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t\n",
			r.Categories,
			r.STcEL.InlineKB, r.STcEL.FileKB,
			r.STcME.InlineKB, r.STcME.FileKB,
			r.SSTcEL.InlineKB, r.SSTcEL.FileKB,
			r.SSTcME.InlineKB, r.SSTcME.FileKB)
	}
	w.Flush()
	return res, nil
}

// Table2Row is one line of Table 2.
type Table2Row struct {
	Categories int
	STcEL      AlgoResult
	STcME      AlgoResult
	SSTcEL     AlgoResult
	SSTcME     AlgoResult
}

// Table2Result bundles Table 2's output.
type Table2Result struct {
	Eps  float64
	ST   AlgoResult // SimSearch-ST, independent of category count
	Rows []Table2Row
}

// Table2 reproduces Table 2: average query processing effort of the three
// SimSearch algorithms across category counts at the paper's average
// distance threshold of 30.
func Table2(cfg Config) (Table2Result, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()
	res := Table2Result{Eps: 30}

	st, err := core.Build(data, filepath.Join(cfg.Dir, "bench-st2.twt"), core.Options{Kind: categorize.KindIdentity})
	if err != nil {
		return res, err
	}
	res.ST, err = runIndexQueries(st, queries, res.Eps)
	st.RemoveFile()
	if err != nil {
		return res, err
	}

	for _, cats := range CategoryCounts {
		row := Table2Row{Categories: cats}
		for _, cell := range []struct {
			kind   categorize.Kind
			sparse bool
			dst    *AlgoResult
		}{
			{categorize.KindEqualLength, false, &row.STcEL},
			{categorize.KindMaxEntropy, false, &row.STcME},
			{categorize.KindEqualLength, true, &row.SSTcEL},
			{categorize.KindMaxEntropy, true, &row.SSTcME},
		} {
			ix, err := core.Build(data, filepath.Join(cfg.Dir, "bench-t2.twt"), core.Options{
				Kind: cell.kind, Categories: cats, Sparse: cell.sparse,
			})
			if err != nil {
				return res, err
			}
			*cell.dst, err = runIndexQueries(ix, queries, res.Eps)
			ix.RemoveFile()
			if err != nil {
				return res, err
			}
		}
		res.Rows = append(res.Rows, row)
	}

	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(cfg.Out, "Table 2: avg query processing (eps=%.0f); time / filter cells\n", res.Eps)
	fmt.Fprintf(cfg.Out, "SimSearch-ST: %s / %s cells\n", fmtDur(res.ST.AvgTime), fmtCount(res.ST.FilterCells))
	fmt.Fprintln(w, "#cats\tSTc-EL\tSTc-ME\tSSTc-EL\tSSTc-ME\t")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%d\t%s/%s\t%s/%s\t%s/%s\t%s/%s\t\n",
			r.Categories,
			fmtDur(r.STcEL.AvgTime), fmtCount(r.STcEL.FilterCells),
			fmtDur(r.STcME.AvgTime), fmtCount(r.STcME.FilterCells),
			fmtDur(r.SSTcEL.AvgTime), fmtCount(r.SSTcEL.FilterCells),
			fmtDur(r.SSTcME.AvgTime), fmtCount(r.SSTcME.FilterCells))
	}
	w.Flush()
	return res, nil
}

// Table3Row is one line of Table 3.
type Table3Row struct {
	Eps      float64
	ScanFull AlgoResult // the paper's baseline: no early abandon
	Scan     AlgoResult // modern baseline with Theorem-1 abandon
	SST10    AlgoResult
	SST20    AlgoResult
	SST80    AlgoResult
}

// Table3 reproduces Table 3: sequential scanning vs ME-based
// SimSearch-SST_C with 10, 20 and 80 categories, across eps 5..50.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.effective()
	data, queries := cfg.stockWorkload()

	var indexes []*core.Index
	for _, cats := range []int{10, 20, 80} {
		ix, err := core.Build(data, filepath.Join(cfg.Dir, fmt.Sprintf("bench-t3-%d.twt", cats)), core.Options{
			Kind: categorize.KindMaxEntropy, Categories: cats, Sparse: true,
		})
		if err != nil {
			return nil, err
		}
		//lint:ignore deferinloop all three indexes are queried across every eps below, so they must live until the function returns; the loop is fixed at 3 iterations
		defer ix.RemoveFile()
		indexes = append(indexes, ix)
	}

	var rows []Table3Row
	for _, eps := range EpsThresholds {
		row := Table3Row{Eps: eps}
		var err error
		if row.ScanFull, err = runScanQueries(data, queries, eps, true); err != nil {
			return nil, err
		}
		if row.Scan, err = runScanQueries(data, queries, eps, false); err != nil {
			return nil, err
		}
		for i, dst := range []*AlgoResult{&row.SST10, &row.SST20, &row.SST80} {
			if *dst, err = runIndexQueries(indexes[i], queries, eps); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}

	w := tabwriter.NewWriter(cfg.Out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(cfg.Out, "Table 3: SeqScan vs SimSearch-SSTc(ME); time (speedup vs paper baseline)")
	fmt.Fprintln(w, "eps\tSeqScan(paper)\tSeqScan(+T1)\tSSTc(10)\tSSTc(20)\tSSTc(80)\tanswers/q\t")
	for _, r := range rows {
		base := r.ScanFull.AvgTime
		su := func(a AlgoResult) string {
			if a.AvgTime <= 0 {
				return "-"
			}
			return fmt.Sprintf("%s (%.1fx)", fmtDur(a.AvgTime), float64(base)/float64(a.AvgTime))
		}
		fmt.Fprintf(w, "%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			r.Eps, fmtDur(r.ScanFull.AvgTime), su(r.Scan), su(r.SST10), su(r.SST20), su(r.SST80),
			fmtCount(r.SST20.Answers))
	}
	w.Flush()
	return rows, nil
}
