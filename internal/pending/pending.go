// Package pending tracks the candidate subsequence end positions a filter
// pass produces, for the post-processing step that verifies them.
//
// The set is keyed by a global element offset (sequence offset + start
// position) and stores, per offset, the maximum candidate end seen. A dense
// per-query array over every element of the database would make each search
// O(total elements); instead the array is allocated once per query context
// and reused across queries via epoch stamping — a slot belongs to the
// current query only if its stamp equals the current epoch — plus a list of
// touched offsets so iteration visits only this query's candidates. That
// makes per-query cost O(candidates) while keeping O(1) insert and the
// "keep the max end per start" semantics of the paper's post-processing
// step.
package pending

import "slices"

// Set is an epoch-stamped sparse map from int32 offsets to the maximum
// int32 end recorded for them. The zero value is unusable; call Reset with
// the database's total element count first. A Set is not safe for
// concurrent use; each pooled query context owns one, and the parallel
// drivers merge worker sets only after the join barrier.
//
//twlint:join-merged
type Set struct {
	stamp   []uint32 // per-offset epoch of last write
	maxEnd  []int32  // valid only where stamp[i] == epoch
	touched []int32  // offsets written this epoch, insertion order
	epoch   uint32
}

// Reset prepares the set for a new query over a database of n elements,
// forgetting all entries in O(touched) — or O(n) on first use, growth, or
// epoch wraparound.
//
//twlint:steady-state
func (s *Set) Reset(n int) {
	if len(s.stamp) != n {
		//lint:ignore steadystate warmup only: the arrays are sized to the database once per pooled searcher and reused until the dataset changes
		s.stamp = make([]uint32, n)
		//lint:ignore steadystate warmup only: sized with stamp above, reused across every query on this searcher
		s.maxEnd = make([]int32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wraparound: stale stamps could collide, clear them
		clear(s.stamp)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// Add records a candidate [offset, end]; if the offset already holds a
// candidate this query, the larger end wins.
//
//twlint:steady-state
func (s *Set) Add(offset, end int32) {
	if s.stamp[offset] == s.epoch {
		if end > s.maxEnd[offset] {
			s.maxEnd[offset] = end
		}
		return
	}
	s.stamp[offset] = s.epoch
	s.maxEnd[offset] = end
	//lint:ignore steadystate amortized: touched doubles toward the candidate high-water mark, then Reset reslices to 0 and reuses the array
	s.touched = append(s.touched, offset)
}

// Len returns the number of distinct offsets recorded this query.
func (s *Set) Len() int { return len(s.touched) }

// MergeFrom folds every candidate recorded in o this query into s — the
// shard merge of a parallel search, where each worker collects candidates
// on its own set and one ordered verification pass runs on the union. The
// result is independent of merge order and of how candidates were sharded:
// Add keeps the maximum end per offset, and Sorted orders the offsets, so
// the union equals the set a serial pass would have built.
//
//twlint:steady-state
func (s *Set) MergeFrom(o *Set) {
	for _, off := range o.touched {
		s.Add(off, o.maxEnd[off])
	}
}

// Sorted returns this query's offsets in ascending order. The slice aliases
// the set's storage and is invalidated by the next Reset.
//
//twlint:steady-state
func (s *Set) Sorted() []int32 {
	slices.Sort(s.touched)
	return s.touched
}

// MaxEnd returns the largest end recorded for an offset this query. It must
// only be called with offsets returned by Sorted (or previously Added).
//
//twlint:steady-state
func (s *Set) MaxEnd(offset int32) int32 { return s.maxEnd[offset] }
