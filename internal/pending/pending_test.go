package pending

import (
	"math/rand"
	"slices"
	"testing"
)

func TestSetBasics(t *testing.T) {
	var s Set
	s.Reset(100)
	if s.Len() != 0 {
		t.Fatalf("fresh set has %d entries", s.Len())
	}
	s.Add(7, 20)
	s.Add(3, 10)
	s.Add(7, 15) // smaller end must not shrink the recorded max
	s.Add(7, 25)
	s.Add(99, 99)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Sorted()
	if !slices.Equal(got, []int32{3, 7, 99}) {
		t.Fatalf("Sorted = %v", got)
	}
	if s.MaxEnd(7) != 25 || s.MaxEnd(3) != 10 || s.MaxEnd(99) != 99 {
		t.Fatalf("MaxEnd: %d %d %d", s.MaxEnd(3), s.MaxEnd(7), s.MaxEnd(99))
	}
}

// TestSetEpochReuse runs many queries through one Set and checks entries
// never leak across Reset — including when the same offsets recur.
func TestSetEpochReuse(t *testing.T) {
	var s Set
	rng := rand.New(rand.NewSource(1))
	ref := make(map[int32]int32)
	for query := 0; query < 200; query++ {
		s.Reset(50)
		clear(ref)
		for i := 0; i < rng.Intn(30); i++ {
			off := int32(rng.Intn(50))
			end := int32(rng.Intn(1000))
			s.Add(off, end)
			if e, ok := ref[off]; !ok || end > e {
				ref[off] = end
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("query %d: Len = %d, want %d", query, s.Len(), len(ref))
		}
		for _, off := range s.Sorted() {
			want, ok := ref[off]
			if !ok {
				t.Fatalf("query %d: stale offset %d leaked", query, off)
			}
			if s.MaxEnd(off) != want {
				t.Fatalf("query %d: MaxEnd(%d) = %d, want %d", query, off, s.MaxEnd(off), want)
			}
		}
	}
}

// TestSetWraparound forces the epoch counter through zero and checks stale
// stamps cannot masquerade as current entries.
func TestSetWraparound(t *testing.T) {
	var s Set
	s.Reset(4)
	s.Add(2, 9)
	s.epoch = ^uint32(0) - 1 // two Resets away from wrapping
	s.Reset(4)               // epoch = max
	s.Add(1, 5)
	s.Reset(4) // wraps: stamps cleared, epoch restarts at 1
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if s.Len() != 0 {
		t.Fatalf("entries survived wraparound: %v", s.Sorted())
	}
	s.Add(3, 7)
	if got := s.Sorted(); !slices.Equal(got, []int32{3}) {
		t.Fatalf("Sorted after wrap = %v", got)
	}
}

// TestSetResize checks Reset with a different element count reallocates
// cleanly.
func TestSetResize(t *testing.T) {
	var s Set
	s.Reset(10)
	s.Add(9, 1)
	s.Reset(1000)
	if s.Len() != 0 {
		t.Fatal("entries survived resize")
	}
	s.Add(999, 3)
	if s.MaxEnd(999) != 3 {
		t.Fatal("Add after resize lost")
	}
}
