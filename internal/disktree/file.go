package disktree

import (
	"encoding/binary"
	"fmt"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// File is a disk-resident suffix tree, read through a lock-striped LRU
// buffer pool. The read path (ReadNode, ReadNodeInto, readAt) is safe for
// any number of concurrent goroutines; one open File serves all searches on
// an index. Creation is single-writer.
type File struct {
	pf   *storage.File
	pool *storage.Pool
	meta meta
}

// Create serializes an in-memory tree to path in the reference layout and
// returns the open file. poolPages bounds the buffer pool during the write
// (and afterwards).
func Create(path string, tree *suffixtree.Tree, poolPages int) (*File, error) {
	return CreateLayout(path, tree, poolPages, LayoutReference)
}

// CreateLayout is Create with an explicit node record layout.
func CreateLayout(path string, tree *suffixtree.Tree, poolPages int, layout Layout) (*File, error) {
	pf, err := storage.CreateFile(path)
	if err != nil {
		return nil, err
	}
	return createOn(pf, tree, poolPages, layout)
}

// CreateMem serializes a tree into an in-memory page file — an index with
// no filesystem footprint, for ephemeral use and tests. Everything else
// (search, Validate, Load) works identically.
func CreateMem(tree *suffixtree.Tree, poolPages int, layout Layout) (*File, error) {
	pf, err := storage.CreateMemFile()
	if err != nil {
		return nil, err
	}
	return createOn(pf, tree, poolPages, layout)
}

func createOn(pf *storage.File, tree *suffixtree.Tree, poolPages int, layout Layout) (*File, error) {
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	minLen := uint32(0)
	if tree.MinSuffixLen > 1 {
		minLen = uint32(tree.MinSuffixLen)
	}
	f := &File{pf: pf, pool: pool, meta: meta{sparse: tree.Sparse, minSuffixLen: minLen, layout: layout}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		return nil, err
	}

	var scratch []byte
	var writeNode func(n *suffixtree.Node) (Ptr, error)
	writeNode = func(n *suffixtree.Node) (Ptr, error) {
		out := Node{
			LabelSeq:   n.LabelSeq,
			LabelStart: n.LabelStart,
			LabelLen:   n.LabelLen,
		}
		if layout == LayoutInline {
			out.Label = tree.LabelSymbols(n)
		}
		if n.Leaf != nil {
			out.Leaf = true
			out.LabelSeq = n.Leaf.Seq
			out.Pos = n.Leaf.Pos
			out.RunLen = n.Leaf.RunLen
			f.meta.leaves++
		} else {
			out.Children = make([]ChildRef, len(n.Children))
			for i, c := range n.Children {
				ptr, err := writeNode(c)
				if err != nil {
					return NilPtr, err
				}
				out.Children[i] = ChildRef{
					Sym: tree.Store.Sym(int(c.LabelSeq), int(c.LabelStart)),
					Ptr: ptr,
				}
			}
		}
		f.meta.nodes++
		f.meta.labelSyms += uint64(n.LabelLen)
		ptr := app.offset()
		scratch = encodeNode(scratch[:0], &out, layout)
		if err := app.write(scratch); err != nil {
			return NilPtr, err
		}
		return ptr, nil
	}

	root, err := writeNode(tree.Root)
	app.close()
	if err != nil {
		pf.Close()
		return nil, err
	}
	f.meta.root = root
	if err := f.finish(); err != nil {
		pf.Close()
		return nil, err
	}
	return f, nil
}

// finish flushes dirty pages and persists the meta blob.
func (f *File) finish() error {
	if err := f.pool.FlushAll(); err != nil {
		return err
	}
	if err := f.pf.SetMeta(encodeMeta(f.meta)); err != nil {
		return err
	}
	return f.pf.Sync()
}

// Open opens an existing tree file.
func Open(path string, poolPages int, readOnly bool) (*File, error) {
	pf, err := storage.OpenFile(path, readOnly)
	if err != nil {
		return nil, err
	}
	blob, err := pf.Meta()
	if err != nil {
		pf.Close()
		return nil, err
	}
	m, err := decodeMeta(blob)
	if err != nil {
		pf.Close()
		return nil, err
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	return &File{pf: pf, pool: pool, meta: m}, nil
}

// Close closes the underlying page file.
func (f *File) Close() error { return f.pf.Close() }

// Root returns the root node's offset.
func (f *File) Root() Ptr { return f.meta.root }

// Sparse reports whether the tree stores only run-head suffixes.
func (f *File) Sparse() bool { return f.meta.sparse }

// NumNodes returns the total node count.
func (f *File) NumNodes() uint64 { return f.meta.nodes }

// NumLeaves returns the leaf count.
func (f *File) NumLeaves() uint64 { return f.meta.leaves }

// TotalLabelSymbols returns the summed expanded edge-label length — what an
// inline-label representation (the paper's) would store.
func (f *File) TotalLabelSymbols() uint64 { return f.meta.labelSyms }

// MinSuffixLen returns the suffix length filter the tree was built with
// (0 = every suffix stored).
func (f *File) MinSuffixLen() int { return int(f.meta.minSuffixLen) }

// Layout returns the node record layout of the file.
func (f *File) Layout() Layout { return f.meta.layout }

// SizeBytes returns the index file size — the paper's Table 1 metric.
func (f *File) SizeBytes() int64 { return f.pf.SizeBytes() }

// Path returns the file path.
func (f *File) Path() string { return f.pf.Path() }

// PoolStats returns buffer pool counters summed over all shards.
func (f *File) PoolStats() storage.PoolStats { return f.pool.Stats() }

// PoolShardStats returns per-shard buffer pool counters, in shard order.
func (f *File) PoolShardStats() []storage.PoolStats { return f.pool.ShardStats() }

// PagesRead returns physical page reads since open.
func (f *File) PagesRead() uint64 { return f.pf.PagesRead() }

// ReadAhead warms the buffer pool with the first page of each child node,
// deduplicating consecutive pages (children are laid out in DFS write
// order, so siblings usually share pages). Parallel search workers call it
// before descending into a node's children: one worker blocked on the
// batched physical reads overlaps with the other workers' DP rows, instead
// of every child edge paying its page fault in the middle of table work.
// Best-effort: a read error is left for ReadNodeInto to surface.
func (f *File) ReadAhead(children []ChildRef) {
	last := storage.PageID(0)
	for i := range children {
		id := storage.PageID(uint64(children[i].Ptr) / storage.PageSize)
		if i > 0 && id == last {
			continue
		}
		last = id
		fr, err := f.pool.Get(id)
		if err != nil {
			return
		}
		f.pool.Release(fr)
	}
}

// readAt fills buf from absolute byte offset p, crossing pages as needed.
func (f *File) readAt(p Ptr, buf []byte) error {
	for len(buf) > 0 {
		pageID := storage.PageID(uint64(p) / storage.PageSize)
		off := int(uint64(p) % storage.PageSize)
		fr, err := f.pool.Get(pageID)
		if err != nil {
			return err
		}
		n := copy(buf, fr.Data()[off:])
		f.pool.Release(fr)
		p += Ptr(n)
		buf = buf[n:]
	}
	return nil
}

// ReadNodeInto decodes the node at p into n, reusing n's Children and
// Label slices plus its decode scratch buffer: a warm scratch node makes
// the read allocation-free.
func (f *File) ReadNodeInto(p Ptr, n *Node) error {
	n.Children = n.Children[:0]
	n.Label = n.Label[:0]
	var off Ptr
	var flags byte
	if f.meta.layout == LayoutInline {
		var l [4]byte
		if err := f.readAt(p, l[:]); err != nil {
			return err
		}
		labelLen := binary.LittleEndian.Uint32(l[:])
		if labelLen > 1<<24 {
			return fmt.Errorf("disktree: implausible label length %d at %d", labelLen, p)
		}
		body := n.scratchBuf(int(labelLen)*4 + 1)
		if err := f.readAt(p+4, body); err != nil {
			return err
		}
		for i := 0; i < int(labelLen); i++ {
			n.Label = append(n.Label, Symbol(int32(binary.LittleEndian.Uint32(body[i*4:]))))
		}
		n.LabelLen = int32(labelLen)
		n.LabelSeq = -1
		n.LabelStart = -1
		flags = body[len(body)-1]
		off = p + 4 + Ptr(labelLen)*4 + 1
	} else {
		var hdr [nodeHeaderSize]byte
		if err := f.readAt(p, hdr[:]); err != nil {
			return err
		}
		n.LabelSeq = int32(binary.LittleEndian.Uint32(hdr[0:]))
		n.LabelStart = int32(binary.LittleEndian.Uint32(hdr[4:]))
		n.LabelLen = int32(binary.LittleEndian.Uint32(hdr[8:]))
		flags = hdr[12]
		off = p + nodeHeaderSize
	}
	n.Leaf = flags&flagLeaf != 0
	if n.Leaf {
		if f.meta.layout == LayoutInline {
			var body [4 + leafBodySize]byte
			if err := f.readAt(off, body[:]); err != nil {
				return err
			}
			n.LabelSeq = int32(binary.LittleEndian.Uint32(body[0:]))
			n.Pos = int32(binary.LittleEndian.Uint32(body[4:]))
			n.RunLen = int32(binary.LittleEndian.Uint32(body[8:]))
			return nil
		}
		var body [leafBodySize]byte
		if err := f.readAt(off, body[:]); err != nil {
			return err
		}
		n.Pos = int32(binary.LittleEndian.Uint32(body[0:]))
		n.RunLen = int32(binary.LittleEndian.Uint32(body[4:]))
		return nil
	}
	var cnt [4]byte
	if err := f.readAt(off, cnt[:]); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	if count > 1<<24 {
		return fmt.Errorf("disktree: implausible child count %d at %d", count, p)
	}
	body := n.scratchBuf(int(count) * childEntrySize)
	if err := f.readAt(off+4, body); err != nil {
		return err
	}
	for i := 0; i < int(count); i++ {
		ent := body[i*childEntrySize:]
		n.Children = append(n.Children, ChildRef{
			Sym: Symbol(int32(binary.LittleEndian.Uint32(ent[0:]))),
			Ptr: Ptr(binary.LittleEndian.Uint64(ent[4:])),
		})
	}
	return nil
}

// ReadNode decodes the node at p into a fresh Node.
func (f *File) ReadNode(p Ptr) (Node, error) {
	var n Node
	err := f.ReadNodeInto(p, &n)
	return n, err
}

// Load reconstructs the whole tree in memory — the inverse of Create, used
// by tests and by tools that inspect small indexes. For inline-layout files
// the reference labels are recovered from each subtree's leftmost leaf (the
// path to any leaf below a node spells a prefix of that leaf's suffix).
func (f *File) Load(store *suffixtree.TextStore) (*suffixtree.Tree, error) {
	// build returns the reconstructed node plus the (seq, pos) of the
	// leftmost leaf below it; depth is the path length above the node.
	var build func(p Ptr, depth int32) (*suffixtree.Node, int32, int32, error)
	build = func(p Ptr, depth int32) (*suffixtree.Node, int32, int32, error) {
		dn, err := f.ReadNode(p)
		if err != nil {
			return nil, 0, 0, err
		}
		n := &suffixtree.Node{
			LabelSeq:   dn.LabelSeq,
			LabelStart: dn.LabelStart,
			LabelLen:   dn.LabelLen,
		}
		if dn.Leaf {
			n.Leaf = &suffixtree.LeafInfo{Seq: dn.LabelSeq, Pos: dn.Pos, RunLen: dn.RunLen}
			if f.meta.layout == LayoutInline {
				n.LabelSeq = dn.LabelSeq
				n.LabelStart = dn.Pos + depth
			}
			return n, dn.LabelSeq, dn.Pos, nil
		}
		n.Children = make([]*suffixtree.Node, len(dn.Children))
		var seq, pos int32
		for i, c := range dn.Children {
			child, cseq, cpos, err := build(c.Ptr, depth+dn.LabelLen)
			if err != nil {
				return nil, 0, 0, err
			}
			n.Children[i] = child
			if i == 0 {
				seq, pos = cseq, cpos
			}
		}
		if f.meta.layout == LayoutInline {
			n.LabelSeq = seq
			n.LabelStart = pos + depth
		}
		return n, seq, pos, nil
	}
	root, _, _, err := build(f.meta.root, 0)
	if err != nil {
		return nil, err
	}
	return &suffixtree.Tree{Store: store, Root: root, Sparse: f.meta.sparse, MinSuffixLen: f.MinSuffixLen()}, nil
}
