package disktree

import (
	"fmt"
	"sync/atomic"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// File is a disk-resident suffix tree, read through a PageSource — the
// lock-striped LRU buffer pool by default, or a zero-copy mmap source. The
// read path (ReadNode, ReadNodeInto, ReadAhead) is safe for any number of
// concurrent goroutines; one open File serves all searches on an index.
// Creation is single-writer and always goes through a pool (the only source
// that writes).
type File struct {
	pf  *storage.File
	src storage.PageSource
	// pool is set when src is the buffer pool (always during creation);
	// nil for mmap/pread sources.
	pool *storage.Pool
	meta meta
}

// Create serializes an in-memory tree to path in the reference layout and
// returns the open file. poolPages bounds the buffer pool during the write
// (and afterwards).
func Create(path string, tree *suffixtree.Tree, poolPages int) (*File, error) {
	return CreateEncoded(path, tree, poolPages, LayoutReference, EncodingV1)
}

// CreateLayout is Create with an explicit node record layout.
func CreateLayout(path string, tree *suffixtree.Tree, poolPages int, layout Layout) (*File, error) {
	return CreateEncoded(path, tree, poolPages, layout, EncodingV1)
}

// CreateEncoded is Create with an explicit layout and record encoding.
func CreateEncoded(path string, tree *suffixtree.Tree, poolPages int, layout Layout, enc Encoding) (*File, error) {
	pf, err := storage.CreateFile(path)
	if err != nil {
		return nil, err
	}
	return createOn(pf, tree, poolPages, layout, enc)
}

// CreateMem serializes a tree into an in-memory page file — an index with
// no filesystem footprint, for ephemeral use and tests. Everything else
// (search, Validate, Load) works identically.
func CreateMem(tree *suffixtree.Tree, poolPages int, layout Layout) (*File, error) {
	return CreateMemEncoded(tree, poolPages, layout, EncodingV1)
}

// CreateMemEncoded is CreateMem with an explicit record encoding.
func CreateMemEncoded(tree *suffixtree.Tree, poolPages int, layout Layout, enc Encoding) (*File, error) {
	pf, err := storage.CreateMemFile()
	if err != nil {
		return nil, err
	}
	return createOn(pf, tree, poolPages, layout, enc)
}

func createOn(pf *storage.File, tree *suffixtree.Tree, poolPages int, layout Layout, enc Encoding) (*File, error) {
	if enc == 0 {
		enc = EncodingV1
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	minLen := uint32(0)
	if tree.MinSuffixLen > 1 {
		minLen = uint32(tree.MinSuffixLen)
	}
	f := &File{pf: pf, src: pool, pool: pool, meta: meta{sparse: tree.Sparse, minSuffixLen: minLen, layout: layout, enc: enc}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		return nil, err
	}

	// v3 files persist per-child subtree envelopes. The write is post-order
	// (children before parents), so each recursion returns its subtree's
	// horizon-limited hull vector and the parent stamps the persisted bound
	// onto the child table entry — one bottom-up pass, no second walk.
	hulls := enc == EncodingV3
	var scratch []byte
	var writeNode func(n *suffixtree.Node) (Ptr, depthHull, error)
	writeNode = func(n *suffixtree.Node) (Ptr, depthHull, error) {
		out := Node{
			LabelSeq:   n.LabelSeq,
			LabelStart: n.LabelStart,
			LabelLen:   n.LabelLen,
		}
		if layout == LayoutInline {
			out.Label = tree.LabelSymbols(n)
		}
		below := emptyDepthHull
		if n.Leaf != nil {
			out.Leaf = true
			out.LabelSeq = n.Leaf.Seq
			out.Pos = n.Leaf.Pos
			out.RunLen = n.Leaf.RunLen
			f.meta.leaves++
		} else {
			out.Children = make([]ChildRef, len(n.Children))
			for i, c := range n.Children {
				ptr, chHull, err := writeNode(c)
				if err != nil {
					return NilPtr, emptyDepthHull, err
				}
				ref := ChildRef{
					Sym: tree.Store.Sym(int(c.LabelSeq), int(c.LabelStart)),
					Ptr: ptr,
				}
				if hulls {
					ref = hullRef(ref, chHull)
					below = below.union(chHull)
				}
				out.Children[i] = ref
			}
		}
		hull := emptyDepthHull
		if hulls {
			// Fold this node's own edge label in (n's fields, not out's: a
			// leaf's out.LabelSeq was just repointed at the suffix owner).
			hull = prependLabel(n.LabelLen, func(i int32) Symbol {
				return tree.Store.Sym(int(n.LabelSeq), int(n.LabelStart+i))
			}, below)
		}
		f.meta.nodes++
		f.meta.labelSyms += uint64(n.LabelLen)
		ptr := app.offset()
		scratch = encodeNode(scratch[:0], &out, layout, enc)
		if err := app.write(scratch); err != nil {
			return NilPtr, emptyDepthHull, err
		}
		return ptr, hull, nil
	}

	root, _, err := writeNode(tree.Root)
	app.close()
	if err != nil {
		pf.Close()
		return nil, err
	}
	f.meta.root = root
	if err := f.finish(); err != nil {
		pf.Close()
		return nil, err
	}
	return f, nil
}

// finish flushes dirty pages and persists the meta blob.
func (f *File) finish() error {
	if err := f.pool.FlushAll(); err != nil {
		return err
	}
	if err := f.pf.SetMeta(encodeMeta(f.meta)); err != nil {
		return err
	}
	return f.pf.Sync()
}

// Open opens an existing tree file through the buffer pool.
func Open(path string, poolPages int, readOnly bool) (*File, error) {
	return OpenBackend(path, poolPages, readOnly, storage.BackendPool)
}

// OpenBackend opens an existing tree file through the chosen page source.
// poolPages bounds the buffer pool when the pool backend is selected (or
// picked by auto).
func OpenBackend(path string, poolPages int, readOnly bool, backend storage.Backend) (*File, error) {
	pf, err := storage.OpenFile(path, readOnly)
	if err != nil {
		return nil, err
	}
	blob, err := pf.Meta()
	if err != nil {
		pf.Close()
		return nil, err
	}
	m, err := decodeMeta(blob)
	if err != nil {
		pf.Close()
		return nil, err
	}
	src, err := storage.NewSource(pf, backend, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	f := &File{pf: pf, src: src, meta: m}
	if p, ok := src.(*storage.Pool); ok {
		f.pool = p
	}
	return f, nil
}

// Close closes the page source and the underlying page file.
func (f *File) Close() error { return f.src.Close() }

// Root returns the root node's offset.
func (f *File) Root() Ptr { return f.meta.root }

// Sparse reports whether the tree stores only run-head suffixes.
func (f *File) Sparse() bool { return f.meta.sparse }

// NumNodes returns the total node count.
func (f *File) NumNodes() uint64 { return f.meta.nodes }

// NumLeaves returns the leaf count.
func (f *File) NumLeaves() uint64 { return f.meta.leaves }

// TotalLabelSymbols returns the summed expanded edge-label length — what an
// inline-label representation (the paper's) would store.
func (f *File) TotalLabelSymbols() uint64 { return f.meta.labelSyms }

// MinSuffixLen returns the suffix length filter the tree was built with
// (0 = every suffix stored).
func (f *File) MinSuffixLen() int { return int(f.meta.minSuffixLen) }

// Layout returns the node record layout of the file.
func (f *File) Layout() Layout { return f.meta.layout }

// Encoding returns the node record encoding of the file.
func (f *File) Encoding() Encoding { return f.meta.enc }

// SizeBytes returns the index file size — the paper's Table 1 metric.
func (f *File) SizeBytes() int64 { return f.pf.SizeBytes() }

// Path returns the file path.
func (f *File) Path() string { return f.pf.Path() }

// PoolStats returns the page source's unified counters (cache hits, misses
// and evictions for the pool; view counts for mmap/pread sources).
func (f *File) PoolStats() storage.PoolStats { return f.src.Stats() }

// PoolShardStats returns per-stripe counters, in stripe order; unstriped
// sources report a single entry.
func (f *File) PoolShardStats() []storage.PoolStats { return f.src.ShardStats() }

// PagesRead returns physical page reads since open.
func (f *File) PagesRead() uint64 { return f.pf.PagesRead() }

// readAheadSink publishes a byte of each prefetched page so the compiler
// cannot elide the touch that faults mmap'd pages in.
var readAheadSink atomic.Uint32

// ReadAhead warms the page source with the first page of each child node,
// deduplicating consecutive pages (children are laid out in DFS write
// order, so siblings usually share pages). Parallel search workers call it
// before descending into a node's children: one worker blocked on the
// batched physical reads overlaps with the other workers' DP rows, instead
// of every child edge paying its page fault in the middle of table work.
// Best-effort: a read error is left for ReadNodeInto to surface.
func (f *File) ReadAhead(children []ChildRef) {
	last := storage.PageID(0)
	var sink byte
	for i := range children {
		id := storage.PageID(uint64(children[i].Ptr) / storage.PageSize)
		if i > 0 && id == last {
			continue
		}
		last = id
		page, release, err := f.src.View(id)
		if err != nil {
			return
		}
		sink += page[0]
		release()
	}
	readAheadSink.Store(uint32(sink))
}

// ReadNodeInto decodes the node at p into n, reusing n's Children and Label
// slices plus its embedded page cursor: a warm scratch node makes the read
// allocation-free. The record is decoded directly from borrowed page views;
// nothing is retained past the final cursor close.
func (f *File) ReadNodeInto(p Ptr, n *Node) error {
	n.Children = n.Children[:0]
	n.Label = n.Label[:0]
	if err := n.cur.open(f.src, p); err != nil {
		return err
	}
	var err error
	switch f.meta.enc {
	case EncodingV3:
		err = decodeNodeV3(&n.cur, n, f.meta.layout, p)
	case EncodingV2:
		err = decodeNodeV2(&n.cur, n, f.meta.layout, p)
	default:
		err = decodeNodeV1(&n.cur, n, f.meta.layout, p)
	}
	n.cur.close()
	return err
}

// decodeNodeV1 reads a fixed-width v1 record through the cursor.
func decodeNodeV1(c *pageCursor, n *Node, layout Layout, p Ptr) error {
	var flags byte
	if layout == LayoutInline {
		labelLen, err := c.u32()
		if err != nil {
			return err
		}
		if labelLen > 1<<24 {
			return fmt.Errorf("disktree: implausible label length %d at %d", labelLen, p)
		}
		for i := 0; i < int(labelLen); i++ {
			s, err := c.u32()
			if err != nil {
				return err
			}
			n.Label = append(n.Label, Symbol(int32(s)))
		}
		n.LabelLen = int32(labelLen)
		n.LabelSeq = -1
		n.LabelStart = -1
		if flags, err = c.readByte(); err != nil {
			return err
		}
	} else {
		seq, err := c.u32()
		if err != nil {
			return err
		}
		start, err := c.u32()
		if err != nil {
			return err
		}
		length, err := c.u32()
		if err != nil {
			return err
		}
		n.LabelSeq = int32(seq)
		n.LabelStart = int32(start)
		n.LabelLen = int32(length)
		if flags, err = c.readByte(); err != nil {
			return err
		}
	}
	n.Leaf = flags&flagLeaf != 0
	if n.Leaf {
		if layout == LayoutInline {
			seq, err := c.u32()
			if err != nil {
				return err
			}
			n.LabelSeq = int32(seq)
		}
		pos, err := c.u32()
		if err != nil {
			return err
		}
		runLen, err := c.u32()
		if err != nil {
			return err
		}
		n.Pos = int32(pos)
		n.RunLen = int32(runLen)
		return nil
	}
	count, err := c.u32()
	if err != nil {
		return err
	}
	if count > 1<<24 {
		return fmt.Errorf("disktree: implausible child count %d at %d", count, p)
	}
	for i := 0; i < int(count); i++ {
		sym, err := c.u32()
		if err != nil {
			return err
		}
		ptr, err := c.u64()
		if err != nil {
			return err
		}
		n.Children = append(n.Children, ChildRef{Sym: Symbol(int32(sym)), Ptr: Ptr(ptr)})
	}
	return nil
}

// decodeNodeV2 reads a compact varint record through the cursor, undoing
// the delta coding of encodeNodeV2 with the same wrapping arithmetic.
func decodeNodeV2(c *pageCursor, n *Node, layout Layout, p Ptr) error {
	return decodeNodeCompact(c, n, layout, p, false)
}

// decodeNodeV3 reads a compact record plus the per-child envelope hulls —
// still zero-copy through the same borrowed page views as v2; the hulls are
// just two more varints per child entry.
func decodeNodeV3(c *pageCursor, n *Node, layout Layout, p Ptr) error {
	return decodeNodeCompact(c, n, layout, p, true)
}

// decodeNodeCompact is the shared v2/v3 decoder; hulls selects the v3
// child-entry envelope tail.
func decodeNodeCompact(c *pageCursor, n *Node, layout Layout, p Ptr, hulls bool) error {
	var flags byte
	if layout == LayoutInline {
		labelLen, err := c.uvarint()
		if err != nil {
			return err
		}
		if labelLen > 1<<24 {
			return fmt.Errorf("disktree: implausible label length %d at %d", labelLen, p)
		}
		for i := 0; i < int(labelLen); i++ {
			s, err := c.varint()
			if err != nil {
				return err
			}
			n.Label = append(n.Label, Symbol(int32(s)))
		}
		n.LabelLen = int32(labelLen)
		n.LabelSeq = -1
		n.LabelStart = -1
		if flags, err = c.readByte(); err != nil {
			return err
		}
	} else {
		seq, err := c.varint()
		if err != nil {
			return err
		}
		start, err := c.varint()
		if err != nil {
			return err
		}
		length, err := c.varint()
		if err != nil {
			return err
		}
		n.LabelSeq = int32(seq)
		n.LabelStart = int32(start)
		n.LabelLen = int32(length)
		if flags, err = c.readByte(); err != nil {
			return err
		}
	}
	n.Leaf = flags&flagLeaf != 0
	if n.Leaf {
		if layout == LayoutInline {
			seq, err := c.varint()
			if err != nil {
				return err
			}
			n.LabelSeq = int32(seq)
		}
		pos, err := c.varint()
		if err != nil {
			return err
		}
		runLen, err := c.varint()
		if err != nil {
			return err
		}
		n.Pos = int32(pos)
		n.RunLen = int32(runLen)
		return nil
	}
	count, err := c.uvarint()
	if err != nil {
		return err
	}
	if count > 1<<24 {
		return fmt.Errorf("disktree: implausible child count %d at %d", count, p)
	}
	prevSym, prevPtr := int64(0), uint64(0)
	for i := 0; i < int(count); i++ {
		dSym, err := c.varint()
		if err != nil {
			return err
		}
		dPtr, err := c.varint()
		if err != nil {
			return err
		}
		prevSym += dSym
		prevPtr += uint64(dPtr)
		ref := ChildRef{Sym: Symbol(int32(prevSym)), Ptr: Ptr(prevPtr)}
		if hulls {
			for s := range ref.Seg {
				lo, err := c.varint()
				if err != nil {
					return err
				}
				span, err := c.varint()
				if err != nil {
					return err
				}
				ref.Seg[s] = HullRange{Lo: Symbol(int32(lo)), Hi: Symbol(int32(lo + span))}
			}
			ref.setOverall()
		}
		n.Children = append(n.Children, ref)
	}
	return nil
}

// ReadNode decodes the node at p into a fresh Node.
func (f *File) ReadNode(p Ptr) (Node, error) {
	var n Node
	err := f.ReadNodeInto(p, &n)
	return n, err
}

// Load reconstructs the whole tree in memory — the inverse of Create, used
// by tests and by tools that inspect small indexes. For inline-layout files
// the reference labels are recovered from each subtree's leftmost leaf (the
// path to any leaf below a node spells a prefix of that leaf's suffix).
func (f *File) Load(store *suffixtree.TextStore) (*suffixtree.Tree, error) {
	// build returns the reconstructed node plus the (seq, pos) of the
	// leftmost leaf below it; depth is the path length above the node.
	var build func(p Ptr, depth int32) (*suffixtree.Node, int32, int32, error)
	build = func(p Ptr, depth int32) (*suffixtree.Node, int32, int32, error) {
		dn, err := f.ReadNode(p)
		if err != nil {
			return nil, 0, 0, err
		}
		n := &suffixtree.Node{
			LabelSeq:   dn.LabelSeq,
			LabelStart: dn.LabelStart,
			LabelLen:   dn.LabelLen,
		}
		if dn.Leaf {
			n.Leaf = &suffixtree.LeafInfo{Seq: dn.LabelSeq, Pos: dn.Pos, RunLen: dn.RunLen}
			if f.meta.layout == LayoutInline {
				n.LabelSeq = dn.LabelSeq
				n.LabelStart = dn.Pos + depth
			}
			return n, dn.LabelSeq, dn.Pos, nil
		}
		n.Children = make([]*suffixtree.Node, len(dn.Children))
		var seq, pos int32
		for i, c := range dn.Children {
			child, cseq, cpos, err := build(c.Ptr, depth+dn.LabelLen)
			if err != nil {
				return nil, 0, 0, err
			}
			n.Children[i] = child
			if i == 0 {
				seq, pos = cseq, cpos
			}
		}
		if f.meta.layout == LayoutInline {
			n.LabelSeq = seq
			n.LabelStart = pos + depth
		}
		return n, seq, pos, nil
	}
	root, _, _, err := build(f.meta.root, 0)
	if err != nil {
		return nil, err
	}
	return &suffixtree.Tree{Store: store, Root: root, Sparse: f.meta.sparse, MinSuffixLen: f.MinSuffixLen()}, nil
}
