package disktree

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// checkHulls re-derives every subtree depth profile from the file itself
// and fails if any persisted child entry disagrees — the soundness
// invariant the search engine's envelope tier relies on (segment s of a
// stored profile must cover exactly the non-terminator symbols at relative
// depths s*HullSegLen..(s+1)*HullSegLen-1 under its child, edge labels
// included, and must absorb nothing past the horizon; the overall
// MinSym/MaxSym hull must be the segments' union).
func checkHulls(t *testing.T, f *File, ts *suffixtree.TextStore) {
	t.Helper()
	// gather recomputes, straight from the definition and independently of
	// the writer's prependLabel aggregation, the per-depth hull of every
	// non-terminator symbol at relative depths 0..HullHorizon-1 in the
	// subtree at p (p's own edge label included, its first symbol sitting
	// at relative depth depth).
	var gather func(p Ptr, depth int32, acc *[HullHorizon]symHull)
	gather = func(p Ptr, depth int32, acc *[HullHorizon]symHull) {
		var n Node
		if err := f.ReadNodeInto(p, &n); err != nil {
			t.Fatalf("ReadNodeInto(%d): %v", p, err)
		}
		kids := append([]ChildRef(nil), n.Children...)
		label := append([]Symbol(nil), n.Label...)
		seq, start, llen := n.LabelSeq, n.LabelStart, n.LabelLen

		for i := int32(0); i < llen && depth+i < HullHorizon; i++ {
			if len(label) > 0 {
				acc[depth+i] = acc[depth+i].add(label[i])
			} else {
				acc[depth+i] = acc[depth+i].add(ts.Sym(int(seq), int(start+i)))
			}
		}
		if depth+llen < HullHorizon {
			for _, c := range kids {
				gather(c.Ptr, depth+llen, acc)
			}
		}
	}
	var walk func(p Ptr)
	walk = func(p Ptr) {
		var n Node
		if err := f.ReadNodeInto(p, &n); err != nil {
			t.Fatalf("ReadNodeInto(%d): %v", p, err)
		}
		kids := append([]ChildRef(nil), n.Children...)
		for _, c := range kids {
			var acc [HullHorizon]symHull
			for i := range acc {
				acc[i] = emptyHull
			}
			gather(c.Ptr, 0, &acc)
			all := emptyHull
			for s := 0; s < HullSegs; s++ {
				want := emptyHull
				for k := s * HullSegLen; k < (s+1)*HullSegLen; k++ {
					want = want.union(acc[k])
				}
				all = all.union(want)
				if c.Seg[s].Lo != want.lo || c.Seg[s].Hi != want.hi {
					t.Fatalf("child %d of node %d: stored segment %d [%d,%d], recomputed [%d,%d]",
						c.Sym, p, s, c.Seg[s].Lo, c.Seg[s].Hi, want.lo, want.hi)
				}
			}
			if c.MinSym != all.lo || c.MaxSym != all.hi {
				t.Fatalf("child %d of node %d: stored hull [%d,%d], recomputed [%d,%d]",
					c.Sym, p, c.MinSym, c.MaxSym, all.lo, all.hi)
			}
			walk(c.Ptr)
		}
	}
	walk(f.Root())
}

// TestEncodingV3RoundTrip: Create→Load is the identity in both layouts under
// v3, the persisted hulls are sound, and the file survives a reopen through
// a tiny pool.
func TestEncodingV3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	ts := randomTexts(rng, 6, 40, 3)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	for _, layout := range []Layout{LayoutReference, LayoutInline} {
		path := filepath.Join(t.TempDir(), "v3.twt")
		f, err := CreateEncoded(path, tree, 64, layout, EncodingV3)
		if err != nil {
			t.Fatalf("%s: CreateEncoded: %v", layout, err)
		}
		if f.Encoding() != EncodingV3 {
			t.Errorf("%s: Encoding() = %s, want v3", layout, f.Encoding())
		}
		got, err := f.Load(ts)
		if err != nil {
			t.Fatalf("%s: Load: %v", layout, err)
		}
		if !suffixtree.Equal(tree, got) {
			t.Fatalf("%s: v3 tree differs from original", layout)
		}
		checkHulls(t, f, ts)
		f.Close()

		f2, err := Open(path, 2, true)
		if err != nil {
			t.Fatalf("%s: Open: %v", layout, err)
		}
		if f2.Encoding() != EncodingV3 {
			t.Errorf("%s: reopened Encoding() = %s, want v3", layout, f2.Encoding())
		}
		if _, err := f2.Validate(ts); err != nil {
			t.Fatalf("%s: Validate: %v", layout, err)
		}
		checkHulls(t, f2, ts)
		f2.Close()
	}
}

// TestBuildEncodingV3: the batched build+merge pipeline recomputes hulls on
// every merge round — the built file must equal the naive tree AND carry
// sound hulls even though no node survives from the original batches.
func TestBuildEncodingV3(t *testing.T) {
	rng := rand.New(rand.NewSource(277))
	ts := randomTexts(rng, 13, 30, 3)
	want := suffixtree.BuildNaive(ts, allSeqs(ts), false)
	out := filepath.Join(t.TempDir(), "v3build.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 3, PoolPages: 16, Encoding: EncodingV3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Encoding() != EncodingV3 {
		t.Errorf("built Encoding() = %s, want v3", f.Encoding())
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(want, got) {
		t.Fatal("v3 Build differs from naive tree")
	}
	checkHulls(t, f, ts)
}

// TestBuildEncodingV3Sparse: hulls must stay sound for the sparse tree,
// whose suffix set (and thus subtree contents) differs from the full tree.
func TestBuildEncodingV3Sparse(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	ts := randomTexts(rng, 9, 35, 4)
	out := filepath.Join(t.TempDir(), "v3sparse.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 4, PoolPages: 16, Encoding: EncodingV3, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	checkHulls(t, f, ts)
}

// TestRewriteV3: migrating v2→v3 aggregates sound hulls without touching the
// logical tree; migrating v3→v2 drops them and lands byte-identical to a
// directly-created v2 file; and the reference-layout v3 migration refuses a
// nil text store instead of silently persisting empty hulls.
func TestRewriteV3(t *testing.T) {
	rng := rand.New(rand.NewSource(283))
	for _, layout := range []Layout{LayoutReference, LayoutInline} {
		ts := randomTexts(rng, 8, 40, 3)
		tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
		dir := t.TempDir()
		v2Path := filepath.Join(dir, "v2.twt")
		f, err := CreateEncoded(v2Path, tree, 32, layout, EncodingV2)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()

		if layout == LayoutReference {
			if _, err := Rewrite(v2Path, filepath.Join(dir, "nil.twt"), 32, EncodingV3, nil); err == nil {
				t.Fatal("reference-layout rewrite to v3 accepted a nil store")
			}
		}

		v3Path := filepath.Join(dir, "v3.twt")
		rw, err := Rewrite(v2Path, v3Path, 32, EncodingV3, ts)
		if err != nil {
			t.Fatalf("%s: Rewrite to v3: %v", layout, err)
		}
		if rw.Encoding() != EncodingV3 {
			t.Errorf("%s: rewritten Encoding() = %s, want v3", layout, rw.Encoding())
		}
		got, err := rw.Load(ts)
		if err != nil {
			t.Fatal(err)
		}
		if !suffixtree.Equal(tree, got) {
			t.Fatalf("%s: v2→v3 rewrite changed the tree", layout)
		}
		if _, err := rw.Validate(ts); err != nil {
			t.Fatalf("%s: Validate after rewrite: %v", layout, err)
		}
		checkHulls(t, rw, ts)
		rw.Close()

		// Dropping the hulls again restores the exact v2 bytes.
		backPath := filepath.Join(dir, "back.twt")
		back, err := Rewrite(v3Path, backPath, 32, EncodingV2, nil)
		if err != nil {
			t.Fatalf("%s: Rewrite back to v2: %v", layout, err)
		}
		back.Close()
		origRaw, err := os.ReadFile(v2Path)
		if err != nil {
			t.Fatal(err)
		}
		backRaw, err := os.ReadFile(backPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(origRaw) != string(backRaw) {
			t.Fatalf("%s: v2→v3→v2 round trip is not byte-identical", layout)
		}
	}
}

// FuzzNodeCodecV3: decode∘encode is the identity for arbitrary nodes —
// including arbitrary (even inverted or negative) segment hull pairs,
// which the signed span varints must carry exactly; the decoder re-derives
// the overall MinSym/MaxSym as the segments' union, so the expectation
// does the same — and v3 bytes fed to the v2/v1 decoders (a
// version-confused reader) terminate without panicking.
func FuzzNodeCodecV3(f *testing.F) {
	f.Add([]byte{0}, false, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, true, false)
	f.Add([]byte{0xFF, 0x80, 0x00, 0x7F}, false, true)
	f.Add([]byte{9, 9, 9, 9, 200, 200, 1}, true, true)
	f.Fuzz(func(t *testing.T, data []byte, leaf, inline bool) {
		if len(data) == 0 {
			data = []byte{0}
		}
		next := func(i int) int32 {
			var v int32
			for k := 0; k < 4; k++ {
				v = v<<8 | int32(data[(i*4+k)%len(data)])
			}
			return v
		}
		layout := LayoutReference
		if inline {
			layout = LayoutInline
		}
		in := Node{LabelSeq: next(0), LabelStart: next(1), LabelLen: next(2), Leaf: leaf}
		if inline {
			n := int(uint32(next(3)) % 200)
			in.Label = make([]Symbol, n)
			for i := range in.Label {
				in.Label[i] = Symbol(next(4 + i))
			}
		}
		if leaf {
			in.Pos = next(5)
			in.RunLen = next(6)
		} else {
			n := int(uint32(next(7)) % 200)
			in.Children = make([]ChildRef, n)
			for i := range in.Children {
				c := ChildRef{
					Sym: Symbol(next(8 + i)),
					Ptr: Ptr(uint64(uint32(next(9 + i)))),
				}
				for s := range c.Seg {
					c.Seg[s] = HullRange{
						Lo: Symbol(next(10 + 2*(i*HullSegs+s))),
						Hi: Symbol(next(11 + 2*(i*HullSegs+s))),
					}
				}
				c.setOverall()
				in.Children[i] = c
			}
		}

		raw := encodeNodeV3(nil, &in, layout)
		df := writeRecordFile(t, raw, layout, EncodingV3)
		var got Node
		if err := df.ReadNodeInto(Ptr(storage.PageSize), &got); err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}

		want := in
		if inline {
			want.LabelLen = int32(len(in.Label))
			want.LabelStart = -1
			if !leaf {
				want.LabelSeq = -1
			}
		}
		if !nodesEqual(&want, &got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}

		// Cross-decode: older decoders over v3 bytes must terminate with an
		// error or garbage, never panic or hang.
		for _, enc := range []Encoding{EncodingV2, EncodingV1} {
			dfx := writeRecordFile(t, raw, layout, enc)
			var junk Node
			_ = dfx.ReadNodeInto(Ptr(storage.PageSize), &junk)
		}
	})
}
