package disktree

import (
	"fmt"

	"twsearch/internal/categorize"
	"twsearch/internal/suffixtree"
)

// ValidateStats is what Validate learned while walking the file.
type ValidateStats struct {
	Nodes    uint64
	Leaves   uint64
	MaxDepth int
}

// Validate walks the whole tree file and checks its structural invariants
// against the text store: child tables sorted with distinct first symbols
// that match the children's labels, internal nodes (except the root) with
// at least two children, leaf paths spelling their suffix plus terminator,
// leaf run lengths consistent with the text, and meta counters matching the
// walk. It is what cmd/twtree runs and what the merge tests lean on.
func (f *File) Validate(store *suffixtree.TextStore) (ValidateStats, error) {
	var st ValidateStats
	var walk func(p Ptr, path []Symbol, depth int) error
	walk = func(p Ptr, path []Symbol, depth int) error {
		n, err := f.ReadNode(p)
		if err != nil {
			return fmt.Errorf("disktree: reading node at %d: %w", p, err)
		}
		st.Nodes++
		// Guard against corrupted files whose pointers form cycles or fan
		// out beyond the recorded node count: without this, a cycle would
		// recurse forever.
		if st.Nodes > f.meta.nodes {
			return fmt.Errorf("disktree: walked more than the %d recorded nodes (cycle or corrupt pointers?)", f.meta.nodes)
		}
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if f.meta.layout == LayoutInline {
			path = append(path, n.Label...)
		} else {
			for i := 0; i < int(n.LabelLen); i++ {
				sym, err := symAt(store, int(n.LabelSeq), int(n.LabelStart)+i)
				if err != nil {
					return fmt.Errorf("disktree: node at %d: %w", p, err)
				}
				path = append(path, sym)
			}
		}
		if n.Leaf {
			st.Leaves++
			if len(n.Children) != 0 {
				return fmt.Errorf("disktree: leaf at %d has children", p)
			}
			seq, pos := int(n.LabelSeq), int(n.Pos)
			if seq < 0 || seq >= store.Len() {
				return fmt.Errorf("disktree: leaf at %d references sequence %d of %d", p, seq, store.Len())
			}
			text := store.Text(seq)
			if pos < 0 || pos >= len(text) {
				return fmt.Errorf("disktree: leaf at %d has position %d outside sequence %d (len %d)", p, pos, seq, len(text))
			}
			want := append(append([]Symbol{}, text[pos:]...), suffixtree.Terminator(seq))
			if len(path) != len(want) {
				return fmt.Errorf("disktree: leaf (%d,%d) path length %d, want %d", seq, pos, len(path), len(want))
			}
			for i := range want {
				if path[i] != want[i] {
					return fmt.Errorf("disktree: leaf (%d,%d) path differs at %d: %d != %d", seq, pos, i, path[i], want[i])
				}
			}
			if got := categorize.RunLengthAt(text, pos); got != int(n.RunLen) {
				return fmt.Errorf("disktree: leaf (%d,%d) run length %d, want %d", seq, pos, n.RunLen, got)
			}
			return nil
		}
		if p != f.meta.root && len(n.Children) < 2 {
			return fmt.Errorf("disktree: internal node at %d has %d children", p, len(n.Children))
		}
		var prev Symbol
		for i, c := range n.Children {
			if i > 0 && c.Sym <= prev {
				return fmt.Errorf("disktree: node at %d has unsorted children (%d after %d)", p, c.Sym, prev)
			}
			prev = c.Sym
			child, err := f.ReadNode(c.Ptr)
			if err != nil {
				return fmt.Errorf("disktree: reading child at %d: %w", c.Ptr, err)
			}
			if child.LabelLen <= 0 {
				return fmt.Errorf("disktree: empty edge label at %d", c.Ptr)
			}
			var got Symbol
			if f.meta.layout == LayoutInline {
				got = child.Label[0]
			} else {
				got, err = symAt(store, int(child.LabelSeq), int(child.LabelStart))
				if err != nil {
					return fmt.Errorf("disktree: child at %d: %w", c.Ptr, err)
				}
			}
			if got != c.Sym {
				return fmt.Errorf("disktree: child table at %d says %d, child label starts with %d", p, c.Sym, got)
			}
			if err := walk(c.Ptr, path, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(f.meta.root, nil, 0); err != nil {
		return st, err
	}
	if st.Nodes != f.meta.nodes {
		return st, fmt.Errorf("disktree: walked %d nodes, meta says %d", st.Nodes, f.meta.nodes)
	}
	if st.Leaves != f.meta.leaves {
		return st, fmt.Errorf("disktree: walked %d leaves, meta says %d", st.Leaves, f.meta.leaves)
	}
	return st, nil
}

// symAt is TextStore.Sym with bounds checking, so validation of corrupted
// files reports errors instead of panicking on wild label references.
func symAt(store *suffixtree.TextStore, seq, pos int) (Symbol, error) {
	if seq < 0 || seq >= store.Len() {
		return 0, fmt.Errorf("label references sequence %d of %d", seq, store.Len())
	}
	if pos < 0 || pos > len(store.Text(seq)) {
		return 0, fmt.Errorf("label references position %d of sequence %d (len %d)", pos, seq, len(store.Text(seq)))
	}
	return store.Sym(seq, pos), nil
}
