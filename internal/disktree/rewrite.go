package disktree

import (
	"fmt"
	"os"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// Rewrite copies the tree at inPath into a new file at outPath with the
// record encoding enc, preserving layout, sparseness and the length filter.
// The copy is a pure structural walk, so it migrates between encodings
// byte-for-byte equivalently: the rewritten tree decodes to the identical
// node set. Migrating TO EncodingV3 additionally aggregates the per-child
// subtree envelopes bottom-up; for reference-layout trees that pass reads
// edge labels, so store must hold the categorized texts the tree was built
// over (inline-layout trees carry their labels and may pass nil, as may any
// rewrite to v1/v2 — hulls already present in a v3 input are simply
// dropped). poolPages bounds the two buffer pools. The open output file is
// returned.
func Rewrite(inPath, outPath string, poolPages int, enc Encoding, store *suffixtree.TextStore) (*File, error) {
	if enc == 0 {
		enc = EncodingV1
	}
	in, err := Open(inPath, poolPages, true)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	if enc == EncodingV3 && in.Layout() == LayoutReference && store == nil {
		return nil, fmt.Errorf("disktree: rewriting a reference-layout tree to v3 needs the text store (envelope hulls read edge labels)")
	}

	pf, err := storage.CreateFile(outPath)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	out := &File{pf: pf, src: pool, pool: pool, meta: meta{
		sparse: in.Sparse(), minSuffixLen: in.meta.minSuffixLen, layout: in.Layout(), enc: enc,
	}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	// The merger's copySubtree is exactly the re-encode pass: it reads every
	// node through the input's decoder and emits it through the output's
	// encoder. The text store is consulted only when v3 hull aggregation
	// must expand reference labels; the pure copy path never compares
	// labels, so nil is safe everywhere else.
	m := &merger{store: store, out: out, app: app, layout: in.Layout(), enc: enc,
		hulls: enc == EncodingV3}

	var rn Node
	if err := in.ReadNodeInto(in.Root(), &rn); err != nil {
		app.close()
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	rootEdge := edge{f: in, ptr: in.Root(), seq: rn.LabelSeq, start: rn.LabelStart, length: rn.LabelLen}
	if in.Layout() == LayoutInline {
		// rn is a local Node, so its Label slice is not shared with anything.
		rootEdge.syms = rn.Label
	}
	rootPtr, _, err := m.copySubtree(rootEdge)
	app.close()
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	out.meta.root = rootPtr
	out.meta.nodes = m.nodes
	out.meta.leaves = m.leaves
	out.meta.labelSyms = m.labelSyms
	if err := out.finish(); err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	return out, nil
}
