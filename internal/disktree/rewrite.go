package disktree

import (
	"os"

	"twsearch/internal/storage"
)

// Rewrite copies the tree at inPath into a new file at outPath with the
// record encoding enc, preserving layout, sparseness and the length filter.
// The copy is a pure structural walk — no text store is consulted — so it
// migrates v1 files to the compact v2 encoding (or back) byte-for-byte
// equivalently: the rewritten tree decodes to the identical node set.
// poolPages bounds the two buffer pools. The open output file is returned.
func Rewrite(inPath, outPath string, poolPages int, enc Encoding) (*File, error) {
	if enc == 0 {
		enc = EncodingV1
	}
	in, err := Open(inPath, poolPages, true)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	pf, err := storage.CreateFile(outPath)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	out := &File{pf: pf, src: pool, pool: pool, meta: meta{
		sparse: in.Sparse(), minSuffixLen: in.meta.minSuffixLen, layout: in.Layout(), enc: enc,
	}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	// The merger's copySubtree is exactly the re-encode pass: it reads every
	// node through the input's decoder and emits it through the output's
	// encoder. The text store is never consulted on the pure copy path (no
	// label comparisons happen), so nil is safe.
	m := &merger{store: nil, out: out, app: app, layout: in.Layout(), enc: enc}

	var rn Node
	if err := in.ReadNodeInto(in.Root(), &rn); err != nil {
		app.close()
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	rootEdge := edge{f: in, ptr: in.Root(), seq: rn.LabelSeq, start: rn.LabelStart, length: rn.LabelLen}
	if in.Layout() == LayoutInline {
		// rn is a local Node, so its Label slice is not shared with anything.
		rootEdge.syms = rn.Label
	}
	rootPtr, err := m.copySubtree(rootEdge)
	app.close()
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	out.meta.root = rootPtr
	out.meta.nodes = m.nodes
	out.meta.leaves = m.leaves
	out.meta.labelSyms = m.labelSyms
	if err := out.finish(); err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	return out, nil
}
