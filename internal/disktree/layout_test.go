package disktree

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"twsearch/internal/suffixtree"
)

// Property: the inline layout round-trips exactly like the reference one —
// Create→Load is the identity, and Validate passes.
func TestQuickInlineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	dir := t.TempDir()
	count := 0
	f := func() bool {
		count++
		ts := randomTexts(rng, 1+rng.Intn(5), 25, 1+rng.Intn(4))
		sparse := rng.Intn(2) == 0
		tree := suffixtree.BuildNaive(ts, allSeqs(ts), sparse)
		path := filepath.Join(dir, "il.twt")
		df, err := CreateLayout(path, tree, 1+rng.Intn(16), LayoutInline)
		if err != nil {
			return false
		}
		defer df.Close()
		if df.Layout() != LayoutInline {
			return false
		}
		if _, err := df.Validate(ts); err != nil {
			return false
		}
		got, err := df.Load(ts)
		if err != nil {
			return false
		}
		return suffixtree.Equal(tree, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: inline disk merges produce the same tree as the in-memory
// merge, and reopened inline files keep their layout.
func TestQuickInlineMergeEqualsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	dir := t.TempDir()
	f := func() bool {
		ts := randomTexts(rng, 2+rng.Intn(5), 20, 1+rng.Intn(3))
		all := allSeqs(ts)
		cut := 1 + rng.Intn(len(all)-1)
		sparse := rng.Intn(2) == 0

		aPath := filepath.Join(dir, "a.twt")
		bPath := filepath.Join(dir, "b.twt")
		outPath := filepath.Join(dir, "out.twt")
		af, err := CreateLayout(aPath, suffixtree.BuildNaive(ts, all[:cut], sparse), 8, LayoutInline)
		if err != nil {
			return false
		}
		af.Close()
		bf, err := CreateLayout(bPath, suffixtree.BuildNaive(ts, all[cut:], sparse), 8, LayoutInline)
		if err != nil {
			return false
		}
		bf.Close()
		mf, err := MergeFiles(ts, aPath, bPath, outPath, 1+rng.Intn(8))
		if err != nil {
			return false
		}
		defer mf.Close()
		if mf.Layout() != LayoutInline {
			return false
		}
		if _, err := mf.Validate(ts); err != nil {
			return false
		}
		got, err := mf.Load(ts)
		if err != nil {
			return false
		}
		return suffixtree.Equal(suffixtree.BuildNaive(ts, all, sparse), got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejectsMixedLayouts(t *testing.T) {
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{1, 2})
	ts.Add([]Symbol{2, 1})
	dir := t.TempDir()
	a, err := CreateLayout(filepath.Join(dir, "a"), suffixtree.BuildNaive(ts, []int{0}, false), 8, LayoutReference)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := CreateLayout(filepath.Join(dir, "b"), suffixtree.BuildNaive(ts, []int{1}, false), 8, LayoutInline)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := MergeFiles(ts, filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "out"), 8); err == nil {
		t.Fatal("mixed layout merge accepted")
	}
}

// Inline files are larger exactly when labels outweigh the reference
// overhead — which is the paper's Table 1 effect on real data shapes.
func TestInlineLargerOnDeepTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	ts := suffixtree.NewTextStore()
	for i := 0; i < 10; i++ {
		text := make([]Symbol, 120)
		for j := range text {
			text[j] = Symbol(rng.Intn(50)) // fine alphabet: long unshared labels
		}
		ts.Add(text)
	}
	tree := suffixtree.BuildNaive(ts, allSeqs(ts), false)
	dir := t.TempDir()
	ref, err := CreateLayout(filepath.Join(dir, "r.twt"), tree, 64, LayoutReference)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	inl, err := CreateLayout(filepath.Join(dir, "i.twt"), tree, 64, LayoutInline)
	if err != nil {
		t.Fatal(err)
	}
	defer inl.Close()
	if inl.SizeBytes() <= ref.SizeBytes() {
		t.Fatalf("inline %d <= reference %d on long-label tree", inl.SizeBytes(), ref.SizeBytes())
	}
	// Counters must agree across layouts.
	if inl.NumNodes() != ref.NumNodes() || inl.NumLeaves() != ref.NumLeaves() ||
		inl.TotalLabelSymbols() != ref.TotalLabelSymbols() {
		t.Fatal("meta counters differ between layouts")
	}
}

func TestInlineBuildPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(617))
	ts := randomTexts(rng, 11, 25, 3)
	want := suffixtree.BuildNaive(ts, allSeqs(ts), true)
	out := filepath.Join(t.TempDir(), "inline.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{
		Sparse: true, BatchSize: 3, PoolPages: 8, Layout: LayoutInline,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Layout() != LayoutInline {
		t.Fatal("pipeline lost the layout")
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(want, got) {
		t.Fatal("inline pipeline differs from naive tree")
	}
}
