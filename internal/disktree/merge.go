package disktree

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// edge is a (possibly trimmed) edge into a source tree during a merge: the
// node at ptr in file f, with the label overridden by (seq, start, length)
// for reference-layout trees or by syms for inline-layout trees.
type edge struct {
	f                  *File
	ptr                Ptr
	seq, start, length int32
	syms               []Symbol // inline layout only; len(syms) == length
}

// sym reads label symbol i of the (trimmed) edge.
func (e edge) sym(store *suffixtree.TextStore, i int32) Symbol {
	if e.syms != nil {
		return e.syms[i]
	}
	return store.Sym(int(e.seq), int(e.start+i))
}

// trim drops the first l label symbols.
func (e *edge) trim(l int32) {
	e.start += l
	e.length -= l
	if e.syms != nil {
		e.syms = e.syms[l:]
	}
}

func (e edge) firstSym(store *suffixtree.TextStore) Symbol {
	return e.sym(store, 0)
}

// merger merges two disk trees into a third with memory bounded by the
// three buffer pools plus a recursion stack proportional to tree depth.
type merger struct {
	store     *suffixtree.TextStore
	out       *File
	app       *appender
	layout    Layout
	enc       Encoding
	scratch   []byte
	nodes     uint64
	leaves    uint64
	labelSyms uint64
	// hulls turns on subtree-envelope aggregation for EncodingV3 output:
	// every copy/merge path returns its subtree's horizon-limited hull
	// vector so parents stamp child table entries, mirroring createOn's
	// bottom-up pass.
	hulls bool
}

// prependEdge folds a (possibly trimmed) edge's label symbols in front of
// the below-the-edge hull vector, or returns the empty vector when
// aggregation is off. Reference-layout labels need the text store; the
// merge path always has one, and Rewrite demands one before targeting v3.
func (m *merger) prependEdge(e edge, below depthHull) depthHull {
	if !m.hulls {
		return emptyDepthHull
	}
	return prependLabel(e.length, func(i int32) Symbol { return e.sym(m.store, i) }, below)
}

// MergeFiles merges the trees in aPath and bPath (over the same text store,
// disjoint sequence sets) into a new tree file at outPath — the paper's
// disk-based binary merge. poolPages bounds each file's buffer pool.
func MergeFiles(store *suffixtree.TextStore, aPath, bPath, outPath string, poolPages int) (*File, error) {
	a, err := Open(aPath, poolPages, true)
	if err != nil {
		return nil, fmt.Errorf("disktree: opening %s: %w", aPath, err)
	}
	defer a.Close()
	b, err := Open(bPath, poolPages, true)
	if err != nil {
		return nil, fmt.Errorf("disktree: opening %s: %w", bPath, err)
	}
	defer b.Close()
	if a.Sparse() != b.Sparse() {
		return nil, fmt.Errorf("disktree: merging sparse with dense tree")
	}
	if a.MinSuffixLen() != b.MinSuffixLen() {
		return nil, fmt.Errorf("disktree: merging trees with different length filters (%d vs %d)",
			a.MinSuffixLen(), b.MinSuffixLen())
	}
	if a.Layout() != b.Layout() {
		return nil, fmt.Errorf("disktree: merging %s with %s layout", a.Layout(), b.Layout())
	}
	if a.Encoding() != b.Encoding() {
		return nil, fmt.Errorf("disktree: merging %s with %s encoding", a.Encoding(), b.Encoding())
	}

	pf, err := storage.CreateFile(outPath)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	out := &File{pf: pf, src: pool, pool: pool, meta: meta{
		sparse: a.Sparse(), minSuffixLen: a.meta.minSuffixLen, layout: a.Layout(), enc: a.Encoding(),
	}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		return nil, err
	}
	m := &merger{store: store, out: out, app: app, layout: a.Layout(), enc: a.Encoding(),
		hulls: a.Encoding() == EncodingV3}

	rootPtr, err := m.mergeRoots(a, b)
	app.close()
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	out.meta.root = rootPtr
	out.meta.nodes = m.nodes
	out.meta.leaves = m.leaves
	out.meta.labelSyms = m.labelSyms
	if err := out.finish(); err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	return out, nil
}

// emit writes a node record and returns its offset.
func (m *merger) emit(n *Node) (Ptr, error) {
	m.nodes++
	m.labelSyms += uint64(n.LabelLen)
	if n.Leaf {
		m.leaves++
	}
	ptr := m.app.offset()
	m.scratch = encodeNode(m.scratch[:0], n, m.layout, m.enc)
	if err := m.app.write(m.scratch); err != nil {
		return NilPtr, err
	}
	return ptr, nil
}

// copySubtree copies the subtree at e.ptr into the output, with e's
// (possibly trimmed) label on the top edge. Children are copied with their
// stored labels. It returns the copied subtree's hull vector (top label
// included) so the caller can stamp its child table entry.
func (m *merger) copySubtree(e edge) (Ptr, depthHull, error) {
	var n Node
	if err := e.f.ReadNodeInto(e.ptr, &n); err != nil {
		return NilPtr, emptyDepthHull, err
	}
	out := Node{
		LabelSeq:   e.seq,
		LabelStart: e.start,
		LabelLen:   e.length,
		Label:      e.syms,
		Leaf:       n.Leaf,
		Pos:        n.Pos,
		RunLen:     n.RunLen,
	}
	if n.Leaf && m.layout == LayoutInline {
		out.LabelSeq = n.LabelSeq // the suffix's owning sequence
	}
	below := emptyDepthHull
	if !n.Leaf {
		out.Children = make([]ChildRef, len(n.Children))
		for i, c := range n.Children {
			childEdge, err := m.childEdge(e.f, c)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			ptr, chHull, err := m.copySubtree(childEdge)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			out.Children[i] = hullRef(ChildRef{Sym: c.Sym, Ptr: ptr}, chHull)
			below = below.union(chHull)
		}
	}
	ptr, err := m.emit(&out)
	return ptr, m.prependEdge(e, below), err
}

// childEdge builds the untrimmed edge of a child reference.
func (m *merger) childEdge(f *File, c ChildRef) (edge, error) {
	var n Node
	if err := f.ReadNodeInto(c.Ptr, &n); err != nil {
		return edge{}, err
	}
	e := edge{f: f, ptr: c.Ptr, seq: n.LabelSeq, start: n.LabelStart, length: n.LabelLen}
	if f.Layout() == LayoutInline {
		// n is a fresh local Node, so its Label slice is not shared.
		e.syms = n.Label
	}
	return e, nil
}

// mergeRoots zips the two root child tables and emits the new root.
func (m *merger) mergeRoots(a, b *File) (Ptr, error) {
	var an, bn Node
	if err := a.ReadNodeInto(a.Root(), &an); err != nil {
		return NilPtr, err
	}
	if err := b.ReadNodeInto(b.Root(), &bn); err != nil {
		return NilPtr, err
	}
	children, _, err := m.zipChildren(a, an.Children, b, bn.Children)
	if err != nil {
		return NilPtr, err
	}
	return m.emit(&Node{Children: children})
}

// zipChildren merges two sorted child tables, recursing on equal symbols.
// It returns the union hull vector over every emitted entry (the merged
// node's below-the-label hulls).
func (m *merger) zipChildren(aF *File, as []ChildRef, bF *File, bs []ChildRef) ([]ChildRef, depthHull, error) {
	out := make([]ChildRef, 0, len(as)+len(bs))
	hull := emptyDepthHull
	copyOne := func(f *File, c ChildRef) error {
		e, err := m.childEdge(f, c)
		if err != nil {
			return err
		}
		ptr, chHull, err := m.copySubtree(e)
		if err != nil {
			return err
		}
		out = append(out, hullRef(ChildRef{Sym: c.Sym, Ptr: ptr}, chHull))
		hull = hull.union(chHull)
		return nil
	}
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i].Sym < bs[j].Sym:
			if err := copyOne(aF, as[i]); err != nil {
				return nil, emptyDepthHull, err
			}
			i++
		case as[i].Sym > bs[j].Sym:
			if err := copyOne(bF, bs[j]); err != nil {
				return nil, emptyDepthHull, err
			}
			j++
		default:
			ae, err := m.childEdge(aF, as[i])
			if err != nil {
				return nil, emptyDepthHull, err
			}
			be, err := m.childEdge(bF, bs[j])
			if err != nil {
				return nil, emptyDepthHull, err
			}
			ptr, chHull, err := m.mergeEdge(ae, be)
			if err != nil {
				return nil, emptyDepthHull, err
			}
			out = append(out, hullRef(ChildRef{Sym: as[i].Sym, Ptr: ptr}, chHull))
			hull = hull.union(chHull)
			i++
			j++
		}
	}
	for ; i < len(as); i++ {
		if err := copyOne(aF, as[i]); err != nil {
			return nil, emptyDepthHull, err
		}
	}
	for ; j < len(bs); j++ {
		if err := copyOne(bF, bs[j]); err != nil {
			return nil, emptyDepthHull, err
		}
	}
	return out, hull, nil
}

// mergeEdge merges two edges that start with the same symbol, returning the
// merged subtree's hull vector alongside its offset.
func (m *merger) mergeEdge(a, b edge) (Ptr, depthHull, error) {
	// Common label prefix length.
	maxL := a.length
	if b.length < maxL {
		maxL = b.length
	}
	l := int32(1)
	for l < maxL && a.sym(m.store, l) == b.sym(m.store, l) {
		l++
	}

	switch {
	case l == a.length && l == b.length:
		// Same full label: merge the two nodes' child tables.
		var an, bn Node
		if err := a.f.ReadNodeInto(a.ptr, &an); err != nil {
			return NilPtr, emptyDepthHull, err
		}
		if err := b.f.ReadNodeInto(b.ptr, &bn); err != nil {
			return NilPtr, emptyDepthHull, err
		}
		if an.Leaf || bn.Leaf {
			return NilPtr, emptyDepthHull, fmt.Errorf("disktree: leaf collision during merge (overlapping sequence sets?)")
		}
		children, chHull, err := m.zipChildren(a.f, an.Children, b.f, bn.Children)
		if err != nil {
			return NilPtr, emptyDepthHull, err
		}
		ptr, err := m.emit(&Node{
			LabelSeq: a.seq, LabelStart: a.start, LabelLen: a.length,
			Label: a.syms, Children: children,
		})
		return ptr, m.prependEdge(a, chHull), err

	case l == a.length:
		// b's label extends past a's: push the trimmed b edge into a's node.
		b.trim(l)
		return m.mergeInto(a, b)

	case l == b.length:
		a.trim(l)
		return m.mergeInto(b, a)

	default:
		// Labels diverge inside both: new internal node with the common
		// prefix and the two trimmed subtrees as children.
		prefix := a
		prefix.length = l
		if prefix.syms != nil {
			prefix.syms = prefix.syms[:l]
		}
		a.trim(l)
		b.trim(l)
		aPtr, aHull, err := m.copySubtree(a)
		if err != nil {
			return NilPtr, emptyDepthHull, err
		}
		bPtr, bHull, err := m.copySubtree(b)
		if err != nil {
			return NilPtr, emptyDepthHull, err
		}
		ca := hullRef(ChildRef{Sym: a.firstSym(m.store), Ptr: aPtr}, aHull)
		cb := hullRef(ChildRef{Sym: b.firstSym(m.store), Ptr: bPtr}, bHull)
		if cb.Sym < ca.Sym {
			ca, cb = cb, ca
		}
		ptr, err := m.emit(&Node{
			LabelSeq:   prefix.seq,
			LabelStart: prefix.start,
			LabelLen:   l,
			Label:      prefix.syms,
			Children:   []ChildRef{ca, cb},
		})
		return ptr, m.prependEdge(prefix, aHull.union(bHull)), err
	}
}

// mergeInto merges the trimmed edge extra into the node at base (whose
// label is fully consumed) and emits the combined node, returning its
// subtree hull vector.
func (m *merger) mergeInto(base, extra edge) (Ptr, depthHull, error) {
	var bn Node
	if err := base.f.ReadNodeInto(base.ptr, &bn); err != nil {
		return NilPtr, emptyDepthHull, err
	}
	if bn.Leaf {
		// extra extends strictly below a leaf: impossible with per-sequence
		// terminators unless the sequence sets overlap.
		return NilPtr, emptyDepthHull, fmt.Errorf("disktree: edge extends below a leaf (overlapping sequence sets?)")
	}
	sym := extra.firstSym(m.store)
	out := make([]ChildRef, 0, len(bn.Children)+1)
	below := emptyDepthHull
	addEntry := func(s Symbol, ptr Ptr, h depthHull) {
		out = append(out, hullRef(ChildRef{Sym: s, Ptr: ptr}, h))
		below = below.union(h)
	}
	merged := false
	for _, c := range bn.Children {
		switch {
		case c.Sym == sym:
			ce, err := m.childEdge(base.f, c)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			ptr, chHull, err := m.mergeEdge(ce, extra)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			addEntry(sym, ptr, chHull)
			merged = true
		case !merged && c.Sym > sym:
			ptr, exHull, err := m.copySubtree(extra)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			addEntry(sym, ptr, exHull)
			merged = true
			fallthrough
		default:
			ce, err := m.childEdge(base.f, c)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			ptr, chHull, err := m.copySubtree(ce)
			if err != nil {
				return NilPtr, emptyDepthHull, err
			}
			addEntry(c.Sym, ptr, chHull)
		}
	}
	if !merged {
		ptr, exHull, err := m.copySubtree(extra)
		if err != nil {
			return NilPtr, emptyDepthHull, err
		}
		addEntry(sym, ptr, exHull)
	}
	ptr, err := m.emit(&Node{
		LabelSeq: base.seq, LabelStart: base.start, LabelLen: base.length,
		Label: base.syms, Children: out,
	})
	return ptr, m.prependEdge(base, below), err
}

// BuildOptions controls the disk-based construction pipeline.
type BuildOptions struct {
	// Sparse selects the sparse suffix tree (run-head suffixes only).
	Sparse bool
	// MinSuffixLen, when > 1, omits suffixes shorter than this — the
	// conclusion-section length filter for queries with a known minimum
	// answer length.
	MinSuffixLen int
	// BatchSize is how many sequences are built into each initial in-memory
	// tree before it is spilled to disk. Defaults to 64.
	BatchSize int
	// PoolPages bounds each buffer pool during merging. Defaults to 256
	// (1 MiB per pool).
	PoolPages int
	// Layout selects the node record format (reference by default; inline
	// is the paper's storage model).
	Layout Layout
	// Encoding selects the record serialization (v1 fixed-width by default;
	// v2 compact varints).
	Encoding Encoding
	// Stats, when non-nil, receives construction statistics.
	Stats *BuildStats
}

// BuildStats describes one disk-construction run.
type BuildStats struct {
	// Batches is the number of initial in-memory trees spilled to disk.
	Batches int
	// MergeRounds is the number of pairwise merge rounds.
	MergeRounds int
	// Merges is the total number of binary disk merges performed.
	Merges int
	// Elapsed is the wall-clock construction time.
	Elapsed time.Duration
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 256
	}
	if o.Encoding == 0 {
		o.Encoding = EncodingV1
	}
	return o
}

// Build constructs the disk-based suffix tree of the given sequences at
// outPath: in-memory trees for small batches are spilled to disk, then
// merged pairwise in rounds of increasing size — the paper's "series of
// binary merges of suffix trees of increasing size". Temp files live next
// to outPath and are removed as they are consumed.
func Build(store *suffixtree.TextStore, seqs []int, outPath string, opts BuildOptions) (*File, error) {
	opts = opts.withDefaults()
	started := time.Now()
	var stats BuildStats
	defer func() {
		if opts.Stats != nil {
			stats.Elapsed = time.Since(started)
			*opts.Stats = stats
		}
	}()
	dir := filepath.Dir(outPath)

	// Phase 1: spill batch trees.
	var paths []string
	cleanup := func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}
	for start := 0; start < len(seqs); start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > len(seqs) {
			end = len(seqs)
		}
		t := suffixtree.BuildMergedFiltered(store, seqs[start:end], opts.Sparse, opts.MinSuffixLen)
		path := filepath.Join(dir, fmt.Sprintf(".twtree-batch-%d.tmp", len(paths)))
		f, err := CreateEncoded(path, t, opts.PoolPages, opts.Layout, opts.Encoding)
		if err != nil {
			cleanup()
			return nil, err
		}
		// A failed close means the batch never fully flushed; merging a
		// truncated batch would silently drop suffixes from the index.
		if err := f.Close(); err != nil {
			cleanup()
			return nil, err
		}
		paths = append(paths, path)
	}
	stats.Batches = len(paths)
	if len(paths) == 0 {
		// Empty database: a root-only tree.
		t := &suffixtree.Tree{
			Store: store, Root: &suffixtree.Node{},
			Sparse: opts.Sparse, MinSuffixLen: opts.MinSuffixLen,
		}
		return CreateEncoded(outPath, t, opts.PoolPages, opts.Layout, opts.Encoding)
	}

	// Phase 2: rounds of pairwise disk merges.
	gen := 0
	for len(paths) > 1 {
		var next []string
		for i := 0; i+1 < len(paths); i += 2 {
			out := filepath.Join(dir, fmt.Sprintf(".twtree-merge-%d-%d.tmp", gen, i/2))
			f, err := MergeFiles(store, paths[i], paths[i+1], out, opts.PoolPages)
			if err != nil {
				paths = append(paths, next...) // clean finished outputs too
				cleanup()
				return nil, err
			}
			if err := f.Close(); err != nil {
				paths = append(append(paths, next...), out)
				cleanup()
				return nil, err
			}
			os.Remove(paths[i])
			os.Remove(paths[i+1])
			next = append(next, out)
			stats.Merges++
		}
		if len(paths)%2 == 1 {
			next = append(next, paths[len(paths)-1])
		}
		paths = next
		gen++
	}
	stats.MergeRounds = gen

	if err := os.Rename(paths[0], outPath); err != nil {
		cleanup()
		return nil, err
	}
	return Open(outPath, opts.PoolPages, false)
}
