package disktree

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// edge is a (possibly trimmed) edge into a source tree during a merge: the
// node at ptr in file f, with the label overridden by (seq, start, length)
// for reference-layout trees or by syms for inline-layout trees.
type edge struct {
	f                  *File
	ptr                Ptr
	seq, start, length int32
	syms               []Symbol // inline layout only; len(syms) == length
}

// sym reads label symbol i of the (trimmed) edge.
func (e edge) sym(store *suffixtree.TextStore, i int32) Symbol {
	if e.syms != nil {
		return e.syms[i]
	}
	return store.Sym(int(e.seq), int(e.start+i))
}

// trim drops the first l label symbols.
func (e *edge) trim(l int32) {
	e.start += l
	e.length -= l
	if e.syms != nil {
		e.syms = e.syms[l:]
	}
}

func (e edge) firstSym(store *suffixtree.TextStore) Symbol {
	return e.sym(store, 0)
}

// merger merges two disk trees into a third with memory bounded by the
// three buffer pools plus a recursion stack proportional to tree depth.
type merger struct {
	store     *suffixtree.TextStore
	out       *File
	app       *appender
	layout    Layout
	enc       Encoding
	scratch   []byte
	nodes     uint64
	leaves    uint64
	labelSyms uint64
}

// MergeFiles merges the trees in aPath and bPath (over the same text store,
// disjoint sequence sets) into a new tree file at outPath — the paper's
// disk-based binary merge. poolPages bounds each file's buffer pool.
func MergeFiles(store *suffixtree.TextStore, aPath, bPath, outPath string, poolPages int) (*File, error) {
	a, err := Open(aPath, poolPages, true)
	if err != nil {
		return nil, fmt.Errorf("disktree: opening %s: %w", aPath, err)
	}
	defer a.Close()
	b, err := Open(bPath, poolPages, true)
	if err != nil {
		return nil, fmt.Errorf("disktree: opening %s: %w", bPath, err)
	}
	defer b.Close()
	if a.Sparse() != b.Sparse() {
		return nil, fmt.Errorf("disktree: merging sparse with dense tree")
	}
	if a.MinSuffixLen() != b.MinSuffixLen() {
		return nil, fmt.Errorf("disktree: merging trees with different length filters (%d vs %d)",
			a.MinSuffixLen(), b.MinSuffixLen())
	}
	if a.Layout() != b.Layout() {
		return nil, fmt.Errorf("disktree: merging %s with %s layout", a.Layout(), b.Layout())
	}
	if a.Encoding() != b.Encoding() {
		return nil, fmt.Errorf("disktree: merging %s with %s encoding", a.Encoding(), b.Encoding())
	}

	pf, err := storage.CreateFile(outPath)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewPool(pf, poolPages)
	if err != nil {
		pf.Close()
		return nil, err
	}
	out := &File{pf: pf, src: pool, pool: pool, meta: meta{
		sparse: a.Sparse(), minSuffixLen: a.meta.minSuffixLen, layout: a.Layout(), enc: a.Encoding(),
	}}
	app, err := newAppender(pool)
	if err != nil {
		pf.Close()
		return nil, err
	}
	m := &merger{store: store, out: out, app: app, layout: a.Layout(), enc: a.Encoding()}

	rootPtr, err := m.mergeRoots(a, b)
	app.close()
	if err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	out.meta.root = rootPtr
	out.meta.nodes = m.nodes
	out.meta.leaves = m.leaves
	out.meta.labelSyms = m.labelSyms
	if err := out.finish(); err != nil {
		pf.Close()
		os.Remove(outPath)
		return nil, err
	}
	return out, nil
}

// emit writes a node record and returns its offset.
func (m *merger) emit(n *Node) (Ptr, error) {
	m.nodes++
	m.labelSyms += uint64(n.LabelLen)
	if n.Leaf {
		m.leaves++
	}
	ptr := m.app.offset()
	m.scratch = encodeNode(m.scratch[:0], n, m.layout, m.enc)
	if err := m.app.write(m.scratch); err != nil {
		return NilPtr, err
	}
	return ptr, nil
}

// copySubtree copies the subtree at e.ptr into the output, with e's
// (possibly trimmed) label on the top edge. Children are copied with their
// stored labels.
func (m *merger) copySubtree(e edge) (Ptr, error) {
	var n Node
	if err := e.f.ReadNodeInto(e.ptr, &n); err != nil {
		return NilPtr, err
	}
	out := Node{
		LabelSeq:   e.seq,
		LabelStart: e.start,
		LabelLen:   e.length,
		Label:      e.syms,
		Leaf:       n.Leaf,
		Pos:        n.Pos,
		RunLen:     n.RunLen,
	}
	if n.Leaf && m.layout == LayoutInline {
		out.LabelSeq = n.LabelSeq // the suffix's owning sequence
	}
	if !n.Leaf {
		out.Children = make([]ChildRef, len(n.Children))
		for i, c := range n.Children {
			childEdge, err := m.childEdge(e.f, c)
			if err != nil {
				return NilPtr, err
			}
			ptr, err := m.copySubtree(childEdge)
			if err != nil {
				return NilPtr, err
			}
			out.Children[i] = ChildRef{Sym: c.Sym, Ptr: ptr}
		}
	}
	return m.emit(&out)
}

// childEdge builds the untrimmed edge of a child reference.
func (m *merger) childEdge(f *File, c ChildRef) (edge, error) {
	var n Node
	if err := f.ReadNodeInto(c.Ptr, &n); err != nil {
		return edge{}, err
	}
	e := edge{f: f, ptr: c.Ptr, seq: n.LabelSeq, start: n.LabelStart, length: n.LabelLen}
	if f.Layout() == LayoutInline {
		// n is a fresh local Node, so its Label slice is not shared.
		e.syms = n.Label
	}
	return e, nil
}

// mergeRoots zips the two root child tables and emits the new root.
func (m *merger) mergeRoots(a, b *File) (Ptr, error) {
	var an, bn Node
	if err := a.ReadNodeInto(a.Root(), &an); err != nil {
		return NilPtr, err
	}
	if err := b.ReadNodeInto(b.Root(), &bn); err != nil {
		return NilPtr, err
	}
	children, err := m.zipChildren(a, an.Children, b, bn.Children)
	if err != nil {
		return NilPtr, err
	}
	return m.emit(&Node{Children: children})
}

// zipChildren merges two sorted child tables, recursing on equal symbols.
func (m *merger) zipChildren(aF *File, as []ChildRef, bF *File, bs []ChildRef) ([]ChildRef, error) {
	out := make([]ChildRef, 0, len(as)+len(bs))
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i].Sym < bs[j].Sym:
			e, err := m.childEdge(aF, as[i])
			if err != nil {
				return nil, err
			}
			ptr, err := m.copySubtree(e)
			if err != nil {
				return nil, err
			}
			out = append(out, ChildRef{Sym: as[i].Sym, Ptr: ptr})
			i++
		case as[i].Sym > bs[j].Sym:
			e, err := m.childEdge(bF, bs[j])
			if err != nil {
				return nil, err
			}
			ptr, err := m.copySubtree(e)
			if err != nil {
				return nil, err
			}
			out = append(out, ChildRef{Sym: bs[j].Sym, Ptr: ptr})
			j++
		default:
			ae, err := m.childEdge(aF, as[i])
			if err != nil {
				return nil, err
			}
			be, err := m.childEdge(bF, bs[j])
			if err != nil {
				return nil, err
			}
			ptr, err := m.mergeEdge(ae, be)
			if err != nil {
				return nil, err
			}
			out = append(out, ChildRef{Sym: as[i].Sym, Ptr: ptr})
			i++
			j++
		}
	}
	for ; i < len(as); i++ {
		e, err := m.childEdge(aF, as[i])
		if err != nil {
			return nil, err
		}
		ptr, err := m.copySubtree(e)
		if err != nil {
			return nil, err
		}
		out = append(out, ChildRef{Sym: as[i].Sym, Ptr: ptr})
	}
	for ; j < len(bs); j++ {
		e, err := m.childEdge(bF, bs[j])
		if err != nil {
			return nil, err
		}
		ptr, err := m.copySubtree(e)
		if err != nil {
			return nil, err
		}
		out = append(out, ChildRef{Sym: bs[j].Sym, Ptr: ptr})
	}
	return out, nil
}

// mergeEdge merges two edges that start with the same symbol.
func (m *merger) mergeEdge(a, b edge) (Ptr, error) {
	// Common label prefix length.
	maxL := a.length
	if b.length < maxL {
		maxL = b.length
	}
	l := int32(1)
	for l < maxL && a.sym(m.store, l) == b.sym(m.store, l) {
		l++
	}

	switch {
	case l == a.length && l == b.length:
		// Same full label: merge the two nodes' child tables.
		var an, bn Node
		if err := a.f.ReadNodeInto(a.ptr, &an); err != nil {
			return NilPtr, err
		}
		if err := b.f.ReadNodeInto(b.ptr, &bn); err != nil {
			return NilPtr, err
		}
		if an.Leaf || bn.Leaf {
			return NilPtr, fmt.Errorf("disktree: leaf collision during merge (overlapping sequence sets?)")
		}
		children, err := m.zipChildren(a.f, an.Children, b.f, bn.Children)
		if err != nil {
			return NilPtr, err
		}
		return m.emit(&Node{
			LabelSeq: a.seq, LabelStart: a.start, LabelLen: a.length,
			Label: a.syms, Children: children,
		})

	case l == a.length:
		// b's label extends past a's: push the trimmed b edge into a's node.
		b.trim(l)
		return m.mergeInto(a, b)

	case l == b.length:
		a.trim(l)
		return m.mergeInto(b, a)

	default:
		// Labels diverge inside both: new internal node with the common
		// prefix and the two trimmed subtrees as children.
		prefixSeq, prefixStart := a.seq, a.start
		var prefixSyms []Symbol
		if a.syms != nil {
			prefixSyms = a.syms[:l]
		}
		a.trim(l)
		b.trim(l)
		aPtr, err := m.copySubtree(a)
		if err != nil {
			return NilPtr, err
		}
		bPtr, err := m.copySubtree(b)
		if err != nil {
			return NilPtr, err
		}
		ca := ChildRef{Sym: a.firstSym(m.store), Ptr: aPtr}
		cb := ChildRef{Sym: b.firstSym(m.store), Ptr: bPtr}
		if cb.Sym < ca.Sym {
			ca, cb = cb, ca
		}
		return m.emit(&Node{
			LabelSeq:   prefixSeq,
			LabelStart: prefixStart,
			LabelLen:   l,
			Label:      prefixSyms,
			Children:   []ChildRef{ca, cb},
		})
	}
}

// mergeInto merges the trimmed edge extra into the node at base (whose
// label is fully consumed) and emits the combined node.
func (m *merger) mergeInto(base, extra edge) (Ptr, error) {
	var bn Node
	if err := base.f.ReadNodeInto(base.ptr, &bn); err != nil {
		return NilPtr, err
	}
	if bn.Leaf {
		// extra extends strictly below a leaf: impossible with per-sequence
		// terminators unless the sequence sets overlap.
		return NilPtr, fmt.Errorf("disktree: edge extends below a leaf (overlapping sequence sets?)")
	}
	sym := extra.firstSym(m.store)
	out := make([]ChildRef, 0, len(bn.Children)+1)
	merged := false
	for _, c := range bn.Children {
		switch {
		case c.Sym == sym:
			ce, err := m.childEdge(base.f, c)
			if err != nil {
				return NilPtr, err
			}
			ptr, err := m.mergeEdge(ce, extra)
			if err != nil {
				return NilPtr, err
			}
			out = append(out, ChildRef{Sym: sym, Ptr: ptr})
			merged = true
		case !merged && c.Sym > sym:
			ptr, err := m.copySubtree(extra)
			if err != nil {
				return NilPtr, err
			}
			out = append(out, ChildRef{Sym: sym, Ptr: ptr})
			merged = true
			fallthrough
		default:
			ce, err := m.childEdge(base.f, c)
			if err != nil {
				return NilPtr, err
			}
			ptr, err := m.copySubtree(ce)
			if err != nil {
				return NilPtr, err
			}
			out = append(out, ChildRef{Sym: c.Sym, Ptr: ptr})
		}
	}
	if !merged {
		ptr, err := m.copySubtree(extra)
		if err != nil {
			return NilPtr, err
		}
		out = append(out, ChildRef{Sym: sym, Ptr: ptr})
	}
	return m.emit(&Node{
		LabelSeq: base.seq, LabelStart: base.start, LabelLen: base.length,
		Label: base.syms, Children: out,
	})
}

// BuildOptions controls the disk-based construction pipeline.
type BuildOptions struct {
	// Sparse selects the sparse suffix tree (run-head suffixes only).
	Sparse bool
	// MinSuffixLen, when > 1, omits suffixes shorter than this — the
	// conclusion-section length filter for queries with a known minimum
	// answer length.
	MinSuffixLen int
	// BatchSize is how many sequences are built into each initial in-memory
	// tree before it is spilled to disk. Defaults to 64.
	BatchSize int
	// PoolPages bounds each buffer pool during merging. Defaults to 256
	// (1 MiB per pool).
	PoolPages int
	// Layout selects the node record format (reference by default; inline
	// is the paper's storage model).
	Layout Layout
	// Encoding selects the record serialization (v1 fixed-width by default;
	// v2 compact varints).
	Encoding Encoding
	// Stats, when non-nil, receives construction statistics.
	Stats *BuildStats
}

// BuildStats describes one disk-construction run.
type BuildStats struct {
	// Batches is the number of initial in-memory trees spilled to disk.
	Batches int
	// MergeRounds is the number of pairwise merge rounds.
	MergeRounds int
	// Merges is the total number of binary disk merges performed.
	Merges int
	// Elapsed is the wall-clock construction time.
	Elapsed time.Duration
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 256
	}
	if o.Encoding == 0 {
		o.Encoding = EncodingV1
	}
	return o
}

// Build constructs the disk-based suffix tree of the given sequences at
// outPath: in-memory trees for small batches are spilled to disk, then
// merged pairwise in rounds of increasing size — the paper's "series of
// binary merges of suffix trees of increasing size". Temp files live next
// to outPath and are removed as they are consumed.
func Build(store *suffixtree.TextStore, seqs []int, outPath string, opts BuildOptions) (*File, error) {
	opts = opts.withDefaults()
	started := time.Now()
	var stats BuildStats
	defer func() {
		if opts.Stats != nil {
			stats.Elapsed = time.Since(started)
			*opts.Stats = stats
		}
	}()
	dir := filepath.Dir(outPath)

	// Phase 1: spill batch trees.
	var paths []string
	cleanup := func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}
	for start := 0; start < len(seqs); start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > len(seqs) {
			end = len(seqs)
		}
		t := suffixtree.BuildMergedFiltered(store, seqs[start:end], opts.Sparse, opts.MinSuffixLen)
		path := filepath.Join(dir, fmt.Sprintf(".twtree-batch-%d.tmp", len(paths)))
		f, err := CreateEncoded(path, t, opts.PoolPages, opts.Layout, opts.Encoding)
		if err != nil {
			cleanup()
			return nil, err
		}
		// A failed close means the batch never fully flushed; merging a
		// truncated batch would silently drop suffixes from the index.
		if err := f.Close(); err != nil {
			cleanup()
			return nil, err
		}
		paths = append(paths, path)
	}
	stats.Batches = len(paths)
	if len(paths) == 0 {
		// Empty database: a root-only tree.
		t := &suffixtree.Tree{
			Store: store, Root: &suffixtree.Node{},
			Sparse: opts.Sparse, MinSuffixLen: opts.MinSuffixLen,
		}
		return CreateEncoded(outPath, t, opts.PoolPages, opts.Layout, opts.Encoding)
	}

	// Phase 2: rounds of pairwise disk merges.
	gen := 0
	for len(paths) > 1 {
		var next []string
		for i := 0; i+1 < len(paths); i += 2 {
			out := filepath.Join(dir, fmt.Sprintf(".twtree-merge-%d-%d.tmp", gen, i/2))
			f, err := MergeFiles(store, paths[i], paths[i+1], out, opts.PoolPages)
			if err != nil {
				paths = append(paths, next...) // clean finished outputs too
				cleanup()
				return nil, err
			}
			if err := f.Close(); err != nil {
				paths = append(append(paths, next...), out)
				cleanup()
				return nil, err
			}
			os.Remove(paths[i])
			os.Remove(paths[i+1])
			next = append(next, out)
			stats.Merges++
		}
		if len(paths)%2 == 1 {
			next = append(next, paths[len(paths)-1])
		}
		paths = next
		gen++
	}
	stats.MergeRounds = gen

	if err := os.Rename(paths[0], outPath); err != nil {
		cleanup()
		return nil, err
	}
	return Open(outPath, opts.PoolPages, false)
}
