package disktree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/suffixtree"
)

func benchStore(b *testing.B, nSeq, seqLen, alphabet int) *suffixtree.TextStore {
	b.Helper()
	rng := rand.New(rand.NewSource(88))
	ts := suffixtree.NewTextStore()
	for i := 0; i < nSeq; i++ {
		text := make([]Symbol, seqLen)
		for j := range text {
			text[j] = Symbol(rng.Intn(alphabet))
		}
		ts.Add(text)
	}
	return ts
}

func BenchmarkBuildPipeline(b *testing.B) {
	ts := benchStore(b, 64, 232, 12)
	seqs := allSeqs(ts)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Build(ts, seqs, filepath.Join(dir, "bench.twt"), BuildOptions{BatchSize: 16, PoolPages: 64})
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkMergeFiles(b *testing.B) {
	ts := benchStore(b, 32, 232, 12)
	all := allSeqs(ts)
	dir := b.TempDir()
	aPath := filepath.Join(dir, "a.twt")
	bPath := filepath.Join(dir, "b.twt")
	af, err := Create(aPath, suffixtree.BuildMerged(ts, all[:16], false), 64)
	if err != nil {
		b.Fatal(err)
	}
	af.Close()
	bf, err := Create(bPath, suffixtree.BuildMerged(ts, all[16:], false), 64)
	if err != nil {
		b.Fatal(err)
	}
	bf.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := MergeFiles(ts, aPath, bPath, filepath.Join(dir, "out.twt"), 64)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkReadNode(b *testing.B) {
	ts := benchStore(b, 16, 232, 12)
	f, err := Create(filepath.Join(b.TempDir(), "rn.twt"), suffixtree.BuildMerged(ts, allSeqs(ts), false), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	root, err := f.ReadNode(f.Root())
	if err != nil {
		b.Fatal(err)
	}
	var n Node
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.ReadNodeInto(root.Children[i%len(root.Children)].Ptr, &n); err != nil {
			b.Fatal(err)
		}
	}
}
