package disktree

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"twsearch/internal/suffixtree"
)

// Frozen digests of a deterministic tree serialized in each layout. A
// change here means the on-disk format changed: bump these constants ONLY
// together with a deliberate, documented format revision — otherwise the
// change is an accidental compatibility break (existing index files would
// stop opening correctly).
const (
	refLayoutSHA256    = "fe928d2de7170aa18ea65bd9fa71dfca7d9bce00bf021e6e2ca4b19e1c99340d"
	inlineLayoutSHA256 = "111a1d3f22536ab5e68cbc9daee5556191cfa8c5ec03b7a720ab2e43e1d1d7cc"
	// Encoding v2 (compact varint records; meta blob grows the encoding
	// byte). Frozen separately — the v1 digests above must never move when
	// v2 changes, and vice versa.
	refLayoutV2SHA256    = "024bbcd25960fd2fe96a5f72fb0bf6f39982c48709b4ac3a077231274993219f"
	inlineLayoutV2SHA256 = "59cde46f546d5a64dcea956f9a1acab76387679f36906d1240d6db0f36a00de8"
	// Encoding v3 (v2 plus per-child segmented subtree envelopes). The
	// digests absorb the hull geometry (HullSegs, HullSegLen): changing
	// either is a format revision even though the codec shape is unchanged.
	refLayoutV3SHA256    = "00931d78b2d9efebd38a17a78d501b28cafa7da8b0e80462ad9f964508a62faf"
	inlineLayoutV3SHA256 = "6d9c7a0fcbbe89cb99efe2e7a5ab1a74c681a98d4c6fba143d18aaf677eb6b20"
)

func formatFixtureStore() *suffixtree.TextStore {
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
	ts.Add([]Symbol{2, 7, 1, 8, 2, 8, 1, 8, 2, 8})
	ts.Add([]Symbol{1, 1, 2, 2, 3, 3})
	return ts
}

func TestFormatStability(t *testing.T) {
	ts := formatFixtureStore()
	tree := suffixtree.BuildNaive(ts, []int{0, 1, 2}, false)
	for _, tc := range []struct {
		layout Layout
		enc    Encoding
		want   string
	}{
		{LayoutReference, EncodingV1, refLayoutSHA256},
		{LayoutInline, EncodingV1, inlineLayoutSHA256},
		{LayoutReference, EncodingV2, refLayoutV2SHA256},
		{LayoutInline, EncodingV2, inlineLayoutV2SHA256},
		{LayoutReference, EncodingV3, refLayoutV3SHA256},
		{LayoutInline, EncodingV3, inlineLayoutV3SHA256},
	} {
		path := filepath.Join(t.TempDir(), "fixture.twt")
		f, err := CreateEncoded(path, tree, 16, tc.layout, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(raw)
		got := hex.EncodeToString(sum[:])
		if got == tc.want {
			continue
		}
		if tc.want == "" {
			t.Logf("%s layout %s digest: %s", tc.layout, tc.enc, got)
			t.Fatal("fill in the frozen digest above")
		}
		t.Errorf("%s layout %s serialized differently: %s (frozen: %s) — intentional format change?",
			tc.layout, tc.enc, got, tc.want)
	}
}
