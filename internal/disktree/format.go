// Package disktree implements the disk-based suffix tree of Section 4.1:
// tree nodes serialized into a paged file, read back through an LRU buffer
// pool, and — the paper's central construction idea, after Bieganski et
// al. — binary merges of two disk-resident trees into a third with bounded
// main memory.
//
// Node records live at arbitrary byte offsets (records may cross page
// boundaries), so a node with thousands of children — the root of the
// uncategorized tree ST — is representable. Children are written before
// their parent (post-order), which lets a single append pass serialize any
// tree: by the time a parent record is emitted every child offset is known.
package disktree

import (
	"encoding/binary"
	"fmt"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// Symbol aliases the tree symbol type.
type Symbol = suffixtree.Symbol

// Ptr is the absolute byte offset of a node record inside the tree file.
// Offsets start at storage.PageSize (page 0 is the meta page).
type Ptr uint64

// NilPtr is the absent node reference.
const NilPtr Ptr = 0

// Layout selects how edge labels are stored on disk.
type Layout uint8

const (
	// LayoutReference stores labels as (seq, start, len) references into
	// the sequence store — compact, the default.
	LayoutReference Layout = 0
	// LayoutInline copies the label symbols into the node record — the
	// paper's storage model, whose sizes Table 1 reports. Inline trees are
	// self-contained for traversal but much larger when categorization is
	// fine-grained (that size growth is the paper's Table 1 story).
	LayoutInline Layout = 1
)

func (l Layout) String() string {
	if l == LayoutInline {
		return "inline"
	}
	return "reference"
}

// Node record layout (little endian).
//
// Reference layout:
//
//	labelSeq   uint32   sequence the edge label references
//	labelStart uint32   first symbol position (position len(text) = terminator)
//	labelLen   uint32   label length
//	flags      uint8    bit0: leaf
//	leaf:      seq uint32 (suffix owner), pos uint32, runLen uint32
//	internal:  childCount uint32, childCount × { sym int32, ptr uint64 }
//
// Inline layout replaces the first 8 header bytes:
//
//	labelLen   uint32
//	label      [labelLen]int32
//	flags      uint8
//	leaf/internal tails as above (leaf additionally stores seq explicitly,
//	since there is no labelSeq to derive it from)
const (
	nodeHeaderSize = 13
	leafBodySize   = 8
	childEntrySize = 12
	flagLeaf       = 1
)

// ChildRef is one entry of an internal node's child table: the first symbol
// of the child's edge label and the child's record offset. Entries are
// sorted by Sym.
type ChildRef struct {
	Sym Symbol
	Ptr Ptr
}

// Node is a decoded node record. For reference-layout files the label is
// (LabelSeq, LabelStart, LabelLen) into the text store and Label is nil;
// for inline-layout files Label holds the symbols and LabelSeq is
// meaningful only on leaves (the suffix's owning sequence).
type Node struct {
	LabelSeq   int32
	LabelStart int32
	LabelLen   int32
	Label      []Symbol // inline layout only
	Leaf       bool
	Pos        int32 // leaf only: suffix start position
	RunLen     int32 // leaf only: equal-symbol run length at Pos
	Children   []ChildRef

	// scratch is ReadNodeInto's decode buffer, kept on the node so a
	// reused scratch node decodes without allocating.
	scratch []byte
}

// scratchBuf returns n.scratch grown to at least size bytes.
func (n *Node) scratchBuf(size int) []byte {
	if cap(n.scratch) < size {
		n.scratch = make([]byte, size)
	}
	return n.scratch[:size]
}

// encodeNode appends n's record bytes to buf in the given layout and
// returns the extended slice. For LayoutInline, n.Label must be filled.
func encodeNode(buf []byte, n *Node, layout Layout) []byte {
	if layout == LayoutInline {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(n.Label)))
		buf = append(buf, l[:]...)
		for _, s := range n.Label {
			var sb [4]byte
			binary.LittleEndian.PutUint32(sb[:], uint32(s))
			buf = append(buf, sb[:]...)
		}
	} else {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(n.LabelSeq))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(n.LabelStart))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(n.LabelLen))
		buf = append(buf, hdr[:]...)
	}
	if n.Leaf {
		buf = append(buf, flagLeaf)
		if layout == LayoutInline {
			var sb [4]byte
			binary.LittleEndian.PutUint32(sb[:], uint32(n.LabelSeq))
			buf = append(buf, sb[:]...)
		}
		var body [leafBodySize]byte
		binary.LittleEndian.PutUint32(body[0:], uint32(n.Pos))
		binary.LittleEndian.PutUint32(body[4:], uint32(n.RunLen))
		return append(buf, body[:]...)
	}
	buf = append(buf, 0)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(n.Children)))
	buf = append(buf, cnt[:]...)
	for _, c := range n.Children {
		var ent [childEntrySize]byte
		binary.LittleEndian.PutUint32(ent[0:], uint32(c.Sym))
		binary.LittleEndian.PutUint64(ent[4:], uint64(c.Ptr))
		buf = append(buf, ent[:]...)
	}
	return buf
}

// Meta blob layout stored in the page file's meta page.
const metaMagic = "TWDTREE1"

type meta struct {
	root   Ptr
	nodes  uint64
	leaves uint64
	// labelSyms is the total expanded edge-label length over all nodes. An
	// implementation that stored labels inline (like the paper's) would pay
	// for these symbols; we store (seq, start, len) references instead, so
	// this counter is what lets the benchmark harness report the paper's
	// storage model next to the actual file size.
	labelSyms uint64
	sparse    bool
	// minSuffixLen is the conclusion-section length filter the tree was
	// built with (0 = all suffixes stored).
	minSuffixLen uint32
	// layout selects the node record format.
	layout Layout
}

func encodeMeta(m meta) []byte {
	buf := make([]byte, len(metaMagic)+8+8+8+8+1+4+1)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.root))
	binary.LittleEndian.PutUint64(buf[16:], m.nodes)
	binary.LittleEndian.PutUint64(buf[24:], m.leaves)
	binary.LittleEndian.PutUint64(buf[32:], m.labelSyms)
	if m.sparse {
		buf[40] = 1
	}
	binary.LittleEndian.PutUint32(buf[41:], m.minSuffixLen)
	buf[45] = byte(m.layout)
	return buf
}

func decodeMeta(buf []byte) (meta, error) {
	if len(buf) != len(metaMagic)+38 || string(buf[:8]) != metaMagic {
		return meta{}, fmt.Errorf("disktree: bad meta blob (%d bytes)", len(buf))
	}
	if buf[45] > 1 {
		return meta{}, fmt.Errorf("disktree: unknown layout %d", buf[45])
	}
	return meta{
		root:         Ptr(binary.LittleEndian.Uint64(buf[8:])),
		nodes:        binary.LittleEndian.Uint64(buf[16:]),
		leaves:       binary.LittleEndian.Uint64(buf[24:]),
		labelSyms:    binary.LittleEndian.Uint64(buf[32:]),
		sparse:       buf[40] == 1,
		minSuffixLen: binary.LittleEndian.Uint32(buf[41:]),
		layout:       Layout(buf[45]),
	}, nil
}

// appender writes a byte stream into consecutive pages of a pool-backed
// file, returning absolute offsets.
type appender struct {
	pool  *storage.Pool
	frame *storage.Frame
	used  int // bytes used in the current frame
}

func newAppender(pool *storage.Pool) (*appender, error) {
	fr, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	fr.MarkDirty()
	return &appender{pool: pool, frame: fr}, nil
}

// offset returns the absolute byte offset the next write lands at.
func (a *appender) offset() Ptr {
	return Ptr(uint64(a.frame.ID())*storage.PageSize + uint64(a.used))
}

func (a *appender) write(b []byte) error {
	for len(b) > 0 {
		if a.used == storage.PageSize {
			a.pool.Release(a.frame)
			fr, err := a.pool.Alloc()
			if err != nil {
				a.frame = nil
				return err
			}
			fr.MarkDirty()
			a.frame = fr
			a.used = 0
		}
		n := copy(a.frame.Data()[a.used:], b)
		a.used += n
		b = b[n:]
	}
	return nil
}

func (a *appender) close() {
	if a.frame != nil {
		a.pool.Release(a.frame)
		a.frame = nil
	}
}
