// Package disktree implements the disk-based suffix tree of Section 4.1:
// tree nodes serialized into a paged file, read back through an LRU buffer
// pool, and — the paper's central construction idea, after Bieganski et
// al. — binary merges of two disk-resident trees into a third with bounded
// main memory.
//
// Node records live at arbitrary byte offsets (records may cross page
// boundaries), so a node with thousands of children — the root of the
// uncategorized tree ST — is representable. Children are written before
// their parent (post-order), which lets a single append pass serialize any
// tree: by the time a parent record is emitted every child offset is known.
package disktree

import (
	"encoding/binary"
	"fmt"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// Symbol aliases the tree symbol type.
type Symbol = suffixtree.Symbol

// Ptr is the absolute byte offset of a node record inside the tree file.
// Offsets start at storage.PageSize (page 0 is the meta page).
type Ptr uint64

// NilPtr is the absent node reference.
const NilPtr Ptr = 0

// Layout selects how edge labels are stored on disk.
type Layout uint8

const (
	// LayoutReference stores labels as (seq, start, len) references into
	// the sequence store — compact, the default.
	LayoutReference Layout = 0
	// LayoutInline copies the label symbols into the node record — the
	// paper's storage model, whose sizes Table 1 reports. Inline trees are
	// self-contained for traversal but much larger when categorization is
	// fine-grained (that size growth is the paper's Table 1 story).
	LayoutInline Layout = 1
)

func (l Layout) String() string {
	if l == LayoutInline {
		return "inline"
	}
	return "reference"
}

// Encoding selects how node records are serialized. It is orthogonal to
// Layout: both layouts exist in both encodings.
type Encoding uint8

const (
	// EncodingV1 is the original fixed-width little-endian record format —
	// what every pre-v2 file holds, and what a zero Encoding value means.
	EncodingV1 Encoding = 1
	// EncodingV2 is the compact format: varint counts and labels, zigzag
	// deltas for the child table's symbols and pointers. Children are
	// written before parents at increasing offsets, so the pointer deltas
	// of a real file are small positive numbers that varint-encode in a
	// byte or two instead of eight.
	EncodingV2 Encoding = 2
	// EncodingV3 extends v2 with per-child subtree envelopes: each child
	// table entry additionally stores a segmented depth profile of the
	// child's subtree — HullSegs hulls, each bounding the non-terminator
	// symbols at HullSegLen consecutive relative depths (edge labels
	// included), covering the first HullHorizon rows below the child's
	// parent. Each segment is coded as zigzag(Lo) plus zigzag(Hi-Lo). The
	// search engine's lower-bound cascade charges each query column against
	// only the segments its warping band can reach, dismissing whole
	// subtrees before reading the child node. v1/v2 records are otherwise
	// unchanged.
	EncodingV3 Encoding = 3
)

func (e Encoding) String() string {
	switch e {
	case EncodingV3:
		return "v3"
	case EncodingV2:
		return "v2"
	}
	return "v1"
}

// ParseEncoding reads an encoding name from a flag ("" means the default,
// v1).
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "", "v1", "1":
		return EncodingV1, nil
	case "v2", "2":
		return EncodingV2, nil
	case "v3", "3":
		return EncodingV3, nil
	}
	return 0, fmt.Errorf("disktree: unknown encoding %q (want v1, v2 or v3)", s)
}

// Node record layout, encoding v1 (little endian, fixed width).
//
// Reference layout:
//
//	labelSeq   uint32   sequence the edge label references
//	labelStart uint32   first symbol position (position len(text) = terminator)
//	labelLen   uint32   label length
//	flags      uint8    bit0: leaf
//	leaf:      seq uint32 (suffix owner), pos uint32, runLen uint32
//	internal:  childCount uint32, childCount × { sym int32, ptr uint64 }
//
// Inline layout replaces the first 8 header bytes:
//
//	labelLen   uint32
//	label      [labelLen]int32
//	flags      uint8
//	leaf/internal tails as above (leaf additionally stores seq explicitly,
//	since there is no labelSeq to derive it from)
//
// Encoding v2 keeps the same field order but serializes integers as
// varints: signed fields (labelSeq, labelStart, labelLen, label symbols,
// leaf seq/pos/runLen) as zigzag varints, counts as uvarints, and the
// child table as delta pairs — each entry stores zigzag(sym − prevSym) and
// zigzag(ptr − prevPtr) with prev starting at zero, exploiting the sorted
// symbols and the post-order (strictly increasing) child offsets. The
// flags byte is unchanged. Any float payloads a future record grows must
// stay raw little-endian for bit-exactness; v2 compresses only integers.
const (
	nodeHeaderSize = 13
	leafBodySize   = 8
	childEntrySize = 12
	flagLeaf       = 1
)

// ChildRef is one entry of an internal node's child table: the first symbol
// of the child's edge label and the child's record offset. Entries are
// sorted by Sym.
type ChildRef struct {
	Sym Symbol
	Ptr Ptr
	// MinSym and MaxSym bound every non-terminator symbol within the first
	// HullHorizon rows of every path in the child's subtree — the edge
	// label's leading symbols plus everything below, cut off at the
	// horizon. They are the union of Seg, derived on decode rather than
	// stored. Persisted only by EncodingV3; v1/v2 decodes leave the hull
	// fields zero, so readers gate hull use on the file's encoding.
	// MaxSym < MinSym is the explicit empty hull (a subtree holding only
	// terminator symbols).
	MinSym, MaxSym Symbol
	// Seg is the subtree's segmented depth profile: Seg[s] bounds the
	// non-terminator symbols at relative depths s*HullSegLen ..
	// (s+1)*HullSegLen-1 below the child's parent (the child's own edge
	// label occupying the leading depths). A path shorter than a segment's
	// depth range contributes nothing to it, so an empty segment (Hi < Lo)
	// proves every path in the subtree ends above that segment — empties
	// always form a suffix of Seg. The profile is what lets a banded
	// search charge each query column against only the depths its warping
	// band can reach, instead of one hull that conflates a whole subtree's
	// near-track prefix with its divergent continuations.
	Seg [HullSegs]HullRange
}

// HullRange is one persisted segment hull: an inclusive symbol range, empty
// when Hi < Lo.
type HullRange struct{ Lo, Hi Symbol }

// Segmented-hull geometry: a stored child profile covers the symbols at
// relative depths 0..HullHorizon-1 below the child's parent, split into
// HullSegs segments of HullSegLen depths each. Readers that charge one gap
// per query column (the search engine's banded tail charge) must stop
// charging at columns whose band reaches past the horizon. The horizon
// comfortably exceeds |Q|+w for the workloads the engine targets; it exists
// to keep deep-suffix hulls from absorbing value range the DP could never
// reach, and the segmentation keeps a near-track subtree's prefix from
// widening the bound on its tail.
const (
	HullSegLen  = 2
	HullSegs    = 24
	HullHorizon = HullSegs * HullSegLen
)

// symHull accumulates the [lo, hi] symbol bound of a subtree while its
// records are written. The empty hull is hi < lo; users must start from
// emptyHull, not the zero value (which would claim symbol 0 is present).
type symHull struct{ lo, hi Symbol }

var emptyHull = symHull{lo: 0, hi: -1}

// depthHull is the bottom-up aggregation state of a horizon-limited hull
// profile: p[k] bounds the non-terminator symbols at relative depth exactly
// k over every path in the subtree (paths shorter than k contribute
// nothing). As with symHull, the zero value is wrong — start from
// emptyDepthHull.
type depthHull struct{ p [HullHorizon]symHull }

var emptyDepthHull = func() depthHull {
	var d depthHull
	for i := range d.p {
		d.p[i] = emptyHull
	}
	return d
}()

func (d depthHull) union(o depthHull) depthHull {
	for i := range d.p {
		d.p[i] = d.p[i].union(o.p[i])
	}
	return d
}

// prependLabel is the one step of bottom-up hull aggregation: the profile
// for a subtree entered over an edge of l label symbols (sym(i) reads the
// i'th) whose below-the-edge profile is below. Depths 0..l-1 are the
// label's own symbols; deeper slots splice in below's profile shifted by
// the label length. Terminators only occur at the end of leaf edges
// (nothing below them), so folding them as empty slots keeps the shift
// arithmetic exact. The loop is horizon-bounded, not label-bounded — long
// leaf edges cost O(HullHorizon), and their tail symbols stay out of the
// profile by design.
func prependLabel(l int32, sym func(int32) Symbol, below depthHull) depthHull {
	var out depthHull
	for k := int32(0); k < HullHorizon; k++ {
		if k < l {
			out.p[k] = emptyHull.add(sym(k))
		} else {
			out.p[k] = below.p[k-l]
		}
	}
	return out
}

func (h symHull) empty() bool { return h.hi < h.lo }

// add widens the hull with one symbol; terminators never enter a hull (the
// cascade compares hulls against query-value envelopes, and terminators
// carry no value).
func (h symHull) add(s Symbol) symHull {
	if suffixtree.IsTerminator(s) {
		return h
	}
	if h.empty() {
		return symHull{lo: s, hi: s}
	}
	if s < h.lo {
		h.lo = s
	}
	if s > h.hi {
		h.hi = s
	}
	return h
}

func (h symHull) union(o symHull) symHull {
	if o.empty() {
		return h
	}
	if h.empty() {
		return o
	}
	if o.lo < h.lo {
		h.lo = o.lo
	}
	if o.hi > h.hi {
		h.hi = o.hi
	}
	return h
}

// hullRef stamps a subtree's depth profile onto a child table entry: the
// persisted segments plus the derived overall hull.
func hullRef(c ChildRef, d depthHull) ChildRef {
	for s := 0; s < HullSegs; s++ {
		h := emptyHull
		for k := s * HullSegLen; k < (s+1)*HullSegLen; k++ {
			h = h.union(d.p[k])
		}
		c.Seg[s] = HullRange{Lo: h.lo, Hi: h.hi}
	}
	c.setOverall()
	return c
}

// setOverall derives MinSym/MaxSym as the union of the segment hulls — the
// same derivation the decoder applies, since the overall hull is not
// stored.
func (c *ChildRef) setOverall() {
	h := emptyHull
	for _, g := range c.Seg {
		h = h.union(symHull{lo: g.Lo, hi: g.Hi})
	}
	c.MinSym, c.MaxSym = h.lo, h.hi
}

// Node is a decoded node record. For reference-layout files the label is
// (LabelSeq, LabelStart, LabelLen) into the text store and Label is nil;
// for inline-layout files Label holds the symbols and LabelSeq is
// meaningful only on leaves (the suffix's owning sequence).
type Node struct {
	LabelSeq   int32
	LabelStart int32
	LabelLen   int32
	Label      []Symbol // inline layout only
	Leaf       bool
	Pos        int32 // leaf only: suffix start position
	RunLen     int32 // leaf only: equal-symbol run length at Pos
	Children   []ChildRef

	// cur is ReadNodeInto's page cursor, kept on the node so a reused
	// scratch node decodes without allocating. It holds borrowed page
	// views only for the duration of one decode.
	cur pageCursor
}

// encodeNode appends n's record bytes to buf in the given layout and
// encoding, returning the extended slice. For LayoutInline, n.Label must
// be filled.
func encodeNode(buf []byte, n *Node, layout Layout, enc Encoding) []byte {
	switch enc {
	case EncodingV3:
		return encodeNodeV3(buf, n, layout)
	case EncodingV2:
		return encodeNodeV2(buf, n, layout)
	}
	return encodeNodeV1(buf, n, layout)
}

// encodeNodeV1 is the fixed-width little-endian record encoder.
func encodeNodeV1(buf []byte, n *Node, layout Layout) []byte {
	if layout == LayoutInline {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(n.Label)))
		buf = append(buf, l[:]...)
		for _, s := range n.Label {
			var sb [4]byte
			binary.LittleEndian.PutUint32(sb[:], uint32(s))
			buf = append(buf, sb[:]...)
		}
	} else {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(n.LabelSeq))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(n.LabelStart))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(n.LabelLen))
		buf = append(buf, hdr[:]...)
	}
	if n.Leaf {
		buf = append(buf, flagLeaf)
		if layout == LayoutInline {
			var sb [4]byte
			binary.LittleEndian.PutUint32(sb[:], uint32(n.LabelSeq))
			buf = append(buf, sb[:]...)
		}
		var body [leafBodySize]byte
		binary.LittleEndian.PutUint32(body[0:], uint32(n.Pos))
		binary.LittleEndian.PutUint32(body[4:], uint32(n.RunLen))
		return append(buf, body[:]...)
	}
	buf = append(buf, 0)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(n.Children)))
	buf = append(buf, cnt[:]...)
	for _, c := range n.Children {
		var ent [childEntrySize]byte
		binary.LittleEndian.PutUint32(ent[0:], uint32(c.Sym))
		binary.LittleEndian.PutUint64(ent[4:], uint64(c.Ptr))
		buf = append(buf, ent[:]...)
	}
	return buf
}

// encodeNodeV2 is the compact varint record encoder. Deltas are computed
// with wrapping uint64 arithmetic, so the encode∘decode round trip is the
// identity for any Node, not just well-formed trees (FuzzNodeCodecV2 pins
// this).
func encodeNodeV2(buf []byte, n *Node, layout Layout) []byte {
	return encodeNodeCompact(buf, n, layout, false)
}

// encodeNodeV3 is the v2 compact encoder plus per-child envelope hulls
// (FuzzNodeCodecV3 pins the round trip).
func encodeNodeV3(buf []byte, n *Node, layout Layout) []byte {
	return encodeNodeCompact(buf, n, layout, true)
}

// encodeNodeCompact is the shared v2/v3 varint encoder; hulls selects the
// v3 child-entry envelope tail: HullSegs segment hulls per child, each as
// zigzag(Lo) plus zigzag(Hi-Lo). On a real file a span is a small
// non-negative number (or -1 for the empty segment), and the int64
// difference of two int32 fields is exact, so the round trip is the
// identity for any segment array; the overall MinSym/MaxSym hull is not
// written — the decoder re-derives it as the segments' union.
func encodeNodeCompact(buf []byte, n *Node, layout Layout, hulls bool) []byte {
	if layout == LayoutInline {
		buf = binary.AppendUvarint(buf, uint64(len(n.Label)))
		for _, s := range n.Label {
			buf = binary.AppendVarint(buf, int64(s))
		}
	} else {
		buf = binary.AppendVarint(buf, int64(n.LabelSeq))
		buf = binary.AppendVarint(buf, int64(n.LabelStart))
		buf = binary.AppendVarint(buf, int64(n.LabelLen))
	}
	if n.Leaf {
		buf = append(buf, flagLeaf)
		if layout == LayoutInline {
			buf = binary.AppendVarint(buf, int64(n.LabelSeq))
		}
		buf = binary.AppendVarint(buf, int64(n.Pos))
		return binary.AppendVarint(buf, int64(n.RunLen))
	}
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
	prevSym, prevPtr := int64(0), uint64(0)
	for _, c := range n.Children {
		buf = binary.AppendVarint(buf, int64(c.Sym)-prevSym)
		buf = binary.AppendVarint(buf, int64(uint64(c.Ptr)-prevPtr))
		prevSym, prevPtr = int64(c.Sym), uint64(c.Ptr)
		if hulls {
			for _, g := range c.Seg {
				buf = binary.AppendVarint(buf, int64(g.Lo))
				buf = binary.AppendVarint(buf, int64(g.Hi)-int64(g.Lo))
			}
		}
	}
	return buf
}

// Meta blob layout stored in the page file's meta page.
const metaMagic = "TWDTREE1"

type meta struct {
	root   Ptr
	nodes  uint64
	leaves uint64
	// labelSyms is the total expanded edge-label length over all nodes. An
	// implementation that stored labels inline (like the paper's) would pay
	// for these symbols; we store (seq, start, len) references instead, so
	// this counter is what lets the benchmark harness report the paper's
	// storage model next to the actual file size.
	labelSyms uint64
	sparse    bool
	// minSuffixLen is the conclusion-section length filter the tree was
	// built with (0 = all suffixes stored).
	minSuffixLen uint32
	// layout selects the node record format.
	layout Layout
	// enc is the record encoding version. v1 files carry the original
	// 46-byte meta blob with no encoding byte (so pre-v2 readers and the
	// frozen v1 format goldens are untouched); v2 files append one byte.
	enc Encoding
}

// metaBaseSize is the original (v1) meta blob size; v2 blobs are one byte
// longer, carrying the encoding version at the end.
const metaBaseSize = len(metaMagic) + 8 + 8 + 8 + 8 + 1 + 4 + 1

func encodeMeta(m meta) []byte {
	size := metaBaseSize
	if m.enc > EncodingV1 {
		size++
	}
	buf := make([]byte, size)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.root))
	binary.LittleEndian.PutUint64(buf[16:], m.nodes)
	binary.LittleEndian.PutUint64(buf[24:], m.leaves)
	binary.LittleEndian.PutUint64(buf[32:], m.labelSyms)
	if m.sparse {
		buf[40] = 1
	}
	binary.LittleEndian.PutUint32(buf[41:], m.minSuffixLen)
	buf[45] = byte(m.layout)
	if m.enc > EncodingV1 {
		buf[metaBaseSize] = byte(m.enc)
	}
	return buf
}

func decodeMeta(buf []byte) (meta, error) {
	if (len(buf) != metaBaseSize && len(buf) != metaBaseSize+1) || string(buf[:8]) != metaMagic {
		return meta{}, fmt.Errorf("disktree: bad meta blob (%d bytes)", len(buf))
	}
	enc := EncodingV1
	if len(buf) == metaBaseSize+1 {
		enc = Encoding(buf[metaBaseSize])
		if enc < EncodingV1 || enc > EncodingV3 {
			return meta{}, fmt.Errorf("disktree: unknown encoding %d", buf[metaBaseSize])
		}
	}
	if buf[45] > 1 {
		return meta{}, fmt.Errorf("disktree: unknown layout %d", buf[45])
	}
	return meta{
		root:         Ptr(binary.LittleEndian.Uint64(buf[8:])),
		nodes:        binary.LittleEndian.Uint64(buf[16:]),
		leaves:       binary.LittleEndian.Uint64(buf[24:]),
		labelSyms:    binary.LittleEndian.Uint64(buf[32:]),
		sparse:       buf[40] == 1,
		minSuffixLen: binary.LittleEndian.Uint32(buf[41:]),
		layout:       Layout(buf[45]),
		enc:          enc,
	}, nil
}

// appender writes a byte stream into consecutive pages of a pool-backed
// file, returning absolute offsets.
type appender struct {
	pool  *storage.Pool
	frame *storage.Frame
	used  int // bytes used in the current frame
}

func newAppender(pool *storage.Pool) (*appender, error) {
	fr, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	fr.MarkDirty()
	return &appender{pool: pool, frame: fr}, nil
}

// offset returns the absolute byte offset the next write lands at.
func (a *appender) offset() Ptr {
	return Ptr(uint64(a.frame.ID())*storage.PageSize + uint64(a.used))
}

func (a *appender) write(b []byte) error {
	for len(b) > 0 {
		if a.used == storage.PageSize {
			a.pool.Release(a.frame)
			fr, err := a.pool.Alloc()
			if err != nil {
				a.frame = nil
				return err
			}
			fr.MarkDirty()
			a.frame = fr
			a.used = 0
		}
		n := copy(a.frame.Data()[a.used:], b)
		a.used += n
		b = b[n:]
	}
	return nil
}

func (a *appender) close() {
	if a.frame != nil {
		a.pool.Release(a.frame)
		a.frame = nil
	}
}
