package disktree

import (
	"os"
	"path/filepath"
	"testing"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// FuzzValidateCorruption writes a valid small tree, applies an arbitrary
// byte mutation from the fuzzer, and requires Validate to terminate without
// panicking: it must either still pass (mutation hit slack space) or return
// an error — never crash, never loop.
func FuzzValidateCorruption(f *testing.F) {
	f.Add(uint32(4100), byte(0xFF))
	f.Add(uint32(4096), byte(0x01))
	f.Add(uint32(5000), byte(0x80))
	f.Fuzz(func(t *testing.T, offset uint32, xor byte) {
		if xor == 0 {
			return // identity mutation
		}
		ts := suffixtree.NewTextStore()
		ts.Add([]Symbol{1, 2, 1, 1, 3, 2, 2, 1})
		ts.Add([]Symbol{2, 1, 3, 3, 1})
		tree := suffixtree.BuildNaive(ts, []int{0, 1}, false)
		dir := t.TempDir()
		path := filepath.Join(dir, "fz.twt")
		df, err := Create(path, tree, 16)
		if err != nil {
			t.Fatal(err)
		}
		df.Close()

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate one byte past the meta page (meta corruption is covered by
		// decodeMeta's own checks at Open).
		pos := storage.PageSize + int(offset)%(len(raw)-storage.PageSize)
		raw[pos] ^= xor
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := Open(path, 16, true)
		if err != nil {
			return // rejected at open: fine
		}
		defer re.Close()
		// Must terminate; the result may be an error or, if the mutation
		// hit padding, a clean pass whose Load round-trips.
		if _, err := re.Validate(ts); err != nil {
			return
		}
		got, err := re.Load(ts)
		if err != nil {
			return
		}
		if !suffixtree.Equal(tree, got) {
			t.Fatal("mutation passed Validate but changed the tree")
		}
	})
}
