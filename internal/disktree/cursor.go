package disktree

import (
	"encoding/binary"
	"errors"

	"twsearch/internal/storage"
)

var errVarintOverflow = errors.New("disktree: varint overflows 64 bits")

// pageCursor is a forward reader over node record bytes that borrows pages
// from a PageSource one at a time. A record may cross page boundaries
// (records are written at arbitrary byte offsets), so the cursor releases
// the current view and borrows the next page as it advances. It holds at
// most one borrowed view at any moment, and close releases it — the only
// sanctioned way a view outlives the statement that created it.
type pageCursor struct {
	src storage.PageSource
	// page is the borrowed view of the page the cursor is inside, and
	// release its unpin. Both are owned by the cursor between open and
	// close; ReadNodeInto closes the cursor on every return path.
	page    []byte
	release func()
	id      storage.PageID
	off     int
}

// open positions the cursor at absolute byte offset p.
func (c *pageCursor) open(src storage.PageSource, p Ptr) error {
	c.src = src
	c.id = storage.PageID(uint64(p) / storage.PageSize)
	c.off = int(uint64(p) % storage.PageSize)
	//lint:ignore viewescape the cursor is the audited owner: the view is held in struct fields between open and close, released by close on every ReadNodeInto return path
	page, release, err := src.View(c.id)
	if err != nil {
		return err
	}
	c.page, c.release = page, release
	return nil
}

// close releases the borrowed view. Safe to call on an unopened or already
// closed cursor.
func (c *pageCursor) close() {
	if c.release != nil {
		c.release()
	}
	c.page, c.release, c.src = nil, nil, nil
}

// advance releases the current page and borrows the next one.
func (c *pageCursor) advance() error {
	c.release()
	c.page, c.release = nil, nil
	c.id++
	//lint:ignore viewescape audited: same single-view ownership as open — the previous view was released on the line above
	page, release, err := c.src.View(c.id)
	if err != nil {
		return err
	}
	c.page, c.release = page, release
	c.off = 0
	return nil
}

// readByte returns the next byte.
func (c *pageCursor) readByte() (byte, error) {
	if c.off == storage.PageSize {
		if err := c.advance(); err != nil {
			return 0, err
		}
	}
	b := c.page[c.off]
	c.off++
	return b, nil
}

// read fills buf, crossing pages as needed.
func (c *pageCursor) read(buf []byte) error {
	for len(buf) > 0 {
		if c.off == storage.PageSize {
			if err := c.advance(); err != nil {
				return err
			}
		}
		n := copy(buf, c.page[c.off:])
		c.off += n
		buf = buf[n:]
	}
	return nil
}

// u32 reads a fixed-width little-endian uint32.
func (c *pageCursor) u32() (uint32, error) {
	if c.off+4 <= storage.PageSize {
		v := binary.LittleEndian.Uint32(c.page[c.off:])
		c.off += 4
		return v, nil
	}
	var b [4]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// u64 reads a fixed-width little-endian uint64.
func (c *pageCursor) u64() (uint64, error) {
	if c.off+8 <= storage.PageSize {
		v := binary.LittleEndian.Uint64(c.page[c.off:])
		c.off += 8
		return v, nil
	}
	var b [8]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// uvarint reads an unsigned varint (the page-crossing analogue of
// binary.ReadUvarint).
func (c *pageCursor) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := c.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, errVarintOverflow
}

// varint reads a zigzag-encoded signed varint.
func (c *pageCursor) varint() (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, nil
}
