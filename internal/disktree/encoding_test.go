package disktree

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// TestEncodingV2RoundTrip: Create→Load is the identity in both layouts under
// the compact encoding, and the reopened file reports v2.
func TestEncodingV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	ts := randomTexts(rng, 5, 40, 3)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	for _, layout := range []Layout{LayoutReference, LayoutInline} {
		path := filepath.Join(t.TempDir(), "v2.twt")
		f, err := CreateEncoded(path, tree, 64, layout, EncodingV2)
		if err != nil {
			t.Fatalf("%s: CreateEncoded: %v", layout, err)
		}
		if f.Encoding() != EncodingV2 {
			t.Errorf("%s: Encoding() = %s, want v2", layout, f.Encoding())
		}
		got, err := f.Load(ts)
		if err != nil {
			t.Fatalf("%s: Load: %v", layout, err)
		}
		if !suffixtree.Equal(tree, got) {
			t.Fatalf("%s: v2 tree differs from original", layout)
		}
		f.Close()

		f2, err := Open(path, 2, true)
		if err != nil {
			t.Fatalf("%s: Open: %v", layout, err)
		}
		if f2.Encoding() != EncodingV2 {
			t.Errorf("%s: reopened Encoding() = %s, want v2", layout, f2.Encoding())
		}
		got2, err := f2.Load(ts)
		if err != nil {
			t.Fatalf("%s: Load after reopen: %v", layout, err)
		}
		if !suffixtree.Equal(tree, got2) {
			t.Fatalf("%s: v2 tree differs after reopen through a 2-page pool", layout)
		}
		if _, err := f2.Validate(ts); err != nil {
			t.Fatalf("%s: Validate: %v", layout, err)
		}
		f2.Close()
	}
}

// TestEncodingV2Smaller: the varint records must be measurably smaller than
// the fixed-width ones on a real tree — the point of the format.
func TestEncodingV2Smaller(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	ts := randomTexts(rng, 20, 60, 4)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	dir := t.TempDir()
	v1, err := CreateEncoded(filepath.Join(dir, "v1.twt"), tree, 64, LayoutReference, EncodingV1)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := CreateEncoded(filepath.Join(dir, "v2.twt"), tree, 64, LayoutReference, EncodingV2)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.SizeBytes() >= v1.SizeBytes() {
		t.Fatalf("v2 file (%d bytes) not smaller than v1 (%d bytes)", v2.SizeBytes(), v1.SizeBytes())
	}
}

// TestBuildEncodingV2: the batched build+merge pipeline threads the encoding
// through spills and merge rounds and still equals the naive in-memory tree.
func TestBuildEncodingV2(t *testing.T) {
	rng := rand.New(rand.NewSource(257))
	ts := randomTexts(rng, 13, 30, 3)
	want := suffixtree.BuildNaive(ts, allSeqs(ts), false)
	out := filepath.Join(t.TempDir(), "v2build.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 3, PoolPages: 16, Encoding: EncodingV2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Encoding() != EncodingV2 {
		t.Errorf("built Encoding() = %s, want v2", f.Encoding())
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(want, got) {
		t.Fatal("v2 Build differs from naive tree")
	}
}

func TestMergeFilesRejectsMixedEncoding(t *testing.T) {
	dir := t.TempDir()
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{1, 2})
	ts.Add([]Symbol{2, 1})
	a := suffixtree.BuildNaive(ts, []int{0}, false)
	b := suffixtree.BuildNaive(ts, []int{1}, false)
	af, err := CreateEncoded(filepath.Join(dir, "a"), a, 8, LayoutReference, EncodingV1)
	if err != nil {
		t.Fatal(err)
	}
	af.Close()
	bf, err := CreateEncoded(filepath.Join(dir, "b"), b, 8, LayoutReference, EncodingV2)
	if err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if _, err := MergeFiles(ts, filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "out"), 8); err == nil {
		t.Fatal("mixed encoding merge accepted")
	}
}

// TestRewrite: re-encoding a file in place of its tree is lossless in both
// directions, and v1→v2 shrinks the file.
func TestRewrite(t *testing.T) {
	rng := rand.New(rand.NewSource(263))
	for _, layout := range []Layout{LayoutReference, LayoutInline} {
		ts := randomTexts(rng, 8, 40, 3)
		tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
		dir := t.TempDir()
		v1Path := filepath.Join(dir, "v1.twt")
		f, err := CreateEncoded(v1Path, tree, 32, layout, EncodingV1)
		if err != nil {
			t.Fatal(err)
		}
		v1Size := f.SizeBytes()
		f.Close()

		v2Path := filepath.Join(dir, "v2.twt")
		rw, err := Rewrite(v1Path, v2Path, 32, EncodingV2, nil)
		if err != nil {
			t.Fatalf("%s: Rewrite to v2: %v", layout, err)
		}
		if rw.Encoding() != EncodingV2 {
			t.Errorf("%s: rewritten Encoding() = %s, want v2", layout, rw.Encoding())
		}
		got, err := rw.Load(ts)
		if err != nil {
			t.Fatal(err)
		}
		if !suffixtree.Equal(tree, got) {
			t.Fatalf("%s: v1→v2 rewrite changed the tree", layout)
		}
		if _, err := rw.Validate(ts); err != nil {
			t.Fatalf("%s: Validate after rewrite: %v", layout, err)
		}
		if layout == LayoutReference && rw.SizeBytes() >= v1Size {
			t.Errorf("%s: rewrite did not shrink: %d → %d bytes", layout, v1Size, rw.SizeBytes())
		}
		rw.Close()

		// And back: v2 → v1 restores a byte-identical v1 file.
		backPath := filepath.Join(dir, "back.twt")
		back, err := Rewrite(v2Path, backPath, 32, EncodingV1, nil)
		if err != nil {
			t.Fatalf("%s: Rewrite back to v1: %v", layout, err)
		}
		back.Close()
		origRaw, err := os.ReadFile(v1Path)
		if err != nil {
			t.Fatal(err)
		}
		backRaw, err := os.ReadFile(backPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(origRaw) != string(backRaw) {
			t.Fatalf("%s: v1→v2→v1 round trip is not byte-identical", layout)
		}
	}
}

// TestDecodeMetaRejectsUnknownEncoding: a meta blob carrying an encoding
// byte outside the known range must be refused — how a pre-v2 reader's
// "bad meta blob" rejection looks from this side.
func TestDecodeMetaRejectsUnknownEncoding(t *testing.T) {
	blob := encodeMeta(meta{root: Ptr(storage.PageSize), layout: LayoutReference, enc: EncodingV2})
	if len(blob) != metaBaseSize+1 {
		t.Fatalf("v2 meta blob is %d bytes, want %d", len(blob), metaBaseSize+1)
	}
	if _, err := decodeMeta(blob); err != nil {
		t.Fatalf("valid v2 blob rejected: %v", err)
	}
	for _, bad := range []byte{0, 4, 0xFF} {
		blob[metaBaseSize] = bad
		if _, err := decodeMeta(blob); err == nil {
			t.Fatalf("encoding byte %d accepted", bad)
		}
	}
	// And the legacy 46-byte blob still decodes as v1.
	m, err := decodeMeta(blob[:metaBaseSize])
	if err != nil {
		t.Fatalf("legacy blob rejected: %v", err)
	}
	if m.enc != EncodingV1 {
		t.Fatalf("legacy blob decoded as %s, want v1", m.enc)
	}
}

// writeRecordFile lays raw record bytes into a fresh in-memory page file
// starting at page 1 and wraps it in a File with the given layout/encoding,
// so decode paths can be driven with hand-built (or fuzz-built) bytes.
func writeRecordFile(t *testing.T, raw []byte, layout Layout, enc Encoding) *File {
	t.Helper()
	pf, err := storage.CreateMemFile()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += storage.PageSize {
		id, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, storage.PageSize)
		copy(page, raw[off:])
		if err := pf.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	if len(raw) == 0 {
		if _, err := pf.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := storage.NewPool(pf, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{pf: pf, src: pool, pool: pool, meta: meta{root: Ptr(storage.PageSize), layout: layout, enc: enc}}
	t.Cleanup(func() { f.Close() })
	return f
}

// FuzzNodeCodecV2: decode∘encode is the identity for arbitrary nodes in the
// compact encoding, and feeding v2 bytes to the v1 decoder (the cross-decode
// a version-confused reader would attempt) terminates without panicking.
func FuzzNodeCodecV2(f *testing.F) {
	f.Add([]byte{0}, false, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, true, false)
	f.Add([]byte{0xFF, 0x80, 0x00, 0x7F}, false, true)
	f.Add([]byte{9, 9, 9, 9, 200, 200, 1}, true, true)
	f.Fuzz(func(t *testing.T, data []byte, leaf, inline bool) {
		if len(data) == 0 {
			data = []byte{0}
		}
		// Derive a node deterministically from the fuzz bytes.
		next := func(i int) int32 {
			var v int32
			for k := 0; k < 4; k++ {
				v = v<<8 | int32(data[(i*4+k)%len(data)])
			}
			return v
		}
		layout := LayoutReference
		if inline {
			layout = LayoutInline
		}
		in := Node{LabelSeq: next(0), LabelStart: next(1), LabelLen: next(2), Leaf: leaf}
		if inline {
			n := int(uint32(next(3)) % 200)
			in.Label = make([]Symbol, n)
			for i := range in.Label {
				in.Label[i] = Symbol(next(4 + i))
			}
		}
		if leaf {
			in.Pos = next(5)
			in.RunLen = next(6)
		} else {
			n := int(uint32(next(7)) % 200)
			in.Children = make([]ChildRef, n)
			for i := range in.Children {
				in.Children[i] = ChildRef{Sym: Symbol(next(8 + i)), Ptr: Ptr(uint64(uint32(next(9 + i))))}
			}
		}

		raw := encodeNodeV2(nil, &in, layout)
		df := writeRecordFile(t, raw, layout, EncodingV2)
		var got Node
		if err := df.ReadNodeInto(Ptr(storage.PageSize), &got); err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}

		// What the decoder is specified to produce for this input.
		want := in
		if inline {
			want.LabelLen = int32(len(in.Label))
			want.LabelStart = -1
			if !leaf {
				want.LabelSeq = -1
			}
		}
		if !nodesEqual(&want, &got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}

		// Cross-decode: the v1 decoder over v2 bytes must terminate with an
		// error or garbage, never panic or hang.
		dfx := writeRecordFile(t, raw, layout, EncodingV1)
		var junk Node
		_ = dfx.ReadNodeInto(Ptr(storage.PageSize), &junk)
	})
}

func nodesEqual(a, b *Node) bool {
	if a.LabelSeq != b.LabelSeq || a.LabelStart != b.LabelStart || a.LabelLen != b.LabelLen ||
		a.Leaf != b.Leaf || a.Pos != b.Pos || a.RunLen != b.RunLen ||
		len(a.Label) != len(b.Label) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Label {
		if a.Label[i] != b.Label[i] {
			return false
		}
	}
	for i := range a.Children {
		if a.Children[i] != b.Children[i] {
			return false
		}
	}
	return true
}
