package disktree

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"twsearch/internal/suffixtree"
)

func randomTexts(rng *rand.Rand, nSeq, maxLen, alphabet int) *suffixtree.TextStore {
	ts := suffixtree.NewTextStore()
	for i := 0; i < nSeq; i++ {
		n := 1 + rng.Intn(maxLen)
		text := make([]Symbol, n)
		for j := range text {
			text[j] = Symbol(rng.Intn(alphabet))
		}
		ts.Add(text)
	}
	return ts
}

func allSeqs(ts *suffixtree.TextStore) []int {
	out := make([]int, ts.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCreateOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	ts := randomTexts(rng, 5, 40, 3)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	path := filepath.Join(t.TempDir(), "tree.twt")

	f, err := Create(path, tree, 64)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	wantStats := tree.ComputeStats()
	if int(f.NumNodes()) != wantStats.Nodes {
		t.Errorf("NumNodes = %d, want %d", f.NumNodes(), wantStats.Nodes)
	}
	if int(f.NumLeaves()) != wantStats.Leaves {
		t.Errorf("NumLeaves = %d, want %d", f.NumLeaves(), wantStats.Leaves)
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !suffixtree.Equal(tree, got) {
		t.Fatal("loaded tree differs from original")
	}
	f.Close()

	// Reopen read-only with a tiny pool and verify again.
	f2, err := Open(path, 2, true)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f2.Close()
	if f2.Sparse() {
		t.Error("dense tree reported sparse")
	}
	got2, err := f2.Load(ts)
	if err != nil {
		t.Fatalf("Load after reopen: %v", err)
	}
	if !suffixtree.Equal(tree, got2) {
		t.Fatal("tree differs after reopen through a 2-page pool")
	}
	if f2.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestOpenGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte(strings.Repeat("x", 8192)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 4, true); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: Create→Load is the identity for random dense and sparse trees.
func TestQuickDiskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	dir := t.TempDir()
	count := 0
	f := func() bool {
		count++
		ts := randomTexts(rng, 1+rng.Intn(5), 30, 1+rng.Intn(4))
		sparse := rng.Intn(2) == 0
		tree := suffixtree.BuildNaive(ts, allSeqs(ts), sparse)
		path := filepath.Join(dir, "t"+string(rune('a'+count%26))+".twt")
		df, err := Create(path, tree, 1+rng.Intn(16))
		if err != nil {
			return false
		}
		defer df.Close()
		if df.Sparse() != sparse {
			return false
		}
		got, err := df.Load(ts)
		if err != nil {
			return false
		}
		return suffixtree.Equal(tree, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a disk merge of two disk trees equals the in-memory merged tree.
func TestQuickMergeFilesEqualsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	dir := t.TempDir()
	iter := 0
	f := func() bool {
		iter++
		ts := randomTexts(rng, 2+rng.Intn(6), 25, 1+rng.Intn(4))
		sparse := rng.Intn(2) == 0
		// Split sequences into two disjoint halves.
		all := allSeqs(ts)
		cut := 1 + rng.Intn(len(all)-1)
		aSeqs, bSeqs := all[:cut], all[cut:]

		aPath := filepath.Join(dir, "a.twt")
		bPath := filepath.Join(dir, "b.twt")
		outPath := filepath.Join(dir, "out.twt")
		at := suffixtree.BuildNaive(ts, aSeqs, sparse)
		bt := suffixtree.BuildNaive(ts, bSeqs, sparse)
		af, err := Create(aPath, at, 8)
		if err != nil {
			return false
		}
		af.Close()
		bf, err := Create(bPath, bt, 8)
		if err != nil {
			return false
		}
		bf.Close()

		mf, err := MergeFiles(ts, aPath, bPath, outPath, 1+rng.Intn(8))
		if err != nil {
			return false
		}
		defer mf.Close()
		got, err := mf.Load(ts)
		if err != nil {
			return false
		}
		want := suffixtree.BuildNaive(ts, all, sparse)
		if !suffixtree.Equal(want, got) {
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFilesRejectsMixedSparsity(t *testing.T) {
	dir := t.TempDir()
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{1, 2})
	ts.Add([]Symbol{2, 1})
	a := suffixtree.BuildNaive(ts, []int{0}, false)
	b := suffixtree.BuildNaive(ts, []int{1}, true)
	af, err := Create(filepath.Join(dir, "a"), a, 8)
	if err != nil {
		t.Fatal(err)
	}
	af.Close()
	bf, err := Create(filepath.Join(dir, "b"), b, 8)
	if err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if _, err := MergeFiles(ts, filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "out"), 8); err == nil {
		t.Fatal("mixed sparsity merge accepted")
	}
}

// Build must equal the naive in-memory tree regardless of batch size, and
// must clean up its temp files.
func TestBuildPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(217))
	ts := randomTexts(rng, 13, 30, 3)
	want := suffixtree.BuildNaive(ts, allSeqs(ts), false)

	for _, batch := range []int{1, 2, 5, 100} {
		dir := t.TempDir()
		out := filepath.Join(dir, "final.twt")
		f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: batch, PoolPages: 16})
		if err != nil {
			t.Fatalf("Build(batch=%d): %v", batch, err)
		}
		got, err := f.Load(ts)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		f.Close()
		if !suffixtree.Equal(want, got) {
			t.Fatalf("Build(batch=%d) tree differs from naive", batch)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".twtree-") {
				t.Errorf("temp file %s not cleaned up", e.Name())
			}
		}
	}
}

func TestBuildSparsePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	// Run-heavy data so sparsity matters.
	ts := suffixtree.NewTextStore()
	for i := 0; i < 9; i++ {
		text := make([]Symbol, 40)
		v := Symbol(0)
		for j := range text {
			if rng.Float64() < 0.4 {
				v = Symbol(rng.Intn(3))
			}
			text[j] = v
		}
		ts.Add(text)
	}
	want := suffixtree.BuildNaive(ts, allSeqs(ts), true)
	out := filepath.Join(t.TempDir(), "sparse.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{Sparse: true, BatchSize: 2, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Sparse() {
		t.Error("built tree not marked sparse")
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(want, got) {
		t.Fatal("sparse Build differs from naive sparse tree")
	}
}

func TestBuildEmpty(t *testing.T) {
	ts := suffixtree.NewTextStore()
	out := filepath.Join(t.TempDir(), "empty.twt")
	f, err := Build(ts, nil, out, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	root, err := f.ReadNode(f.Root())
	if err != nil {
		t.Fatal(err)
	}
	if root.Leaf || len(root.Children) != 0 {
		t.Fatal("empty build root malformed")
	}
}

// A node with very many children (wide root) must round-trip: records cross
// page boundaries.
func TestWideRootCrossesPages(t *testing.T) {
	ts := suffixtree.NewTextStore()
	// 2000 distinct symbols, one two-symbol sequence each... instead: one
	// sequence cycling 700 distinct symbols gives a root with 700 children;
	// its record (~8.4 KB) spans three pages.
	text := make([]Symbol, 1400)
	for i := range text {
		text[i] = Symbol(i % 700)
	}
	ts.Add(text)
	tree := suffixtree.BuildNaive(ts, []int{0}, false)
	path := filepath.Join(t.TempDir(), "wide.twt")
	f, err := Create(path, tree, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	root, err := f.ReadNode(f.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 700 {
		t.Fatalf("root children = %d, want 700", len(root.Children))
	}
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(tree, got) {
		t.Fatal("wide tree round trip failed")
	}
}

func TestPoolStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	ts := randomTexts(rng, 6, 50, 2)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	path := filepath.Join(t.TempDir(), "t.twt")
	f, err := Create(path, tree, 64)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Tiny pool: a full load must evict and miss.
	f2, err := Open(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.Load(ts); err != nil {
		t.Fatal(err)
	}
	st := f2.PoolStats()
	if st.Misses == 0 {
		t.Error("no pool misses through a 1-page pool")
	}
	if f2.PagesRead() == 0 {
		t.Error("no physical page reads counted")
	}
}

func TestValidateOK(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	for trial := 0; trial < 10; trial++ {
		ts := randomTexts(rng, 2+rng.Intn(5), 30, 1+rng.Intn(4))
		sparse := rng.Intn(2) == 0
		out := filepath.Join(t.TempDir(), "v.twt")
		f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 2, PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		if sparse {
			f.Close()
			f, err = Build(ts, allSeqs(ts), filepath.Join(t.TempDir(), "vs.twt"), BuildOptions{Sparse: true, BatchSize: 2})
			if err != nil {
				t.Fatal(err)
			}
		}
		st, err := f.Validate(ts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st.Nodes != f.NumNodes() || st.Leaves != f.NumLeaves() {
			t.Fatalf("trial %d: walk counters disagree with meta", trial)
		}
		f.Close()
	}
}

func TestValidateDetectsBadLeaf(t *testing.T) {
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{1, 1, 2})
	tree := suffixtree.BuildNaive(ts, []int{0}, false)
	// Corrupt one leaf's run length before serializing.
	var corrupt func(n *suffixtree.Node) bool
	corrupt = func(n *suffixtree.Node) bool {
		if n.Leaf != nil {
			n.Leaf.RunLen += 5
			return true
		}
		for _, c := range n.Children {
			if corrupt(c) {
				return true
			}
		}
		return false
	}
	if !corrupt(tree.Root) {
		t.Fatal("no leaf found")
	}
	f, err := Create(filepath.Join(t.TempDir(), "bad.twt"), tree, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Validate(ts); err == nil {
		t.Fatal("corrupted run length not detected")
	}
}

func TestValidateDetectsBadPath(t *testing.T) {
	ts := suffixtree.NewTextStore()
	ts.Add([]Symbol{1, 2, 3})
	tree := suffixtree.BuildNaive(ts, []int{0}, false)
	// Point one leaf at the wrong suffix position.
	var corrupt func(n *suffixtree.Node) bool
	corrupt = func(n *suffixtree.Node) bool {
		if n.Leaf != nil {
			n.Leaf.Pos = (n.Leaf.Pos + 1) % 3
			return true
		}
		for _, c := range n.Children {
			if corrupt(c) {
				return true
			}
		}
		return false
	}
	corrupt(tree.Root)
	f, err := Create(filepath.Join(t.TempDir(), "bad2.twt"), tree, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Validate(ts); err == nil {
		t.Fatal("corrupted leaf position not detected")
	}
}

// The paper's construction claim: merging supports disk-based
// representations in limited main memory. Build a non-trivial tree through
// 4-page (16 KiB) buffer pools and verify it is still exactly the naive
// in-memory tree.
func TestBuildBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	ts := randomTexts(rng, 50, 60, 4)
	want := suffixtree.BuildNaive(ts, allSeqs(ts), false)
	out := filepath.Join(t.TempDir(), "tiny-pool.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 4, PoolPages: 4})
	if err != nil {
		t.Fatalf("Build through 4-page pools: %v", err)
	}
	defer f.Close()
	got, err := f.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !suffixtree.Equal(want, got) {
		t.Fatal("bounded-memory build differs from in-memory tree")
	}
	if _, err := f.Validate(ts); err != nil {
		t.Fatal(err)
	}
}

func TestBuildStats(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	ts := randomTexts(rng, 10, 20, 3)
	var stats BuildStats
	out := filepath.Join(t.TempDir(), "st.twt")
	f, err := Build(ts, allSeqs(ts), out, BuildOptions{BatchSize: 2, PoolPages: 8, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if stats.Batches != 5 {
		t.Errorf("batches = %d, want 5", stats.Batches)
	}
	// 5 batches merge in 3 rounds (5 -> 3 -> 2 -> 1) with 4 merges total.
	if stats.MergeRounds != 3 || stats.Merges != 4 {
		t.Errorf("rounds = %d merges = %d, want 3/4", stats.MergeRounds, stats.Merges)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

// TestReadAhead: warming child pages is best-effort and invisible to
// traversal semantics — after ReadAhead the same children read back with
// identical content, and re-reading them hits the warmed pool.
func TestReadAhead(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	ts := randomTexts(rng, 6, 50, 2)
	tree := suffixtree.BuildMerged(ts, allSeqs(ts), false)
	path := filepath.Join(t.TempDir(), "t.twt")
	f, err := Create(path, tree, 64)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, err := Open(path, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()

	root, err := f2.ReadNode(f2.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) < 2 {
		t.Fatalf("root has %d children; need >= 2", len(root.Children))
	}
	before := f2.PoolStats()
	f2.ReadAhead(root.Children)
	warmed := f2.PoolStats()
	if got := warmed.Hits + warmed.Misses - before.Hits - before.Misses; got == 0 {
		t.Fatal("ReadAhead touched no pages")
	}
	// Children now read from the warmed pool without new physical reads,
	// and content matches a fresh handle's.
	pagesBefore := f2.PagesRead()
	for i := range root.Children {
		if _, err := f2.ReadNode(root.Children[i].Ptr); err != nil {
			t.Fatalf("child %d after ReadAhead: %v", i, err)
		}
	}
	if f2.PagesRead() != pagesBefore {
		t.Fatalf("reads after ReadAhead did %d physical reads, want 0",
			f2.PagesRead()-pagesBefore)
	}
}
