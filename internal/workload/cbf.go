package workload

import (
	"fmt"
	"math"
	"math/rand"

	"twsearch/internal/sequence"
)

// CBFClass is one of the three Cylinder–Bell–Funnel shape classes — the
// classic synthetic benchmark (Saito 1994) used throughout the time-series
// matching literature that grew out of this paper's problem setting. 1-NN
// classification under DTW on CBF is the canonical sanity check for a time
// warping matcher.
type CBFClass int

// The three classes.
const (
	Cylinder CBFClass = iota // flat plateau
	Bell                     // linear ramp up, sharp drop
	Funnel                   // sharp rise, linear ramp down
)

func (c CBFClass) String() string {
	switch c {
	case Cylinder:
		return "cylinder"
	case Bell:
		return "bell"
	default:
		return "funnel"
	}
}

// CBFConfig parameterizes CBF generation.
type CBFConfig struct {
	// PerClass is how many instances of each class to generate.
	PerClass int
	// Len is the instance length (default 128, the traditional value).
	Len int
	// Noise is the additive Gaussian noise sigma (default 0.5).
	Noise float64
	Seed  int64
}

// CBF generates a labelled Cylinder–Bell–Funnel dataset. Sequence ids are
// "<class>-<i>", so the class is recoverable from the id; labels are also
// returned indexed by dataset position. It is CBFRand with a generator
// seeded from cfg.Seed.
func CBF(cfg CBFConfig) (*sequence.Dataset, []CBFClass) {
	return CBFRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// CBFRand is CBF drawing from an explicit generator; CBFInstance already
// takes the rng, so the whole package threads one seeded source end to end.
func CBFRand(rng *rand.Rand, cfg CBFConfig) (*sequence.Dataset, []CBFClass) {
	if cfg.Len == 0 {
		cfg.Len = 128
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.5
	}
	d := sequence.NewDataset()
	var labels []CBFClass
	for _, class := range []CBFClass{Cylinder, Bell, Funnel} {
		for i := 0; i < cfg.PerClass; i++ {
			d.MustAdd(sequence.Sequence{
				ID:     fmt.Sprintf("%s-%03d", class, i),
				Values: CBFInstance(rng, class, cfg.Len, cfg.Noise),
			})
			labels = append(labels, class)
		}
	}
	return d, labels
}

// CBFInstance generates one instance: the class shape occupies a random
// window [a, b] with random amplitude, embedded in noise — so instances of
// one class differ in onset, duration and height, which is exactly what
// time warping absorbs and lock-step distances do not.
func CBFInstance(rng *rand.Rand, class CBFClass, n int, noise float64) []float64 {
	a := n/8 + rng.Intn(n/4)     // event onset
	b := a + n/4 + rng.Intn(n/3) // event end
	if b > n-4 {
		b = n - 4
	}
	amp := 4 + rng.NormFloat64() // event height ~ N(4,1) above baseline
	vals := make([]float64, n)
	for t := range vals {
		v := 0.0
		if t >= a && t <= b {
			frac := float64(t-a) / float64(b-a)
			switch class {
			case Cylinder:
				v = amp
			case Bell:
				v = amp * frac
			case Funnel:
				v = amp * (1 - frac)
			}
		}
		vals[t] = math.Round((v+rng.NormFloat64()*noise)*100) / 100
	}
	return vals
}
