package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"twsearch/internal/dtw"
	"twsearch/internal/sequence"
)

func TestBandOf(t *testing.T) {
	cases := []struct {
		avg  float64
		want Band
	}{
		{10, BandLow}, {29.99, BandLow}, {30, BandMid}, {60, BandMid}, {60.01, BandHigh}, {150, BandHigh},
	}
	for _, c := range cases {
		if got := BandOf(c.avg); got != c.want {
			t.Errorf("BandOf(%v) = %v, want %v", c.avg, got, c.want)
		}
	}
}

func avgOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func TestStocksMatchesPaperShape(t *testing.T) {
	d := Stocks(StockConfig{Seed: 1})
	if d.Len() != 545 {
		t.Fatalf("sequences = %d, want 545", d.Len())
	}
	st := d.ComputeStats()
	if math.Abs(st.AvgLen-232) > 20 {
		t.Errorf("avg length = %v, want near 232", st.AvgLen)
	}
	if st.MinValue < 1 {
		t.Errorf("price below $1: %v", st.MinValue)
	}
	// Band mix close to 20/50/30.
	var counts [3]int
	for i := 0; i < d.Len(); i++ {
		counts[BandOf(avgOf(d.Values(i)))]++
	}
	frac := func(c int) float64 { return float64(c) / float64(d.Len()) }
	if math.Abs(frac(counts[0])-0.20) > 0.07 {
		t.Errorf("low band fraction = %v, want ~0.20", frac(counts[0]))
	}
	if math.Abs(frac(counts[1])-0.50) > 0.07 {
		t.Errorf("mid band fraction = %v, want ~0.50", frac(counts[1]))
	}
	if math.Abs(frac(counts[2])-0.30) > 0.07 {
		t.Errorf("high band fraction = %v, want ~0.30", frac(counts[2]))
	}
	// Prices rounded to cents.
	v := d.Values(0)[0]
	if math.Round(v*100) != v*100 {
		t.Errorf("price %v not cent-rounded", v)
	}
}

func TestStocksDeterministic(t *testing.T) {
	a := Stocks(StockConfig{NumSequences: 10, Seed: 7})
	b := Stocks(StockConfig{NumSequences: 10, Seed: 7})
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.Values(i), b.Values(i)) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Stocks(StockConfig{NumSequences: 10, Seed: 8})
	if reflect.DeepEqual(a.Values(0), c.Values(0)) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestSeededRandThreading asserts the package's reproducibility contract:
// every generator draws only from the rng threaded through it, so two runs
// with identically seeded generators produce element-identical workloads,
// and the Seed-based wrappers are exactly the Rand variants.
func TestSeededRandThreading(t *testing.T) {
	sameDataset := func(t *testing.T, a, b *sequence.Dataset) {
		t.Helper()
		if a.Len() != b.Len() {
			t.Fatalf("dataset sizes differ: %d vs %d", a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.Seq(i).ID != b.Seq(i).ID {
				t.Fatalf("seq %d ids differ: %q vs %q", i, a.Seq(i).ID, b.Seq(i).ID)
			}
			if !reflect.DeepEqual(a.Values(i), b.Values(i)) {
				t.Fatalf("seq %d values differ", i)
			}
		}
	}

	t.Run("stocks", func(t *testing.T) {
		cfg := StockConfig{NumSequences: 8, Seed: 42}
		sameDataset(t, StocksRand(rand.New(rand.NewSource(42)), cfg), StocksRand(rand.New(rand.NewSource(42)), cfg))
		sameDataset(t, Stocks(cfg), StocksRand(rand.New(rand.NewSource(42)), cfg))
	})
	t.Run("artificial", func(t *testing.T) {
		cfg := ArtificialConfig{NumSequences: 8, Len: 50, LenJitter: 10, Seed: 42}
		sameDataset(t, ArtificialRand(rand.New(rand.NewSource(42)), cfg), ArtificialRand(rand.New(rand.NewSource(42)), cfg))
		sameDataset(t, Artificial(cfg), ArtificialRand(rand.New(rand.NewSource(42)), cfg))
	})
	t.Run("cbf", func(t *testing.T) {
		cfg := CBFConfig{PerClass: 4, Seed: 42}
		d1, l1 := CBFRand(rand.New(rand.NewSource(42)), cfg)
		d2, l2 := CBFRand(rand.New(rand.NewSource(42)), cfg)
		sameDataset(t, d1, d2)
		if !reflect.DeepEqual(l1, l2) {
			t.Fatal("same seed produced different labels")
		}
		d3, _ := CBF(cfg)
		sameDataset(t, d1, d3)
	})
	t.Run("queries", func(t *testing.T) {
		data := Stocks(StockConfig{NumSequences: 20, Seed: 1})
		cfg := QueryConfig{Count: 25, Seed: 42}
		q1 := QueriesRand(rand.New(rand.NewSource(42)), data, cfg)
		q2 := QueriesRand(rand.New(rand.NewSource(42)), data, cfg)
		if !reflect.DeepEqual(q1, q2) {
			t.Fatal("same seed produced different queries")
		}
		if !reflect.DeepEqual(q1, Queries(data, cfg)) {
			t.Fatal("Queries(cfg) differs from QueriesRand with the same seed")
		}
	})
}

func TestArtificial(t *testing.T) {
	d := Artificial(ArtificialConfig{NumSequences: 200, Len: 100, Seed: 3})
	if d.Len() != 200 {
		t.Fatalf("sequences = %d", d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if len(d.Values(i)) != 100 {
			t.Fatalf("sequence %d length %d, want exactly 100 with no jitter", i, len(d.Values(i)))
		}
	}
	// Random-walk property: steps have roughly unit variance.
	vals := d.Values(0)
	sumSq := 0.0
	for j := 1; j < len(vals); j++ {
		step := vals[j] - vals[j-1]
		sumSq += step * step
	}
	sd := math.Sqrt(sumSq / float64(len(vals)-1))
	if sd < 0.5 || sd > 2 {
		t.Errorf("step stddev = %v, want near 1", sd)
	}
	dj := Artificial(ArtificialConfig{NumSequences: 5, Len: 50, LenJitter: 10, Seed: 4})
	for i := 0; i < dj.Len(); i++ {
		n := len(dj.Values(i))
		if n < 40 || n > 60 {
			t.Errorf("jittered length %d outside [40,60]", n)
		}
	}
}

func TestQueriesShape(t *testing.T) {
	d := Stocks(StockConfig{NumSequences: 100, Seed: 5})
	qs := Queries(d, QueryConfig{Count: 200, Seed: 6})
	if len(qs) != 200 {
		t.Fatalf("queries = %d", len(qs))
	}
	totalLen := 0
	for _, q := range qs {
		if len(q) < 2 || len(q) > 25 {
			t.Fatalf("query length %d outside [2,25]", len(q))
		}
		totalLen += len(q)
	}
	avg := float64(totalLen) / float64(len(qs))
	if math.Abs(avg-20) > 3 {
		t.Errorf("avg query length = %v, want near 20", avg)
	}
	// Each query is a verbatim subsequence of some stock.
	q := qs[0]
	found := false
	for i := 0; i < d.Len() && !found; i++ {
		vals := d.Values(i)
		for p := 0; p+len(q) <= len(vals); p++ {
			match := true
			for k := range q {
				if vals[p+k] != q[k] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("query is not a subsequence of the dataset")
	}
}

func TestQueriesFallbackWhenBandsEmpty(t *testing.T) {
	// Artificial data is centered near zero: most sequences land in the low
	// band; mid/high buckets may be empty and must fall back, not panic.
	d := Artificial(ArtificialConfig{NumSequences: 10, Len: 50, Seed: 9})
	qs := Queries(d, QueryConfig{Count: 30, Seed: 10})
	if len(qs) != 30 {
		t.Fatalf("queries = %d", len(qs))
	}
}

func TestQueriesShortSequences(t *testing.T) {
	d := sequence.NewDataset()
	d.MustAdd(sequence.Sequence{ID: "tiny", Values: []float64{1, 2, 3}})
	qs := Queries(d, QueryConfig{Count: 5, Seed: 11})
	for _, q := range qs {
		if len(q) > 3 {
			t.Fatalf("query longer than its source sequence: %d", len(q))
		}
	}
}

func TestCBFShapes(t *testing.T) {
	d, labels := CBF(CBFConfig{PerClass: 10, Seed: 41})
	if d.Len() != 30 || len(labels) != 30 {
		t.Fatalf("len = %d labels = %d", d.Len(), len(labels))
	}
	for i := 0; i < d.Len(); i++ {
		if len(d.Values(i)) != 128 {
			t.Fatalf("instance %d length %d", i, len(d.Values(i)))
		}
	}
	// Ids encode the class.
	if d.Seq(0).ID[:8] != "cylinder" {
		t.Fatalf("id = %q", d.Seq(0).ID)
	}
	if labels[0] != Cylinder || labels[10] != Bell || labels[20] != Funnel {
		t.Fatalf("labels wrong: %v %v %v", labels[0], labels[10], labels[20])
	}
	// Cylinders plateau: their mean over the event window is higher than
	// bells' early window. Just check basic signal presence: max >> noise.
	for i := 0; i < d.Len(); i++ {
		max := 0.0
		for _, v := range d.Values(i) {
			if v > max {
				max = v
			}
		}
		if max < 1.5 {
			t.Fatalf("instance %d has no visible event (max=%v)", i, max)
		}
	}
	if Cylinder.String() != "cylinder" || Bell.String() != "bell" || Funnel.String() != "funnel" {
		t.Fatal("class names wrong")
	}
}

// 1-NN under whole-sequence DTW must classify held-out CBF instances well —
// the canonical time warping sanity check.
func TestCBFOneNNClassification(t *testing.T) {
	train, trainLabels := CBF(CBFConfig{PerClass: 15, Seed: 43})
	rng := rand.New(rand.NewSource(44))
	correct, total := 0, 0
	for _, class := range []CBFClass{Cylinder, Bell, Funnel} {
		for trial := 0; trial < 5; trial++ {
			q := CBFInstance(rng, class, 128, 0.5)
			best, bestDist := CBFClass(-1), math.Inf(1)
			for i := 0; i < train.Len(); i++ {
				if d := dtw.Distance(train.Values(i), q); d < bestDist {
					best, bestDist = trainLabels[i], d
				}
			}
			if best == class {
				correct++
			}
			total++
		}
	}
	if correct < total*4/5 {
		t.Fatalf("1-NN DTW accuracy %d/%d below 80%%", correct, total)
	}
}
