// Package workload generates the paper's two evaluation datasets and its
// query mix.
//
// The paper's stock data (545 S&P 500 daily-closing-price series, average
// length 232, from a long-dead URL) is unavailable; Stocks substitutes
// seeded random walks with the same sequence count, length distribution,
// and price-band mix the paper itself reports (20% of queries from stocks
// averaging under $30, 50% from $30–60, 30% above). The artificial dataset
// is the paper's own definition, S[p] = S[p-1] + Z_p with i.i.d. Z.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"twsearch/internal/sequence"
)

// Band identifies the paper's three average-price bands.
type Band int

// The price bands of Section 7's query mix.
const (
	BandLow  Band = iota // average price below $30
	BandMid              // average price $30–60
	BandHigh             // average price above $60
)

// BandOf buckets an average price.
func BandOf(avg float64) Band {
	switch {
	case avg < 30:
		return BandLow
	case avg <= 60:
		return BandMid
	default:
		return BandHigh
	}
}

// StockConfig parameterizes the synthetic S&P 500 stand-in.
type StockConfig struct {
	// NumSequences defaults to the paper's 545.
	NumSequences int
	// AvgLen defaults to the paper's 232. Individual lengths are uniform in
	// [AvgLen-LenJitter, AvgLen+LenJitter].
	AvgLen    int
	LenJitter int
	// SigmaFrac is the daily step's standard deviation as a fraction of the
	// start price. The default 0.02 is calibrated so the answer-set sizes
	// of Table 3's eps sweep land near the paper's (tens of answers per
	// query at eps=5, hundreds of thousands at eps=50).
	SigmaFrac float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c StockConfig) withDefaults() StockConfig {
	if c.NumSequences == 0 {
		c.NumSequences = 545
	}
	if c.AvgLen == 0 {
		c.AvgLen = 232
	}
	if c.LenJitter == 0 {
		c.LenJitter = c.AvgLen / 4
	}
	if c.SigmaFrac == 0 {
		c.SigmaFrac = 0.02
	}
	return c
}

// Stocks generates the stock-like dataset: per-sequence start prices drawn
// so the three bands hold 20%/50%/30% of the sequences, then a daily random
// walk with price-proportional steps, rounded to cents and floored at $1.
// It is StocksRand with a generator seeded from cfg.Seed.
func Stocks(cfg StockConfig) *sequence.Dataset {
	return StocksRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// StocksRand is Stocks drawing from an explicit generator. Every random
// choice flows through rng, so two calls with identically seeded generators
// produce identical datasets — the property the reproducibility tests and
// EXPERIMENTS.md tables rely on.
func StocksRand(rng *rand.Rand, cfg StockConfig) *sequence.Dataset {
	cfg = cfg.withDefaults()
	d := sequence.NewDataset()
	for i := 0; i < cfg.NumSequences; i++ {
		var start float64
		switch r := rng.Float64(); {
		case r < 0.20:
			start = 5 + rng.Float64()*23 // [5, 28): stays under $30 on average
		case r < 0.70:
			start = 32 + rng.Float64()*26 // [32, 58)
		default:
			start = 65 + rng.Float64()*85 // [65, 150)
		}
		n := cfg.AvgLen - cfg.LenJitter + rng.Intn(2*cfg.LenJitter+1)
		if n < 2 {
			n = 2
		}
		vals := make([]float64, n)
		price := start
		sigma := math.Max(0.05, cfg.SigmaFrac*start)
		for j := range vals {
			price += rng.NormFloat64() * sigma
			if price < 1 {
				price = 1
			}
			vals[j] = math.Round(price*100) / 100
		}
		d.MustAdd(sequence.Sequence{ID: fmt.Sprintf("stock-%04d", i), Values: vals})
	}
	return d
}

// ArtificialConfig parameterizes the random-walk dataset of Sections 7 and
// 7.3 (scalability): S[p] = S[p-1] + Z_p.
type ArtificialConfig struct {
	NumSequences int
	// Len is the average sequence length; individual lengths are uniform in
	// [Len-LenJitter, Len+LenJitter].
	Len       int
	LenJitter int
	// StepSigma is Z's standard deviation (default 1).
	StepSigma float64
	Seed      int64
}

// Artificial generates the paper's artificial sequences. It is
// ArtificialRand with a generator seeded from cfg.Seed.
func Artificial(cfg ArtificialConfig) *sequence.Dataset {
	return ArtificialRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// ArtificialRand is Artificial drawing from an explicit generator.
func ArtificialRand(rng *rand.Rand, cfg ArtificialConfig) *sequence.Dataset {
	if cfg.StepSigma == 0 {
		cfg.StepSigma = 1
	}
	d := sequence.NewDataset()
	for i := 0; i < cfg.NumSequences; i++ {
		n := cfg.Len
		if cfg.LenJitter > 0 {
			n = cfg.Len - cfg.LenJitter + rng.Intn(2*cfg.LenJitter+1)
		}
		if n < 2 {
			n = 2
		}
		vals := make([]float64, n)
		v := rng.NormFloat64() * 10
		for j := range vals {
			v += rng.NormFloat64() * cfg.StepSigma
			vals[j] = math.Round(v*100) / 100
		}
		d.MustAdd(sequence.Sequence{ID: fmt.Sprintf("art-%05d", i), Values: vals})
	}
	return d
}

// QueryConfig parameterizes query sampling.
type QueryConfig struct {
	// Count is the number of queries to draw.
	Count int
	// AvgLen defaults to the paper's 20; lengths are uniform in
	// [AvgLen-5, AvgLen+5] (clamped to at least 2).
	AvgLen int
	Seed   int64
}

// Queries samples query sequences from the dataset with the paper's band
// mix: 20% from low-band sequences, 50% mid, 30% high. When a band has no
// sequences (artificial data), queries fall back to uniform sampling.
func Queries(data *sequence.Dataset, cfg QueryConfig) [][]float64 {
	return QueriesRand(rand.New(rand.NewSource(cfg.Seed)), data, cfg)
}

// QueriesRand is Queries drawing from an explicit generator.
func QueriesRand(rng *rand.Rand, data *sequence.Dataset, cfg QueryConfig) [][]float64 {
	if cfg.AvgLen == 0 {
		cfg.AvgLen = 20
	}

	// Bucket sequences by average value.
	var buckets [3][]int
	for i := 0; i < data.Len(); i++ {
		vals := data.Values(i)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		b := BandOf(sum / float64(len(vals)))
		buckets[b] = append(buckets[b], i)
	}
	anyBucket := make([]int, data.Len())
	for i := range anyBucket {
		anyBucket[i] = i
	}

	pick := func(b Band) []int {
		if len(buckets[b]) > 0 {
			return buckets[b]
		}
		return anyBucket
	}

	queries := make([][]float64, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		var bucket []int
		switch r := rng.Float64(); {
		case r < 0.20:
			bucket = pick(BandLow)
		case r < 0.70:
			bucket = pick(BandMid)
		default:
			bucket = pick(BandHigh)
		}
		seq := bucket[rng.Intn(len(bucket))]
		vals := data.Values(seq)
		n := cfg.AvgLen - 5 + rng.Intn(11)
		if n < 2 {
			n = 2
		}
		if n > len(vals) {
			n = len(vals)
		}
		start := rng.Intn(len(vals) - n + 1)
		q := make([]float64, n)
		copy(q, vals[start:start+n])
		queries = append(queries, q)
	}
	return queries
}
