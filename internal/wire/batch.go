package wire

// The protocol-version-4 batch RPC: one TBatch frame carries many queries,
// and the server answers with a multiplexed stream — every response frame
// names the item it belongs to, so answers for different items may
// interleave. The stream ends with exactly one TDone (aggregate work
// counters for the whole batch) or one TError (the batch as a whole
// failed: overload, deadline, malformed frame). An individual item's
// failure is a TBatchItemError for that item; the rest of the batch still
// runs. Every v4 message body is version-gated whole, so the versioned
// codecs parse an empty body for protocol versions that predate the frame.

import (
	"encoding/binary"
	"math"
	"time"

	"twsearch/internal/core"
)

// Batch item operations.
const (
	BatchOpSearch byte = 1 // range search: Eps is the threshold, K ignored
	BatchOpKNN    byte = 2 // k-nearest-neighbor: K is the count, Eps ignored
)

// BatchItem is one query of a batch: a range search or a k-NN search
// through the named index.
type BatchItem struct {
	Op    byte
	Index string
	Eps   float64
	K     int
	Query []float64
}

// BatchReq asks for many searches in one round-trip. Timeout and
// Parallelism carry the same per-request semantics as SearchReq, applied
// once to the whole batch: one deadline and one admission slot cover all
// items.
type BatchReq struct {
	DB          string
	Timeout     time.Duration
	Parallelism int
	Items       []BatchItem
}

// Encode appends the request body to b at the current protocol version.
func (m *BatchReq) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the request body as protocol version `version` lays it
// out: the batch RPC exists only at version >= 4.
func (m *BatchReq) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = appendString(b, m.DB)
		b = binary.LittleEndian.AppendUint64(b, uint64(m.Timeout))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Parallelism))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Items)))
		for _, it := range m.Items {
			b = append(b, it.Op)
			b = appendString(b, it.Index)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(it.Eps))
			b = binary.LittleEndian.AppendUint32(b, uint32(it.K))
			b = appendFloats(b, it.Query)
		}
	}
	return b
}

// DecodeBatchReq parses a TBatch body at the current protocol version.
func DecodeBatchReq(body []byte) (BatchReq, error) {
	return DecodeBatchReqAt(body, Version)
}

// DecodeBatchReqAt parses a TBatch body as protocol version `version` lays
// it out, mirroring EncodeAt gate for gate.
func DecodeBatchReqAt(body []byte, version uint16) (BatchReq, error) {
	r := NewReader(body)
	var m BatchReq
	if version >= 4 {
		m.DB = r.String()
		m.Timeout = time.Duration(r.I64())
		m.Parallelism = int(r.U32())
		n := r.U32()
		for i := uint32(0); i < n && r.err == nil; i++ {
			it := BatchItem{
				Op:    r.U8(),
				Index: r.String(),
				Eps:   r.F64(),
				K:     int(r.U32()),
			}
			it.Query = r.Floats()
			m.Items = append(m.Items, it)
		}
	}
	return m, r.Err()
}

// BatchMatch is one streamed answer of one batch item: a Match plus the
// item's index in the batch.
type BatchMatch struct {
	ID       int
	SeqID    string
	Seq      int
	Start    int
	End      int
	Distance float64
}

// Encode appends the match body to b at the current protocol version.
func (m *BatchMatch) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the match body as protocol version `version` lays it
// out: the batch RPC exists only at version >= 4.
func (m *BatchMatch) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.ID))
		b = appendString(b, m.SeqID)
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Seq))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Start))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.End))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Distance))
	}
	return b
}

// DecodeBatchMatch parses a TBatchMatch body at the current protocol
// version.
func DecodeBatchMatch(body []byte) (BatchMatch, error) {
	return DecodeBatchMatchAt(body, Version)
}

// DecodeBatchMatchAt parses a TBatchMatch body as protocol version
// `version` lays it out, mirroring EncodeAt gate for gate.
func DecodeBatchMatchAt(body []byte, version uint16) (BatchMatch, error) {
	r := NewReader(body)
	var m BatchMatch
	if version >= 4 {
		m.ID = int(r.U32())
		m.SeqID = r.String()
		m.Seq = int(r.U32())
		m.Start = int(r.U32())
		m.End = int(r.U32())
		m.Distance = r.F64()
	}
	return m, r.Err()
}

// BatchItemDone reports one batch item's completion, with that item's own
// work counters; the terminating TDone carries the batch-wide aggregate.
type BatchItemDone struct {
	ID    int
	Stats core.SearchStats
}

// Encode appends the body to b at the current protocol version.
func (m *BatchItemDone) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the body as protocol version `version` lays it out: the
// batch RPC exists only at version >= 4; the envelope-cascade counters
// ship only at version >= 5.
func (m *BatchItemDone) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.ID))
		s := m.Stats
		for _, v := range []uint64{
			s.NodesVisited, s.FilterCells, s.PostCells, s.Candidates,
			s.FalseAlarms, s.Answers, s.PagesRead, s.PoolHits, s.PoolMisses,
		} {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		if version >= 5 {
			b = binary.LittleEndian.AppendUint64(b, s.EnvelopePruned)
			b = binary.LittleEndian.AppendUint64(b, s.LBCells)
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Elapsed))
	}
	return b
}

// DecodeBatchItemDone parses a TBatchItemDone body at the current protocol
// version.
func DecodeBatchItemDone(body []byte) (BatchItemDone, error) {
	return DecodeBatchItemDoneAt(body, Version)
}

// DecodeBatchItemDoneAt parses a TBatchItemDone body as protocol version
// `version` lays it out, mirroring EncodeAt gate for gate.
func DecodeBatchItemDoneAt(body []byte, version uint16) (BatchItemDone, error) {
	r := NewReader(body)
	var m BatchItemDone
	if version >= 4 {
		m.ID = int(r.U32())
		m.Stats.NodesVisited = r.U64()
		m.Stats.FilterCells = r.U64()
		m.Stats.PostCells = r.U64()
		m.Stats.Candidates = r.U64()
		m.Stats.FalseAlarms = r.U64()
		m.Stats.Answers = r.U64()
		m.Stats.PagesRead = r.U64()
		m.Stats.PoolHits = r.U64()
		m.Stats.PoolMisses = r.U64()
		if version >= 5 {
			m.Stats.EnvelopePruned = r.U64()
			m.Stats.LBCells = r.U64()
		}
		m.Stats.Elapsed = time.Duration(r.I64())
	}
	return m, r.Err()
}

// BatchItemError reports one batch item's failure; the rest of the batch
// still runs.
type BatchItemError struct {
	ID   int
	Code Code
	Msg  string
}

// Encode appends the body to b at the current protocol version.
func (m *BatchItemError) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the body as protocol version `version` lays it out: the
// batch RPC exists only at version >= 4.
func (m *BatchItemError) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.ID))
		b = append(b, byte(m.Code))
		b = appendString(b, m.Msg)
	}
	return b
}

// DecodeBatchItemError parses a TBatchItemError body at the current
// protocol version.
func DecodeBatchItemError(body []byte) (BatchItemError, error) {
	return DecodeBatchItemErrorAt(body, Version)
}

// DecodeBatchItemErrorAt parses a TBatchItemError body as protocol version
// `version` lays it out, mirroring EncodeAt gate for gate.
func DecodeBatchItemErrorAt(body []byte, version uint16) (BatchItemError, error) {
	r := NewReader(body)
	var m BatchItemError
	if version >= 4 {
		m.ID = int(r.U32())
		m.Code = Code(r.U8())
		m.Msg = r.String()
	}
	return m, r.Err()
}

// ShardsReq asks for a DB's shard topology: how many shards serve it and
// which slice of the global sequence numbering each holds. An unsharded DB
// answers with one range covering everything.
type ShardsReq struct{ DB string }

// Encode appends the request body to b at the current protocol version.
func (m *ShardsReq) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the request body as protocol version `version` lays it
// out: the shards RPC exists only at version >= 4.
func (m *ShardsReq) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = appendString(b, m.DB)
	}
	return b
}

// DecodeShardsReq parses a TShards body at the current protocol version.
func DecodeShardsReq(body []byte) (ShardsReq, error) {
	return DecodeShardsReqAt(body, Version)
}

// DecodeShardsReqAt parses a TShards body as protocol version `version`
// lays it out, mirroring EncodeAt gate for gate.
func DecodeShardsReqAt(body []byte, version uint16) (ShardsReq, error) {
	r := NewReader(body)
	var m ShardsReq
	if version >= 4 {
		m.DB = r.String()
	}
	return m, r.Err()
}

// ShardRange is one shard's slice of the global sequence numbering in a
// ShardsResp.
type ShardRange struct {
	Start int
	Count int
}

// ShardsResp answers TShards.
type ShardsResp struct{ Ranges []ShardRange }

// Encode appends the body to b at the current protocol version.
func (m *ShardsResp) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the body as protocol version `version` lays it out: the
// shards RPC exists only at version >= 4.
func (m *ShardsResp) EncodeAt(b []byte, version uint16) []byte {
	if version >= 4 {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Ranges)))
		for _, sr := range m.Ranges {
			b = binary.LittleEndian.AppendUint64(b, uint64(sr.Start))
			b = binary.LittleEndian.AppendUint64(b, uint64(sr.Count))
		}
	}
	return b
}

// DecodeShardsResp parses a TShardsResp body at the current protocol
// version.
func DecodeShardsResp(body []byte) (ShardsResp, error) {
	return DecodeShardsRespAt(body, Version)
}

// DecodeShardsRespAt parses a TShardsResp body as protocol version
// `version` lays it out, mirroring EncodeAt gate for gate.
func DecodeShardsRespAt(body []byte, version uint16) (ShardsResp, error) {
	r := NewReader(body)
	var m ShardsResp
	if version >= 4 {
		n := r.U32()
		for i := uint32(0); i < n && r.err == nil; i++ {
			m.Ranges = append(m.Ranges, ShardRange{
				Start: int(r.I64()),
				Count: int(r.I64()),
			})
		}
	}
	return m, r.Err()
}
