// Package wire defines the twsearchd network protocol: a versioned,
// length-prefixed binary framing shared by seqdb/server and seqdb/client.
//
// A connection opens with a fixed-size handshake in each direction:
//
//	magic    [4]byte  "TWSD"
//	version  uint16   protocol version (little endian)
//	reserved uint16   zero
//
// The client sends its hello first; the server answers with its own and
// closes the connection if the versions are incompatible. After the
// handshake the stream is a sequence of frames:
//
//	length  uint32   payload size including the type byte (little endian)
//	type    byte     frame type (T* constants)
//	body    [length-1]byte
//
// Requests (client to server) are one frame each; the connection is
// half-duplex, one request at a time. A search-shaped request is answered
// by a stream of TMatch frames terminated by exactly one TDone (carrying
// the search's work counters) or one TError; large answer sets are never
// buffered on either side. Stats and ListIndexes are answered by a single
// TStatsResp / TIndexes frame. All integers are little endian; float64s
// travel as their IEEE-754 bits, so values round-trip exactly and server
// answers are byte-identical to in-process results.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version this package speaks. A server rejects
// hellos with a different version: the framing makes no compatibility
// promises across versions. Version 2 extended StatsResp with per-index
// buffer-pool shard counters; version 3 added the per-request Parallelism
// hint to SearchReq and KNNReq; version 4 added the batch-query RPC
// (TBatch and its per-item response frames), the shard-topology RPC
// (TShards), and the answered-shards list on TError; version 5 extended
// Done with the envelope-cascade counters (EnvelopePruned, LBCells).
const Version = 5

// MinVersion is the oldest protocol version the versioned codecs
// (EncodeAt / Decode*At) can still produce and parse. The live framing
// negotiates Version exactly — the handshake makes no cross-version
// promises — but the gated codecs keep the version-2 layouts encodable
// so recorded frames and migration tooling can round-trip old captures.
const MinVersion = 2

// magic identifies a twsearchd connection.
var magic = [4]byte{'T', 'W', 'S', 'D'}

// MaxFrame bounds a frame's payload (64 MiB): large enough for any real
// query or answer frame, small enough that a corrupt or hostile length
// prefix cannot make a peer allocate unbounded memory.
const MaxFrame = 1 << 26

// Frame types. Requests are 0x0*, responses 0x1*.
const (
	TSearch      byte = 0x01 // SearchReq: range search via an index
	TKNN         byte = 0x02 // KNNReq: k-nearest-neighbor search
	TScan        byte = 0x03 // ScanReq: exhaustive sequential scan
	TStats       byte = 0x04 // StatsReq: dataset summary statistics
	TListIndexes byte = 0x05 // ListIndexesReq: open indexes of a DB
	TBatch       byte = 0x06 // BatchReq: many queries in one round-trip (v4)
	TShards      byte = 0x07 // ShardsReq: shard topology of a DB (v4)

	TMatch          byte = 0x10 // Match: one streamed answer
	TDone           byte = 0x11 // Done: end of a match stream, with stats
	TError          byte = 0x12 // ErrorFrame: request failed
	TStatsResp      byte = 0x13 // StatsResp: answer to TStats
	TIndexes        byte = 0x14 // IndexesResp: answer to TListIndexes
	TBatchMatch     byte = 0x15 // BatchMatch: one answer of one batch item (v4)
	TBatchItemDone  byte = 0x16 // BatchItemDone: one batch item finished (v4)
	TBatchItemError byte = 0x17 // BatchItemError: one batch item failed (v4)
	TShardsResp     byte = 0x18 // ShardsResp: answer to TShards (v4)
)

// ErrBadMagic reports a handshake that is not a twsearchd hello.
var ErrBadMagic = errors.New("wire: bad magic, not a twsearchd connection")

// ErrVersion reports a handshake with an incompatible protocol version.
var ErrVersion = errors.New("wire: incompatible protocol version")

// WriteHello sends the 8-byte handshake.
func WriteHello(w io.Writer) error {
	var b [8]byte
	copy(b[:4], magic[:])
	binary.LittleEndian.PutUint16(b[4:6], Version)
	_, err := w.Write(b[:])
	return err
}

// ReadHello reads and validates the peer's handshake, returning its
// version. A wrong magic yields ErrBadMagic; a version mismatch ErrVersion
// (the version is still returned for diagnostics).
func ReadHello(r io.Reader) (uint16, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("wire: reading hello: %w", err)
	}
	if [4]byte(b[:4]) != magic {
		return 0, ErrBadMagic
	}
	v := binary.LittleEndian.Uint16(b[4:6])
	if v != Version {
		return v, fmt.Errorf("%w: peer speaks %d, this side %d", ErrVersion, v, Version)
	}
	return v, nil
}

// WriteFrame sends one frame: length prefix, type byte, body.
func WriteFrame(w io.Writer, t byte, body []byte) error {
	if len(body)+1 > MaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds MaxFrame", len(body))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = t
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame, enforcing the MaxFrame bound before
// allocating. The returned body aliases a fresh buffer.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, errors.New("wire: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return buf[0], buf[1:], nil
}

// Code classifies a server-side failure for the wire. It survives the trip
// so clients can react with errors.Is instead of string matching.
type Code uint8

// The error codes a TError frame can carry.
const (
	CodeBadRequest       Code = 1 // malformed or semantically invalid request
	CodeNotFound         Code = 2 // unknown DB or index name
	CodeOverloaded       Code = 3 // admission semaphore full; retry later
	CodeDeadline         Code = 4 // request deadline exceeded mid-search
	CodeShutdown         Code = 5 // server draining; the search was canceled
	CodeInternal         Code = 6 // anything else
	CodeShardUnavailable Code = 7 // a sharded search lost one or more shards (v4)
)

func (c Code) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeNotFound:
		return "not-found"
	case CodeOverloaded:
		return "overloaded"
	case CodeDeadline:
		return "deadline"
	case CodeShutdown:
		return "shutdown"
	case CodeInternal:
		return "internal"
	case CodeShardUnavailable:
		return "shard-unavailable"
	}
	return fmt.Sprintf("code-%d", uint8(c))
}

// Error is a server failure as seen through the wire. It is the typed form
// of a TError frame; equality for errors.Is is by Code, and CodeDeadline /
// CodeShutdown errors additionally match context.DeadlineExceeded /
// context.Canceled so context-shaped callers need no wire-specific checks.
// Answered, set on CodeShardUnavailable errors since protocol version 4,
// lists the shards that returned complete results before the search lost
// the rest.
type Error struct {
	Code     Code
	Msg      string
	Answered []int
}

func (e *Error) Error() string {
	return fmt.Sprintf("twsearchd: %s (%s)", e.Msg, e.Code)
}

// Is matches any *Error with the same code, plus the context sentinels the
// code stands for.
func (e *Error) Is(target error) bool {
	if o, ok := target.(*Error); ok {
		return o.Code == e.Code
	}
	switch target {
	case context.DeadlineExceeded:
		return e.Code == CodeDeadline
	case context.Canceled:
		return e.Code == CodeShutdown
	}
	return false
}

// ErrOverloaded, ErrShutdown and ErrShardUnavailable are errors.Is targets
// for the admission and partial-failure outcomes callers branch on.
var (
	ErrOverloaded       = &Error{Code: CodeOverloaded, Msg: "server overloaded"}
	ErrShutdown         = &Error{Code: CodeShutdown, Msg: "server shutting down"}
	ErrShardUnavailable = &Error{Code: CodeShardUnavailable, Msg: "shard unavailable"}
)

// CodeOf classifies err for transmission: a *Error keeps its code, context
// errors map to CodeDeadline/CodeShutdown, everything else is internal.
func CodeOf(err error) Code {
	var we *Error
	if errors.As(err, &we) {
		return we.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeShutdown
	}
	return CodeInternal
}

// appendString appends a u32-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// appendFloats appends a u32-count-prefixed []float64.
func appendFloats(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// Reader decodes a frame body with a sticky error: after any short read
// every accessor returns zero values and Err reports the failure, so
// decoders read fields straight through and check once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a frame body.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// Bool reads a byte as a boolean. Only 0 and 1 are accepted: a canonical
// encoding keeps decode∘encode the identity on valid frames, which the
// round-trip fuzzer (FuzzFrameRoundTrip) relies on byte for byte.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.err = fmt.Errorf("non-canonical boolean byte %#x", v)
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 as IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err == nil && int64(n) > int64(len(r.b)-r.off) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.take(int(n)))
}

// Floats reads a u32-count-prefixed []float64.
func (r *Reader) Floats() []float64 {
	n := r.U32()
	if r.err == nil && int64(n)*8 > int64(len(r.b)-r.off) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	if r.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

// Err returns the first decoding failure, or an error if the body has
// undecoded trailing bytes — a frame must be consumed exactly.
func (r *Reader) Err() error {
	if r.err != nil {
		return fmt.Errorf("wire: bad frame: %w", r.err)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame", len(r.b)-r.off)
	}
	return nil
}
