package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"twsearch/internal/core"
	"twsearch/internal/sequence"
)

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHello(&buf)
	if err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
	if v != Version {
		t.Fatalf("version %d, want %d", v, Version)
	}
}

func TestHelloBadMagic(t *testing.T) {
	if _, err := ReadHello(strings.NewReader("HTTP/1.1")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestHelloBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4], b[5] = 0xFF, 0xFF
	if _, err := ReadHello(bytes.NewReader(b)); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestHelloTruncated(t *testing.T) {
	if _, err := ReadHello(strings.NewReader("TWS")); err == nil {
		t.Fatal("want error on truncated hello")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TMatch, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, TDone, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil || typ != TMatch || string(body) != "hello" {
		t.Fatalf("frame 1 = (%#x, %q, %v)", typ, body, err)
	}
	typ, body, err = ReadFrame(&buf)
	if err != nil || typ != TDone || len(body) != 0 {
		t.Fatalf("frame 2 = (%#x, %q, %v)", typ, body, err)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("at end: %v, want io.EOF", err)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// Zero-length frames are invalid: the type byte is part of the payload.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("want error on zero-length frame")
	}
	// A hostile length prefix must fail before allocating.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("want error on oversized frame")
	}
	// Truncated body.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{5, 0, 0, 0, TMatch, 'x'})); err == nil {
		t.Fatal("want error on truncated body")
	}
}

func TestSearchReqRoundTrip(t *testing.T) {
	in := SearchReq{
		DB:          "default",
		Index:       "fast",
		Eps:         3.75,
		Timeout:     1500 * time.Millisecond,
		Parallelism: 4,
		Query:       []float64{1, -2.5, math.Pi, 0},
	}
	out, err := DecodeSearchReq(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestKNNReqRoundTrip(t *testing.T) {
	in := KNNReq{DB: "d", Index: "i", K: 7, Parallelism: 2, Query: []float64{42}}
	out, err := DecodeKNNReq(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestScanReqRoundTrip(t *testing.T) {
	in := ScanReq{DB: "d", Eps: 0.5, Timeout: time.Second, Query: []float64{1, 2}}
	out, err := DecodeScanReq(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestSmallReqsRoundTrip(t *testing.T) {
	s, err := DecodeStatsReq((&StatsReq{DB: "x"}).Encode(nil))
	if err != nil || s.DB != "x" {
		t.Fatalf("stats req: %+v, %v", s, err)
	}
	l, err := DecodeListIndexesReq((&ListIndexesReq{DB: "y"}).Encode(nil))
	if err != nil || l.DB != "y" {
		t.Fatalf("list req: %+v, %v", l, err)
	}
}

func TestMatchRoundTripExactBits(t *testing.T) {
	// The distance must survive bit-exactly, including a signaling-ish NaN
	// payload: byte-identity over the wire is the acceptance bar.
	d := math.Float64frombits(0x7FF8_0000_DEAD_BEEF)
	in := Match{SeqID: "stock-0001", Seq: 1, Start: 10, End: 25, Distance: d}
	out, err := DecodeMatch(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.SeqID != in.SeqID || out.Seq != in.Seq || out.Start != in.Start || out.End != in.End {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if math.Float64bits(out.Distance) != math.Float64bits(in.Distance) {
		t.Fatalf("distance bits changed: %x != %x",
			math.Float64bits(out.Distance), math.Float64bits(in.Distance))
	}
}

func TestDoneRoundTrip(t *testing.T) {
	in := Done{Stats: core.SearchStats{
		NodesVisited: 1, FilterCells: 2, PostCells: 3, Candidates: 4,
		FalseAlarms: 5, Answers: 6, PagesRead: 7, PoolHits: 8, PoolMisses: 9,
		Elapsed: 10 * time.Millisecond,
	}}
	out, err := DecodeDone(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestErrorRoundTripAndIs(t *testing.T) {
	body := EncodeError(nil, ErrOverloaded)
	e, err := DecodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e, ErrOverloaded) {
		t.Fatalf("decoded error %v does not match ErrOverloaded", e)
	}
	if errors.Is(e, ErrShutdown) {
		t.Fatal("overloaded must not match shutdown")
	}

	// Deadline and shutdown codes stand in for their context sentinels.
	de, err := DecodeError(EncodeError(nil, context.DeadlineExceeded))
	if err != nil {
		t.Fatal(err)
	}
	if de.Code != CodeDeadline || !errors.Is(de, context.DeadlineExceeded) {
		t.Fatalf("deadline mapping broken: %+v", de)
	}
	ce, err := DecodeError(EncodeError(nil, context.Canceled))
	if err != nil {
		t.Fatal(err)
	}
	if ce.Code != CodeShutdown || !errors.Is(ce, context.Canceled) {
		t.Fatalf("canceled mapping broken: %+v", ce)
	}
	if got := CodeOf(errors.New("boom")); got != CodeInternal {
		t.Fatalf("CodeOf(plain) = %v, want internal", got)
	}
}

func TestStatsRespRoundTrip(t *testing.T) {
	in := StatsResp{
		Stats: sequence.Stats{
			Sequences: 3, TotalElements: 99, AvgLen: 33, MinLen: 10, MaxLen: 50,
			MinValue: -1.5, MaxValue: 9.75, MeanValue: 2.25, StdDev: 1.125,
		},
		Pools: []PoolInfo{
			{Index: "fast", Shards: []PoolShard{
				{Hits: 10, Misses: 2, Evictions: 1},
				{Hits: 7, Misses: 3},
			}},
			{Index: "exact", Shards: []PoolShard{{Misses: 5}}},
		},
	}
	out, err := DecodeStatsResp(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	noPools, err := DecodeStatsResp((&StatsResp{}).Encode(nil))
	if err != nil || len(noPools.Pools) != 0 {
		t.Fatalf("empty-pools round trip: %+v, %v", noPools, err)
	}
}

func TestIndexesRespRoundTrip(t *testing.T) {
	in := IndexesResp{Indexes: []IndexInfo{
		{Name: "fast", Method: "max-entropy", Categories: 20, Sparse: true,
			Window: -1, MinAnswerLen: 0, SizeBytes: 1 << 20, Leaves: 100, Nodes: 130},
		{Name: "exact", Method: "identity", Window: 8},
	}}
	out, err := DecodeIndexesResp(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	empty, err := DecodeIndexesResp((&IndexesResp{}).Encode(nil))
	if err != nil || len(empty.Indexes) != 0 {
		t.Fatalf("empty round trip: %+v, %v", empty, err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := (&SearchReq{DB: "d", Index: "i", Eps: 1, Query: []float64{1, 2, 3}}).Encode(nil)
	// Every truncation of a valid body must fail cleanly, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeSearchReq(good[:n]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", n)
		}
	}
	// Trailing garbage is rejected too: frames are consumed exactly.
	if _, err := DecodeSearchReq(append(append([]byte{}, good...), 0xAA)); err == nil {
		t.Fatal("trailing bytes decoded successfully")
	}
	// A string length that overruns the body must not allocate or read OOB.
	bad := append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, "tiny"...)
	if _, err := DecodeSearchReq(bad); err == nil {
		t.Fatal("oversized string length decoded successfully")
	}
	// A float count that overruns the body must fail before allocating.
	badFloats := (&ScanReq{DB: "d", Eps: 1}).Encode(nil)
	badFloats = badFloats[:len(badFloats)-4]
	badFloats = append(badFloats, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := DecodeScanReq(badFloats); err == nil {
		t.Fatal("oversized float count decoded successfully")
	}
}
