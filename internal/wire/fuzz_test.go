package wire

import (
	"bytes"
	"testing"
	"time"

	"twsearch/internal/core"
)

// FuzzFrameRoundTrip is the dynamic counterpart to the wireconform static
// analyzer: for every message type and protocol version, any body the
// decoder accepts must re-encode to the identical bytes. Because Reader
// rejects trailing bytes and non-canonical booleans, every field layout is
// bijective on valid frames — a skew between an encode/decode pair (wrong
// width, wrong order, asymmetric version gate) shows up as a byte diff.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed one well-formed body per frame type, both protocol versions for
	// the version-gated requests.
	sreq := SearchReq{DB: "db", Index: "ix", Eps: 0.5, Timeout: time.Second,
		Parallelism: 4, Query: []float64{1, 2, 3}}
	kreq := KNNReq{DB: "db", Index: "ix", K: 7, Timeout: time.Second,
		Parallelism: 2, Query: []float64{4, 5}}
	screq := ScanReq{DB: "db", Eps: 1.25, Query: []float64{6}}
	match := Match{SeqID: "s", Seq: 1, Start: 2, End: 9, Distance: 0.75}
	done := Done{Stats: core.SearchStats{NodesVisited: 3, Answers: 1, Elapsed: time.Millisecond}}
	stats := StatsResp{Pools: []PoolInfo{{Index: "ix", Shards: []PoolShard{{Hits: 1}}}}}
	idx := IndexesResp{Indexes: []IndexInfo{{Name: "ix", Method: "paa", Sparse: true, Window: -1}}}
	breq := BatchReq{DB: "db", Timeout: time.Second, Parallelism: 2, Items: []BatchItem{
		{Op: BatchOpSearch, Index: "ix", Eps: 0.5, Query: []float64{1, 2}},
		{Op: BatchOpKNN, Index: "ix", K: 3, Query: []float64{4}},
	}}
	bmatch := BatchMatch{ID: 1, SeqID: "s", Seq: 2, Start: 3, End: 9, Distance: 0.5}
	bdone := BatchItemDone{ID: 1, Stats: core.SearchStats{Answers: 2, Elapsed: time.Millisecond}}
	berr := BatchItemError{ID: 1, Code: CodeNotFound, Msg: "no such index"}
	shresp := ShardsResp{Ranges: []ShardRange{{Start: 0, Count: 3}, {Start: 3, Count: 2}}}
	partial := &Error{Code: CodeShardUnavailable, Msg: "shard 1 lost", Answered: []int{0, 2}}

	f.Add(TSearch, uint16(Version), sreq.Encode(nil))
	f.Add(TSearch, uint16(MinVersion), sreq.EncodeAt(nil, MinVersion))
	f.Add(TKNN, uint16(Version), kreq.Encode(nil))
	f.Add(TKNN, uint16(MinVersion), kreq.EncodeAt(nil, MinVersion))
	f.Add(TScan, uint16(Version), screq.Encode(nil))
	f.Add(TStats, uint16(Version), (&StatsReq{DB: "db"}).Encode(nil))
	f.Add(TListIndexes, uint16(Version), (&ListIndexesReq{DB: "db"}).Encode(nil))
	f.Add(TMatch, uint16(Version), match.Encode(nil))
	f.Add(TDone, uint16(Version), done.Encode(nil))
	f.Add(TError, uint16(Version), EncodeError(nil, ErrOverloaded))
	f.Add(TError, uint16(Version), EncodeErrorAt(nil, partial, Version))
	f.Add(TError, uint16(MinVersion), EncodeErrorAt(nil, partial, MinVersion))
	f.Add(TStatsResp, uint16(Version), stats.Encode(nil))
	f.Add(TIndexes, uint16(Version), idx.Encode(nil))
	// The protocol-v4 batch and shard-topology messages: their whole bodies
	// sit behind the version gate, so the MinVersion seeds are empty bodies
	// and the identity must hold at every clamped version.
	f.Add(TBatch, uint16(Version), breq.Encode(nil))
	f.Add(TBatch, uint16(MinVersion), breq.EncodeAt(nil, MinVersion))
	f.Add(TBatchMatch, uint16(Version), bmatch.Encode(nil))
	f.Add(TBatchItemDone, uint16(Version), bdone.Encode(nil))
	f.Add(TBatchItemError, uint16(Version), berr.Encode(nil))
	f.Add(TShards, uint16(Version), (&ShardsReq{DB: "db"}).Encode(nil))
	f.Add(TShardsResp, uint16(Version), shresp.Encode(nil))
	f.Add(TShardsResp, uint16(MinVersion), shresp.EncodeAt(nil, MinVersion))

	f.Fuzz(func(t *testing.T, typ byte, version uint16, body []byte) {
		// Clamp the fuzzed version into the codec-supported window so the
		// gated requests exercise both layouts.
		v := MinVersion + version%(Version-MinVersion+1)
		var reenc []byte
		var err error
		switch typ {
		case TSearch:
			var m SearchReq
			if m, err = DecodeSearchReqAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TKNN:
			var m KNNReq
			if m, err = DecodeKNNReqAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TScan:
			var m ScanReq
			if m, err = DecodeScanReq(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TStats:
			var m StatsReq
			if m, err = DecodeStatsReq(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TListIndexes:
			var m ListIndexesReq
			if m, err = DecodeListIndexesReq(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TMatch:
			var m Match
			if m, err = DecodeMatch(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TDone:
			var m Done
			if m, err = DecodeDone(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TError:
			var e *Error
			if e, err = DecodeErrorAt(body, v); err == nil {
				reenc = EncodeErrorAt(nil, e, v)
			}
		case TStatsResp:
			var m StatsResp
			if m, err = DecodeStatsResp(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TIndexes:
			var m IndexesResp
			if m, err = DecodeIndexesResp(body); err == nil {
				reenc = m.Encode(nil)
			}
		case TBatch:
			var m BatchReq
			if m, err = DecodeBatchReqAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TBatchMatch:
			var m BatchMatch
			if m, err = DecodeBatchMatchAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TBatchItemDone:
			var m BatchItemDone
			if m, err = DecodeBatchItemDoneAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TBatchItemError:
			var m BatchItemError
			if m, err = DecodeBatchItemErrorAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TShards:
			var m ShardsReq
			if m, err = DecodeShardsReqAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		case TShardsResp:
			var m ShardsResp
			if m, err = DecodeShardsRespAt(body, v); err == nil {
				reenc = m.EncodeAt(nil, v)
			}
		default:
			return
		}
		if err != nil {
			return // malformed input rejected: nothing to compare
		}
		if len(body) == 0 && len(reenc) == 0 {
			return
		}
		if !bytes.Equal(reenc, body) {
			t.Fatalf("type %#x v%d: decode∘encode not identity:\n in:  %x\n out: %x",
				typ, v, body, reenc)
		}
	})
}
