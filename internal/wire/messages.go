package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"time"

	"twsearch/internal/core"
	"twsearch/internal/sequence"
)

// SearchReq asks for a range search through an index of the named DB.
// Timeout, when positive, is the client's deadline hint; the server applies
// the tighter of this and its own per-search ceiling. Parallelism, when
// above 1, asks the server to run this search across that many worker
// goroutines; the server caps it at its configured per-query maximum (0
// means serial). Answers are byte-identical either way.
type SearchReq struct {
	DB          string
	Index       string
	Eps         float64
	Timeout     time.Duration
	Parallelism int
	Query       []float64
}

// Encode appends the request body to b at the current protocol version.
func (m *SearchReq) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the request body as protocol version `version` lays it
// out: the Parallelism hint ships only at version >= 3.
func (m *SearchReq) EncodeAt(b []byte, version uint16) []byte {
	b = appendString(b, m.DB)
	b = appendString(b, m.Index)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Eps))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Timeout))
	if version >= 3 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Parallelism))
	}
	return appendFloats(b, m.Query)
}

// DecodeSearchReq parses a TSearch body at the current protocol version.
func DecodeSearchReq(body []byte) (SearchReq, error) {
	return DecodeSearchReqAt(body, Version)
}

// DecodeSearchReqAt parses a TSearch body as protocol version `version`
// lays it out, mirroring EncodeAt gate for gate.
func DecodeSearchReqAt(body []byte, version uint16) (SearchReq, error) {
	r := NewReader(body)
	m := SearchReq{
		DB:      r.String(),
		Index:   r.String(),
		Eps:     r.F64(),
		Timeout: time.Duration(r.I64()),
	}
	if version >= 3 {
		m.Parallelism = int(r.U32())
	}
	m.Query = r.Floats()
	return m, r.Err()
}

// KNNReq asks for the K nearest subsequences through an index. Parallelism
// is the same per-request hint as SearchReq's.
type KNNReq struct {
	DB          string
	Index       string
	K           int
	Timeout     time.Duration
	Parallelism int
	Query       []float64
}

// Encode appends the request body to b at the current protocol version.
func (m *KNNReq) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the request body as protocol version `version` lays it
// out: the Parallelism hint ships only at version >= 3.
func (m *KNNReq) EncodeAt(b []byte, version uint16) []byte {
	b = appendString(b, m.DB)
	b = appendString(b, m.Index)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.K))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Timeout))
	if version >= 3 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Parallelism))
	}
	return appendFloats(b, m.Query)
}

// DecodeKNNReq parses a TKNN body at the current protocol version.
func DecodeKNNReq(body []byte) (KNNReq, error) {
	return DecodeKNNReqAt(body, Version)
}

// DecodeKNNReqAt parses a TKNN body as protocol version `version` lays it
// out, mirroring EncodeAt gate for gate.
func DecodeKNNReqAt(body []byte, version uint16) (KNNReq, error) {
	r := NewReader(body)
	m := KNNReq{
		DB:      r.String(),
		Index:   r.String(),
		K:       int(r.U32()),
		Timeout: time.Duration(r.I64()),
	}
	if version >= 3 {
		m.Parallelism = int(r.U32())
	}
	m.Query = r.Floats()
	return m, r.Err()
}

// ScanReq asks for the exhaustive sequential-scan baseline.
type ScanReq struct {
	DB      string
	Eps     float64
	Timeout time.Duration
	Query   []float64
}

// Encode appends the request body to b.
func (m *ScanReq) Encode(b []byte) []byte {
	b = appendString(b, m.DB)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Eps))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Timeout))
	return appendFloats(b, m.Query)
}

// DecodeScanReq parses a TScan body.
func DecodeScanReq(body []byte) (ScanReq, error) {
	r := NewReader(body)
	m := ScanReq{
		DB:      r.String(),
		Eps:     r.F64(),
		Timeout: time.Duration(r.I64()),
	}
	m.Query = r.Floats()
	return m, r.Err()
}

// StatsReq asks for a DB's dataset summary; ListIndexesReq for its open
// indexes. Both carry only the DB name.
type StatsReq struct{ DB string }

// Encode appends the request body to b.
func (m *StatsReq) Encode(b []byte) []byte { return appendString(b, m.DB) }

// DecodeStatsReq parses a TStats body.
func DecodeStatsReq(body []byte) (StatsReq, error) {
	r := NewReader(body)
	m := StatsReq{DB: r.String()}
	return m, r.Err()
}

// ListIndexesReq asks for the open indexes of a DB.
type ListIndexesReq struct{ DB string }

// Encode appends the request body to b.
func (m *ListIndexesReq) Encode(b []byte) []byte { return appendString(b, m.DB) }

// DecodeListIndexesReq parses a TListIndexes body.
func DecodeListIndexesReq(body []byte) (ListIndexesReq, error) {
	r := NewReader(body)
	m := ListIndexesReq{DB: r.String()}
	return m, r.Err()
}

// Match is one streamed answer. The float64 distance travels as bits, so a
// streamed answer set is byte-identical to the in-process one.
type Match struct {
	SeqID    string
	Seq      int
	Start    int
	End      int
	Distance float64
}

// Encode appends the match body to b.
func (m *Match) Encode(b []byte) []byte {
	b = appendString(b, m.SeqID)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Seq))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Start))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.End))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Distance))
}

// DecodeMatch parses a TMatch body.
func DecodeMatch(body []byte) (Match, error) {
	r := NewReader(body)
	m := Match{
		SeqID: r.String(),
		Seq:   int(r.U32()),
		Start: int(r.U32()),
		End:   int(r.U32()),
	}
	m.Distance = r.F64()
	return m, r.Err()
}

// Done terminates a match stream, carrying the search's work counters.
type Done struct{ Stats core.SearchStats }

// Encode appends the done body to b at the current protocol version.
func (m *Done) Encode(b []byte) []byte { return m.EncodeAt(b, Version) }

// EncodeAt appends the done body as protocol version `version` lays it
// out: the envelope-cascade counters ship only at version >= 5.
func (m *Done) EncodeAt(b []byte, version uint16) []byte {
	s := m.Stats
	for _, v := range []uint64{
		s.NodesVisited, s.FilterCells, s.PostCells, s.Candidates,
		s.FalseAlarms, s.Answers, s.PagesRead, s.PoolHits, s.PoolMisses,
	} {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	if version >= 5 {
		b = binary.LittleEndian.AppendUint64(b, s.EnvelopePruned)
		b = binary.LittleEndian.AppendUint64(b, s.LBCells)
	}
	return binary.LittleEndian.AppendUint64(b, uint64(s.Elapsed))
}

// DecodeDone parses a TDone body at the current protocol version.
func DecodeDone(body []byte) (Done, error) { return DecodeDoneAt(body, Version) }

// DecodeDoneAt parses a TDone body as protocol version `version` lays it
// out, mirroring EncodeAt gate for gate.
func DecodeDoneAt(body []byte, version uint16) (Done, error) {
	r := NewReader(body)
	var m Done
	m.Stats.NodesVisited = r.U64()
	m.Stats.FilterCells = r.U64()
	m.Stats.PostCells = r.U64()
	m.Stats.Candidates = r.U64()
	m.Stats.FalseAlarms = r.U64()
	m.Stats.Answers = r.U64()
	m.Stats.PagesRead = r.U64()
	m.Stats.PoolHits = r.U64()
	m.Stats.PoolMisses = r.U64()
	if version >= 5 {
		m.Stats.EnvelopePruned = r.U64()
		m.Stats.LBCells = r.U64()
	}
	m.Stats.Elapsed = time.Duration(r.I64())
	return m, r.Err()
}

// EncodeError appends a TError body for err to b at the current protocol
// version.
func EncodeError(b []byte, err error) []byte { return EncodeErrorAt(b, err, Version) }

// EncodeErrorAt appends a TError body as protocol version `version` lays it
// out: the answered-shards list ships only at version >= 4.
func EncodeErrorAt(b []byte, err error, version uint16) []byte {
	b = append(b, byte(CodeOf(err)))
	// A typed *Error ships its bare message: Error() adds the daemon
	// prefix and code suffix, which the receiving side adds again.
	var we *Error
	if errors.As(err, &we) {
		b = appendString(b, we.Msg)
	} else {
		b = appendString(b, err.Error())
	}
	if version >= 4 {
		var answered []int
		if we != nil {
			answered = we.Answered
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(answered)))
		for _, s := range answered {
			b = binary.LittleEndian.AppendUint32(b, uint32(s))
		}
	}
	return b
}

// DecodeError parses a TError body into the typed *Error at the current
// protocol version.
func DecodeError(body []byte) (*Error, error) { return DecodeErrorAt(body, Version) }

// DecodeErrorAt parses a TError body as protocol version `version` lays it
// out, mirroring EncodeErrorAt gate for gate.
func DecodeErrorAt(body []byte, version uint16) (*Error, error) {
	r := NewReader(body)
	e := &Error{Code: Code(r.U8()), Msg: r.String()}
	if version >= 4 {
		n := r.U32()
		for i := uint32(0); i < n && r.err == nil; i++ {
			e.Answered = append(e.Answered, int(r.U32()))
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// PoolShard is one buffer-pool shard's counters in a StatsResp.
type PoolShard struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// PoolInfo reports one index's buffer-pool shards.
type PoolInfo struct {
	Index  string
	Shards []PoolShard
}

// StatsResp answers TStats with the dataset's summary statistics and, since
// protocol version 2, each open index's buffer-pool shard counters.
type StatsResp struct {
	Stats sequence.Stats
	Pools []PoolInfo
}

// Encode appends the stats body to b.
func (m *StatsResp) Encode(b []byte) []byte {
	s := m.Stats
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Sequences))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.TotalElements))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.MinLen))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.MaxLen))
	for _, v := range []float64{s.AvgLen, s.MinValue, s.MaxValue, s.MeanValue, s.StdDev} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Pools)))
	for _, p := range m.Pools {
		b = appendString(b, p.Index)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Shards)))
		for _, sh := range p.Shards {
			b = binary.LittleEndian.AppendUint64(b, sh.Hits)
			b = binary.LittleEndian.AppendUint64(b, sh.Misses)
			b = binary.LittleEndian.AppendUint64(b, sh.Evictions)
		}
	}
	return b
}

// DecodeStatsResp parses a TStatsResp body.
func DecodeStatsResp(body []byte) (StatsResp, error) {
	r := NewReader(body)
	var m StatsResp
	m.Stats.Sequences = int(r.I64())
	m.Stats.TotalElements = int(r.I64())
	m.Stats.MinLen = int(r.I64())
	m.Stats.MaxLen = int(r.I64())
	m.Stats.AvgLen = r.F64()
	m.Stats.MinValue = r.F64()
	m.Stats.MaxValue = r.F64()
	m.Stats.MeanValue = r.F64()
	m.Stats.StdDev = r.F64()
	nPools := r.U32()
	for i := uint32(0); i < nPools && r.err == nil; i++ {
		p := PoolInfo{Index: r.String()}
		nShards := r.U32()
		for j := uint32(0); j < nShards && r.err == nil; j++ {
			p.Shards = append(p.Shards, PoolShard{
				Hits:      r.U64(),
				Misses:    r.U64(),
				Evictions: r.U64(),
			})
		}
		m.Pools = append(m.Pools, p)
	}
	return m, r.Err()
}

// IndexInfo describes one open index in an IndexesResp. It mirrors
// seqdb.IndexInfo flattened to wire-stable fields.
type IndexInfo struct {
	Name         string
	Method       string
	Categories   int
	Sparse       bool
	Window       int
	MinAnswerLen int
	SizeBytes    int64
	Leaves       uint64
	Nodes        uint64
}

// IndexesResp answers TListIndexes.
type IndexesResp struct{ Indexes []IndexInfo }

// Encode appends the indexes body to b.
func (m *IndexesResp) Encode(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Indexes)))
	for _, ix := range m.Indexes {
		b = appendString(b, ix.Name)
		b = appendString(b, ix.Method)
		b = binary.LittleEndian.AppendUint32(b, uint32(ix.Categories))
		if ix.Sparse {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(ix.Window)))
		b = binary.LittleEndian.AppendUint32(b, uint32(ix.MinAnswerLen))
		b = binary.LittleEndian.AppendUint64(b, uint64(ix.SizeBytes))
		b = binary.LittleEndian.AppendUint64(b, ix.Leaves)
		b = binary.LittleEndian.AppendUint64(b, ix.Nodes)
	}
	return b
}

// DecodeIndexesResp parses a TIndexes body.
func DecodeIndexesResp(body []byte) (IndexesResp, error) {
	r := NewReader(body)
	n := r.U32()
	var m IndexesResp
	for i := uint32(0); i < n && r.err == nil; i++ {
		ix := IndexInfo{
			Name:       r.String(),
			Method:     r.String(),
			Categories: int(r.U32()),
			Sparse:     r.Bool(),
			Window:     int(r.I64()),
		}
		ix.MinAnswerLen = int(r.U32())
		ix.SizeBytes = r.I64()
		ix.Leaves = r.U64()
		ix.Nodes = r.U64()
		m.Indexes = append(m.Indexes, ix)
	}
	return m, r.Err()
}
