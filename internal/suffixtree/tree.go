// Package suffixtree implements the in-memory generalized suffix tree of
// Section 4: a compressed trie over the suffixes of a set of categorized
// sequences, each suffix ended by a per-sequence terminator symbol so that
// every suffix owns exactly one leaf labelled (t, p).
//
// Trees are built the way the paper describes: a suffix tree per sequence
// (Ukkonen's algorithm), then a series of binary merges (Section 4.1, after
// Bieganski et al.). A naive suffix-insertion builder doubles as the
// executable specification the fast builders are tested against, and as the
// builder for sparse trees (Section 6), which store only the run-head
// suffixes.
//
// The disk-resident representation lives in internal/disktree; it
// serializes trees produced here and merges them on disk.
package suffixtree

import (
	"fmt"
	"sort"

	"twsearch/internal/categorize"
)

// Symbol aliases the categorization symbol type. Non-negative symbols are
// category indexes; negative symbols are per-sequence terminators.
type Symbol = categorize.Symbol

// Terminator returns the unique end-marker symbol of sequence seq.
func Terminator(seq int) Symbol { return Symbol(-(seq + 1)) }

// IsTerminator reports whether sym is an end marker.
func IsTerminator(sym Symbol) bool { return sym < 0 }

// TextStore owns the categorized symbol sequences a tree (or several trees
// being merged) refers to. Edge labels are (seq, start, len) references into
// the store; position len(text) of sequence seq reads as Terminator(seq).
type TextStore struct {
	texts [][]Symbol
}

// NewTextStore returns an empty store.
func NewTextStore() *TextStore { return &TextStore{} }

// Add appends a sequence and returns its id. Empty sequences are allowed in
// the store but cannot be indexed.
func (ts *TextStore) Add(syms []Symbol) int {
	ts.texts = append(ts.texts, syms)
	return len(ts.texts) - 1
}

// Len returns the number of sequences.
func (ts *TextStore) Len() int { return len(ts.texts) }

// Text returns the symbols of sequence seq (without terminator).
func (ts *TextStore) Text(seq int) []Symbol { return ts.texts[seq] }

// Sym reads position pos of sequence seq; pos == len(text) yields the
// sequence's terminator.
func (ts *TextStore) Sym(seq, pos int) Symbol {
	t := ts.texts[seq]
	if pos == len(t) {
		return Terminator(seq)
	}
	return t[pos]
}

// Node is a suffix tree node. The edge from the parent is the label
// (LabelSeq, LabelStart, LabelLen); the root has LabelLen == 0. Children are
// kept sorted by the first symbol of their edge label, which makes merges a
// linear zip and traversal deterministic.
type Node struct {
	LabelSeq   int32
	LabelStart int32
	LabelLen   int32
	Children   []*Node
	// Leaf is non-nil on leaves and records which suffix the leaf stands
	// for: suffix (Seq, Pos), with RunLen the number of consecutive equal
	// symbols at Pos (used by the sparse-tree search to recover non-stored
	// suffixes via D_tw-lb2).
	Leaf *LeafInfo
}

// LeafInfo identifies the suffix a leaf represents.
type LeafInfo struct {
	Seq    int32
	Pos    int32
	RunLen int32
}

// Tree is a generalized suffix tree over a TextStore.
type Tree struct {
	Store *TextStore
	Root  *Node
	// Sparse records whether only run-head suffixes were inserted.
	Sparse bool
	// MinSuffixLen records the length filter the tree was built with
	// (0 or 1 = all suffixes). Suffixes shorter than this are absent.
	MinSuffixLen int
}

// firstSymbol returns the first symbol of n's edge label.
func (t *Tree) firstSymbol(n *Node) Symbol {
	return t.Store.Sym(int(n.LabelSeq), int(n.LabelStart))
}

// LabelSymbols expands an edge label into its symbols (terminator included
// when the label covers it).
func (t *Tree) LabelSymbols(n *Node) []Symbol {
	out := make([]Symbol, n.LabelLen)
	for i := range out {
		out[i] = t.Store.Sym(int(n.LabelSeq), int(n.LabelStart)+i)
	}
	return out
}

// findChild returns the child of n whose edge starts with sym, or nil.
func (t *Tree) findChild(n *Node, sym Symbol) *Node {
	i := sort.Search(len(n.Children), func(i int) bool {
		return t.firstSymbol(n.Children[i]) >= sym
	})
	if i < len(n.Children) && t.firstSymbol(n.Children[i]) == sym {
		return n.Children[i]
	}
	return nil
}

// insertChild adds c to n keeping children sorted. It panics if a child
// with the same first symbol exists — callers must have checked.
func (t *Tree) insertChild(n *Node, c *Node) {
	sym := t.firstSymbol(c)
	i := sort.Search(len(n.Children), func(i int) bool {
		return t.firstSymbol(n.Children[i]) >= sym
	})
	if i < len(n.Children) && t.firstSymbol(n.Children[i]) == sym {
		//lint:ignore panicpath caller-contract assertion: every call site first probes findChild for the symbol; a duplicate child would make lookups ambiguous
		panic("suffixtree: duplicate child first symbol")
	}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// replaceChild swaps the child with old's first symbol for repl.
func (t *Tree) replaceChild(n *Node, old, repl *Node) {
	sym := t.firstSymbol(old)
	i := sort.Search(len(n.Children), func(i int) bool {
		return t.firstSymbol(n.Children[i]) >= sym
	})
	if i >= len(n.Children) || n.Children[i] != old {
		//lint:ignore panicpath caller-contract assertion: old was just obtained from this node's child list; a miss means the tree structure is already corrupt
		panic("suffixtree: replaceChild: not a child")
	}
	n.Children[i] = repl
}

// Stats summarizes a tree.
type Stats struct {
	Nodes      int // all nodes including root and leaves
	Leaves     int
	MaxDepth   int // deepest node in edges
	TotalLabel int // sum of label lengths (uncompressed path material)
	SizeBytes  int // estimated in-memory footprint
}

// ComputeStats walks the tree once.
func (t *Tree) ComputeStats() Stats {
	var st Stats
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		st.Nodes++
		st.TotalLabel += int(n.LabelLen)
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if n.Leaf != nil {
			st.Leaves++
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	// Rough in-memory estimate: node struct + child slice headers + leaf.
	st.SizeBytes = st.Nodes*48 + st.Leaves*16
	return st
}

// Suffixes returns every (seq, pos) leaf in DFS order.
func (t *Tree) Suffixes() []LeafInfo {
	var out []LeafInfo
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf != nil {
			out = append(out, *n.Leaf)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Find returns the (seq, pos) occurrences of the exact symbol pattern — the
// classical O(|pattern|) suffix tree lookup plus subtree leaf collection.
func (t *Tree) Find(pattern []Symbol) []LeafInfo {
	if len(pattern) == 0 {
		return nil
	}
	n := t.Root
	// Position within n's edge label; the root's empty label is exhausted.
	depth := 0 // symbols of pattern consumed
	for depth < len(pattern) {
		child := t.findChild(n, pattern[depth])
		if child == nil {
			return nil
		}
		// Walk the edge label.
		for i := 0; i < int(child.LabelLen) && depth < len(pattern); i++ {
			if t.Store.Sym(int(child.LabelSeq), int(child.LabelStart)+i) != pattern[depth] {
				return nil
			}
			depth++
		}
		n = child
	}
	var out []LeafInfo
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf != nil {
			out = append(out, *n.Leaf)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Validate checks structural invariants: sorted distinct child symbols,
// internal nodes (except the root) have >= 2 children, every leaf's path
// label spells its suffix plus terminator, and leaf run lengths match the
// text. It returns the first violation found.
func (t *Tree) Validate() error {
	var walk func(n *Node, path []Symbol) error
	walk = func(n *Node, path []Symbol) error {
		if n != t.Root {
			path = append(path, t.LabelSymbols(n)...)
		}
		if n.Leaf != nil {
			if len(n.Children) != 0 {
				return fmt.Errorf("leaf (%d,%d) has children", n.Leaf.Seq, n.Leaf.Pos)
			}
			want := t.suffixSymbols(int(n.Leaf.Seq), int(n.Leaf.Pos))
			if !symbolsEqual(path, want) {
				return fmt.Errorf("leaf (%d,%d): path %v != suffix %v", n.Leaf.Seq, n.Leaf.Pos, path, want)
			}
			text := t.Store.Text(int(n.Leaf.Seq))
			if int(n.Leaf.Pos) < len(text) {
				if got := categorize.RunLengthAt(text, int(n.Leaf.Pos)); got != int(n.Leaf.RunLen) {
					return fmt.Errorf("leaf (%d,%d): run length %d != %d", n.Leaf.Seq, n.Leaf.Pos, n.Leaf.RunLen, got)
				}
			}
			return nil
		}
		if n != t.Root && len(n.Children) < 2 {
			return fmt.Errorf("internal node with %d children at path %v", len(n.Children), path)
		}
		var prev Symbol
		for i, c := range n.Children {
			if c.LabelLen <= 0 {
				return fmt.Errorf("empty edge label at path %v", path)
			}
			sym := t.firstSymbol(c)
			if i > 0 && sym <= prev {
				return fmt.Errorf("children unsorted at path %v", path)
			}
			prev = sym
			if err := walk(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root, nil)
}

// suffixSymbols returns text[seq][pos:] plus the terminator.
func (t *Tree) suffixSymbols(seq, pos int) []Symbol {
	text := t.Store.Text(seq)
	out := make([]Symbol, 0, len(text)-pos+1)
	out = append(out, text[pos:]...)
	return append(out, Terminator(seq))
}

func symbolsEqual(a, b []Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two trees over the same store are structurally
// identical: same shape, same expanded labels, same leaves.
func Equal(a, b *Tree) bool {
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if !symbolsEqual(a.LabelSymbols(x), b.LabelSymbols(y)) {
			return false
		}
		if (x.Leaf == nil) != (y.Leaf == nil) {
			return false
		}
		if x.Leaf != nil && *x.Leaf != *y.Leaf {
			return false
		}
		if len(x.Children) != len(y.Children) {
			return false
		}
		for i := range x.Children {
			if !eq(x.Children[i], y.Children[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.Root, b.Root)
}
