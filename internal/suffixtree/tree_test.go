package suffixtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"twsearch/internal/categorize"
)

func syms(vals ...int) []Symbol {
	out := make([]Symbol, len(vals))
	for i, v := range vals {
		out[i] = Symbol(v)
	}
	return out
}

// storeWith builds a TextStore from symbol slices.
func storeWith(texts ...[]Symbol) *TextStore {
	ts := NewTextStore()
	for _, t := range texts {
		ts.Add(t)
	}
	return ts
}

func allSeqs(ts *TextStore) []int {
	out := make([]int, ts.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

func sortedLeaves(ls []LeafInfo) []LeafInfo {
	out := append([]LeafInfo(nil), ls...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// expectedSuffixes lists the leaves a dense or sparse tree must contain.
func expectedSuffixes(ts *TextStore, seqs []int, sparse bool) []LeafInfo {
	var out []LeafInfo
	for _, seq := range seqs {
		text := ts.Text(seq)
		positions := make([]int, 0, len(text))
		if sparse {
			positions = categorize.RunHeads(text)
		} else {
			for p := range text {
				positions = append(positions, p)
			}
		}
		for _, p := range positions {
			out = append(out, LeafInfo{
				Seq:    int32(seq),
				Pos:    int32(p),
				RunLen: int32(categorize.RunLengthAt(text, p)),
			})
		}
	}
	return sortedLeaves(out)
}

func TestTerminator(t *testing.T) {
	if Terminator(0) != -1 || Terminator(5) != -6 {
		t.Fatal("Terminator values wrong")
	}
	if !IsTerminator(Terminator(3)) || IsTerminator(0) || IsTerminator(7) {
		t.Fatal("IsTerminator wrong")
	}
}

func TestTextStoreSym(t *testing.T) {
	ts := storeWith(syms(4, 5, 6))
	if ts.Sym(0, 1) != 5 {
		t.Fatal("Sym mid wrong")
	}
	if ts.Sym(0, 3) != Terminator(0) {
		t.Fatal("Sym at end is not the terminator")
	}
}

// TestPaperFigure2 builds the suffix tree of the paper's Figure 2:
// S5 = <4,5,6,7,6,6>, S6 = <4,6,7,8>.
func TestPaperFigure2(t *testing.T) {
	ts := storeWith(syms(4, 5, 6, 7, 6, 6), syms(4, 6, 7, 8))
	tree := BuildNaive(ts, allSeqs(ts), false)
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := tree.ComputeStats()
	if st.Leaves != 10 { // 6 suffixes of S5 + 4 of S6
		t.Fatalf("leaves = %d, want 10", st.Leaves)
	}
	// <6,7> occurs at S5[2] (0-based pos 2) and S6[1].
	got := sortedLeaves(tree.Find(syms(6, 7)))
	want := []LeafInfo{
		{Seq: 0, Pos: 2, RunLen: 1},
		{Seq: 1, Pos: 1, RunLen: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Find(<6,7>) = %v, want %v", got, want)
	}
	// <4> occurs at the head of both sequences.
	if n := len(tree.Find(syms(4))); n != 2 {
		t.Fatalf("Find(<4>) returned %d occurrences, want 2", n)
	}
	// <5,6,7> occurs only in S5.
	if n := len(tree.Find(syms(5, 6, 7))); n != 1 {
		t.Fatalf("Find(<5,6,7>) returned %d occurrences, want 1", n)
	}
	// Absent patterns.
	if tree.Find(syms(9)) != nil {
		t.Fatal("Find(<9>) found something")
	}
	if tree.Find(syms(4, 5, 6, 7, 6, 6, 6)) != nil {
		t.Fatal("overlong pattern found")
	}
	if tree.Find(nil) != nil {
		t.Fatal("empty pattern found something")
	}
}

func TestNaiveSuffixSet(t *testing.T) {
	ts := storeWith(syms(1, 1, 2, 1), syms(2, 2))
	tree := BuildNaive(ts, allSeqs(ts), false)
	got := sortedLeaves(tree.Suffixes())
	want := expectedSuffixes(ts, allSeqs(ts), false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("suffixes = %v, want %v", got, want)
	}
}

func TestSparseStoresRunHeadsOnly(t *testing.T) {
	// CS8 = <C1,C1,C1,C3,C2,C2> from Section 6.1: stored suffixes are
	// positions 0, 3, 4 (paper's 1-based 1, 4, 5).
	ts := storeWith(syms(1, 1, 1, 3, 2, 2))
	tree := BuildNaive(ts, allSeqs(ts), true)
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := sortedLeaves(tree.Suffixes())
	want := []LeafInfo{
		{Seq: 0, Pos: 0, RunLen: 3},
		{Seq: 0, Pos: 3, RunLen: 1},
		{Seq: 0, Pos: 4, RunLen: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sparse suffixes = %v, want %v", got, want)
	}
}

func randomTexts(rng *rand.Rand, nSeq, maxLen, alphabet int) *TextStore {
	ts := NewTextStore()
	for i := 0; i < nSeq; i++ {
		n := 1 + rng.Intn(maxLen)
		text := make([]Symbol, n)
		for j := range text {
			text[j] = Symbol(rng.Intn(alphabet))
		}
		ts.Add(text)
	}
	return ts
}

func TestQuickNaiveValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func() bool {
		ts := randomTexts(rng, 1+rng.Intn(5), 30, 1+rng.Intn(4))
		for _, sparse := range []bool{false, true} {
			tree := BuildNaive(ts, allSeqs(ts), sparse)
			if tree.Validate() != nil {
				return false
			}
			got := sortedLeaves(tree.Suffixes())
			want := expectedSuffixes(ts, allSeqs(ts), sparse)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUkkonenEqualsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func() bool {
		ts := randomTexts(rng, 1, 60, 1+rng.Intn(5))
		naive := BuildNaive(ts, []int{0}, false)
		uk := BuildUkkonen(ts, 0)
		return uk.Validate() == nil && Equal(naive, uk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUkkonenSingleSymbolRuns(t *testing.T) {
	// Worst case for naive sharing: one long run.
	ts := storeWith(syms(2, 2, 2, 2, 2, 2, 2, 2))
	uk := BuildUkkonen(ts, 0)
	if err := uk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !Equal(BuildNaive(ts, []int{0}, false), uk) {
		t.Fatal("run-heavy tree differs from naive")
	}
}

func TestQuickMergedEqualsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	f := func() bool {
		ts := randomTexts(rng, 1+rng.Intn(6), 25, 1+rng.Intn(4))
		for _, sparse := range []bool{false, true} {
			naive := BuildNaive(ts, allSeqs(ts), sparse)
			merged := BuildMerged(ts, allSeqs(ts), sparse)
			if merged.Validate() != nil {
				return false
			}
			if !Equal(naive, merged) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMergePanicsAcrossStores(t *testing.T) {
	a := BuildNaive(storeWith(syms(1)), []int{0}, false)
	b := BuildNaive(storeWith(syms(1)), []int{0}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Merge(a, b)
}

func TestMergePanicsMixedSparsity(t *testing.T) {
	ts := storeWith(syms(1, 2), syms(2, 1))
	a := BuildNaive(ts, []int{0}, false)
	b := BuildNaive(ts, []int{1}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Merge(a, b)
}

// Find must agree with a naive scan over all subsequences.
func TestQuickFindMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := func() bool {
		ts := randomTexts(rng, 1+rng.Intn(4), 20, 2)
		tree := BuildMerged(ts, allSeqs(ts), false)
		// Random pattern, sometimes present, sometimes not.
		pn := 1 + rng.Intn(5)
		pattern := make([]Symbol, pn)
		for i := range pattern {
			pattern[i] = Symbol(rng.Intn(2))
		}
		var want []LeafInfo
		for seq := 0; seq < ts.Len(); seq++ {
			text := ts.Text(seq)
			for p := 0; p+pn <= len(text); p++ {
				match := true
				for k := 0; k < pn; k++ {
					if text[p+k] != pattern[k] {
						match = false
						break
					}
				}
				if match {
					want = append(want, LeafInfo{
						Seq: int32(seq), Pos: int32(p),
						RunLen: int32(categorize.RunLengthAt(text, p)),
					})
				}
			}
		}
		got := sortedLeaves(tree.Find(pattern))
		return reflect.DeepEqual(got, sortedLeaves(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The suffix tree size bound of Section 4.1: at most 2·leaves nodes
// (internal nodes have degree >= 2), i.e. linear in M·L̄.
func TestQuickSizeLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	f := func() bool {
		ts := randomTexts(rng, 1+rng.Intn(5), 40, 1+rng.Intn(3))
		tree := BuildMerged(ts, allSeqs(ts), false)
		st := tree.ComputeStats()
		return st.Nodes <= 2*st.Leaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Categorization shrinks the tree: fewer categories → no more nodes
// (Section 5's motivation for ST_C).
func TestCoarserAlphabetSmallerTree(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	makeStore := func(alphabet int) *TextStore {
		r := rand.New(rand.NewSource(991)) // same data every time
		ts := NewTextStore()
		for i := 0; i < 10; i++ {
			text := make([]Symbol, 100)
			v := 0
			for j := range text {
				v += r.Intn(3) - 1
				a := v % alphabet
				if a < 0 {
					a += alphabet
				}
				text[j] = Symbol(a)
			}
			ts.Add(text)
		}
		return ts
	}
	_ = rng
	coarse := BuildNaive(makeStore(3), []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, false).ComputeStats()
	fine := BuildNaive(makeStore(50), []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, false).ComputeStats()
	if coarse.Nodes >= fine.Nodes {
		t.Fatalf("coarse alphabet tree (%d nodes) not smaller than fine (%d)", coarse.Nodes, fine.Nodes)
	}
}

func TestSparseSmallerThanDense(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ts := NewTextStore()
	for i := 0; i < 8; i++ {
		text := make([]Symbol, 120)
		v := Symbol(0)
		for j := range text {
			if rng.Float64() < 0.3 { // long runs
				v = Symbol(rng.Intn(4))
			}
			text[j] = v
		}
		ts.Add(text)
	}
	dense := BuildNaive(ts, allSeqs(ts), false).ComputeStats()
	sparse := BuildNaive(ts, allSeqs(ts), true).ComputeStats()
	if sparse.Leaves >= dense.Leaves || sparse.Nodes >= dense.Nodes {
		t.Fatalf("sparse (%d leaves, %d nodes) not smaller than dense (%d leaves, %d nodes)",
			sparse.Leaves, sparse.Nodes, dense.Leaves, dense.Nodes)
	}
}

func TestDuplicateSuffixPanics(t *testing.T) {
	ts := storeWith(syms(1, 2))
	tree := BuildNaive(ts, []int{0}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate suffix")
		}
	}()
	tree.insertSuffix(0, 0)
}

func TestEmptySequenceSkipped(t *testing.T) {
	ts := storeWith([]Symbol{}, syms(1, 2))
	tree := BuildMerged(ts, allSeqs(ts), false)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Suffixes()); got != 2 {
		t.Fatalf("suffixes = %d, want 2", got)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	ts := storeWith(syms(1, 2, 1), syms(1, 2))
	a := BuildNaive(ts, []int{0}, false)
	b := BuildNaive(ts, []int{1}, false)
	if Equal(a, b) {
		t.Fatal("different trees reported equal")
	}
	c := BuildNaive(ts, []int{0}, false)
	if !Equal(a, c) {
		t.Fatal("identical trees reported unequal")
	}
}
