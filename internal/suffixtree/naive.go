package suffixtree

import (
	"fmt"

	"twsearch/internal/categorize"
)

// BuildNaive builds a generalized suffix tree over the given sequences by
// inserting suffixes one at a time. For sparse trees it inserts only the
// run-head suffixes (Section 6.1). It is the executable specification the
// Ukkonen and merge builders are verified against, and the production
// builder for sparse trees, whose suffix subsets Ukkonen cannot produce
// directly.
func BuildNaive(store *TextStore, seqs []int, sparse bool) *Tree {
	return BuildFiltered(store, seqs, sparse, 0)
}

// BuildFiltered is BuildNaive with the conclusion-section length filter:
// suffixes shorter than minSuffixLen are not inserted, because no answer of
// at least that length can be anchored at their start. minSuffixLen <= 1
// keeps every suffix.
func BuildFiltered(store *TextStore, seqs []int, sparse bool, minSuffixLen int) *Tree {
	t := &Tree{Store: store, Root: &Node{}, Sparse: sparse, MinSuffixLen: minSuffixLen}
	for _, seq := range seqs {
		text := store.Text(seq)
		if len(text) == 0 {
			continue
		}
		if sparse {
			for _, pos := range categorize.RunHeads(text) {
				if len(text)-pos >= minSuffixLen {
					t.insertSuffix(seq, pos)
				}
			}
		} else {
			for pos := range text {
				if len(text)-pos >= minSuffixLen {
					t.insertSuffix(seq, pos)
				}
			}
		}
	}
	return t
}

// insertSuffix adds the suffix text[pos:]+terminator of sequence seq.
func (t *Tree) insertSuffix(seq, pos int) {
	text := t.Store.Text(seq)
	total := len(text) - pos + 1 // suffix length including terminator
	runLen := int32(categorize.RunLengthAt(text, pos))
	cur := t.Root
	i := 0 // symbols of the suffix consumed so far
	for {
		if i >= total {
			//lint:ignore panicpath unreachable-state assertion: per-sequence terminators make every suffix unique, so insertion always diverges before the suffix is exhausted
			panic(fmt.Sprintf("suffixtree: suffix (%d,%d) already present", seq, pos))
		}
		child := t.findChild(cur, t.Store.Sym(seq, pos+i))
		if child == nil {
			t.insertChild(cur, &Node{
				LabelSeq:   int32(seq),
				LabelStart: int32(pos + i),
				LabelLen:   int32(total - i),
				Leaf:       &LeafInfo{Seq: int32(seq), Pos: int32(pos), RunLen: runLen},
			})
			return
		}
		// Match along the child's edge label.
		j := 0
		for j < int(child.LabelLen) && i < total &&
			t.Store.Sym(int(child.LabelSeq), int(child.LabelStart)+j) == t.Store.Sym(seq, pos+i) {
			j++
			i++
		}
		if j == int(child.LabelLen) {
			cur = child
			continue
		}
		// Mismatch inside the edge: split at j. The per-sequence terminator
		// guarantees i < total here (a suffix can never be a prefix of an
		// existing path).
		mid := &Node{LabelSeq: child.LabelSeq, LabelStart: child.LabelStart, LabelLen: int32(j)}
		t.replaceChild(cur, child, mid)
		child.LabelStart += int32(j)
		child.LabelLen -= int32(j)
		t.insertChild(mid, child)
		t.insertChild(mid, &Node{
			LabelSeq:   int32(seq),
			LabelStart: int32(pos + i),
			LabelLen:   int32(total - i),
			Leaf:       &LeafInfo{Seq: int32(seq), Pos: int32(pos), RunLen: runLen},
		})
		return
	}
}
