package suffixtree

// Merge destructively merges tree b into tree a and returns a. Both trees
// must share the same TextStore and index disjoint sequence sets (their
// per-sequence terminators guarantee that no suffix of one is a prefix of a
// suffix of the other). This is the paper's binary merge (Section 4.1): a
// simultaneous pre-order traversal combining paths with common label
// prefixes, O(|a|+|b|).
func Merge(a, b *Tree) *Tree {
	if a.Store != b.Store {
		//lint:ignore panicpath construction invariant: both inputs are built from one TextStore by the batch builder; symbols from different stores are incomparable
		panic("suffixtree: Merge across different stores")
	}
	if a.Sparse != b.Sparse {
		//lint:ignore panicpath construction invariant: batch builds share one sparse setting; a mixed merge would drop or duplicate run-head suffixes
		panic("suffixtree: Merge of sparse and dense trees")
	}
	if a.MinSuffixLen != b.MinSuffixLen {
		//lint:ignore panicpath construction invariant: batch builds share one length filter; a mixed merge would break the answer-length floor
		panic("suffixtree: Merge of trees with different length filters")
	}
	a.mergeNodes(a.Root, b.Root)
	return a
}

// mergeNodes merges y's children into x. x and y spell the same path label.
func (t *Tree) mergeNodes(x, y *Node) {
	if x.Leaf != nil || y.Leaf != nil {
		// Two identical suffixes can only come from the same sequence.
		//lint:ignore panicpath unreachable-state assertion: per-sequence terminators make suffixes of disjoint sequence sets prefix-free, so two leaves can never spell one path
		panic("suffixtree: leaf collision during merge (overlapping sequence sets?)")
	}
	for _, yc := range y.Children {
		xc := t.findChild(x, t.firstSymbol(yc))
		if xc == nil {
			t.insertChild(x, yc)
			continue
		}
		t.mergeEdge(x, xc, yc)
	}
}

// mergeEdge merges the subtree hanging off edge yc into the edge xc; both
// edges hang off parent and start with the same symbol.
func (t *Tree) mergeEdge(parent, xc, yc *Node) {
	// Length of the common label prefix.
	maxL := int(xc.LabelLen)
	if int(yc.LabelLen) < maxL {
		maxL = int(yc.LabelLen)
	}
	l := 1 // first symbols are known equal
	for l < maxL &&
		t.Store.Sym(int(xc.LabelSeq), int(xc.LabelStart)+l) ==
			t.Store.Sym(int(yc.LabelSeq), int(yc.LabelStart)+l) {
		l++
	}

	target := xc
	if l < int(xc.LabelLen) {
		// Split xc at l; the new internal node takes xc's place.
		mid := &Node{LabelSeq: xc.LabelSeq, LabelStart: xc.LabelStart, LabelLen: int32(l)}
		t.replaceChild(parent, xc, mid)
		xc.LabelStart += int32(l)
		xc.LabelLen -= int32(l)
		t.insertChild(mid, xc)
		target = mid
	}

	yc.LabelStart += int32(l)
	yc.LabelLen -= int32(l)
	if yc.LabelLen == 0 {
		t.mergeNodes(target, yc)
		return
	}
	if c := t.findChild(target, t.firstSymbol(yc)); c != nil {
		t.mergeEdge(target, c, yc)
		return
	}
	t.insertChild(target, yc)
}

// BuildMerged constructs the generalized suffix tree of the given sequences
// the way the paper does: one tree per sequence (Ukkonen for dense trees,
// suffix insertion for sparse ones, whose suffix subset Ukkonen cannot
// emit), then a series of binary merges of trees of increasing size.
func BuildMerged(store *TextStore, seqs []int, sparse bool) *Tree {
	return BuildMergedFiltered(store, seqs, sparse, 0)
}

// BuildMergedFiltered is BuildMerged with the conclusion-section suffix
// length filter. Filtered trees are built by suffix insertion (Ukkonen
// always emits every suffix).
func BuildMergedFiltered(store *TextStore, seqs []int, sparse bool, minSuffixLen int) *Tree {
	trees := make([]*Tree, 0, len(seqs))
	for _, seq := range seqs {
		if len(store.Text(seq)) == 0 {
			continue
		}
		var t *Tree
		if !sparse && minSuffixLen <= 1 {
			t = BuildUkkonen(store, seq)
		} else {
			t = BuildFiltered(store, []int{seq}, sparse, minSuffixLen)
		}
		t.Sparse = sparse
		t.MinSuffixLen = minSuffixLen
		trees = append(trees, t)
	}
	if len(trees) == 0 {
		return &Tree{Store: store, Root: &Node{}, Sparse: sparse, MinSuffixLen: minSuffixLen}
	}
	// Balanced rounds of pairwise merges, so every merge combines trees of
	// similar size.
	for len(trees) > 1 {
		next := trees[:0]
		for i := 0; i+1 < len(trees); i += 2 {
			next = append(next, Merge(trees[i], trees[i+1]))
		}
		if len(trees)%2 == 1 {
			next = append(next, trees[len(trees)-1])
		}
		trees = next
	}
	return trees[0]
}
