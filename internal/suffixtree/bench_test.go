package suffixtree

import (
	"math/rand"
	"testing"
)

func benchStore(nSeq, seqLen, alphabet int) *TextStore {
	rng := rand.New(rand.NewSource(77))
	ts := NewTextStore()
	for i := 0; i < nSeq; i++ {
		text := make([]Symbol, seqLen)
		for j := range text {
			text[j] = Symbol(rng.Intn(alphabet))
		}
		ts.Add(text)
	}
	return ts
}

func benchSeqs(ts *TextStore) []int {
	out := make([]int, ts.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

func BenchmarkBuildUkkonen(b *testing.B) {
	ts := benchStore(1, 2000, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildUkkonen(ts, 0)
	}
}

func BenchmarkBuildNaiveSingle(b *testing.B) {
	ts := benchStore(1, 2000, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildNaive(ts, []int{0}, false)
	}
}

func BenchmarkBuildMergedDense(b *testing.B) {
	ts := benchStore(32, 232, 20)
	seqs := benchSeqs(ts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildMerged(ts, seqs, false)
	}
}

func BenchmarkBuildSparse(b *testing.B) {
	ts := benchStore(32, 232, 8)
	seqs := benchSeqs(ts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildNaive(ts, seqs, true)
	}
}

func BenchmarkFind(b *testing.B) {
	ts := benchStore(32, 232, 8)
	tree := BuildMerged(ts, benchSeqs(ts), false)
	pattern := ts.Text(3)[10:16]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Find(pattern)
	}
}
