package suffixtree

import (
	"sort"

	"twsearch/internal/categorize"
)

// BuildUkkonen builds the suffix tree of one sequence in O(L) time with
// Ukkonen's online algorithm — the "ordinary suffix tree algorithm" the
// paper applies per sequence before merging (Section 4.1).
func BuildUkkonen(store *TextStore, seq int) *Tree {
	text := store.Text(seq)
	// Work on s = text + terminator. Sym() exposes exactly this view.
	n := len(text) + 1
	sym := func(i int) Symbol { return store.Sym(seq, i) }

	root := &unode{children: map[Symbol]*unode{}}
	activeNode := root
	activeEdge := 0 // index into s of the active edge's first symbol
	activeLength := 0
	remainder := 0

	edgeLen := func(u *unode, pos int) int {
		if u.end == openEnd {
			return pos + 1 - u.start
		}
		return u.end - u.start
	}

	for pos := 0; pos < n; pos++ {
		var needLink *unode
		addLink := func(u *unode) {
			if needLink != nil {
				needLink.link = u
			}
			needLink = u
		}
		remainder++
		for remainder > 0 {
			if activeLength == 0 {
				activeEdge = pos
			}
			child, ok := activeNode.children[sym(activeEdge)]
			if !ok {
				activeNode.children[sym(activeEdge)] = &unode{start: pos, end: openEnd}
				addLink(activeNode)
			} else {
				el := edgeLen(child, pos)
				if activeLength >= el {
					// Walk down: the active point is past this edge.
					activeEdge += el
					activeLength -= el
					activeNode = child
					continue
				}
				if sym(child.start+activeLength) == sym(pos) {
					// The symbol is already on the edge: rule 3, extension
					// implicit. The terminator being unique means this never
					// happens on the final symbol.
					activeLength++
					addLink(activeNode)
					break
				}
				// Rule 2 with split.
				split := &unode{
					start:    child.start,
					end:      child.start + activeLength,
					children: map[Symbol]*unode{},
				}
				activeNode.children[sym(activeEdge)] = split
				split.children[sym(pos)] = &unode{start: pos, end: openEnd}
				child.start += activeLength
				split.children[sym(child.start)] = child
				addLink(split)
			}
			remainder--
			if activeNode == root && activeLength > 0 {
				activeLength--
				activeEdge = pos - remainder + 1
			} else if activeNode != root {
				if activeNode.link != nil {
					activeNode = activeNode.link
				} else {
					activeNode = root
				}
			}
		}
	}

	// Convert to the exported node representation: close leaf ends, assign
	// leaf suffix positions from path depth, sort children, and drop the
	// terminator-only leaf (it stands for the empty suffix of the text).
	t := &Tree{Store: store, Root: &Node{}}
	var convert func(u *unode, pathLen int) *Node
	convert = func(u *unode, pathLen int) *Node {
		end := u.end
		if end == openEnd {
			end = n
		}
		labelLen := end - u.start
		node := &Node{
			LabelSeq:   int32(seq),
			LabelStart: int32(u.start),
			LabelLen:   int32(labelLen),
		}
		pathLen += labelLen
		if len(u.children) == 0 {
			posInText := n - pathLen
			node.Leaf = &LeafInfo{
				Seq:    int32(seq),
				Pos:    int32(posInText),
				RunLen: int32(categorize.RunLengthAt(text, posInText)),
			}
			return node
		}
		syms := make([]Symbol, 0, len(u.children))
		for s := range u.children {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		node.Children = make([]*Node, 0, len(syms))
		for _, s := range syms {
			node.Children = append(node.Children, convert(u.children[s], pathLen))
		}
		return node
	}
	for s, u := range root.children {
		if IsTerminator(s) {
			continue // empty-suffix leaf
		}
		t.insertChild(t.Root, convert(u, 0))
	}
	return t
}

const openEnd = -1

// unode is Ukkonen's construction-time node: edge label s[start:end), with
// end == openEnd meaning "grows with the text".
type unode struct {
	start, end int
	children   map[Symbol]*unode
	link       *unode
}
