package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"twsearch/internal/lint/cfg"
)

// PoolBalance verifies sync.Pool discipline path-sensitively, the way
// LockBalance verifies mutexes: every (*sync.Pool).Get acquired in a
// library function must be matched by a Put on the same pool on every path
// that reaches the function exit. Paths that abort (panic, os.Exit) are not
// exits; a deferred Put covers every exit past its registration.
//
// Ownership transfer — the pooled-query-context idiom where acquire Gets
// and a separate release Puts — is declared with a marker in the function's
// doc comment:
//
//	//twlint:pool-transfer <reason>
//
// The reason is mandatory, and the marker is itself checked: one on a
// function that never Gets from a pool is stale and reported. Matching is
// textual on the pool expression (`qp.p.Get` pairs with `qp.p.Put`), exact
// for the idiomatic case of a pool field or package-level pool variable.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc: "a sync.Pool Get has an exit path with no matching Put; release on " +
		"every path, defer the Put, or declare the handoff with //twlint:pool-transfer",
	Run: runPoolBalance,
}

// poolTransferComment returns the //twlint:pool-transfer line of a doc
// comment and its reason text.
func poolTransferComment(doc *ast.CommentGroup) (c *ast.Comment, reason string) {
	if doc == nil {
		return nil, ""
	}
	for _, cm := range doc.List {
		if rest, ok := strings.CutPrefix(cm.Text, "//twlint:pool-transfer"); ok {
			return cm, strings.TrimSpace(rest)
		}
	}
	return nil, ""
}

func runPoolBalance(pass *Pass) {
	if !pass.Library {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			marker, reason := poolTransferComment(fd.Doc)
			transfer := marker != nil
			if transfer && reason == "" {
				pass.ReportPos(marker.Pos(), "twlint:pool-transfer needs a reason naming who releases the pooled value")
			}

			gets := 0
			checkPoolBalance(pass, fd, transfer, &gets)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A literal inside a marked function inherits the
					// transfer audit: the handoff reason covers the whole
					// declaration.
					checkPoolBalance(pass, lit, transfer, &gets)
				}
				return true
			})
			if transfer && gets == 0 {
				pass.ReportPos(marker.Pos(), "stale //twlint:pool-transfer: %s never calls (*sync.Pool).Get, so there is no ownership to hand off; delete the marker", fd.Name.Name)
			}
		}
	}
}

// checkPoolBalance analyzes one function or function literal, counting the
// pool Gets it sees into *gets.
func checkPoolBalance(pass *Pass, fn ast.Node, transfer bool, gets *int) {
	// Cheap pre-scan: skip the CFG when the body touches no sync.Pool.
	any := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolCall(pass.Info, call, "Get") {
			any = true
		}
		return !any
	})
	if !any {
		return
	}

	g := cfg.Build(pass.Fset, fn)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			root := n
			cfg.InspectNode(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok && x != root {
					return false // literals are analyzed separately
				}
				call, ok := x.(*ast.CallExpr)
				if !ok || !isPoolCall(pass.Info, call, "Get") {
					return true
				}
				*gets++
				if transfer {
					return true // audited handoff: the caller releases
				}
				recv := lockRecvString(call)
				leaks := g.PathToExit(b, i, func(node ast.Node) bool {
					return nodePutsPool(pass.Info, node, recv)
				})
				if leaks {
					pass.Report(call, "%s.Get has an exit path with no %s.Put; release on every path, defer the Put, or declare the handoff with //twlint:pool-transfer", recv, recv)
				}
				return true
			})
		}
	}
}

// isPoolCall reports whether the call statically resolves to the named
// method of sync.Pool.
func isPoolCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.Contains(types.TypeString(sig.Recv().Type(), nil), "sync.Pool")
}

// nodePutsPool reports whether the CFG node contains a Put on the same pool
// expression. Function literals inside the node do not count: their body
// runs at another time.
func nodePutsPool(info *types.Info, n ast.Node, recv string) bool {
	found := false
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if ok && isPoolCall(info, call, "Put") && lockRecvString(call) == recv {
			found = true
		}
		return true
	})
	return found
}
