package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"twsearch/internal/lint/cfg"
)

// funcNode is one declared function of a package under analysis: its type
// object, declaration, signature, and the parameter/result objects in
// signature order. The control-flow graph is built once on first use and
// shared across fixpoint rounds.
type funcNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	sig     *types.Signature
	params  []types.Object // signature order; nil entries for unnamed params
	results []types.Object // named result objects; nil entries when unnamed
	graph   *cfg.Graph
}

// callGraph indexes a package's function declarations so the summary
// fixpoint can resolve package-local call sites. Resolution is static —
// plain calls and method calls through calleeFunc — so calls through
// function values or interfaces stay unresolved, the same conservative
// stance the rest of the suite takes.
type callGraph struct {
	fset  *token.FileSet
	info  *types.Info
	funcs map[*types.Func]*funcNode
	// order lists the functions in file/declaration order, so fixpoint
	// iteration (and therefore any derived diagnostics) is deterministic.
	order []*funcNode
}

// buildCallGraph indexes every bodied function declaration of the package's
// non-test files.
func buildCallGraph(fset *token.FileSet, files []*ast.File, info *types.Info) *callGraph {
	cg := &callGraph{fset: fset, info: info, funcs: make(map[*types.Func]*funcNode)}
	for _, file := range files {
		if isTestFile(fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &funcNode{
				fn:      obj,
				decl:    fd,
				sig:     obj.Type().(*types.Signature),
				params:  fieldObjs(info, fd.Type.Params),
				results: fieldObjs(info, fd.Type.Results),
			}
			cg.funcs[obj] = fn
			cg.order = append(cg.order, fn)
		}
	}
	return cg
}

// graphOf returns the function's CFG, building it on first use.
func (cg *callGraph) graphOf(fn *funcNode) *cfg.Graph {
	if fn.graph == nil {
		fn.graph = cfg.Build(cg.fset, fn.decl)
	}
	return fn.graph
}

// callee resolves a call expression to a declared function of this package,
// or nil for external, dynamic and interface calls.
func (cg *callGraph) callee(call *ast.CallExpr) *funcNode {
	fn := calleeFunc(cg.info, call)
	if fn == nil {
		return nil
	}
	return cg.funcs[fn]
}

// fieldObjs flattens a parameter or result list into per-position objects:
// multi-name fields expand, unnamed fields contribute a nil placeholder, so
// the slice aligns with types.Tuple indexing.
func fieldObjs(info *types.Info, fl *ast.FieldList) []types.Object {
	if fl == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// paramIndex maps argument position i of a call to fn's receiving parameter
// index, folding a variadic tail onto the variadic parameter. Returns -1
// when the argument has no parameter (malformed code only).
func paramIndex(sig *types.Signature, i int) int {
	n := sig.Params().Len()
	switch {
	case n == 0:
		return -1
	case sig.Variadic() && i >= n-1:
		return n - 1
	case i >= n:
		return -1
	}
	return i
}
