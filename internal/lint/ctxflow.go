package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces context discipline along request paths, generalizing the
// old ctxless-loop check with interprocedural reachability. Request-path
// roots are functions that receive a context.Context parameter, plus the
// handle*/serve* methods of a package named server; membership closes over
// package-local static calls, and re-rooting flows across packages through
// per-function context summaries computed next to the bound-taint fixpoint.
//
// Three rules follow:
//
//  1. context.Background()/context.TODO() in library code is a re-root: a
//     function that calls either must carry an audited marker in its doc
//     comment —
//
//     //twlint:ctx-root <reason>
//
//     — naming why a fresh root is correct (a public compatibility wrapper,
//     a server-lifetime context). A function that already receives a ctx
//     parameter can never justify one: cancellation it was handed would be
//     silently dropped, marker or not.
//  2. A request-path function must not call a re-rooter: a callee without a
//     ctx parameter whose summary shows Background/TODO beneath it discards
//     the caller's deadline, marker or not — the marker audits the wrapper's
//     existence for outside callers, not its use on a request path. Call the
//     *Ctx variant instead.
//  3. A condition-less `for {}` loop on a request path must poll for
//     cancellation each iteration: touch the context (ctx.Err(), ctx.Done(),
//     passing ctx to a callee), select/receive on a channel, or call a
//     helper whose summary touches a context (the masked-counter
//     checkCancel idiom). `for range ch` needs no poll — it ends when the
//     channel closes.
//
// Markers are themselves checked like bound-source: a reasonless, floating,
// or stale marker (on a function that never re-roots), or one on a function
// with a ctx parameter, is a finding.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path context discipline: context.Background()/TODO() " +
		"re-roots and poll-free unbounded loops drop cancellation; thread ctx " +
		"through a *Ctx variant or audit the wrapper with //twlint:ctx-root <reason>",
	Run: runCtxFlow,
}

// ctxSummary is the interprocedural context-flow summary of one function.
type ctxSummary struct {
	// reRoots: a context.Background()/TODO() call somewhere beneath it.
	reRoots bool
	// direct: the re-root is in this very body (not via a callee).
	direct bool
	// polls: the function touches a context or receives from a channel
	// somewhere beneath it, so calling it inside a loop is a poll.
	polls bool
}

// computeCtxSummaries runs the context-flow fixpoint over one package's
// call graph; dep resolves callees of other module packages through their
// own (already computed) summaries. The lattice is two bits per function
// and transfer is monotone, so the fixpoint terminates.
func computeCtxSummaries(cg *callGraph, dep func(*types.Func) *ctxSummary) map[*types.Func]*ctxSummary {
	sums := make(map[*types.Func]*ctxSummary, len(cg.funcs))
	for _, fnode := range cg.order {
		s := &ctxSummary{}
		ast.Inspect(fnode.decl.Body, func(n ast.Node) bool {
			if isBackgroundCall(cg.info, n) {
				s.reRoots = true
				s.direct = true
			}
			if isDirectPoll(cg.info, n) {
				s.polls = true
			}
			return true
		})
		sums[fnode.fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, fnode := range cg.order {
			s := sums[fnode.fn]
			if s.reRoots && s.polls {
				continue
			}
			ast.Inspect(fnode.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(cg.info, call)
				if fn == nil {
					return true
				}
				cs, ok := sums[fn]
				if !ok {
					cs = dep(fn)
				}
				if cs == nil {
					return true
				}
				if cs.reRoots && !s.reRoots {
					s.reRoots = true
					changed = true
				}
				if cs.polls && !s.polls {
					s.polls = true
					changed = true
				}
				return true
			})
		}
	}
	return sums
}

// isBackgroundCall reports whether the node is a context.Background() or
// context.TODO() call.
func isBackgroundCall(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// isDirectPoll reports whether the node itself counts as a cancellation
// poll: a use of a context-typed value, a select statement, or a channel
// receive.
func isDirectPoll(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.Ident:
		return isCtxType(info.TypeOf(n))
	case *ast.SelectorExpr:
		return isCtxType(info.TypeOf(n))
	case *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	}
	return false
}

// hasCtxParam reports whether the signature receives a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isCtxType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxRootComment returns the //twlint:ctx-root line of a doc comment and
// its reason text.
func ctxRootComment(doc *ast.CommentGroup) (c *ast.Comment, reason string) {
	if doc == nil {
		return nil, ""
	}
	for _, cm := range doc.List {
		if rest, ok := strings.CutPrefix(cm.Text, "//twlint:ctx-root"); ok {
			return cm, strings.TrimSpace(rest)
		}
	}
	return nil, ""
}

func runCtxFlow(pass *Pass) {
	if !pass.Library {
		return
	}
	an := pass.analysis()
	if an == nil {
		return
	}
	dep := pass.src.loader.ctxDepResolver(pass.src)

	// Marker collection and hygiene. A marker is an audited assertion:
	// reasonless, floating, stale, or contradicted markers are findings.
	marked := make(map[*types.Func]bool)
	attached := make(map[*ast.Comment]bool)
	for _, fnode := range an.cg.order {
		c, reason := ctxRootComment(fnode.decl.Doc)
		if c == nil {
			continue
		}
		attached[c] = true
		if reason == "" {
			pass.ReportPos(c.Pos(), "twlint:ctx-root needs a reason naming why a fresh root context is correct here")
		}
		if hasCtxParam(fnode.sig) {
			pass.ReportPos(c.Pos(), "//twlint:ctx-root on %s, which receives a context parameter; derive from the parameter instead of re-rooting, and delete the marker", fnode.fn.Name())
		}
		if s := an.ctx[fnode.fn]; s == nil || !s.direct {
			pass.ReportPos(c.Pos(), "stale //twlint:ctx-root: %s never calls context.Background or context.TODO, so there is no root to audit; delete the marker", fnode.fn.Name())
		}
		marked[fnode.fn] = true
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, "//twlint:ctx-root") && !attached[c] {
					pass.ReportPos(c.Pos(), "stale //twlint:ctx-root: the directive is not the doc comment of a function declaration, so it audits nothing; move it onto the wrapper or delete it")
				}
			}
		}
	}

	// Request-path membership: ctx-receiving functions and server handlers,
	// closed over package-local static calls.
	req := make(map[*types.Func]bool)
	for _, fnode := range an.cg.order {
		if hasCtxParam(fnode.sig) || isServerRoot(pass, fnode) {
			req[fnode.fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fnode := range an.cg.order {
			if !req[fnode.fn] {
				continue
			}
			ast.Inspect(fnode.decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if c := an.cg.callee(call); c != nil && !req[c.fn] {
						req[c.fn] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	for _, fnode := range an.cg.order {
		checkCtxFunc(pass, an, dep, fnode, req[fnode.fn], marked[fnode.fn])
	}
}

// isServerRoot reports whether the function is a request entry point by
// convention: a handle*/serve* function of a package named server. The
// case-sensitive prefix deliberately excludes exported lifecycle methods
// like Serve, whose accept loop outlives any single request.
func isServerRoot(pass *Pass, fnode *funcNode) bool {
	if pass.Pkg.Name() != "server" {
		return false
	}
	name := fnode.fn.Name()
	return strings.HasPrefix(name, "handle") || strings.HasPrefix(name, "serve")
}

// checkCtxFunc applies the three rules to one function body.
func checkCtxFunc(pass *Pass, an *pkgAnalysis, dep func(*types.Func) *ctxSummary, fnode *funcNode, onReqPath, isMarked bool) {
	hasCtx := hasCtxParam(fnode.sig)
	ast.Inspect(fnode.decl.Body, func(n ast.Node) bool {
		// Rule 1: direct re-roots need an audited marker, and a function
		// that receives a ctx can never justify one.
		if isBackgroundCall(pass.Info, n) {
			name := calleeFunc(pass.Info, n.(*ast.CallExpr)).Name()
			switch {
			case hasCtx:
				pass.Report(n, "%s re-roots with context.%s despite receiving a context parameter; derive from the parameter so cancellation reaches this call", fnode.fn.Name(), name)
			case !isMarked:
				pass.Report(n, "context.%s() roots a fresh context in library code; thread a context parameter through, or audit the wrapper with //twlint:ctx-root <reason>", name)
			}
			return true
		}

		// Rule 2: a request path must not call a re-rooter.
		if call, ok := n.(*ast.CallExpr); ok && onReqPath {
			if fn := calleeFunc(pass.Info, call); fn != nil && !sigHasCtx(fn) {
				cs, local := an.ctx[fn]
				if !local {
					cs = dep(fn)
				}
				// A local, unmarked, directly re-rooting callee already gets
				// its own rule-1 finding at the root; repeat only audited or
				// transitive re-rooters, where the call site is the bug.
				if cs != nil && cs.reRoots && !(local && cs.direct && !ctxMarkedDecl(an, fn)) {
					pass.Report(call, "request path calls %s, which re-roots the context beneath it; call a *Ctx variant or thread ctx through so cancellation propagates", fn.Name())
				}
			}
		}

		// Rule 3: unbounded loops on a request path must poll.
		if loop, ok := n.(*ast.ForStmt); ok && onReqPath && loop.Cond == nil {
			if !loopPollsCancel(pass, an, dep, loop) {
				pass.Report(loop, "unbounded for-loop on a request path never polls for cancellation; check the context (ctx.Err()/ctx.Done()) or receive on a done channel each iteration")
			}
		}
		return true
	})
}

// sigHasCtx reports whether the function's signature has a ctx parameter.
func sigHasCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && hasCtxParam(sig)
}

// ctxMarkedDecl reports whether the package-local function carries a
// //twlint:ctx-root marker.
func ctxMarkedDecl(an *pkgAnalysis, fn *types.Func) bool {
	node := an.cg.funcs[fn]
	if node == nil {
		return false
	}
	c, _ := ctxRootComment(node.decl.Doc)
	return c != nil
}

// loopPollsCancel reports whether a loop body polls for cancellation: a
// direct context/channel touch, or a call to a function whose summary
// touches one. Function literals inside the body run on their own
// goroutine's schedule and do not gate this loop.
func loopPollsCancel(pass *Pass, an *pkgAnalysis, dep func(*types.Func) *ctxSummary, loop *ast.ForStmt) bool {
	polls := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if polls {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if isDirectPoll(pass.Info, n) {
			polls = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil {
				cs, ok := an.ctx[fn]
				if !ok {
					cs = dep(fn)
				}
				if cs != nil && cs.polls {
					polls = true
					return false
				}
			}
		}
		return true
	})
	return polls
}
