package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point values in library
// packages. Distances here are sums of float64 arithmetic; two
// mathematically equal distances routinely differ in the last ulp, so an
// exact comparison makes pruning decisions (Theorem 1) and lower-bound
// ordering checks (Theorems 2–3) nondeterministic. Compare against a
// threshold instead (math.Abs(a-b) <= eps).
//
// Comparison against the literal constant 0 is allowed: "zero means unset"
// is the config-default idiom throughout the codebase, and a value that was
// never written is exactly zero. Any other exact comparison needs a
// //lint:ignore floateq directive explaining why exactness holds.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "== or != on floating-point values; distance comparisons must use " +
		"thresholds (literal-zero unset checks are exempt)",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	if !pass.Library {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, bin.X) || !isFloat(pass.Info, bin.Y) {
				return true
			}
			if isZeroConst(pass.Info, bin.X) || isZeroConst(pass.Info, bin.Y) {
				return true
			}
			pass.Report(bin, "%s on floating-point values; compare with a threshold", bin.Op)
			return true
		})
	}
}

// isFloat reports whether e has a floating-point type.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
