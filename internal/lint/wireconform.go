package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireConform verifies encode/decode symmetry for wire messages by parsing
// the two sides of each pair as AST twins. An encoder is a method named
// Encode/EncodeAt (paired by receiver type) or a free function Encode<T>;
// its twin is the package function Decode<T> / Decode<T>At. Each body is
// lowered to a sequence of wire operations — fixed-width scalars by width
// class (a float64 and a uint64 are both 8 wire bytes), length-prefixed
// strings and float slices, loops over repeated groups, and version gates —
// and the two sequences must agree operation for operation. Loops over
// fixed-size composite literals unroll; if/else branches that write the
// same layout on both arms collapse (the `if b { append 1 } else
// { append 0 }` boolean idiom); and a field guarded by `version >= N` on
// one side must be guarded by the same condition at the same position on
// the other. Any other data-dependent branch in a codec is itself a
// finding: a wire layout must be unconditional or version-gated, or the
// peer cannot parse it. Protocol skew thus becomes a lint finding instead
// of a wire_test escape.
var WireConform = &Analyzer{
	Name: "wireconform",
	Doc: "encode/decode wire skew: the decoder's field order, widths, loops " +
		"or version gates do not mirror the encoder's; fix whichever side is " +
		"wrong before the frames disagree on the wire",
	Run: runWireConform,
}

// wireOp is one operation of a lowered codec body. Kinds:
//
//	b1/b2/b4/b8  fixed-width scalar, by width class
//	str          u32-length-prefixed string
//	floats       u32-count-prefixed []float64
//	bytes        variable-length raw bytes (spread append)
//	loop         dynamically repeated group (sub)
//	gate         version-guarded group (key is the condition, sub/subElse)
//	cond         any other data-dependent group that did not collapse
type wireOp struct {
	kind    string
	key     string // canonical condition text for gate/cond
	pos     token.Pos
	read    bool // extracted from a decoder
	sub     []wireOp
	subElse []wireOp
}

// wireKindDesc names an op kind in a finding.
func wireKindDesc(kind string) string {
	switch kind {
	case "b1":
		return "a 1-byte scalar"
	case "b2":
		return "a 2-byte scalar"
	case "b4":
		return "a 4-byte scalar"
	case "b8":
		return "an 8-byte scalar"
	case "str":
		return "a length-prefixed string"
	case "floats":
		return "a length-prefixed float64 slice"
	case "bytes":
		return "variable raw bytes"
	case "loop":
		return "a repeated group"
	case "gate":
		return "a version-gated group"
	}
	return kind
}

func runWireConform(pass *Pass) {
	if !pass.Library {
		return
	}
	encs := make(map[string]*ast.FuncDecl)
	decs := make(map[string]*ast.FuncDecl)
	var keys []string
	seen := make(map[string]bool)
	note := func(key string) {
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	atKey := func(base string) string {
		if rest, ok := strings.CutSuffix(base, "At"); ok && rest != "" {
			return rest + "@at"
		}
		return base
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				if name != "Encode" && name != "EncodeAt" {
					continue
				}
				recv := recvTypeName(fd)
				if recv == "" {
					continue
				}
				key := recv
				if name == "EncodeAt" {
					key += "@at"
				}
				encs[key] = fd
				note(key)
				continue
			}
			if rest, ok := strings.CutPrefix(name, "Encode"); ok && rest != "" {
				key := atKey(rest)
				encs[key] = fd
				note(key)
			}
			if rest, ok := strings.CutPrefix(name, "Decode"); ok && rest != "" {
				key := atKey(rest)
				decs[key] = fd
				note(key)
			}
		}
	}
	for _, key := range keys {
		enc, dec := encs[key], decs[key]
		if enc == nil || dec == nil {
			continue // WriteHello-style helpers pair by hand, not by name
		}
		encOps := (&wireSide{pass: pass}).stmts(enc.Body.List)
		decOps := (&wireSide{pass: pass, decode: true}).stmts(dec.Body.List)
		msg := strings.TrimSuffix(key, "@at")
		if m := findWireMismatch(msg, encOps, decOps); m != nil {
			pos := m.pos
			if pos == token.NoPos {
				pos = dec.Name.Pos()
			}
			pass.ReportPos(pos, "%s", m.text)
		}
	}
}

// recvTypeName returns the bare receiver type name of a method declaration.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// wireSide lowers one codec body to its wire-operation sequence. The same
// walker serves both sides; decode selects the read vocabulary (Reader
// accessor methods) over the write one (append helpers).
type wireSide struct {
	pass   *Pass
	decode bool
}

func (ws *wireSide) stmts(list []ast.Stmt) []wireOp {
	var out []wireOp
	for i, s := range list {
		// `if c { ...; return } rest...` is if/else in disguise: the
		// statements after a terminating if are its implicit else arm
		// (EncodeError's typed-error early return, error guards).
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && endsInReturn(ifs.Body) {
			if ifs.Init != nil {
				out = append(out, ws.stmt(ifs.Init)...)
			}
			body := ws.stmts(ifs.Body.List)
			alt := ws.stmts(list[i+1:])
			return append(out, ws.branch(ifs.Cond, body, alt)...)
		}
		out = append(out, ws.stmt(s)...)
	}
	return out
}

// endsInReturn reports whether the block's last statement is a return.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// branch folds a two-armed layout split into ops: a version gate, a
// wire-invisible collapse, or an opaque data-dependent cond.
func (ws *wireSide) branch(cond ast.Expr, body, alt []wireOp) []wireOp {
	switch {
	case isVersionCond(cond):
		return []wireOp{{kind: "gate", key: types.ExprString(cond),
			pos: cond.Pos(), read: ws.decode, sub: body, subElse: alt}}
	case wireOpsEqual(body, alt):
		// Both arms lay out the same bytes (the boolean 0/1 idiom, or
		// two op-free error guards): the branch is wire-invisible.
		return body
	default:
		return []wireOp{{kind: "cond", key: types.ExprString(cond),
			pos: cond.Pos(), read: ws.decode, sub: body, subElse: alt}}
	}
}

func (ws *wireSide) stmt(s ast.Stmt) []wireOp {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ws.stmts(s.List)
	case *ast.IfStmt:
		var out []wireOp
		if s.Init != nil {
			out = append(out, ws.stmt(s.Init)...)
		}
		body := ws.stmts(s.Body.List)
		var alt []wireOp
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			alt = ws.stmts(e.List)
		case *ast.IfStmt:
			alt = ws.stmt(e)
		}
		return append(out, ws.branch(s.Cond, body, alt)...)
	case *ast.ForStmt:
		var out []wireOp
		if s.Init != nil {
			out = append(out, ws.stmt(s.Init)...)
		}
		if body := ws.stmts(s.Body.List); len(body) > 0 {
			out = append(out, wireOp{kind: "loop", pos: s.Pos(), read: ws.decode, sub: body})
		}
		return out
	case *ast.RangeStmt:
		body := ws.stmts(s.Body.List)
		if len(body) == 0 {
			return nil
		}
		if n, ok := literalLen(s.X); ok {
			// Ranging over a fixed-size composite literal writes the group
			// exactly n times: unroll so it matches n scalar reads.
			var out []wireOp
			for i := 0; i < n; i++ {
				out = append(out, body...)
			}
			return out
		}
		return []wireOp{{kind: "loop", pos: s.Pos(), read: ws.decode, sub: body}}
	default:
		return ws.scan(s)
	}
}

// scan collects the op calls of one non-branching statement in source
// order. Function literals are separate codecs and do not contribute.
func (ws *wireSide) scan(n ast.Node) []wireOp {
	var out []wireOp
	root := ast.Node(n)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if op, ok := ws.opFor(call); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// opFor classifies one call as a wire operation of this side's vocabulary.
func (ws *wireSide) opFor(call *ast.CallExpr) (wireOp, bool) {
	op := func(kind string) (wireOp, bool) {
		return wireOp{kind: kind, pos: call.Pos(), read: ws.decode}, true
	}
	if ws.decode {
		fn := calleeFunc(ws.pass.Info, call)
		if fn == nil {
			return wireOp{}, false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil ||
			!strings.Contains(types.TypeString(sig.Recv().Type(), nil), "Reader") {
			return wireOp{}, false
		}
		switch fn.Name() {
		case "U8", "Bool":
			return op("b1")
		case "U16":
			return op("b2")
		case "U32":
			return op("b4")
		case "U64", "I64", "F64":
			return op("b8")
		case "String":
			return op("str")
		case "Floats":
			return op("floats")
		}
		return wireOp{}, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := ws.pass.Info.Uses[id].(*types.Builtin); builtin && id.Name == "append" {
			if call.Ellipsis.IsValid() {
				return op("bytes")
			}
			if len(call.Args) == 2 && isByteExpr(ws.pass.Info, call.Args[1]) {
				return op("b1")
			}
			return wireOp{}, false
		}
	}
	fn := calleeFunc(ws.pass.Info, call)
	if fn == nil {
		return wireOp{}, false
	}
	switch fn.Name() {
	case "AppendUint16":
		return op("b2")
	case "AppendUint32":
		return op("b4")
	case "AppendUint64":
		return op("b8")
	case "appendString":
		return op("str")
	case "appendFloats":
		return op("floats")
	}
	return wireOp{}, false
}

// isByteExpr reports whether the expression's type is byte-sized.
func isByteExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Uint8, types.Int8, types.UntypedInt:
		return true
	}
	return false
}

// literalLen returns the element count of a composite-literal expression.
func literalLen(e ast.Expr) (int, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return 0, false
	}
	return len(lit.Elts), true
}

// isVersionCond reports whether a branch condition mentions a protocol
// version: any identifier or field whose name contains "version".
func isVersionCond(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		name := ""
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "version") {
			found = true
		}
		return !found
	})
	return found
}

// wireOpsEqual compares two op sequences structurally (positions ignored).
func wireOpsEqual(a, b []wireOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].key != b[i].key ||
			!wireOpsEqual(a[i].sub, b[i].sub) || !wireOpsEqual(a[i].subElse, b[i].subElse) {
			return false
		}
	}
	return true
}

// wireMismatch is the first structural divergence between the two sides.
type wireMismatch struct {
	pos  token.Pos
	text string
}

// findWireMismatch walks the twin sequences in lockstep and returns the
// first divergence, or nil when the layouts agree. One finding per pair:
// a single skew usually desynchronizes everything after it, and a cascade
// of follow-on reports would bury the cause.
func findWireMismatch(msg string, enc, dec []wireOp) *wireMismatch {
	for i := 0; i < len(enc) && i < len(dec); i++ {
		e, d := enc[i], dec[i]
		if e.kind == "cond" {
			return condMismatch(msg, e)
		}
		if d.kind == "cond" {
			return condMismatch(msg, d)
		}
		if e.kind != d.kind {
			switch {
			case e.kind == "gate":
				return &wireMismatch{pos: d.pos, text: fmt.Sprintf(
					"wire skew in %s: field %d is written only under %q but read unconditionally; mirror the version gate in the decoder",
					msg, i, e.key)}
			case d.kind == "gate":
				return &wireMismatch{pos: d.pos, text: fmt.Sprintf(
					"wire skew in %s: field %d is read only under %q but written unconditionally; mirror the version gate in the encoder",
					msg, i, d.key)}
			}
			return &wireMismatch{pos: d.pos, text: fmt.Sprintf(
				"wire skew in %s: field %d is written as %s but read as %s",
				msg, i, wireKindDesc(e.kind), wireKindDesc(d.kind))}
		}
		switch e.kind {
		case "gate":
			if e.key != d.key {
				return &wireMismatch{pos: d.pos, text: fmt.Sprintf(
					"asymmetric version gate in %s: the encoder guards field %d with %q, the decoder with %q",
					msg, i, e.key, d.key)}
			}
			if m := findWireMismatch(msg, e.sub, d.sub); m != nil {
				return m
			}
			if m := findWireMismatch(msg, e.subElse, d.subElse); m != nil {
				return m
			}
		case "loop":
			if m := findWireMismatch(msg, e.sub, d.sub); m != nil {
				return m
			}
		}
	}
	if len(enc) != len(dec) {
		pos := token.NoPos
		if len(enc) > len(dec) {
			pos = enc[len(dec)].pos
		} else {
			pos = dec[len(enc)].pos
		}
		return &wireMismatch{pos: pos, text: fmt.Sprintf(
			"wire skew in %s: the encoder writes %d fields at this level, the decoder reads %d",
			msg, len(enc), len(dec))}
	}
	return nil
}

// condMismatch reports a data-dependent branch that is neither a version
// gate nor wire-invisible.
func condMismatch(msg string, op wireOp) *wireMismatch {
	side := "written"
	if op.read {
		side = "read"
	}
	return &wireMismatch{pos: op.pos, text: fmt.Sprintf(
		"data-dependent wire layout in %s: fields are %s only when %q; a layout must be unconditional or version-gated, or the peer cannot parse it",
		msg, side, op.key)}
}

