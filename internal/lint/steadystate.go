package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SteadyState enforces PR 4's allocation contract statically. A function
// marked
//
//	//twlint:steady-state [reason]
//
// is on the pooled per-query path — the AddRow* kernels, the pending-set
// ops, the visitor plumbing — where TestSearchAllocationSteadyState pins
// ~0 bytes/query after warmup. Such a body may not contain:
//
//   - make/new calls or slice/map/chan composite literals
//   - address-taken composite literals (&T{} escapes to the heap)
//   - append calls (a growing append reallocates the backing array)
//   - function literals that capture enclosing variables (a capturing
//     closure allocates per call)
//   - interface-boxing call sites (a concrete value passed to an interface
//     parameter allocates), unless the call goes through an audited pool
//     acquire (a package-local function carrying //twlint:pool-transfer)
//
// Warmup-phase allocation that a growth guard bounds — the pending-set
// Reset's touched-slice doubling, for instance — is audited in place with
// //lint:ignore steadystate <reason>, so each amortization argument is
// written down where it holds. A floating marker not attached to a
// function declaration is itself a finding, like bound-source.
var SteadyState = &Analyzer{
	Name: "steadystate",
	Doc: "a //twlint:steady-state function allocates: make/new, composite " +
		"literal escape, growing append, capturing closure, or interface " +
		"boxing; hoist into the pooled query context or audit the warmup " +
		"with //lint:ignore steadystate",
	Run: runSteadyState,
}

// steadyStateComment returns the //twlint:steady-state line of a doc
// comment, or nil.
func steadyStateComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, cm := range doc.List {
		if strings.HasPrefix(cm.Text, "//twlint:steady-state") {
			return cm
		}
	}
	return nil
}

func runSteadyState(pass *Pass) {
	if !pass.Library {
		return
	}
	// Audited pool acquires: calls to these are the sanctioned way a value
	// enters a steady-state body, so their call sites are exempt from the
	// boxing check.
	pooled := make(map[*types.Func]bool)
	attached := make(map[*ast.Comment]bool)
	var markedDecls []*ast.FuncDecl
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if c, _ := poolTransferComment(fd.Doc); c != nil {
				if fn, _ := pass.Info.Defs[fd.Name].(*types.Func); fn != nil {
					pooled[fn] = true
				}
			}
			c := steadyStateComment(fd.Doc)
			if c == nil {
				continue
			}
			attached[c] = true
			if fd.Body == nil {
				continue
			}
			markedDecls = append(markedDecls, fd)
		}
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, "//twlint:steady-state") && !attached[c] {
					pass.ReportPos(c.Pos(), "stale //twlint:steady-state: the directive is not the doc comment of a function declaration, so it pins nothing; move it onto the kernel or delete it")
				}
			}
		}
	}
	for _, fd := range markedDecls {
		checkSteadyState(pass, fd, pooled)
	}
}

// checkSteadyState walks one marked body and reports every allocation site.
func checkSteadyState(pass *Pass, fd *ast.FuncDecl, pooled map[*types.Func]bool) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n, "steady-state %s heap-allocates an address-taken composite literal; acquire the value from the pool or hoist it into the query context", name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					pass.Report(n, "steady-state %s allocates a %s literal per call; preallocate it in the pool warmup", name, compositeKind(t))
				}
			}
		case *ast.FuncLit:
			if caps := capturedVars(pass, fd, n); len(caps) > 0 {
				pass.Report(n, "steady-state %s builds a closure capturing %s, allocating per call; hoist the literal to a method or pass the state explicitly", name, strings.Join(caps, ", "))
			}
		case *ast.CallExpr:
			checkSteadyCall(pass, name, n, pooled)
		}
		return true
	})
}

// compositeKind names the allocating literal kind for the report.
func compositeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return "composite"
}

// checkSteadyCall reports allocating calls: make/new/append builtins and
// interface-boxing argument passing.
func checkSteadyCall(pass *Pass, name string, call *ast.CallExpr, pooled map[*types.Func]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make", "new":
				pass.Report(call, "steady-state %s calls %s, allocating per call; move the allocation into the pool warmup", name, id.Name)
			case "append":
				pass.Report(call, "steady-state %s appends, which may grow the backing array; preallocate capacity in the warmup or audit the amortization with //lint:ignore steadystate", name)
			}
			return
		}
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || pooled[fn] {
		return // dynamic call, or an audited pool acquire
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		j := paramIndex(sig, i)
		if j < 0 {
			continue
		}
		ptype := sig.Params().At(j).Type()
		if sig.Variadic() && j == sig.Params().Len()-1 {
			if s, ok := ptype.Underlying().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				ptype = s.Elem()
			}
		}
		if !types.IsInterface(ptype.Underlying()) {
			continue
		}
		if _, tp := ptype.(*types.TypeParam); tp {
			continue // generic instantiation, not boxing
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if basic, ok := at.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		pass.Report(arg, "steady-state %s boxes a concrete %s into interface parameter %q of %s, allocating per call; take a concrete type or route the value through an audited pool acquire", name, at.String(), paramName(fn, j), fn.Name())
	}
}

// capturedVars lists the enclosing local variables a function literal
// captures: identifiers resolving to objects declared inside the enclosing
// function but outside the literal (parameters and receivers included).
func capturedVars(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
			return true // package-level or foreign: no closure cell
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return true // the literal's own local or parameter
		}
		seen[obj] = true
		out = append(out, obj.Name())
		return true
	})
	return out
}
