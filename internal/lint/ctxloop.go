package lint

import (
	"go/ast"
	"go/token"
)

// CtxlessLoop reports condition-less `for {}` loops with no reachable exit
// in the search packages (core, multivar). The threshold-expansion loops in
// SearchKNN are intentionally unbounded in their loop header; their safety
// argument is the in-body limit check (eps > 1e18 → return). This analyzer
// pins that discipline: every `for {` in a search path must contain a
// break, a return, or a labeled exit of its own, so a future edit cannot
// turn threshold expansion into a spin that a production query then sits
// in forever.
var CtxlessLoop = &Analyzer{
	Name: "ctxless-loop",
	Doc: "unbounded for-loop in a search path with no break/return; add a " +
		"cancellation or limit check",
	Run: runCtxlessLoop,
}

// ctxloopPackages names the search-path packages the check applies to.
var ctxloopPackages = map[string]bool{"core": true, "multivar": true}

func runCtxlessLoop(pass *Pass) {
	if !pass.Library || !ctxloopPackages[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !loopHasExit(loop) {
				pass.Report(loop, "unbounded for-loop has no break or return; add a cancellation or limit check")
			}
			return true
		})
	}
}

// loopHasExit reports whether the loop body contains a statement that can
// leave the loop: a return; an unlabeled break not captured by a nested
// for/switch/select; or a labeled break, which always names the loop itself
// or an enclosing statement and therefore exits the loop either way.
// Function literals start a new function and do not count.
func loopHasExit(loop *ast.ForStmt) bool {
	found := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || found {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return // new function: its returns do not exit our loop
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && (s.Label != nil || depth == 0) {
				found = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, child := range childNodes(n) {
				walk(child, depth+1)
			}
			return
		}
		for _, child := range childNodes(n) {
			walk(child, depth)
		}
	}
	for _, child := range childNodes(loop.Body) {
		walk(child, 0)
	}
	return found
}

// childNodes returns the direct child nodes of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
