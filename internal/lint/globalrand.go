package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand reports uses of math/rand's package-level generator in library
// packages. Workload generation, sampling, and benchmarks must be exactly
// reproducible from a seed — the EXPERIMENTS.md tables are regenerated and
// compared across machines — and the global source is both seeded elsewhere
// and shared across goroutines. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, ...) are allowed; everything must flow through an explicit
// seeded *rand.Rand.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "package-global math/rand use in a library package; thread a " +
		"seeded *rand.Rand instead",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	if !pass.Library {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand have a receiver; package-level functions
			// do not. Only the latter touch the global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			pass.Report(sel, "rand.%s uses the package-global source; thread a seeded *rand.Rand", fn.Name())
			return true
		})
	}
}
