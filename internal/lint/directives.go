package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreKey identifies one suppressed (file, line, check) triple.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoreDirective is one well-formed //lint:ignore annotation.
type ignoreDirective struct {
	pos    token.Position
	checks []string
}

// directives scans the comments of every file for //lint:ignore annotations.
// A directive suppresses findings of the named check on its own line and on
// the line directly below it (so it can sit above the statement it audits).
// Malformed directives — a missing check name or a missing reason — are
// returned as findings in their own right: an unexplained exception is not
// an audited exception.
func directives(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Finding) {
	var dirs []ignoreDirective
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{Pos: pos, Check: "directive",
						Message: "lint:ignore needs a check name and a reason"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Check: "directive",
						Message: "lint:ignore " + fields[0] + " needs a reason documenting the invariant"})
					continue
				}
				dirs = append(dirs, ignoreDirective{pos: pos, checks: strings.Split(fields[0], ",")})
			}
		}
	}
	return dirs, bad
}

// filterIgnored drops findings suppressed by a directive, and reports which
// directives actually suppressed something.
func filterIgnored(findings []Finding, dirs []ignoreDirective) ([]Finding, []bool) {
	used := make([]bool, len(dirs))
	if len(dirs) == 0 {
		return findings, used
	}
	ignored := make(map[ignoreKey][]int)
	for i, d := range dirs {
		for _, check := range d.checks {
			ignored[ignoreKey{d.pos.Filename, d.pos.Line, check}] = append(ignored[ignoreKey{d.pos.Filename, d.pos.Line, check}], i)
			ignored[ignoreKey{d.pos.Filename, d.pos.Line + 1, check}] = append(ignored[ignoreKey{d.pos.Filename, d.pos.Line + 1, check}], i)
		}
	}
	out := findings[:0]
	for _, f := range findings {
		if dis, ok := ignored[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Check}]; ok {
			for _, i := range dis {
				used[i] = true
			}
			continue
		}
		out = append(out, f)
	}
	return out, used
}

// staleDirectives reports //lint:ignore annotations that suppressed nothing
// this run. A directive is only judged when every check it names belongs to
// the running analyzer set — a partial run cannot know whether a directive
// for an absent check is live — except that a name matching no registered
// check at all is always stale.
func staleDirectives(dirs []ignoreDirective, used []bool, analyzers []*Analyzer) []Finding {
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	registered := map[string]bool{"directive": true}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	var out []Finding
	for i, d := range dirs {
		if used[i] {
			continue
		}
		judgeable := true
		for _, check := range d.checks {
			if !registered[check] {
				out = append(out, Finding{Pos: d.pos, Check: "directive",
					Message: "lint:ignore " + check + " names no registered check; fix the name or delete the directive"})
				judgeable = false
				continue
			}
			if !active[check] {
				judgeable = false // partial run: cannot prove staleness
			}
		}
		if judgeable {
			out = append(out, Finding{Pos: d.pos, Check: "directive",
				Message: "stale lint:ignore " + strings.Join(d.checks, ",") + ": it suppresses no finding here; delete it (the audited exception no longer exists)"})
		}
	}
	return out
}
