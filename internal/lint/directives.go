package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreKey identifies one suppressed (file, line, check) triple.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// directives scans the comments of every file for //lint:ignore annotations.
// A directive suppresses findings of the named check on its own line and on
// the line directly below it (so it can sit above the statement it audits).
// Malformed directives — a missing check name or a missing reason — are
// returned as findings in their own right: an unexplained exception is not
// an audited exception.
func directives(fset *token.FileSet, files []*ast.File) (map[ignoreKey]bool, []Finding) {
	ignored := make(map[ignoreKey]bool)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{Pos: pos, Check: "directive",
						Message: "lint:ignore needs a check name and a reason"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Check: "directive",
						Message: "lint:ignore " + fields[0] + " needs a reason documenting the invariant"})
					continue
				}
				for _, check := range strings.Split(fields[0], ",") {
					ignored[ignoreKey{pos.Filename, pos.Line, check}] = true
					ignored[ignoreKey{pos.Filename, pos.Line + 1, check}] = true
				}
			}
		}
	}
	return ignored, bad
}

// filterIgnored drops findings suppressed by a directive.
func filterIgnored(findings []Finding, ignored map[ignoreKey]bool) []Finding {
	if len(ignored) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		if ignored[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Check}] {
			continue
		}
		out = append(out, f)
	}
	return out
}
