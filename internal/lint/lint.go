// Package lint is twsearch's project-specific static-analysis suite. It is
// built purely on the standard library (go/ast, go/parser, go/types,
// go/token) so the module stays dependency-free, and it encodes invariants
// that generic tooling cannot know about: the exactness of the search rests
// on lower-bound ordering and careful error propagation, so one unchecked
// Close or one panic on a library path silently breaks the no-false-dismissal
// guarantee the paper proves.
//
// The driver (cmd/twlint) loads every package in the module, type-checks it,
// and runs each registered Analyzer. Findings print as
//
//	file:line: [check-name] message
//
// and any finding makes the run exit non-zero. An audited exception is
// annotated at the offending line (or the line above it) with
//
//	//lint:ignore check-name reason
//
// where the reason is mandatory — an ignore without a written-down invariant
// is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical file:line: [check] message form. The file
// path is printed as stored; the driver rewrites it relative to the working
// directory before printing.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Analyzer is one pluggable check.
type Analyzer struct {
	// Name is the check name used in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description for `twlint -help`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files holds the parsed non-test source files of the package.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the use/def/type maps produced by the checker.
	Info *types.Info
	// Path is the import path of the package within the module
	// (e.g. "twsearch/internal/dtw").
	Path string
	// Library reports whether the package is part of the library surface
	// (internal/* or seqdb) as opposed to a command or example binary.
	Library bool

	check    string
	findings *[]Finding
	// src is the loaded package behind the pass; it links back to the
	// loader so analyzers can reach the interprocedural summary cache.
	src *Package
}

// analysis returns the package's interprocedural artifacts (call graph,
// bound-source markers, bound-taint summaries), or nil when the pass was
// built without a loader-backed package.
func (p *Pass) analysis() *pkgAnalysis {
	if p.src == nil || p.src.loader == nil {
		return nil
	}
	return p.src.loader.analysisFor(p.src)
}

// depSummary resolves a function of another module package to its
// bound-taint summary, or nil for stdlib and unresolved callees.
func (p *Pass) depSummary(fn *types.Func) *FuncSummary {
	if p.src == nil || p.src.loader == nil {
		return nil
	}
	return p.src.loader.depResolver(p.src)(fn)
}

// Report records a finding at the given node's position.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	p.ReportPos(n.Pos(), format, args...)
}

// ReportPos records a finding at an explicit position.
func (p *Pass) ReportPos(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PanicPath,
		ErrWrap,
		FloatEq,
		CloseCheck,
		GlobalRand,
		CtxlessLoop,
		BoundsContract,
		LockBalance,
		GoLeak,
		DeferInLoop,
		PoolBalance,
		AtomicMix,
		JoinBarrier,
		WireConform,
		CtxFlow,
		SteadyState,
		ViewEscape,
	}
}

// AnalyzerTiming is the wall-clock cost of one analyzer over one package.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunPackage runs every analyzer in the suite over one loaded package and
// returns the findings that survive ignore-directive filtering, plus
// findings about malformed or stale directives themselves.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	out, _ := RunPackageTimed(pkg, analyzers)
	return out
}

// RunPackageTimed is RunPackage plus per-analyzer wall time, in analyzer
// order. Timings are reported separately from findings so the finding
// stream stays byte-deterministic for golden diffs.
func RunPackageTimed(pkg *Package, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming) {
	var raw []Finding
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			Library:  pkg.Library,
			check:    a.Name,
			findings: &raw,
			src:      pkg,
		}
		start := time.Now()
		a.Run(pass)
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: time.Since(start)})
	}
	dirs, bad := directives(pkg.Fset, pkg.Files)
	out, used := filterIgnored(raw, dirs)
	out = append(out, bad...)
	out = append(out, staleDirectives(dirs, used, analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		return out[i].Message < out[j].Message
	})
	return out, timings
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(pos token.Position) bool {
	return strings.HasSuffix(pos.Filename, "_test.go")
}

// fileOf returns the *ast.File containing pos.
func fileOf(fset *token.FileSet, files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
