package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFirstFunc parses src (a complete file), builds the graph of its
// first function declaration, and returns it with the fileset.
func buildFirstFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fset, fd)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestGolden pins the lowering of every control construct the analyzers
// rely on: if/else, for, range (with break/continue), switch (with
// fallthrough and default), defer with a negated condition, short-circuit
// && / ||, and panic as a path terminator.
func TestGolden(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "if",
			src: `package p
func f(a, b int) int {
	if a > b {
		return a
	}
	return b
}`,
			want: `b0(entry) [a > b] -> b2 b3
b1(exit)
b2(if.then) [return a] -> b1
b3(if.done) [return b] -> b1
`,
		},
		{
			name: "if-else",
			src: `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`,
			want: `b0(entry) [x := 0; a > 0] -> b2 b4
b1(exit)
b2(if.then) [x = 1] -> b3
b3(if.done) [return x] -> b1
b4(if.else) [x = 2] -> b3
`,
		},
		{
			name: "for",
			src: `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`,
			want: `b0(entry) [s := 0; i := 0] -> b2
b1(exit)
b2(for.head) [i < n] -> b3 b4
b3(for.body) [s += i] -> b5
b4(for.done) [return s] -> b1
b5(for.post) [i++] -> b2
`,
		},
		{
			name: "for-infinite-break",
			src: `package p
func f() int {
	i := 0
	for {
		i++
		if i > 3 {
			break
		}
	}
	return i
}`,
			want: `b0(entry) [i := 0] -> b2
b1(exit)
b2(for.head) -> b3
b3(for.body) [i++; i > 3] -> b5 b6
b4(for.done) [return i] -> b1
b5(if.then) [break] -> b4
b6(if.done) -> b2
`,
		},
		{
			name: "range-break-continue",
			src: `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 99 {
			break
		}
		s += x
	}
	return s
}`,
			want: `b0(entry) [s := 0] -> b2
b1(exit)
b2(range.head) [_, x := range xs] -> b3 b4
b3(range.body) [x < 0] -> b5 b6
b4(range.done) [return s] -> b1
b5(if.then) [continue] -> b2
b6(if.done) [x > 99] -> b7 b8
b7(if.then) [break] -> b4
b8(if.done) [s += x] -> b2
`,
		},
		{
			name: "switch-fallthrough-default",
			src: `package p
func f(x int) int {
	y := 0
	switch x {
	case 1:
		y = 1
		fallthrough
	case 2:
		y = 2
	default:
		y = 3
	}
	return y
}`,
			want: `b0(entry) [y := 0; x; 1; 2] -> b3 b4 b5
b1(exit)
b2(switch.done) [return y] -> b1
b3(switch.case) [y = 1; fallthrough] -> b4
b4(switch.case) [y = 2] -> b2
b5(switch.case) [y = 3] -> b2
`,
		},
		{
			name: "defer-negated-cond",
			src: `package p
func f(ok bool) error {
	mu.Lock()
	defer mu.Unlock()
	if !ok {
		return errNope
	}
	return nil
}`,
			// !ok swaps the branch edges: Succs[0] (ok true) is the done
			// block, Succs[1] the then block.
			want: `b0(entry) [mu.Lock(); defer mu.Unlock(); ok] -> b3 b2
b1(exit)
b2(if.then) [return errNope] -> b1
b3(if.done) [return nil] -> b1
`,
		},
		{
			name: "short-circuit",
			src: `package p
func f(a, b, c bool) int {
	if a && (b || c) {
		return 1
	}
	return 0
}`,
			want: `b0(entry) [a] -> b4 b3
b1(exit)
b2(if.then) [return 1] -> b1
b3(if.done) [return 0] -> b1
b4(cond.and) [b] -> b2 b5
b5(cond.or) [c] -> b2 b3
`,
		},
		{
			name: "panic-terminates",
			src: `package p
func f(x int) int {
	if x < 0 {
		panic("neg")
	}
	return x
}`,
			want: `b0(entry) [x < 0] -> b2 b3
b1(exit)
b2(if.then) [panic("neg")]
b3(if.done) [return x] -> b1
`,
		},
		{
			// The chain lowers with Go's precedence — (a && b && c) || d —
			// so every false edge of the && spine lands on the || leaf, and
			// only d's false edge reaches if.done. Succs[0] is always the
			// true edge, which the exactness-guard domination check relies
			// on.
			name: "short-circuit-chain",
			src: `package p
func f(a, b, c, d bool) int {
	if a && b && c || d {
		return 1
	}
	return 0
}`,
			want: `b0(entry) [a] -> b6 b4
b1(exit)
b2(if.then) [return 1] -> b1
b3(if.done) [return 0] -> b1
b4(cond.or) [d] -> b2 b3
b5(cond.and) [c] -> b2 b4
b6(cond.and) [b] -> b5 b4
`,
		},
		{
			// Every aborting terminator — panic, os.Exit, log.Fatalf — ends
			// its path: the case blocks have no successors, so PathToExit
			// never counts them as leaks and only switch.done reaches exit.
			name: "panic-exit-fatal-paths",
			src: `package p
func f(x int) int {
	switch {
	case x < 0:
		panic("neg")
	case x == 0:
		os.Exit(2)
	case x > 99:
		log.Fatalf("big: %d", x)
	}
	return x
}`,
			want: `b0(entry) [x < 0; x == 0; x > 99] -> b3 b4 b5 b2
b1(exit)
b2(switch.done) [return x] -> b1
b3(switch.case) [panic("neg")]
b4(switch.case) [os.Exit(2)]
b5(switch.case) [log.Fatalf("big: %d", x)]
`,
		},
		{
			// A defer inside a loop body stays a plain node on the body
			// path (registration accumulates per iteration); the back edge
			// through if.done returns to the range head, which is why
			// deferinloop treats the pattern as a resource pile-up rather
			// than a per-iteration release.
			name: "defer-in-loop",
			src: `package p
func f(files []string) error {
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}`,
			want: `b0(entry) -> b2
b1(exit)
b2(range.head) [_, name := range files] -> b3 b4
b3(range.body) [f, err := os.Open(name); err != nil] -> b5 b6
b4(range.done) [return nil] -> b1
b5(if.then) [return err] -> b1
b6(if.done) [defer f.Close()] -> b2
`,
		},
		{
			// The canonical cancellation poll: an unbounded loop whose body
			// selects on ctx.Done each turn. There is no select head->done
			// edge — every path through the loop passes a comm clause, which
			// is what makes the select a per-iteration poll.
			name: "select-ctx-done-poll",
			src: `package p
func f(ctx Ctx, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-work:
			total += v
		}
	}
}`,
			want: `b0(entry) [total := 0] -> b2
b1(exit)
b2(for.head) -> b3
b3(for.body) -> b6 b7
b4(for.done) -> b1
b5(select.done) -> b2
b6(select.comm) [<-ctx.Done(); return total] -> b1
b7(select.comm) [v := <-work; total += v] -> b5
`,
		},
		{
			// The masked-counter poll: the checkCancel call is guarded by a
			// counter test, so the poll sits on a conditional branch inside
			// the loop body rather than on every path.
			name: "masked-counter-poll",
			src: `package p
func f(s *searcher) int {
	for {
		s.n++
		if s.n&63 == 0 {
			if s.checkCancel() {
				return s.n
			}
		}
	}
}`,
			want: `b0(entry) -> b2
b1(exit)
b2(for.head) -> b3
b3(for.body) [s.n++; s.n&63 == 0] -> b5 b6
b4(for.done) -> b1
b5(if.then) [s.checkCancel()] -> b7 b8
b6(if.done) -> b2
b7(if.then) [return s.n] -> b1
b8(if.done) -> b6
`,
		},
		{
			// A for-range over a channel needs no poll: the loop exits via
			// the range head when the channel closes, so the head->done edge
			// is the cancellation path.
			name: "range-done-channel",
			src: `package p
func f(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}`,
			want: `b0(entry) [total := 0] -> b2
b1(exit)
b2(range.head) [v := range ch] -> b3 b4
b3(range.body) [total += v] -> b2
b4(range.done) [return total] -> b1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFirstFunc(t, tc.src)
			if got := g.String(); got != tc.want {
				t.Errorf("graph mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestDominators checks dominance on the for-loop shape: the head dominates
// body, post and done; the body does not dominate done (the cond can skip
// it on the zeroth iteration... it cannot here, but domination is about all
// paths from entry, and entry->head->done bypasses the body).
func TestDominators(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	dom := g.Dominators()
	head, body, done := g.Blocks[2], g.Blocks[3], g.Blocks[4]
	if !dom.Dominates(g.Entry, done) {
		t.Errorf("entry must dominate every block")
	}
	if !dom.Dominates(head, body) || !dom.Dominates(head, done) {
		t.Errorf("for.head must dominate body and done")
	}
	if dom.Dominates(body, done) {
		t.Errorf("for.body must not dominate for.done")
	}
	if !dom.Dominates(body, body) {
		t.Errorf("a block dominates itself")
	}
}

// TestPathToExit checks the discipline query: with the unlock deferred
// right after the lock, no path escapes to exit without passing it; with
// the unlock only on one branch, the other branch leaks.
func TestPathToExit(t *testing.T) {
	stopAtUnlock := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if sel, ok := x.(*ast.SelectorExpr); ok && sel.Sel.Name == "Unlock" {
				found = true
			}
			return !found
		})
		return found
	}

	balanced := buildFirstFunc(t, `package p
func f(ok bool) error {
	mu.Lock()
	defer mu.Unlock()
	if !ok {
		return errNope
	}
	return nil
}`)
	if balanced.PathToExit(balanced.Entry, 0, stopAtUnlock) {
		t.Errorf("deferred unlock right after lock must close every exit path")
	}

	leaky := buildFirstFunc(t, `package p
func f(ok bool) error {
	mu.Lock()
	if !ok {
		return errNope
	}
	mu.Unlock()
	return nil
}`)
	if !leaky.PathToExit(leaky.Entry, 0, stopAtUnlock) {
		t.Errorf("early return before unlock must leave an unlocked exit path")
	}

	panics := buildFirstFunc(t, `package p
func f(ok bool) {
	mu.Lock()
	if !ok {
		panic("bad")
	}
	mu.Unlock()
}`)
	if panics.PathToExit(panics.Entry, 0, stopAtUnlock) {
		t.Errorf("a panicking path never reaches exit and must not count as a leak")
	}
}

// TestTaint checks the reaching-values lattice: taint enters through a
// designated source result, survives arithmetic and conversions, joins as
// may-taint at merge points, and does not leak into untouched variables.
func TestTaint(t *testing.T) {
	src := `package p
func source() (float64, float64) { return 0, 1 }
func f(eps float64) (bool, bool) {
	lb, v := source()
	d := lb - v
	var clean float64
	if d > eps {
		clean = v
	} else {
		clean = d
	}
	return clean > eps, v > eps
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	g := Build(fset, fn)
	ta := &Taint{
		Info: info,
		SourceCall: func(call *ast.CallExpr) []bool {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "source" {
				return []bool{true, false} // only the first result is a bound
			}
			return nil
		},
	}
	facts := ta.Run(g)

	// Find the block holding the return statement and the idents within it.
	var retBlock *Block
	var ret *ast.ReturnStmt
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok {
				retBlock, ret = b, r
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	fact := facts[retBlock.Index]
	identTaint := func(name string) bool {
		tainted := false
		ast.Inspect(ret, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				tainted = ta.ExprTainted(fact, id)
			}
			return true
		})
		return tainted
	}
	if !identTaint("clean") {
		t.Errorf("clean is assigned a bound on one branch; must be may-tainted after the join")
	}
	if identTaint("v") {
		t.Errorf("v never carries a bound; must stay clean")
	}
	if !strings.Contains(g.String(), "d > eps") {
		t.Errorf("condition leaf missing from graph:\n%s", g.String())
	}
}

// TestTaintMidGraphSource pins the worklist seeding: a source call inside a
// loop body introduces taint in a block whose entry fact is empty, so the
// fixpoint must visit every block at least once — seeding only the entry
// block would drain the worklist before the source is ever seen. This is
// exactly the shape of core.(*searcher).processEdge, where AddRowInterval
// runs inside the per-symbol loop.
func TestTaintMidGraphSource(t *testing.T) {
	src := `package p
func source() (float64, float64) { return 0, 1 }
func f(n int, eps float64) bool {
	total := 0.0
	for i := 0; i < n; i++ {
		_, lb := source()
		bound := lb
		if n > 3 {
			bound = lb - float64(i)
		}
		if bound > eps {
			return false
		}
		total += bound
	}
	return total > eps
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	g := Build(fset, fn)
	ta := &Taint{
		Info: info,
		SourceCall: func(call *ast.CallExpr) []bool {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "source" {
				return []bool{false, true}
			}
			return nil
		},
	}
	facts := ta.Run(g)

	// Every use of `bound` in a condition leaf must see it tainted at the
	// block's entry — the comparison lives blocks away from the source call.
	checked := 0
	for _, b := range g.Blocks {
		c := b.Cond()
		if c == nil {
			continue
		}
		bin, ok := c.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		if id, ok := bin.X.(*ast.Ident); ok && id.Name == "bound" {
			checked++
			if !ta.ExprTainted(facts[b.Index], id) {
				t.Errorf("bound not tainted at its comparison block (entry fact has %d objects)", len(facts[b.Index]))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no `bound > eps` condition leaf found in the graph")
	}
}
