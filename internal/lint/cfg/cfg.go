// Package cfg builds per-function control-flow graphs from go/ast, with no
// dependencies beyond the standard library. It is the substrate of twlint's
// flow-sensitive analyzers: the paper's no-false-dismissal guarantee is a
// property of *paths* — a lock released on all exits, a goroutine joined on
// all exits, a lower bound that only ever gates pruning — and those
// properties cannot be checked by pattern-matching syntax alone.
//
// The graph is deliberately simple: a list of basic blocks holding the
// function's simple statements and branch-condition leaves in execution
// order, connected by successor edges. Control constructs are lowered the
// usual way:
//
//   - if/else, for, range, switch, type switch and select become head,
//     body and done blocks;
//   - short-circuit conditions are decomposed, so `if a && b` produces a
//     block evaluating `a` and a separate block evaluating `b` — a branch on
//     the second operand really is a distinct program point;
//   - for a block ending in a condition leaf, Succs[0] is the edge taken
//     when the leaf evaluates true and Succs[1] the false edge;
//   - return edges to the synthetic Exit block; panic, os.Exit, log.Fatal*
//     and runtime.Goexit terminate their path without reaching Exit, so
//     "on every path to Exit" means "on every non-aborting path";
//   - defer statements appear as ordinary nodes at their registration
//     point: a path that passes the registration runs the deferred call at
//     every subsequent exit, which is exactly how the analyzers treat them.
//
// goto is not modeled: its statement ends the current path conservatively.
// The module has no goto in non-generated code, and twlint's analyzers only
// ever use the graph to prove "must happen before exit" facts, for which
// dropping a path is the safe direction.
package cfg

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line run of simple
// statements, ended by a branch, a return, or a fall-through to the next
// block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind names the construct that created the block (entry, exit, if.then,
	// for.head, cond.and, ...) for golden tests and debugging.
	Kind string
	// Nodes holds the block's statements and condition leaves in execution
	// order. Compound statements never appear; their pieces are distributed
	// over the blocks they create. A trailing ast.Expr is the block's branch
	// condition.
	Nodes []ast.Node
	// Succs are the successor edges. For a block ending in a condition leaf
	// there are exactly two: Succs[0] is taken when the condition is true,
	// Succs[1] when it is false.
	Succs []*Block
	// Preds are the predecessor edges (reverse of Succs).
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Fset *token.FileSet
	// Blocks lists every block; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Build constructs the graph of a function body. fn is a *ast.FuncDecl or
// *ast.FuncLit; a nil or bodyless function yields a graph whose entry falls
// straight through to exit.
func Build(fset *token.FileSet, fn ast.Node) *Graph {
	g := &Graph{Fset: fset}
	b := &builder{g: g}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry

	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body is an implicit return.
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	return g
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label string // enclosing statement label, "" if none
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select scopes
}

type builder struct {
	g      *Graph
	cur    *Block // nil while the current path is unreachable
	scopes []scope
	label  string // pending label for the next loop/switch statement
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a simple statement to the current block.
func (b *builder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	if b.cur == nil && !isLabeled(s) {
		// Unreachable code (after return/break/...): skip. A labeled
		// statement can still be reached by goto, which we don't model, so
		// it conservatively keeps its sub-statements out of the graph too.
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if terminatesPath(s.X) {
			b.cur = nil
		}
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// isLabeled reports whether s is a labeled statement.
func isLabeled(s ast.Stmt) bool {
	_, ok := s.(*ast.LabeledStmt)
	return ok
}

// cond lowers a boolean expression evaluated in the current block, branching
// to t when it is true and to f when it is false. Short-circuit operators
// split into separate blocks; everything else becomes a condition leaf.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	if b.cur == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond.and")
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.or")
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, t) // Succs[0]: condition true
	b.edge(b.cur, f) // Succs[1]: condition false
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if are only goto targets; not modeled
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	els := done
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	b.cond(s.Cond, then, els)

	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, done)
	}
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.edge(b.cur, body)
		b.cur = nil
	}

	b.scopes = append(b.scopes, scope{label: label, brk: done, cont: post})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]

	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(b.cur, head)
	// The RangeStmt node itself is the head's node: analyzers read the
	// key/value assignment and the ranged operand from it.
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)
	b.edge(head, done)

	b.scopes = append(b.scopes, scope{label: label, brk: done, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	done := b.newBlock("switch.done")
	b.caseClauses(s.Body.List, head, done, label, "switch.case")
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	done := b.newBlock("switch.done")
	b.caseClauses(s.Body.List, head, done, label, "typeswitch.case")
	b.cur = done
}

// caseClauses lowers the case list of a switch or type switch: one body
// block per clause, all reached from head, with fallthrough edges between
// consecutive bodies and an implicit edge head -> done when no default
// clause exists.
func (b *builder) caseClauses(clauses []ast.Stmt, head, done *Block, label, kind string) {
	type clauseBlock struct {
		clause *ast.CaseClause
		body   *Block
	}
	var cbs []clauseBlock
	hasDefault := false
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		body := b.newBlock(kind)
		if cc.List == nil {
			hasDefault = true
		}
		// Case guard expressions are evaluated while deciding the branch.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		b.edge(head, body)
		cbs = append(cbs, clauseBlock{cc, body})
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.scopes = append(b.scopes, scope{label: label, brk: done})
	for i, cb := range cbs {
		b.cur = cb.body
		b.stmtList(cb.clause.Body)
		if b.cur != nil {
			// An explicit fallthrough was already handled by branchStmt;
			// reaching here means the clause falls out of the switch.
			if endsInFallthrough(cb.clause.Body) && i+1 < len(cbs) {
				b.edge(b.cur, cbs[i+1].body)
			} else {
				b.edge(b.cur, done)
			}
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock("select.done")
	b.scopes = append(b.scopes, scope{label: label, brk: done})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock("select.comm")
		if cc.Comm != nil {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		b.edge(head, body)
		b.cur = body
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	// A select with no default blocks until some case is ready, so there is
	// no head -> done edge; every path goes through a comm clause.
	b.cur = done
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.FALLTHROUGH:
		// Handled structurally by caseClauses; the statement itself is a
		// no-op node.
		b.add(s)
	case token.GOTO:
		// Not modeled: end the path conservatively (see package comment).
		b.add(s)
		b.cur = nil
	case token.BREAK:
		b.add(s)
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if s.Label == nil || b.scopes[i].label == s.Label.Name {
				b.edge(b.cur, b.scopes[i].brk)
				break
			}
		}
		b.cur = nil
	case token.CONTINUE:
		b.add(s)
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].cont == nil {
				continue // switch/select scopes are not continue targets
			}
			if s.Label == nil || b.scopes[i].label == s.Label.Name {
				b.edge(b.cur, b.scopes[i].cont)
				break
			}
		}
		b.cur = nil
	}
}

// terminatesPath reports whether an expression statement aborts control flow:
// panic(...), os.Exit(...), log.Fatal*(...), runtime.Goexit().
func terminatesPath(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}

// Cond returns the block's trailing condition leaf, or nil if the block does
// not end in a two-way branch.
func (b *Block) Cond() ast.Expr {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil
	}
	e, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return nil
	}
	return e
}

// String renders the graph in the compact stable form the golden tests pin:
// one line per block, `b<i>(<kind>) [node; node] -> b<j> b<k>`. Blocks with
// no nodes, predecessors or successors (created but never wired) are
// skipped.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		if len(blk.Nodes) == 0 && len(blk.Succs) == 0 && len(blk.Preds) == 0 && blk.Kind != "entry" && blk.Kind != "exit" {
			continue
		}
		sb.WriteString("b")
		sb.WriteString(itoa(blk.Index))
		sb.WriteString("(")
		sb.WriteString(blk.Kind)
		sb.WriteString(")")
		if len(blk.Nodes) > 0 {
			sb.WriteString(" [")
			for i, n := range blk.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(g.render(n))
			}
			sb.WriteString("]")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				sb.WriteString(" b")
				sb.WriteString(itoa(s.Index))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// InspectNode walks one block node the way analyzers should: like
// ast.Inspect, except that a *ast.RangeStmt contributes only its iteration
// header (key, value, and the ranged operand). The range body lives in
// other blocks of the graph — descending into it from the head node would
// make every statement in the loop visible twice, once at the wrong
// program point.
// The statement itself is still visited (analyzers match on it — e.g. a
// range over a channel is a goroutine join), only the body is pruned.
func InspectNode(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if !f(r) {
			return
		}
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				ast.Inspect(e, f)
			}
		}
		return
	}
	ast.Inspect(n, f)
}

// render prints one node as a single line of source.
func (g *Graph) render(n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Printing the whole statement would include the body, which lives
		// in other blocks; show only the iteration header.
		head := "range " + g.render(r.X)
		if r.Key != nil {
			head = g.render(r.Key)
			if r.Value != nil {
				head += ", " + g.render(r.Value)
			}
			head += " " + r.Tok.String() + " range " + g.render(r.X)
		}
		return head
	}
	var buf strings.Builder
	if err := printer.Fprint(&buf, g.Fset, n); err != nil {
		return "<?>"
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// itoa is strconv.Itoa without the import, for tiny non-negative ints.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var d [8]byte
	n := len(d)
	for i > 0 {
		n--
		d[n] = byte('0' + i%10)
		i /= 10
	}
	return string(d[n:])
}
