package cfg

import "go/ast"

// Dominators computes the immediate-dominator relation of the graph's
// blocks, reachable from Entry, with the iterative algorithm of Cooper,
// Harvey and Kennedy ("A Simple, Fast Dominance Algorithm"). The returned
// Dom answers dominance queries; unreachable blocks are dominated by
// nothing but themselves.
func (g *Graph) Dominators() *Dom {
	// Reverse postorder over blocks reachable from entry.
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)

	rpo := make([]*Block, len(post))
	order := make([]int, len(g.Blocks)) // block index -> RPO position
	for i := range order {
		order[i] = -1
	}
	for i, b := range post {
		p := len(post) - 1 - i
		rpo[p] = b
		order[b.Index] = p
	}

	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.Index] = g.Entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a.Index] > order[b.Index] {
				a = idom[a.Index]
			}
			for order[b.Index] > order[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return &Dom{entry: g.Entry, idom: idom}
}

// Dom answers dominance queries over one graph.
type Dom struct {
	entry *Block
	idom  []*Block
}

// Dominates reports whether every path from entry to b passes through a.
// A block dominates itself. Unreachable blocks are dominated only by
// themselves.
func (d *Dom) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if d.idom[b.Index] == nil {
		return false
	}
	for b != d.entry {
		b = d.idom[b.Index]
		if b == a {
			return true
		}
	}
	return a == d.entry
}

// PathToExit reports whether some path from the given node (identified by
// its block and its index within Block.Nodes) can reach the function exit
// without first passing a node for which stop returns true. The node at
// (from, idx) itself is not tested; the search starts at the next node.
//
// This is the workhorse query of the discipline analyzers: "is there an
// exit path with no Unlock", "is there an exit path with no Wait". Paths
// that abort (panic, os.Exit, ...) never reach Exit and therefore never
// witness a leak.
func (g *Graph) PathToExit(from *Block, idx int, stop func(ast.Node) bool) bool {
	// visited marks blocks whose full node list has been scanned, so each
	// block is processed at most once from its top.
	visited := make([]bool, len(g.Blocks))
	var walk func(b *Block, start int) bool
	walk = func(b *Block, start int) bool {
		if start == 0 {
			if visited[b.Index] {
				return false
			}
			visited[b.Index] = true
		}
		for i := start; i < len(b.Nodes); i++ {
			if stop(b.Nodes[i]) {
				return false
			}
		}
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(from, idx+1)
}
