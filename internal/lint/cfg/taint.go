package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObjSet is a set of type-checked objects — the lattice element of the
// taint analysis. The lattice is the powerset of the function's objects
// ordered by inclusion; join is union, so the analysis computes
// may-taint: an object is in the set at a program point if SOME path
// reaches the point with the object carrying a tainted value.
type ObjSet map[types.Object]bool

// Clone returns an independent copy of the set.
func (s ObjSet) Clone() ObjSet {
	out := make(ObjSet, len(s))
	for o := range s {
		out[o] = true
	}
	return out
}

// union adds src into s, reporting whether s changed.
func (s ObjSet) union(src ObjSet) bool {
	changed := false
	for o := range src {
		if !s[o] {
			s[o] = true
			changed = true
		}
	}
	return changed
}

// Taint is a forward may-taint analysis over one function's graph. Sources
// are call results designated by SourceCall and the objects in Seed;
// propagation follows assignments, conversions, arithmetic and the builtin
// min/max — the operations the search engine applies to lower-bound
// distances (shift discounts like `dist - float64(j)*base0` stay bounds).
//
// The analysis is intra-procedural and object-grained: struct fields are
// tracked by their field object (all instances alias), which
// over-approximates — the safe direction for a checker that must never
// miss a pruning decision made on a bound.
type Taint struct {
	Info *types.Info
	// SourceCall classifies a call: a non-nil mask marks which of the
	// call's results carry tainted values.
	SourceCall func(*ast.CallExpr) []bool
	// Seed objects (typically parameters) are tainted on entry.
	Seed []types.Object
}

// Run computes the tainted-object set at the entry of every block,
// indexed by Block.Index.
func (t *Taint) Run(g *Graph) []ObjSet {
	entry := make([]ObjSet, len(g.Blocks))
	for i := range entry {
		entry[i] = make(ObjSet)
	}
	for _, o := range t.Seed {
		if o != nil {
			entry[g.Entry.Index][o] = true
		}
	}

	// Every block starts on the worklist: taint is introduced mid-graph by
	// source calls, so a block can generate facts even when its entry set
	// is empty — seeding only the entry block would never visit it.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, len(g.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		out := entry[b.Index].Clone()
		for _, n := range b.Nodes {
			t.Apply(out, n)
		}
		for _, s := range b.Succs {
			if entry[s.Index].union(out) && !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return entry
}

// Apply mutates set with the effect of one block node. Nodes that assign
// (assignments, declarations, range headers) can add or remove taint;
// everything else is a no-op.
func (t *Taint) Apply(set ObjSet, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(set, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					t.setObj(set, t.defObj(name), t.ExprTainted(set, vs.Values[i]))
				}
			}
		}
	case *ast.RangeStmt:
		tainted := t.ExprTainted(set, n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := e.(*ast.Ident); ok {
				t.setObj(set, t.defObj(id), tainted)
			}
		}
	}
}

// assign transfers taint across one assignment statement.
func (t *Taint) assign(set ObjSet, as *ast.AssignStmt) {
	// Tuple assignment from a single call: x, y := f().
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		var mask []bool
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && t.SourceCall != nil {
			mask = t.SourceCall(call)
		}
		all := mask == nil && t.ExprTainted(set, as.Rhs[0])
		for i, lhs := range as.Lhs {
			tainted := all
			if mask != nil && i < len(mask) {
				tainted = mask[i]
			}
			t.assignTo(set, lhs, tainted, as.Tok)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		t.assignTo(set, lhs, t.ExprTainted(set, as.Rhs[i]), as.Tok)
	}
}

// assignTo marks the target of one assignment. Compound assignments
// (+=, -=, ...) keep existing taint: `x -= y` still holds a bound if x did.
func (t *Taint) assignTo(set ObjSet, lhs ast.Expr, tainted bool, tok token.Token) {
	obj := t.lhsObj(lhs)
	if obj == nil {
		return
	}
	if tok != token.ASSIGN && tok != token.DEFINE {
		if tainted {
			set[obj] = true
		}
		return
	}
	t.setObj(set, obj, tainted)
}

func (t *Taint) setObj(set ObjSet, obj types.Object, tainted bool) {
	if obj == nil {
		return
	}
	if tainted {
		set[obj] = true
	} else {
		delete(set, obj)
	}
}

// defObj resolves an identifier being defined or assigned.
func (t *Taint) defObj(id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	if o := t.Info.Defs[id]; o != nil {
		return o
	}
	return t.Info.Uses[id]
}

// lhsObj resolves the object an assignment target denotes: the variable for
// an identifier, the field object for a selector, and the root object for
// index/star expressions (coarse, but taint only ever over-approximates).
func (t *Taint) lhsObj(lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return t.defObj(lhs)
	case *ast.SelectorExpr:
		return t.Info.Uses[lhs.Sel]
	case *ast.IndexExpr:
		return t.lhsObj(lhs.X)
	case *ast.StarExpr:
		return t.lhsObj(lhs.X)
	}
	return nil
}

// ExprTainted reports whether evaluating e at a point with the given taint
// set may yield a tainted value.
func (t *Taint) ExprTainted(set ObjSet, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := t.Info.Uses[e]
		if o == nil {
			o = t.Info.Defs[e]
		}
		return o != nil && set[o]
	case *ast.SelectorExpr:
		if o := t.Info.Uses[e.Sel]; o != nil && set[o] {
			return true
		}
		return false
	case *ast.BinaryExpr:
		if e.Op.IsOperator() && isComparison(e.Op) {
			return false // a bool comparison result is not itself a bound
		}
		return t.ExprTainted(set, e.X) || t.ExprTainted(set, e.Y)
	case *ast.UnaryExpr:
		return t.ExprTainted(set, e.X)
	case *ast.StarExpr:
		return t.ExprTainted(set, e.X)
	case *ast.IndexExpr:
		return t.ExprTainted(set, e.X)
	case *ast.CallExpr:
		return t.callTainted(set, e)
	}
	return false
}

// callTainted classifies a call expression in value position: a designated
// source with exactly one tainted single result, a type conversion (which
// preserves taint), or the builtin min/max (a min of bounds is a bound).
func (t *Taint) callTainted(set ObjSet, call *ast.CallExpr) bool {
	if t.SourceCall != nil {
		if mask := t.SourceCall(call); len(mask) == 1 {
			return mask[0]
		} else if mask != nil {
			return false // multi-result source used in tuple context only
		}
	}
	// Type conversion: float64(x) keeps x's taint.
	if tv, ok := t.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && t.ExprTainted(set, call.Args[0])
	}
	// Builtin min/max combine bounds into bounds.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "min" || id.Name == "max") {
			for _, a := range call.Args {
				if t.ExprTainted(set, a) {
					return true
				}
			}
		}
	}
	return false
}

// isComparison reports whether op yields an untyped bool from two operands.
func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}
