package lint

import "go/ast"

// DeferInLoop flags a defer statement lexically inside a loop body in
// non-test code. Deferred calls run at function return, not at the end of
// the iteration, so a defer in a loop accumulates one pending call per
// iteration — unlock/close resources pile up for the lifetime of the
// function and the usual "defer right after acquire" idiom silently turns
// into a leak amplifier.
//
// A function literal resets the loop context: a defer inside a closure
// runs when the closure returns, once per call, which is the standard fix
// (wrap the iteration body in a func). Deliberate accumulation across a
// small fixed loop is the exceptional case and takes a
// //lint:ignore deferinloop directive with its justification.
var DeferInLoop = &Analyzer{
	Name: "deferinloop",
	Doc: "defer inside a loop body runs at function return, not per " +
		"iteration; wrap the body in a function or release explicitly",
	Run: runDeferInLoop,
}

func runDeferInLoop(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkDeferInLoop(pass, fd.Body, 0)
		}
	}
}

// walkDeferInLoop descends n with the current lexical loop depth.
func walkDeferInLoop(pass *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt:
			if x.Init != nil {
				walkDeferInLoop(pass, x.Init, depth)
			}
			if x.Post != nil {
				walkDeferInLoop(pass, x.Post, depth)
			}
			walkDeferInLoop(pass, x.Body, depth+1)
			return false
		case *ast.RangeStmt:
			walkDeferInLoop(pass, x.Body, depth+1)
			return false
		case *ast.FuncLit:
			walkDeferInLoop(pass, x.Body, 0)
			return false
		case *ast.DeferStmt:
			if depth > 0 {
				pass.Report(x, "defer inside a loop runs at function return, not per iteration; wrap the body in a function or release explicitly")
			}
		}
		return true
	})
}
