package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one module package, parsed and type-checked, ready for
// analysis.
type Package struct {
	Fset    *token.FileSet
	Path    string // import path, e.g. "twsearch/internal/dtw"
	Dir     string // absolute directory
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Library bool

	// loader links back to the Loader that produced the package, giving
	// analyzers access to the cached dependency ASTs and the
	// interprocedural summary cache.
	loader *Loader
}

// Loader parses and type-checks module packages without any tooling beyond
// the standard library. Module-internal imports are resolved against the
// module source tree; everything else is delegated to the stdlib source
// importer, so the loader needs no pre-compiled export data.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root (directory holding go.mod)
	modPath string // module path declared in go.mod

	std   types.Importer
	cache map[string]*Package
	// analyses caches per-package interprocedural artifacts (call graph,
	// bound-taint summaries) keyed by import path.
	analyses map[string]*pkgAnalysis
	// loading guards against import cycles, which go/types would otherwise
	// chase forever through our recursive importer.
	loading map[string]bool
}

// NewLoader locates the enclosing module of dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		root:     root,
		modPath:  modPath,
		std:      importer.ForCompiler(fset, "source", nil),
		cache:    make(map[string]*Package),
		analyses: make(map[string]*pkgAnalysis),
		loading:  make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModPath returns the module path.
func (l *Loader) ModPath() string { return l.modPath }

// findModule walks up from dir to the first go.mod and reads its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// pathOf converts an absolute package directory to its module import path.
func (l *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.root)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// isLibraryPath reports whether an import path belongs to the library
// surface the strict checks apply to: internal/* and seqdb. Commands and
// examples are binaries with their own, looser rules.
func (l *Loader) isLibraryPath(path string) bool {
	return strings.HasPrefix(path, l.modPath+"/internal/") ||
		path == l.modPath+"/seqdb" ||
		strings.HasPrefix(path, l.modPath+"/seqdb/")
}

// Import implements types.Importer so a package under analysis can pull in
// its module-internal dependencies; it makes the Loader self-hosting.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir (non-test files only),
// caching the result by import path.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathOf(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s (%s): %w", path, strings.Join(names, ", "), err)
	}

	pkg := &Package{
		Fset:    l.Fset,
		Path:    path,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Library: l.isLibraryPath(path),
		loader:  l,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file of dir that builds on the host
// platform, in name order so runs are deterministic. Build constraints
// (//go:build lines and GOOS file suffixes) are evaluated with the default
// build context so platform-split files — like storage's mmap pair — don't
// collide in one type-check.
func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, names, nil
}

// PackageDirs returns every package directory under root, skipping hidden
// directories and testdata trees (fixtures are loaded explicitly, never
// swept up by "./...").
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ExpandPatterns resolves command-line package patterns relative to cwd:
// "./..."-style recursive patterns and plain directory paths.
func (l *Loader) ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(cwd, rest)
			if rest == "." || rest == "" {
				base = cwd
			}
			sub, err := l.subDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a package directory", pat)
		}
		add(dir)
	}
	return dirs, nil
}

// subDirs is PackageDirs restricted to the subtree rooted at base.
func (l *Loader) subDirs(base string) ([]string, error) {
	base, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	all, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, d := range all {
		if d == base || strings.HasPrefix(d, base+string(filepath.Separator)) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no packages under %s", base)
	}
	return out, nil
}
