package lint

import (
	"go/ast"
	"go/types"
)

// ViewEscape enforces the PageSource borrowing contract statically. A call
//
//	page, release, err := src.View(id)
//
// lends the caller a page for the window between the call and release():
// for the pool backend the frame is pinned (and can never be evicted) until
// release runs, and for every backend the bytes may be remapped or recycled
// after it. The analyzer finds View call sites — any method named View
// returning ([]byte, func(), error) — and reports, anchored at the call:
//
//   - a view or release value stored outside the function: a struct field,
//     a dereference, an index expression, or a package-level variable
//   - a view or release value returned, sent on a channel, placed in a
//     composite literal, captured by a function literal, or appended into
//     a growing slice
//   - a release function discarded with the blank identifier (the pin is
//     never dropped; on the pool backend the frame leaks)
//
// Deliberate retention — the disktree page cursor holds one view in struct
// fields between open and close, releasing it on every decode return path —
// is audited in place with //lint:ignore viewescape <reason>, so each
// ownership argument is written down where it holds. Interprocedural
// retention (passing the view to a function that stashes it) is out of this
// analyzer's reach and belongs to the same audit discipline.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc: "a page view borrowed from PageSource.View escapes the borrowing " +
		"function (field store, return, closure capture, channel send, " +
		"append) or its release func is discarded; copy the bytes out, " +
		"release before every return, or audit with //lint:ignore viewescape",
	Run: runViewEscape,
}

func runViewEscape(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkViewCalls(pass, fd)
		}
	}
}

// isViewCall reports whether call is a method call named View returning the
// borrowing triple ([]byte, func(), error) — the PageSource shape, matched
// structurally so fakes and wrappers are held to the same contract.
func isViewCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "View" {
		return false
	}
	tup, ok := info.TypeOf(call).(*types.Tuple)
	if !ok || tup.Len() != 3 {
		return false
	}
	slice, ok := tup.At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if basic, ok := slice.Elem().Underlying().(*types.Basic); !ok || basic.Kind() != types.Byte {
		return false
	}
	sig, ok := tup.At(1).Type().Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 0 {
		return false
	}
	return types.Identical(tup.At(2).Type(), types.Universe.Lookup("error").Type())
}

// checkViewCalls finds every View call in the function and checks what the
// borrowed values do afterwards.
func checkViewCalls(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 3 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isViewCall(pass.Info, call) {
			return true
		}
		// The view slice and release func the call lends out, by role.
		tracked := make(map[types.Object]string)
		for i, role := range []string{"view", "release func"} {
			lhs := ast.Unparen(as.Lhs[i])
			id, ok := lhs.(*ast.Ident)
			if !ok {
				pass.Report(call, "the borrowed %s of View is stored straight into a non-local target; bind it to a local, release on every return path, or audit with //lint:ignore viewescape", role)
				continue
			}
			if id.Name == "_" {
				if role != "view" {
					pass.Report(call, "View's release func is discarded; the borrow is never returned (on the pool backend the frame stays pinned forever) — call it on every path instead")
				}
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if obj.Parent() == pass.Pkg.Scope() {
				pass.Report(call, "the borrowed %s of View is assigned to package-level %s, escaping the borrowing function; bind it to a local or audit with //lint:ignore viewescape", role, obj.Name())
				continue
			}
			tracked[obj] = role
		}
		if len(tracked) > 0 {
			reportViewEscapes(pass, fd, call, tracked)
		}
		return true
	})
}

// reportViewEscapes walks the borrowing function for uses of the tracked
// values that outlive it. Findings anchor at the View call so an audited
// //lint:ignore directly above the call covers every escape it owns.
func reportViewEscapes(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, tracked map[types.Object]string) {
	line := func(n ast.Node) int { return pass.Fset.Position(n.Pos()).Line }
	// mentions reports the role of the first tracked value the expression
	// refers to, if any. An expression of basic type (page[0], len(page),
	// string(page)) is a copy of the bytes, not an alias, and cannot retain
	// the view — closure bodies get no such exemption, since even a read
	// inside one may run after release.
	mentions := func(e ast.Node) (string, bool) {
		if expr, ok := e.(ast.Expr); ok {
			if t := pass.Info.TypeOf(expr); t != nil {
				if _, basic := t.Underlying().(*types.Basic); basic {
					return "", false
				}
			}
		}
		var role string
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if r, ok := tracked[pass.Info.Uses[id]]; ok {
				role, found = r, true
				return false
			}
			return true
		})
		return role, found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				role, ok := mentions(rhs)
				if !ok {
					continue
				}
				lhs := ast.Unparen(n.Lhs[i])
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if id.Name == "_" || obj == nil || obj.Parent() != pass.Pkg.Scope() {
						continue // a local rebinding keeps the borrow in scope
					}
				}
				pass.Report(call, "the borrowed %s of View escapes: stored on line %d, it outlives the release window; copy the bytes out instead, or audit with //lint:ignore viewescape", role, line(n))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if role, ok := mentions(r); ok {
					pass.Report(call, "the borrowed %s of View escapes: returned on line %d after the borrowing function's release window; copy the bytes out instead", role, line(n))
				}
			}
		case *ast.SendStmt:
			if role, ok := mentions(n.Value); ok {
				pass.Report(call, "the borrowed %s of View escapes: sent on a channel on line %d; the receiver outlives the release window", role, line(n))
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if role, ok := mentions(el); ok {
					pass.Report(call, "the borrowed %s of View escapes: placed in a composite literal on line %d; copy the bytes out instead", role, line(n))
				}
			}
			return false // elements already checked; don't re-report nested uses
		case *ast.FuncLit:
			if role, ok := mentions(n.Body); ok {
				pass.Report(call, "the borrowed %s of View escapes: captured by the function literal on line %d, which may run after release", role, line(n))
			}
			return false // the capture finding covers the literal's body
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin || id.Name != "append" {
				return true
			}
			for _, arg := range n.Args {
				if role, ok := mentions(arg); ok {
					pass.Report(call, "the borrowed %s of View escapes: appended into a slice on line %d that outlives the release window; copy the bytes out instead", role, line(n))
				}
			}
		}
		return true
	})
}
