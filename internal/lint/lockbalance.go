package lint

import (
	"go/ast"
	"go/types"

	"twsearch/internal/lint/cfg"
)

// LockBalance verifies mutex discipline path-sensitively: every
// sync.Mutex/sync.RWMutex Lock (or RLock) acquired in a library function
// must be released on every path that reaches the function exit — either
// by a matching Unlock (RUnlock) on each branch or by a dominating defer.
// Paths that abort (panic, os.Exit) are not exits and are ignored, so the
// common `mu.Lock(); if bad { panic(...) }` shape is not a false positive.
//
// Matching is textual on the receiver expression (`db.mu.Lock` pairs with
// `db.mu.Unlock`), which is exact for the idiomatic case of locking a
// field of the method receiver. Methods named Lock/Unlock/RLock/RUnlock
// are exempt: they are wrappers whose imbalance is the point.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc: "a sync (R)Lock has an exit path with no matching (R)Unlock; " +
		"release on every path or defer the unlock right after acquiring",
	Run: runLockBalance,
}

// lockPairs maps an acquire method to its release method.
var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockBalance(pass *Pass) {
	if !pass.Library {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, wrapper := lockPairs[fd.Name.Name]; wrapper || lockPairs[unlockName(fd.Name.Name)] != "" {
				continue // Lock/Unlock wrapper methods are the discipline, not users of it
			}
			checkLockBalance(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockBalance(pass, lit)
				}
				return true
			})
		}
	}
}

// unlockName reports the acquire name a release method pairs with, or "".
func unlockName(name string) string {
	for lock, unlock := range lockPairs {
		if name == unlock {
			return lock
		}
	}
	return ""
}

// checkLockBalance analyzes one function or function literal.
func checkLockBalance(pass *Pass, fn ast.Node) {
	// Cheap pre-scan: skip the CFG when the body acquires no sync lock.
	any := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && syncLockCall(pass.Info, call) != "" {
			any = true
		}
		return !any
	})
	if !any {
		return
	}

	g := cfg.Build(pass.Fset, fn)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			root := n
			cfg.InspectNode(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok && x != root {
					return false // literals are analyzed separately
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				acquire := syncLockCall(pass.Info, call)
				if acquire == "" {
					return true
				}
				recv := lockRecvString(call)
				release := lockPairs[acquire]
				leaks := g.PathToExit(b, i, func(node ast.Node) bool {
					return nodeReleases(pass.Info, node, release, recv)
				})
				if leaks {
					pass.Report(call, "%s.%s has an exit path with no %s.%s; release on every path or defer the unlock", recv, acquire, recv, release)
				}
				return true
			})
		}
	}
}

// syncLockCall reports the acquire method name ("Lock" or "RLock") when the
// call statically resolves to sync.Mutex.Lock, sync.RWMutex.Lock or
// sync.RWMutex.RLock, and "" otherwise.
func syncLockCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	if _, ok := lockPairs[fn.Name()]; ok {
		return fn.Name()
	}
	return ""
}

// lockRecvString renders the receiver of a lock/unlock call for pairing:
// the selector prefix of `db.mu.Lock()` is "db.mu".
func lockRecvString(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// nodeReleases reports whether the CFG node contains a call to the given
// sync release method on the same receiver expression. Function literals
// inside the node do not count: their body runs at another time.
func nodeReleases(info *types.Info, n ast.Node, release, recv string) bool {
	found := false
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
			fn.Name() == release && lockRecvString(call) == recv {
			found = true
		}
		return true
	})
	return found
}
