package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap reports fmt.Errorf calls in library packages that format an
// underlying error without wrapping it. Errors cross package boundaries
// here — a corrupted index file surfaces as storage → disktree → core →
// seqdb — and callers match causes with errors.Is/errors.As (e.g.
// io.ErrUnexpectedEOF, sequence.ErrBadMagic). Formatting with %v or %s
// flattens the cause into text and breaks every such check, so an error
// operand must be rendered with %w (or the site must construct a typed or
// sentinel error instead).
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf formats an error operand without %w, hiding the cause " +
		"from errors.Is/errors.As across package boundaries",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) {
	if !pass.Library {
		return
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != "fmt" || callee.Name() != "Errorf" {
				return true
			}
			format, ok := constStringArg(pass.Info, call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errType) {
					pass.Report(arg, "error formatted without %%w; callers cannot errors.Is/errors.As through this boundary")
					break
				}
			}
			return true
		})
	}
}

// constStringArg returns the compile-time string value of an expression.
func constStringArg(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
