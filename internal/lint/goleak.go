package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"twsearch/internal/lint/cfg"
)

// GoLeak flags library goroutines that can outlive the function that
// started them: a `go` statement after which some path reaches the
// function exit without passing a join point. A join point is a
// sync.WaitGroup.Wait call, a channel receive (`<-ch`, including a
// `case <-ch:` select arm), or a range over a channel.
//
// Library code (internal/*, seqdb) must not fire and forget: an orphaned
// worker holds buffers and file handles after Search returns, and tests
// under -race cannot see it finish. Commands may reasonably launch
// daemon goroutines, so only library packages are checked. The analysis
// is path-sensitive: joining on the happy path but returning early on
// error without waiting is exactly the bug it exists to catch.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "library goroutine with an exit path that never joins it; wait on " +
		"a WaitGroup or receive from a done channel on every path",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) {
	if !pass.Library {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoLeak(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkGoLeak(pass, lit)
				}
				return true
			})
		}
	}
}

// checkGoLeak analyzes one function or function literal.
func checkGoLeak(pass *Pass, fn ast.Node) {
	any := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			any = true
		}
		return !any
	})
	if !any {
		return
	}

	g := cfg.Build(pass.Fset, fn)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			leaks := g.PathToExit(b, i, func(node ast.Node) bool {
				return nodeJoins(pass.Info, node)
			})
			if leaks {
				pass.Report(gs, "goroutine may outlive the function: an exit path joins neither a WaitGroup nor a channel; wait on every path")
			}
		}
	}
}

// nodeJoins reports whether the CFG node contains a join point: a
// sync.WaitGroup.Wait call, a channel receive, or a range over a channel.
// Joins buried in nested function literals run at another time and do not
// count.
func nodeJoins(info *types.Info, n ast.Node) bool {
	found := false
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
