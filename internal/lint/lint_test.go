package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, loader *Loader, parts ...string) *Package {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, parts...)...)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkg
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return loader
}

// findingsOf filters findings down to one check.
func findingsOf(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// rawFindings runs one analyzer without ignore-directive filtering.
func rawFindings(pkg *Package, a *Analyzer) []Finding {
	var raw []Finding
	a.Run(&Pass{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info,
		Path: pkg.Path, Library: pkg.Library,
		check: a.Name, findings: &raw, src: pkg,
	})
	return raw
}

// TestAnalyzerFixtures drives every analyzer through its three fixture
// packages: bad must trigger, good must pass, and ignored must trigger
// without directives but pass with them.
func TestAnalyzerFixtures(t *testing.T) {
	loader := newTestLoader(t)
	cases := []struct {
		dir      string
		analyzer *Analyzer
		wantBad  int // findings expected in bad/
	}{
		{"panicpath", PanicPath, 1},
		{"errwrap", ErrWrap, 1},
		{"floateq", FloatEq, 1},
		{"closecheck", CloseCheck, 2},
		{"globalrand", GlobalRand, 1},
		{"ctxloop", CtxlessLoop, 1},
		{"boundscontract", BoundsContract, 4},
		{"boundmark", BoundsContract, 2},
		{"lockbalance", LockBalance, 2},
		{"goleak", GoLeak, 2},
		{"deferinloop", DeferInLoop, 2},
		{"poolbalance", PoolBalance, 2},
		{"atomicmix", AtomicMix, 2},
		{"joinbarrier", JoinBarrier, 2},
		{"wireconform", WireConform, 2},
		{"ctxflow", CtxFlow, 4},
		{"steadystate", SteadyState, 7},
		{"viewescape", ViewEscape, 4},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			all := []*Analyzer{tc.analyzer}

			bad := loadFixture(t, loader, tc.dir, "bad")
			got := findingsOf(RunPackage(bad, all), tc.analyzer.Name)
			if len(got) != tc.wantBad {
				t.Errorf("bad fixture: got %d %s findings, want %d: %v",
					len(got), tc.analyzer.Name, tc.wantBad, got)
			}

			good := loadFixture(t, loader, tc.dir, "good")
			if got := RunPackage(good, all); len(got) != 0 {
				t.Errorf("good fixture: unexpected findings: %v", got)
			}

			ignored := loadFixture(t, loader, tc.dir, "ignored")
			if raw := rawFindings(ignored, tc.analyzer); len(raw) == 0 {
				t.Errorf("ignored fixture: analyzer found nothing even before directive filtering")
			}
			if got := RunPackage(ignored, all); len(got) != 0 {
				t.Errorf("ignored fixture: directive did not suppress: %v", got)
			}
		})
	}
}

// TestMalformedDirective checks that a lint:ignore without a reason is
// itself reported and suppresses nothing.
func TestMalformedDirective(t *testing.T) {
	loader := newTestLoader(t)
	all := []*Analyzer{FloatEq}

	bad := loadFixture(t, loader, "directive", "bad")
	got := RunPackage(bad, all)
	if len(findingsOf(got, "directive")) != 1 {
		t.Errorf("want 1 directive finding, got: %v", got)
	}
	if len(findingsOf(got, "floateq")) != 1 {
		t.Errorf("reasonless directive must not suppress; got: %v", got)
	}

	good := loadFixture(t, loader, "directive", "good")
	if got := RunPackage(good, all); len(got) != 0 {
		t.Errorf("good fixture: unexpected findings: %v", got)
	}
}

// TestFindingFormat pins the file:line: [check] message report shape the
// Makefile and editors rely on.
func TestFindingFormat(t *testing.T) {
	loader := newTestLoader(t)
	pkg := loadFixture(t, loader, "floateq", "bad")
	got := RunPackage(pkg, []*Analyzer{FloatEq})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	s := got[0].String()
	want := filepath.Join("floateq", "bad", "bad.go")
	if !strings.Contains(s, want) || !strings.Contains(s, ": [floateq] ") {
		t.Errorf("finding %q does not match file:line: [check] message", s)
	}
	if got[0].Pos.Line == 0 {
		t.Errorf("finding has no line number: %q", s)
	}
}

// TestLibraryScope checks that the strict library checks stay out of
// command and example binaries.
func TestLibraryScope(t *testing.T) {
	loader := newTestLoader(t)
	for path, want := range map[string]bool{
		loader.ModPath() + "/internal/dtw":   true,
		loader.ModPath() + "/seqdb":          true,
		loader.ModPath() + "/cmd/twlint":     false,
		loader.ModPath() + "/examples/stock": false,
		loader.ModPath():                     false,
	} {
		if got := loader.isLibraryPath(path); got != want {
			t.Errorf("isLibraryPath(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestExpandPatterns checks recursive and plain-directory patterns.
func TestExpandPatterns(t *testing.T) {
	loader := newTestLoader(t)
	root := loader.Root()

	dirs, err := loader.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns ./...: %v", err)
	}
	var sawLint, sawTestdata bool
	for _, d := range dirs {
		if strings.HasSuffix(d, filepath.Join("internal", "lint")) {
			sawLint = true
		}
		if strings.Contains(d, "testdata") {
			sawTestdata = true
		}
	}
	if !sawLint {
		t.Errorf("./... did not include internal/lint: %v", dirs)
	}
	if sawTestdata {
		t.Errorf("./... must skip testdata fixtures: %v", dirs)
	}

	one, err := loader.ExpandPatterns(root, []string{"internal/lint"})
	if err != nil || len(one) != 1 {
		t.Fatalf("ExpandPatterns plain dir: %v, %v", one, err)
	}
}
