package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"twsearch/internal/lint/cfg"
)

// BoundsContract statically enforces the usage discipline behind the
// paper's no-false-dismissal guarantee (THEORY.md §1–3). Values produced by
// the lower-bound APIs — the min-dist returns of dtw.Table.AddRow*,
// dtw.DistanceIntervals, and any function or parameter marked with a
// //twlint:bound-source directive — are *proven lower bounds* of the exact
// time warping distance (Theorems 1–3), nothing more. Two rules follow:
//
//  1. A bound may only gate pruning through a strict test: `bound > eps`
//     discards, `bound <= eps` keeps. `bound >= eps` (or `==`, `!=`,
//     `<`, or the mirrored forms) discards a candidate whose exact
//     distance could still equal eps — a silent false dismissal.
//  2. A bound must never be published as an exact answer distance: a
//     `Distance:` field built from a bound-tainted value is only legal on
//     a path dominated by the true branch of an `exact` test; otherwise
//     the candidate has to flow through post-processing.
//
// The analysis is flow-sensitive: a CFG is built per function and a
// may-taint lattice over go/types objects tracks which variables can hold
// a bound at each program point (arithmetic such as the D_tw-lb2 shift
// discount `dist - float64(j)*base0` keeps a value a bound). It is
// intra-procedural; cross-function flow is declared at the boundary with
// //twlint:bound-source markers (see HACKING.md "Static analysis").
var BoundsContract = &Analyzer{
	Name: "boundscontract",
	Doc: "lower-bound distance used outside the Theorem 1-3 contract: " +
		"pruning must test bound > eps (never >=, <, == or !=), and a bound " +
		"may not become an exact Match distance outside an exact-guarded path",
	Run: runBoundsContract,
}

// builtinBoundSources names the cross-package lower-bound producers by
// package-path suffix and function name, with the mask of which results
// are bounds. Same-package producers declare themselves with a
// //twlint:bound-source marker instead.
var builtinBoundSources = map[string]map[string][]bool{
	"internal/dtw": {
		// AddRowInterval rows use D_base-lb (Definition 3): both the row
		// distance and the row minimum are lower bounds.
		"AddRowInterval": {true, true},
		// AddRowValue rows are exact, but the row minimum only bounds
		// extensions (Theorem 1).
		"AddRowValue": {false, true},
		// D_tw-lb of Definition 3.
		"DistanceIntervals": {true},
	},
}

// boundMarker is one parsed //twlint:bound-source directive.
type boundMarker struct {
	results []int
	params  []string
}

// parseBoundMarker reads "//twlint:bound-source results=0,1 params=lb".
func parseBoundMarker(doc *ast.CommentGroup) (boundMarker, bool) {
	if doc == nil {
		return boundMarker{}, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//twlint:bound-source")
		if !ok {
			continue
		}
		var m boundMarker
		for _, field := range strings.Fields(rest) {
			if v, ok := strings.CutPrefix(field, "results="); ok {
				for _, s := range strings.Split(v, ",") {
					if i, err := strconv.Atoi(s); err == nil && i >= 0 {
						m.results = append(m.results, i)
					}
				}
			}
			if v, ok := strings.CutPrefix(field, "params="); ok {
				m.params = append(m.params, strings.Split(v, ",")...)
			}
		}
		return m, true
	}
	return boundMarker{}, false
}

func runBoundsContract(pass *Pass) {
	if !pass.Library {
		return
	}
	bc := &boundsChecker{pass: pass, marked: make(map[*types.Func][]bool)}

	// Pass 1: collect same-package //twlint:bound-source markers.
	type seeded struct {
		fd     *ast.FuncDecl
		params []string
	}
	var fns []seeded
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := seeded{fd: fd}
			if m, ok := parseBoundMarker(fd.Doc); ok {
				if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil && len(m.results) > 0 {
					mask := make([]bool, obj.Type().(*types.Signature).Results().Len())
					for _, i := range m.results {
						if i < len(mask) {
							mask[i] = true
						}
					}
					bc.marked[obj] = mask
				}
				s.params = m.params
			}
			fns = append(fns, s)
		}
	}

	// Pass 2: analyze every function, then every function literal (with no
	// seeds — closures are separate flows; captured bounds cross the
	// boundary through marked calls, not captured variables).
	for _, s := range fns {
		bc.checkFunc(s.fd, s.fd.Type, s.params)
		ast.Inspect(s.fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bc.checkFunc(lit, lit.Type, nil)
			}
			return true
		})
	}
}

type boundsChecker struct {
	pass   *Pass
	marked map[*types.Func][]bool
}

// sourceMask classifies a call as a lower-bound source, returning the
// tainted-result mask or nil.
func (bc *boundsChecker) sourceMask(call *ast.CallExpr) []bool {
	fn := calleeFunc(bc.pass.Info, call)
	if fn == nil {
		return nil
	}
	if mask, ok := bc.marked[fn]; ok {
		return mask
	}
	if fn.Pkg() == nil {
		return nil
	}
	for suffix, byName := range builtinBoundSources {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) {
			if mask, ok := byName[fn.Name()]; ok {
				return mask
			}
		}
	}
	return nil
}

// checkFunc runs the flow analysis over one function or function literal.
func (bc *boundsChecker) checkFunc(fn ast.Node, ftype *ast.FuncType, seedParams []string) {
	var seeds []types.Object
	if len(seedParams) > 0 && ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				for _, want := range seedParams {
					if name.Name == want {
						seeds = append(seeds, bc.pass.Info.Defs[name])
					}
				}
			}
		}
	}

	g := cfg.Build(bc.pass.Fset, fn)
	ta := &cfg.Taint{Info: bc.pass.Info, SourceCall: bc.sourceMask, Seed: seeds}
	facts := ta.Run(g)
	dom := g.Dominators()

	// Blocks reached only when an exact-flag condition held true.
	var exactTrue []*cfg.Block
	for _, b := range g.Blocks {
		if c := b.Cond(); c != nil && isExactFlag(c) {
			exactTrue = append(exactTrue, b.Succs[0])
		}
	}
	underExact := func(b *cfg.Block) bool {
		for _, t := range exactTrue {
			if dom.Dominates(t, b) {
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		fact := facts[b.Index].Clone()
		for _, n := range b.Nodes {
			bc.checkNode(ta, fact, b, n, underExact)
			ta.Apply(fact, n)
		}
	}
}

// checkNode inspects one CFG node with the taint fact holding at its entry.
func (bc *boundsChecker) checkNode(ta *cfg.Taint, fact cfg.ObjSet, b *cfg.Block, n ast.Node, underExact func(*cfg.Block) bool) {
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false // literals are analyzed as their own functions
		}
		switch x := x.(type) {
		case *ast.BinaryExpr:
			bc.checkComparison(ta, fact, x)
		case *ast.KeyValueExpr:
			key, ok := x.Key.(*ast.Ident)
			if ok && key.Name == "Distance" && ta.ExprTainted(fact, x.Value) && !underExact(b) {
				bc.pass.Report(x, "lower-bound value published as an exact Match distance outside an exact-guarded path; route the candidate through post-processing (THEORY.md, Theorems 2-3)")
			}
		}
		return true
	})
}

// checkComparison enforces rule 1 on one comparison between a bound and
// the threshold.
func (bc *boundsChecker) checkComparison(ta *cfg.Taint, fact cfg.ObjSet, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
	default:
		return
	}
	xBound := ta.ExprTainted(fact, bin.X)
	yBound := ta.ExprTainted(fact, bin.Y)
	xEps := isEpsExpr(bin.X)
	yEps := isEpsExpr(bin.Y)

	var ok bool
	switch {
	case xBound && !yBound && yEps:
		// bound OP eps: keep on <=, prune on >.
		ok = bin.Op == token.GTR || bin.Op == token.LEQ
	case yBound && !xBound && xEps:
		// eps OP bound: the mirror — keep on >=, prune on <.
		ok = bin.Op == token.LSS || bin.Op == token.GEQ
	default:
		return
	}
	if !ok {
		bc.pass.Report(bin, "lower-bound value compared to the threshold with %s; Theorems 1-3 only justify pruning on bound > eps (keeping on bound <= eps) — %s here reintroduces false dismissals", bin.Op, bin.Op)
	}
}

// isExactFlag reports whether a condition leaf is an exactness flag: an
// identifier or field whose name contains "exact".
func isExactFlag(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "exact")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "exact")
	}
	return false
}

// isEpsExpr reports whether an expression denotes the search threshold: an
// identifier or field named eps/epsilon.
func isEpsExpr(e ast.Expr) bool {
	name := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	name = strings.ToLower(name)
	return name == "eps" || name == "epsilon"
}
