package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"twsearch/internal/lint/cfg"
)

// BoundsContract statically enforces the usage discipline behind the
// paper's no-false-dismissal guarantee (THEORY.md §1–3). Values produced by
// the lower-bound APIs — the min-dist returns of dtw.Table.AddRow*,
// dtw.DistanceIntervals, and any function or parameter carrying a bound
// according to the interprocedural summaries — are *proven lower bounds* of
// the exact time warping distance (Theorems 1–3), nothing more. Two rules
// follow:
//
//  1. A bound may only gate pruning through a strict test: `bound > eps`
//     discards, `bound <= eps` keeps. `bound >= eps` (or `==`, `!=`,
//     `<`, or the mirrored forms) discards a candidate whose exact
//     distance could still equal eps — a silent false dismissal.
//  2. A bound must never be published as an exact answer distance: a
//     `Distance:` field built from a bound-tainted value is only legal on
//     a path dominated by the true branch of an `exact` test; otherwise
//     the candidate has to flow through post-processing.
//
// The analysis is flow-sensitive and interprocedural: a CFG is built per
// function, a may-taint lattice over go/types objects tracks which
// variables can hold a bound at each program point (arithmetic such as the
// D_tw-lb2 shift discount `dist - float64(j)*base0` keeps a value a
// bound), and per-function bound-taint summaries — computed by fixpoint
// over the package call graph, with cross-package producers resolved
// through their own packages' summaries — track flow through helpers
// automatically. //twlint:bound-source markers remain the roots where a
// bound is born from arithmetic the checker cannot see through; every
// marker is also a checked assertion: one that inference already derives,
// disagrees with, or that declares nothing is itself a finding (see
// HACKING.md "Static analysis").
var BoundsContract = &Analyzer{
	Name: "boundscontract",
	Doc: "lower-bound distance used outside the Theorem 1-3 contract: " +
		"pruning must test bound > eps (never >=, <, == or !=), and a bound " +
		"may not become an exact Match distance outside an exact-guarded path",
	Run: runBoundsContract,
}

func runBoundsContract(pass *Pass) {
	if !pass.Library {
		return
	}
	an := pass.analysis()
	if an == nil {
		return
	}
	validateBoundMarkers(pass, an)

	bc := &boundsChecker{pass: pass, an: an, dep: pass.depSummary}
	for _, fnode := range an.cg.order {
		bc.checkFuncNode(fnode)
		ast.Inspect(fnode.decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				// Literals are separate flows with no seeds — captured
				// bounds cross the boundary through summarized calls, not
				// captured variables.
				bc.checkFunc(cfg.Build(pass.Fset, lit), nil)
			}
			return true
		})
	}
}

// validateBoundMarkers treats every //twlint:bound-source as a checked
// assertion against the inferred summaries: markers that declare nothing,
// name impossible positions, float free of any function declaration,
// understate what inference proves, or restate what inference derives
// without them are all findings.
func validateBoundMarkers(pass *Pass, an *pkgAnalysis) {
	attached := make(map[*ast.Comment]bool, len(an.markers))
	for i := range an.markers {
		attached[an.markers[i].comment] = true
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, "//twlint:bound-source") && !attached[c] {
					pass.ReportPos(c.Pos(), "stale //twlint:bound-source: the directive is not the doc comment of a function declaration, so it declares nothing; move it onto the producer or delete it")
				}
			}
		}
	}

	dep := pass.src.loader.depResolver(pass.src)
	for i := range an.markers {
		mi := &an.markers[i]
		for _, s := range mi.badResults {
			pass.ReportPos(mi.comment.Pos(), "//twlint:bound-source results=%s does not name a result of %s (which has %d); the stale declaration would silently drop the bound", s, mi.fn.Name(), mi.fn.Type().(*types.Signature).Results().Len())
		}
		for _, name := range mi.badParams {
			pass.ReportPos(mi.comment.Pos(), "//twlint:bound-source params=%s names no parameter of %s; the stale declaration would silently drop the bound", name, mi.fn.Name())
		}
		if !mi.declResults && !mi.declParams {
			pass.ReportPos(mi.comment.Pos(), "//twlint:bound-source declares nothing; add results= or params=, or delete the marker")
			continue
		}
		if an.cg.funcs[mi.fn] == nil {
			continue // bodyless declaration: nothing to infer against
		}

		// Redundancy: recompute the fixpoint without this marker; if the
		// declared mask is still derived, the marker restates inference.
		loo := computeSummaries(an.cg, markerMasks(an.markers, mi), dep)
		if s := loo[mi.fn]; s != nil && s.covers(mi.mask) {
			pass.ReportPos(mi.comment.Pos(), "redundant //twlint:bound-source on %s: the interprocedural summary already derives it; delete the marker", mi.fn.Name())
			continue
		}

		// Understatement: the full fixpoint (marker included) proves more
		// positions than the marker declares on a dimension it declares.
		inferred := an.sums[mi.fn]
		if inferred == nil {
			continue
		}
		if mi.declResults {
			for r, t := range inferred.Results {
				if t && !mi.mask.Results[r] {
					pass.ReportPos(mi.comment.Pos(), "//twlint:bound-source on %s disagrees with inference: result %d also carries a lower bound; update results= or the callers will treat it as exact", mi.fn.Name(), r)
				}
			}
		}
		if mi.declParams {
			for p, t := range inferred.Params {
				if t && !mi.mask.Params[p] {
					pass.ReportPos(mi.comment.Pos(), "//twlint:bound-source on %s disagrees with inference: parameter %q also receives a lower bound at a call site; update params=", mi.fn.Name(), paramName(mi.fn, p))
				}
			}
		}
	}
}

// paramName returns the name of fn's parameter at index i.
func paramName(fn *types.Func, i int) string {
	params := fn.Type().(*types.Signature).Params()
	if i < 0 || i >= params.Len() {
		return "?"
	}
	return params.At(i).Name()
}

type boundsChecker struct {
	pass *Pass
	an   *pkgAnalysis
	dep  func(*types.Func) *FuncSummary
}

// sourceMask classifies a call as a lower-bound source, returning the
// tainted-result mask or nil. Package-local callees resolve through the
// fixpoint summaries; module-internal callees through their own packages'
// summaries, so cross-package flow needs no registry.
func (bc *boundsChecker) sourceMask(call *ast.CallExpr) []bool {
	fn := calleeFunc(bc.pass.Info, call)
	if fn == nil {
		return nil
	}
	if s, ok := bc.an.sums[fn]; ok {
		return s.Results
	}
	if d := bc.dep(fn); d != nil {
		return d.Results
	}
	return nil
}

// checkFuncNode analyzes one declared function, seeding the parameters the
// summary proved to receive bounds.
func (bc *boundsChecker) checkFuncNode(fnode *funcNode) {
	var seeds []types.Object
	if s := bc.an.sums[fnode.fn]; s != nil {
		for i, p := range fnode.params {
			if i < len(s.Params) && s.Params[i] && p != nil {
				seeds = append(seeds, p)
			}
		}
	}
	bc.checkFunc(bc.an.cg.graphOf(fnode), seeds)
}

// checkFunc runs the flow analysis over one function graph.
func (bc *boundsChecker) checkFunc(g *cfg.Graph, seeds []types.Object) {
	ta := &cfg.Taint{Info: bc.pass.Info, SourceCall: bc.sourceMask, Seed: seeds}
	facts := ta.Run(g)
	dom := g.Dominators()

	// Blocks reached only when an exact-flag condition held true.
	var exactTrue []*cfg.Block
	for _, b := range g.Blocks {
		if c := b.Cond(); c != nil && isExactFlag(c) {
			exactTrue = append(exactTrue, b.Succs[0])
		}
	}
	underExact := func(b *cfg.Block) bool {
		for _, t := range exactTrue {
			if dom.Dominates(t, b) {
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		fact := facts[b.Index].Clone()
		for _, n := range b.Nodes {
			bc.checkNode(ta, fact, b, n, underExact)
			ta.Apply(fact, n)
		}
	}
}

// checkNode inspects one CFG node with the taint fact holding at its entry.
func (bc *boundsChecker) checkNode(ta *cfg.Taint, fact cfg.ObjSet, b *cfg.Block, n ast.Node, underExact func(*cfg.Block) bool) {
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false // literals are analyzed as their own functions
		}
		switch x := x.(type) {
		case *ast.BinaryExpr:
			bc.checkComparison(ta, fact, x)
		case *ast.KeyValueExpr:
			key, ok := x.Key.(*ast.Ident)
			if ok && key.Name == "Distance" && ta.ExprTainted(fact, x.Value) && !underExact(b) {
				bc.pass.Report(x, "lower-bound value published as an exact Match distance outside an exact-guarded path; route the candidate through post-processing (THEORY.md, Theorems 2-3)")
			}
		}
		return true
	})
}

// checkComparison enforces rule 1 on one comparison between a bound and
// the threshold.
func (bc *boundsChecker) checkComparison(ta *cfg.Taint, fact cfg.ObjSet, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
	default:
		return
	}
	xBound := ta.ExprTainted(fact, bin.X)
	yBound := ta.ExprTainted(fact, bin.Y)
	xEps := isEpsExpr(bin.X)
	yEps := isEpsExpr(bin.Y)

	var ok bool
	switch {
	case xBound && !yBound && yEps:
		// bound OP eps: keep on <=, prune on >.
		ok = bin.Op == token.GTR || bin.Op == token.LEQ
	case yBound && !xBound && xEps:
		// eps OP bound: the mirror — keep on >=, prune on <.
		ok = bin.Op == token.LSS || bin.Op == token.GEQ
	default:
		return
	}
	if !ok {
		bc.pass.Report(bin, "lower-bound value compared to the threshold with %s; Theorems 1-3 only justify pruning on bound > eps (keeping on bound <= eps) — %s here reintroduces false dismissals", bin.Op, bin.Op)
	}
}

// isExactFlag reports whether a condition leaf is an exactness flag: an
// identifier or field whose name contains "exact".
func isExactFlag(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "exact")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "exact")
	}
	return false
}

// isEpsExpr reports whether an expression denotes the search threshold: an
// identifier or field named eps/epsilon.
func isEpsExpr(e ast.Expr) bool {
	name := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	name = strings.ToLower(name)
	return name == "eps" || name == "epsilon"
}
