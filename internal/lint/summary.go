package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"twsearch/internal/lint/cfg"
)

// FuncSummary is the interprocedural bound-taint summary of one function:
// which of its results are lower bounds (they taint the caller's values)
// and which of its parameters receive lower bounds at some call site (they
// seed the taint analysis of the body). Summaries are computed by fixpoint
// over the package's call graph — see computeSummaries — with
// //twlint:bound-source markers as extra seeds at package boundaries.
type FuncSummary struct {
	Results []bool
	Params  []bool
}

// covers reports whether s taints at least every position m does.
func (s *FuncSummary) covers(m *FuncSummary) bool {
	for i, t := range m.Results {
		if t && (i >= len(s.Results) || !s.Results[i]) {
			return false
		}
	}
	for i, t := range m.Params {
		if t && (i >= len(s.Params) || !s.Params[i]) {
			return false
		}
	}
	return true
}

// markerInfo is one //twlint:bound-source directive resolved against the
// function it documents. The raw declaration is kept alongside the mask so
// the checker can verify the marker as an assertion: out-of-range indices,
// unknown parameter names, redundancy and understatement all become
// findings.
type markerInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	comment *ast.Comment
	mask    *FuncSummary // only in-range results and resolvable params

	declResults bool     // marker had a results= field
	declParams  bool     // marker had a params= field
	badResults  []string // results= entries that are not valid result indices
	badParams   []string // params= entries naming no parameter
}

// boundSourceComment returns the //twlint:bound-source line of a doc
// comment, or nil.
func boundSourceComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//twlint:bound-source") {
			return c
		}
	}
	return nil
}

// collectBoundMarkers parses every //twlint:bound-source directive attached
// to a function declaration of the package's non-test files.
func collectBoundMarkers(fset *token.FileSet, files []*ast.File, info *types.Info) []markerInfo {
	var out []markerInfo
	for _, file := range files {
		if isTestFile(fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c := boundSourceComment(fd.Doc)
			if c == nil {
				continue
			}
			mi := markerInfo{decl: fd, comment: c}
			mi.fn, _ = info.Defs[fd.Name].(*types.Func)
			if mi.fn == nil {
				continue
			}
			sig := mi.fn.Type().(*types.Signature)
			mi.mask = &FuncSummary{
				Results: make([]bool, sig.Results().Len()),
				Params:  make([]bool, sig.Params().Len()),
			}
			rest := strings.TrimPrefix(c.Text, "//twlint:bound-source")
			for _, field := range strings.Fields(rest) {
				if v, ok := strings.CutPrefix(field, "results="); ok {
					mi.declResults = true
					for _, s := range strings.Split(v, ",") {
						i, err := strconv.Atoi(s)
						if err != nil || i < 0 || i >= len(mi.mask.Results) {
							mi.badResults = append(mi.badResults, s)
							continue
						}
						mi.mask.Results[i] = true
					}
				}
				if v, ok := strings.CutPrefix(field, "params="); ok {
					mi.declParams = true
					for _, name := range strings.Split(v, ",") {
						idx := -1
						for i, p := range fieldObjs(info, fd.Type.Params) {
							if p != nil && p.Name() == name {
								idx = i
							}
						}
						if idx < 0 {
							mi.badParams = append(mi.badParams, name)
							continue
						}
						mi.mask.Params[idx] = true
					}
				}
			}
			out = append(out, mi)
		}
	}
	return out
}

// markerMasks merges the marker declarations into per-function seed masks,
// optionally leaving one marker out (for the redundancy check).
func markerMasks(markers []markerInfo, except *markerInfo) map[*types.Func]*FuncSummary {
	out := make(map[*types.Func]*FuncSummary, len(markers))
	for i := range markers {
		mi := &markers[i]
		if mi == except || mi.fn == nil || mi.mask == nil {
			continue
		}
		out[mi.fn] = mi.mask
	}
	return out
}

// computeSummaries runs the bound-taint fixpoint over one package's call
// graph. Marker masks seed the lattice; dep resolves calls into other
// (already summarized) module packages. Both directions flow: a function
// returning a source's value gets a tainted result, and a call passing a
// tainted value marks the callee's parameter, which re-seeds the callee's
// body on the next round. The lattice is finite (one bit per result and
// parameter) and transfer is monotone, so the fixpoint terminates.
//
// Closure bodies do not contribute: a function literal is a separate flow,
// analyzed on its own with no seeds (matching boundscontract), so taint
// neither escapes into captured variables nor returns through the literal.
func computeSummaries(cg *callGraph, markers map[*types.Func]*FuncSummary, dep func(*types.Func) *FuncSummary) map[*types.Func]*FuncSummary {
	sums := make(map[*types.Func]*FuncSummary, len(cg.funcs)+len(markers))
	get := func(fn *types.Func) *FuncSummary {
		s := sums[fn]
		if s == nil {
			sig := fn.Type().(*types.Signature)
			s = &FuncSummary{
				Results: make([]bool, sig.Results().Len()),
				Params:  make([]bool, sig.Params().Len()),
			}
			sums[fn] = s
		}
		return s
	}
	for _, fnode := range cg.order {
		get(fnode.fn)
	}
	// Bodyless marked functions (declarations without Go bodies) still get
	// an entry so their callers see the declared mask.
	for fn, m := range markers {
		s := get(fn)
		orInto(s.Results, m.Results)
		orInto(s.Params, m.Params)
	}

	lookup := func(call *ast.CallExpr) []bool {
		fn := calleeFunc(cg.info, call)
		if fn == nil {
			return nil
		}
		if s, ok := sums[fn]; ok {
			return s.Results
		}
		if d := dep(fn); d != nil {
			return d.Results
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fnode := range cg.order {
			if summarizeFunc(cg, fnode, sums, lookup) {
				changed = true
			}
		}
	}
	return sums
}

// summarizeFunc runs one taint pass over a function body and grows its own
// result mask and its callees' parameter masks. Reports whether any mask
// bit was added.
func summarizeFunc(cg *callGraph, fnode *funcNode, sums map[*types.Func]*FuncSummary, lookup func(*ast.CallExpr) []bool) bool {
	self := sums[fnode.fn]
	var seeds []types.Object
	for i, p := range fnode.params {
		if i < len(self.Params) && self.Params[i] && p != nil {
			seeds = append(seeds, p)
		}
	}
	g := cg.graphOf(fnode)
	ta := &cfg.Taint{Info: cg.info, SourceCall: lookup, Seed: seeds}
	facts := ta.Run(g)

	changed := false
	for _, b := range g.Blocks {
		fact := facts[b.Index].Clone()
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if markReturn(ta, fact, fnode, ret, self) {
					changed = true
				}
			}
			if propagateArgs(cg, ta, fact, n, sums) {
				changed = true
			}
			ta.Apply(fact, n)
		}
	}
	return changed
}

// markReturn folds one return statement into the function's result mask.
func markReturn(ta *cfg.Taint, fact cfg.ObjSet, fnode *funcNode, ret *ast.ReturnStmt, self *FuncSummary) bool {
	changed := false
	set := func(i int, tainted bool) {
		if tainted && i >= 0 && i < len(self.Results) && !self.Results[i] {
			self.Results[i] = true
			changed = true
		}
	}
	switch {
	case len(ret.Results) == 0:
		// Bare return: named results hold whatever was assigned to them.
		for i, r := range fnode.results {
			if r != nil {
				set(i, fact[r])
			}
		}
	case len(ret.Results) == len(self.Results):
		for i, e := range ret.Results {
			set(i, ta.ExprTainted(fact, e))
		}
	case len(ret.Results) == 1:
		// return f(): a multi-result passthrough keeps the callee's mask.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok && ta.SourceCall != nil {
			for i, t := range ta.SourceCall(call) {
				set(i, t)
			}
		}
	}
	return changed
}

// propagateArgs grows callee parameter masks from tainted arguments at the
// call sites inside one CFG node. Function literals inside the node are
// skipped: their calls run on another flow.
func propagateArgs(cg *callGraph, ta *cfg.Taint, fact cfg.ObjSet, n ast.Node, sums map[*types.Func]*FuncSummary) bool {
	changed := false
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := cg.callee(call)
		if callee == nil {
			return true
		}
		target := sums[callee.fn]
		for i, arg := range call.Args {
			j := paramIndex(callee.sig, i)
			if j < 0 || j >= len(target.Params) || target.Params[j] {
				continue
			}
			if ta.ExprTainted(fact, arg) {
				target.Params[j] = true
				changed = true
			}
		}
		return true
	})
	return changed
}

// orInto sets dst[i] for every set src[i].
func orInto(dst, src []bool) {
	for i, t := range src {
		if t && i < len(dst) {
			dst[i] = true
		}
	}
}

// pkgAnalysis caches one package's interprocedural artifacts: the call
// graph, the parsed bound-source markers, the full-fixpoint bound-taint
// summaries (markers included as seeds), and the context-flow summaries
// ctxflow resolves cross-package calls through.
type pkgAnalysis struct {
	cg      *callGraph
	markers []markerInfo
	sums    map[*types.Func]*FuncSummary
	ctx     map[*types.Func]*ctxSummary
}

// analysisFor computes (and caches) a package's call graph and bound-taint
// summaries. Cross-package callees resolve through the loader cache: every
// module-internal import was loaded (with full ASTs) while type-checking,
// and module imports are acyclic, so the recursion terminates.
func (l *Loader) analysisFor(pkg *Package) *pkgAnalysis {
	if a, ok := l.analyses[pkg.Path]; ok {
		return a
	}
	a := &pkgAnalysis{
		cg:      buildCallGraph(pkg.Fset, pkg.Files, pkg.Info),
		markers: collectBoundMarkers(pkg.Fset, pkg.Files, pkg.Info),
	}
	a.sums = computeSummaries(a.cg, markerMasks(a.markers, nil), l.depResolver(pkg))
	a.ctx = computeCtxSummaries(a.cg, l.ctxDepResolver(pkg))
	l.analyses[pkg.Path] = a
	return a
}

// depResolver returns the cross-package summary lookup for analyses of pkg.
func (l *Loader) depResolver(pkg *Package) func(*types.Func) *FuncSummary {
	return func(fn *types.Func) *FuncSummary {
		tp := fn.Pkg()
		if tp == nil || tp.Path() == pkg.Path {
			return nil
		}
		dpkg := l.cache[tp.Path()]
		if dpkg == nil {
			return nil
		}
		return l.analysisFor(dpkg).sums[fn]
	}
}

// ctxDepResolver is depResolver's context-flow twin: it resolves a function
// of another module package to its ctxSummary, or nil for stdlib and
// unresolved callees.
func (l *Loader) ctxDepResolver(pkg *Package) func(*types.Func) *ctxSummary {
	return func(fn *types.Func) *ctxSummary {
		tp := fn.Pkg()
		if tp == nil || tp.Path() == pkg.Path {
			return nil
		}
		dpkg := l.cache[tp.Path()]
		if dpkg == nil {
			return nil
		}
		return l.analysisFor(dpkg).ctx[fn]
	}
}
