// Package bad must trigger lockbalance twice: a mutex leaked on an early
// return and a read lock leaked on an error path.
package bad

import (
	"errors"
	"sync"
)

var errEmpty = errors.New("empty store")

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Get returns early on a miss without unlocking s.mu.
func (s *store) Get(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// Snapshot leaks the read lock when the store is empty.
func (s *store) Snapshot() ([]int, error) {
	s.rw.RLock()
	if len(s.data) == 0 {
		return nil, errEmpty
	}
	out := make([]int, 0, len(s.data))
	for _, v := range s.data {
		out = append(out, v)
	}
	s.rw.RUnlock()
	return out, nil
}
