// Package good must pass lockbalance: deferred release, branch-balanced
// release, and a panic path (which aborts the function and is not an exit).
package good

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Get releases on every path with the defer-after-acquire idiom.
func (s *store) Get(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[k]
	return v, ok
}

// Put releases explicitly on both branches.
func (s *store) Put(k string, v int) bool {
	s.mu.Lock()
	if s.data == nil {
		s.mu.Unlock()
		return false
	}
	s.data[k] = v
	s.mu.Unlock()
	return true
}

// Check panics while holding the lock: the panic aborts the function, so
// there is no unlocked path to the exit.
func (s *store) Check() {
	s.rw.RLock()
	if s.data == nil {
		panic("store: nil map")
	}
	s.rw.RUnlock()
}
