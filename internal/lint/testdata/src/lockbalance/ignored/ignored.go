// Package ignored must pass lockbalance only because the ownership
// transfer is audited with a directive.
package ignored

import "sync"

type gate struct{ mu sync.Mutex }

// Acquire hands the locked gate to the caller by contract.
func (g *gate) Acquire() {
	//lint:ignore lockbalance fixture: lock ownership transfers to the caller, released by Release
	g.mu.Lock()
}

// Release returns the gate.
func (g *gate) Release() {
	g.mu.Unlock()
}
