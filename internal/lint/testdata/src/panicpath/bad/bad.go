// Package bad must trigger panicpath: a panic inside an unexported helper
// that an exported function reaches.
package bad

import "errors"

// Lookup is exported library API.
func Lookup(xs []int, i int) int {
	return index(xs, i)
}

func index(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic(errors.New("bad: index out of range"))
	}
	return xs[i]
}
