// Package ignored must pass panicpath because the panic carries an audited
// ignore directive naming the invariant.
package ignored

// MustPick is a Must-style accessor.
func MustPick(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		//lint:ignore panicpath fixture: Must-prefix contract, callers pass known-valid indexes
		panic("ignored: index out of range")
	}
	return xs[i]
}
