// Package good must pass panicpath: exported API returns errors, and the
// only panic lives in a helper no exported function reaches.
package good

import "errors"

// Lookup is exported library API; it returns an error instead of panicking.
func Lookup(xs []int, i int) (int, error) {
	if i < 0 || i >= len(xs) {
		return 0, errors.New("good: index out of range")
	}
	return xs[i], nil
}

// debugOnly is never called from exported code.
func debugOnly() {
	panic("good: unreachable from exported API")
}

var _ = debugOnly
