// Package bad must trigger goleak twice: workers abandoned on an early
// return, and a fire-and-forget goroutine with no join at all.
package bad

import "sync"

// Scatter launches one worker per job but returns without waiting when
// the sink is nil — the workers outlive the function.
func Scatter(jobs []int, sink func(int)) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(j)
		}()
	}
	if sink == nil {
		return
	}
	wg.Wait()
}

// Drain starts a consumer and never joins it.
func Drain(ch chan string) {
	go func() {
		for range ch {
		}
	}()
}
