// Package ignored must pass goleak only because the process-lifetime
// janitor is audited with a directive.
package ignored

// Background starts a janitor that lives until tick is closed, by design.
func Background(tick chan struct{}) {
	//lint:ignore goleak fixture: janitor is process-lifetime by design, stopped by closing tick
	go func() {
		for range tick {
		}
	}()
}
