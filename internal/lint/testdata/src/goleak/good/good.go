// Package good must pass goleak: workers joined by WaitGroup on every
// path, and a goroutine joined by receiving its result.
package good

import "sync"

// Scatter joins the workers before returning on every path.
func Scatter(jobs []int, sink func(int)) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(j)
		}()
	}
	wg.Wait()
}

// Pipeline joins by receiving the goroutine's only result.
func Pipeline(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}
