// Package ignored must pass boundscontract only because the deliberate
// off-by-one prune carries an audited directive.
package ignored

import "twsearch/internal/dtw"

// PruneStrict deliberately dismisses the eps boundary to measure how often
// the off-by-one prune loses matches; audited below.
func PruneStrict(t *dtw.Table, lo, hi, eps float64) bool {
	_, minDist := t.AddRowInterval(lo, hi)
	//lint:ignore boundscontract fixture: experiment quantifying the dismissal rate of a >= prune
	return minDist >= eps
}
