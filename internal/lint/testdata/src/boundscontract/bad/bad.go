// Package bad must trigger boundscontract four times: a prune that
// discards the boundary candidate with >=, the same prune blocks away from
// the source call inside a loop, a lower bound published as an exact match
// distance with no exact guard, and the same publication with the bound
// flowing through an unmarked helper — the interprocedural summary must
// carry the taint across the call with no marker involved.
package bad

import "twsearch/internal/dtw"

type match struct {
	Start, End int
	Distance   float64
}

// Prune discards candidates whose lower bound merely *reaches* eps. The
// exact distance of such a candidate can still equal eps, so this is a
// false dismissal.
func Prune(t *dtw.Table, lo, hi, eps float64) bool {
	_, minDist := t.AddRowInterval(lo, hi)
	return minDist >= eps
}

// PruneLoop repeats the mistake with the processEdge shape: the bound is
// produced inside a loop body, discounted on one branch, and compared
// several basic blocks away from the source call. The taint must survive
// the block boundaries for the >= to be caught.
func PruneLoop(t *dtw.Table, ivs []dtw.Interval, base0, eps float64, sparse bool) bool {
	for j, iv := range ivs {
		_, minDist := t.AddRowInterval(iv.Lo, iv.Hi)
		bound := minDist
		if sparse && j > 0 {
			bound = minDist - float64(j)*base0
		}
		if bound >= eps {
			return false
		}
	}
	return true
}

// Publish reports the interval lower bound as if it were the exact
// distance, without any exactness guard.
func Publish(q []float64, ivs []dtw.Interval) match {
	lb := dtw.DistanceIntervals(q, ivs)
	return match{Start: 0, End: len(ivs), Distance: lb}
}

// helper launders the row minimum through an unmarked function; the
// summary fixpoint must still prove its result is a bound.
func helper(t *dtw.Table, lo, hi float64) float64 {
	_, minDist := t.AddRowInterval(lo, hi)
	return minDist
}

// PublishViaHelper repeats the Publish mistake one call away from the
// source: the leak only shows if cross-function flow is automatic.
func PublishViaHelper(t *dtw.Table, lo, hi float64, n int) match {
	lb := helper(t, lo, hi)
	return match{Start: 0, End: n, Distance: lb}
}
