// Package good must pass boundscontract: pruning is strict (> eps), the
// shift-discounted bound inherits the discipline through arithmetic, and a
// bound only becomes a Match distance under an exact guard.
package good

import "twsearch/internal/dtw"

type match struct {
	Start, End int
	Distance   float64
}

// Prune keeps the boundary candidate: only bound > eps may discard
// (Theorem 2), and bound <= eps keeps.
func Prune(t *dtw.Table, lo, hi, eps float64) bool {
	_, minDist := t.AddRowInterval(lo, hi)
	return minDist > eps
}

// Keep is the complementary test on the discounted bound of Theorem 3:
// subtracting the shift discount keeps the value a bound, and <= eps is
// the legal keep test.
func Keep(t *dtw.Table, lo, hi, base0 float64, j int, eps float64) bool {
	dist, _ := t.AddRowInterval(lo, hi)
	shifted := dist - float64(j)*base0
	return shifted <= eps
}

// PruneLoop is the legal version of the processEdge shape: the bound made
// inside the loop body, discounted blocks away, prunes strictly.
func PruneLoop(t *dtw.Table, ivs []dtw.Interval, base0, eps float64, sparse bool) bool {
	for j, iv := range ivs {
		_, minDist := t.AddRowInterval(iv.Lo, iv.Hi)
		bound := minDist
		if sparse && j > 0 {
			bound = minDist - float64(j)*base0
		}
		if bound > eps {
			return false
		}
	}
	return true
}

// Emit publishes lb as the answer distance only when the candidate is
// exact; otherwise it recomputes the true distance first.
//
//twlint:bound-source params=lb
func Emit(lb float64, exact bool, eps float64, q, s []float64) match {
	if exact {
		return match{Start: 0, End: len(s), Distance: lb}
	}
	d := dtw.Distance(q, s)
	if d <= eps {
		return match{Start: 0, End: len(s), Distance: d}
	}
	return match{}
}
