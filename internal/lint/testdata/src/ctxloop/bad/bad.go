// Package core (fixture) must trigger ctxless-loop: an unbounded loop with
// no exit of its own. The inner switch captures the break, so the loop can
// never terminate.
package core

// Drain spins forever: break exits the switch, not the loop.
func Drain(ch chan int) int {
	total := 0
	for {
		switch v := <-ch; {
		case v < 0:
			break
		default:
			total += v
		}
	}
}
