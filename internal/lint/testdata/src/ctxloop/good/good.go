// Package core (fixture) must pass ctxless-loop: every unbounded loop
// checks a limit and exits.
package core

// Drain sums until the limit or a negative sentinel.
func Drain(ch chan int, limit int) int {
	total := 0
	for {
		v := <-ch
		if v < 0 || total > limit {
			return total
		}
		total += v
	}
}
