// Package core (fixture) must pass ctxless-loop because the loop carries an
// audited directive.
package core

// Serve runs forever by design.
func Serve(ch chan int) {
	//lint:ignore ctxless-loop fixture: top-level accept loop, lifetime is the process lifetime
	for {
		<-ch
	}
}
