// Package ignored must pass steadystate only because the warmup-amortized
// append is audited with a directive.
package ignored

type set struct {
	touched []int32
}

// add records an offset into storage that doubles toward a high-water mark
// once, then is resliced and reused by every later query.
//
//twlint:steady-state
func (s *set) add(off int32) {
	//lint:ignore steadystate fixture: touched doubles to the high-water mark once, then reset reslices and reuses the array
	s.touched = append(s.touched, off)
}
