// Package good keeps its steady-state kernels allocation-free: state lives
// in the pooled context, values enter through an audited pool acquire, and
// plain struct values stay on the stack.
package good

type point struct {
	x, y int
}

type sink interface {
	Write(v int)
}

type logger struct {
	n int
}

func (l *logger) Write(v int) { l.n += v }

type pool struct {
	free  []*point
	trace sink
}

// acquire hands a pooled point to the caller; the marker makes its
// interface parameter an audited handoff rather than a boxing site.
//
//twlint:pool-transfer fixture: ownership of the point passes to the caller until release
func (p *pool) acquire(t sink) *point {
	if len(p.free) == 0 {
		p.free = append(p.free, &point{})
	}
	pt := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.trace = t
	return pt
}

// release returns a point to the pool.
func (p *pool) release(pt *point) {
	p.free = append(p.free, pt)
}

type kernel struct {
	p   *pool
	l   *logger
	buf []float64
	pt  *point
}

// step reuses pooled state only: the acquire call is exempt, the Write
// call passes a concrete value to a concrete parameter, and the buffer is
// written in place.
//
//twlint:steady-state
func (k *kernel) step(v int) {
	k.pt = k.p.acquire(k.l)
	k.pt.x = v
	k.buf[0] = float64(v)
	k.l.Write(v)
}

// emit builds a plain struct value, which stays on the stack.
//
//twlint:steady-state
func (k *kernel) emit(v int) point {
	return point{x: v, y: k.pt.y}
}
