// Package bad puts one allocation of every kind inside a steady-state
// kernel — make, growing append, an address-taken literal, a slice
// literal, a capturing closure, and an interface box — plus one floating
// marker that pins nothing.
package bad

type point struct {
	x int
}

type sink interface {
	Write(v int)
}

// record boxes whatever is passed to it.
func record(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

type kernel struct {
	buf   []float64
	count int
}

// step violates the allocation contract six ways.
//
//twlint:steady-state
func (k *kernel) step(s sink, v int) {
	tmp := make([]float64, 4)
	k.buf = append(k.buf, tmp...)
	p := &point{x: v}
	ws := []int{v}
	f := func() int { return v + k.count }
	k.count = record(v)
	s.Write(f() + p.x + ws[0])
}

//twlint:steady-state
var scratch []float64
