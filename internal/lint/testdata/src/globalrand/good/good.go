// Package good must pass globalrand: randomness flows through an explicit
// seeded generator.
package good

import "math/rand"

// Jitter perturbs n using the caller's seeded generator.
func Jitter(rng *rand.Rand, n int) int {
	return n + rng.Intn(10)
}

// NewRng builds a seeded generator; constructors are allowed.
func NewRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
