// Package ignored must pass globalrand because the global draw carries an
// audited directive.
package ignored

import "math/rand"

// Jitter perturbs n from the global source.
func Jitter(n int) int {
	//lint:ignore globalrand fixture: one-off jitter where reproducibility is explicitly unwanted
	return n + rand.Intn(10)
}
