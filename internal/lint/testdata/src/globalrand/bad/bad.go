// Package bad must trigger globalrand: a draw from the package-global
// source.
package bad

import "math/rand"

// Jitter perturbs n using the global generator.
func Jitter(n int) int {
	return n + rand.Intn(10)
}
