// Package bad must trigger closecheck twice: a handle that is never closed
// and a handle whose Close error is always discarded.
package bad

import "twsearch/internal/storage"

// Leak opens a page file and forgets it.
func Leak() error {
	f, err := storage.CreateMemFile()
	if err != nil {
		return err
	}
	_ = f.SizeBytes()
	return nil
}

// Discard closes, but never looks at the error.
func Discard() error {
	f, err := storage.CreateMemFile()
	if err != nil {
		return err
	}
	defer f.Close()
	_ = f.SizeBytes()
	return nil
}
