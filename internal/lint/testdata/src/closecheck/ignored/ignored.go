// Package ignored must pass closecheck because the discarded Close error
// carries an audited directive.
package ignored

import "twsearch/internal/storage"

// Peek reads from a fresh handle; the close error is immaterial.
func Peek() (int64, error) {
	//lint:ignore closecheck fixture: read-only handle, a failed close cannot lose data
	f, err := storage.CreateMemFile()
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.SizeBytes(), nil
}
