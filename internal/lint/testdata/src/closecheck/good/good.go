// Package good must pass closecheck: one handle is closed with the error
// checked, the other escapes to a caller who owns it.
package good

import "twsearch/internal/storage"

// Use opens, works, and closes with the error checked.
func Use() error {
	f, err := storage.CreateMemFile()
	if err != nil {
		return err
	}
	_ = f.SizeBytes()
	return f.Close()
}

// Open hands the handle to the caller, who becomes responsible for it.
func Open() (*storage.File, error) {
	f, err := storage.CreateMemFile()
	if err != nil {
		return nil, err
	}
	return f, nil
}
