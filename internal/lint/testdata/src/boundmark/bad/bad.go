// Package bad must trigger boundscontract twice through marker validation:
// a //twlint:bound-source restating what the interprocedural summary
// already derives, and one understating what inference proves.
package bad

import "twsearch/internal/dtw"

// WrapInterval forwards AddRowInterval, whose own marker already taints
// both results; the summary fixpoint derives the mask below without it, so
// the marker is redundant.
//
//twlint:bound-source results=0,1
func WrapInterval(t *dtw.Table, lo, hi float64) (float64, float64) {
	return t.AddRowInterval(lo, hi)
}

// Mixed computes a root bound in its first result (arithmetic the checker
// cannot see through) but also forwards the callee's row minimum in its
// second. The marker declares only the root, so a caller would treat the
// second result as an exact distance.
//
//twlint:bound-source results=0
func Mixed(t *dtw.Table, lo, hi, width float64) (float64, float64) {
	_, minDist := t.AddRowInterval(lo, hi)
	root := (hi - lo) * (hi - lo) / width
	return root, minDist
}
