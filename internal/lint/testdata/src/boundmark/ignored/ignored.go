// Package ignored must pass boundscontract only because the deliberately
// redundant marker carries an audited directive.
package ignored

import "twsearch/internal/dtw"

// WrapInterval forwards AddRowInterval; inference derives the mask, but the
// marker is kept as API documentation for readers of this wrapper.
//
//lint:ignore boundscontract fixture: marker kept as reader-facing documentation although inference derives it
//twlint:bound-source results=0,1
func WrapInterval(t *dtw.Table, lo, hi float64) (float64, float64) {
	return t.AddRowInterval(lo, hi)
}
