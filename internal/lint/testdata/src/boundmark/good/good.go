// Package good must pass boundscontract with its markers intact: the root
// marker declares arithmetic inference cannot derive, and the unmarked
// helper chain shows the summary carrying the bound to a legal prune.
package good

// Discount is a root lower-bound producer: the Theorem-3 shift discount is
// plain arithmetic, so without the marker no caller would know.
//
//twlint:bound-source results=0
func Discount(base0 float64, j int) float64 {
	return float64(j) * base0
}

// discounted needs no marker: the summary derives its result from
// Discount's declared one.
func discounted(bound, base0 float64, j int) float64 {
	return bound - Discount(base0, j)
}

// Prune tests the inferred bound strictly: > discards, so the boundary
// candidate survives.
func Prune(bound, base0 float64, j int, eps float64) bool {
	return discounted(bound, base0, j) > eps
}
