// Package ignored exists for symmetry with the other fixtures; the
// directive check has no ignore mechanism of its own (an unexplained
// exception must not be excusable), so this package simply has no
// directives at all.
package ignored

// Nothing is here on purpose.
func Nothing() {}
