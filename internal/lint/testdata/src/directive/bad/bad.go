// Package bad must trigger the directive check: a lint:ignore without a
// reason is not an audited exception (and therefore suppresses nothing).
package bad

// SameDistance compares exactly, with a reasonless ignore.
func SameDistance(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
