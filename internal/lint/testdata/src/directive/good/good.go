// Package good must pass the directive check: well-formed directives only.
package good

// SameDistance compares exactly under a fully documented exception.
func SameDistance(a, b float64) bool {
	//lint:ignore floateq fixture: exact comparison audited with a written reason
	return a == b
}
