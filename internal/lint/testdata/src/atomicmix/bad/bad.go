// Package bad must trigger atomicmix twice: a plain read of a field that
// is updated through sync/atomic, and a plain write to a package-level
// counter that is loaded atomically.
package bad

import "sync/atomic"

type counter struct{ n int64 }

// Inc updates the counter atomically.
func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read races with Inc: the load is plain, so it can observe a torn value.
func (c *counter) Read() int64 {
	return c.n
}

var hits uint64

// Hits reads the counter atomically.
func Hits() uint64 {
	return atomic.LoadUint64(&hits)
}

// Reset races with Hits: the store is plain.
func Reset() {
	hits = 0
}
