// Package ignored must pass atomicmix only because the pre-publication
// initialization is audited with a directive.
package ignored

import "sync/atomic"

type gauge struct{ v int64 }

// Set publishes a new reading atomically.
func (g *gauge) Set(x int64) {
	atomic.StoreInt64(&g.v, x)
}

// New initializes the gauge before any other goroutine can see it, so the
// plain store cannot race; audited below.
func New(x int64) *gauge {
	g := &gauge{}
	//lint:ignore atomicmix fixture: single-owner initialization before the gauge is published
	g.v = x
	return g
}
