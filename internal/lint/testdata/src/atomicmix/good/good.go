// Package good must pass atomicmix: every access to the raw counter goes
// through sync/atomic, and the stop flag is a typed atomic whose methods
// are safe by construction.
package good

import "sync/atomic"

type counter struct{ n int64 }

// Inc updates the counter atomically.
func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read loads the counter atomically, matching Inc.
func (c *counter) Read() int64 {
	return atomic.LoadInt64(&c.n)
}

var stop atomic.Bool

// Stop raises the typed flag; typed atomics carry the discipline in their
// method set, so no raw address ever escapes.
func Stop() {
	stop.Store(true)
}

// Stopped reads the typed flag.
func Stopped() bool {
	return stop.Load()
}
