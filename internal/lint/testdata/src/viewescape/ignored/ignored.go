// Package ignored must pass viewescape only because the cursor-style
// retention is audited with a directive at the borrowing call.
package ignored

type source struct{ data []byte }

func (s *source) View(id uint64) ([]byte, func(), error) {
	return s.data, func() {}, nil
}

// cursor holds one borrowed view between open and close, the audited
// ownership pattern the disktree page cursor uses.
type cursor struct {
	page    []byte
	release func()
}

// open borrows a view into the cursor's fields; close releases it on every
// caller return path.
func (c *cursor) open(s *source, id uint64) error {
	//lint:ignore viewescape fixture: the cursor owns the view between open and close; close releases it on every return path
	page, release, err := s.View(id)
	if err != nil {
		return err
	}
	c.page, c.release = page, release
	return nil
}

func (c *cursor) close() {
	if c.release != nil {
		c.release()
	}
	c.page, c.release = nil, nil
}
