// Package bad must trigger viewescape four times: a view stored in a
// struct field, a view returned, a release func discarded, and a view
// captured by a goroutine closure.
package bad

type source struct{ data []byte }

func (s *source) View(id uint64) ([]byte, func(), error) {
	return s.data, func() {}, nil
}

type holder struct{ page []byte }

// Keep stashes the borrowed view in a long-lived struct: the slice
// outlives the release that ends the borrow.
func Keep(s *source, h *holder) error {
	page, release, err := s.View(0)
	if err != nil {
		return err
	}
	h.page = page
	release()
	return nil
}

// Leak hands the borrowed view to the caller after releasing it: the
// caller reads recycled bytes.
func Leak(s *source) ([]byte, error) {
	page, release, err := s.View(0)
	if err != nil {
		return nil, err
	}
	defer release()
	return page, nil
}

// Peek drops the release on the floor: the pin is never returned.
func Peek(s *source) (byte, error) {
	page, _, err := s.View(0)
	if err != nil {
		return 0, err
	}
	return page[0], nil
}

// Defer captures the view in a goroutine that may run after release.
func Defer(s *source, out chan<- byte) error {
	page, release, err := s.View(0)
	if err != nil {
		return err
	}
	defer release()
	go func() { out <- page[0] }()
	return nil
}
