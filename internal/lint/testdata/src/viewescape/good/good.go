// Package good must pass viewescape: every borrowed view stays local and
// every release runs before the function returns.
package good

type source struct{ data []byte }

func (s *source) View(id uint64) ([]byte, func(), error) {
	return s.data, func() {}, nil
}

// Read copies one byte out of the borrowed view and releases it.
func Read(s *source, id uint64) (byte, error) {
	page, release, err := s.View(id)
	if err != nil {
		return 0, err
	}
	defer release()
	return page[0], nil
}

// Copy materializes the page before the borrow ends: the copy may escape,
// the view does not.
func Copy(s *source, id uint64) ([]byte, error) {
	page, release, err := s.View(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(page))
	copy(out, page)
	release()
	return out, nil
}

// Sum borrows pages in a loop, releasing each before the next.
func Sum(s *source, n uint64) (int, error) {
	total := 0
	for id := uint64(0); id < n; id++ {
		page, release, err := s.View(id)
		if err != nil {
			return 0, err
		}
		for _, b := range page {
			total += int(b)
		}
		release()
	}
	return total, nil
}
