// Package good must pass deferinloop: the iteration body is wrapped in a
// closure so each defer runs per iteration, and a plain top-level defer is
// the ordinary idiom.
package good

type file struct{}

func (f *file) Close() error { return nil }

func open(string) *file { return &file{} }

// Sweep wraps the body in a function literal; the defer runs when the
// literal returns, once per iteration.
func Sweep(names []string, visit func(*file) error) error {
	for _, n := range names {
		if err := func() error {
			f := open(n)
			defer f.Close()
			return visit(f)
		}(); err != nil {
			return err
		}
	}
	return nil
}

// One defers outside any loop.
func One(n string, visit func(*file) error) error {
	f := open(n)
	defer f.Close()
	return visit(f)
}
