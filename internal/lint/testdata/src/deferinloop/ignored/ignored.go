// Package ignored must pass deferinloop only because the deliberate
// accumulation over a small fixed loop is audited with a directive.
package ignored

type file struct{}

func (f *file) Close() error { return nil }

func open(string) *file { return &file{} }

// Gather keeps all three segment files open until the merge at return.
func Gather(parts [3]string, merge func()) {
	for _, p := range parts {
		f := open(p)
		//lint:ignore deferinloop fixture: all segments must stay open until the merge at return
		defer f.Close()
	}
	merge()
}
