// Package bad must trigger deferinloop twice: a per-iteration resource
// deferred in a range loop, and a defer in a counted loop.
package bad

type file struct{}

func (f *file) Close() error { return nil }

func open(string) *file { return &file{} }

// Sweep defers one Close per iteration; every handle stays open until the
// function returns.
func Sweep(names []string) {
	for _, n := range names {
		f := open(n)
		defer f.Close()
	}
}

// Retry stacks one deferred print per attempt.
func Retry(report func(int)) {
	for i := 0; i < 3; i++ {
		defer report(i)
	}
}
