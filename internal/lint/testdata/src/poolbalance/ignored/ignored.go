// Package ignored must pass poolbalance only because the deliberate leak
// is audited with a directive.
package ignored

import "sync"

var bufs = sync.Pool{New: func() any { return new([]float64) }}

// Take deliberately drops the pooled buffer to measure the steady-state
// allocation rate without reuse; audited below.
func Take() *[]float64 {
	//lint:ignore poolbalance fixture: experiment measuring allocation rate with pool reuse disabled
	return bufs.Get().(*[]float64)
}
