// Package bad must trigger poolbalance twice: a Get whose early-return
// path skips the Put, and a transfer marker on a function that never Gets.
package bad

import "sync"

var bufs = sync.Pool{New: func() any { return new([]float64) }}

// Grow leaks the pooled buffer whenever the early return fires: that path
// reaches the exit with no Put, so the buffer never comes back.
func Grow(n int) int {
	b := bufs.Get().(*[]float64)
	if n > cap(*b) {
		return n
	}
	bufs.Put(b)
	return len(*b)
}

// Idle claims an ownership handoff but never takes ownership of anything,
// so the marker is stale.
//
//twlint:pool-transfer released by nobody
func Idle() {}
