// Package good must pass poolbalance: a deferred Put covers every exit, a
// branch-balanced Put releases on both paths, and the acquire/release
// handoff is declared with a reasoned transfer marker.
package good

import "sync"

var bufs = sync.Pool{New: func() any { return new([]float64) }}

// Sum releases via defer, covering every exit past the registration.
func Sum(xs []float64) float64 {
	b := bufs.Get().(*[]float64)
	defer bufs.Put(b)
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Clamp puts the buffer back on both branches before returning.
func Clamp(n, limit int) int {
	b := bufs.Get().(*[]float64)
	if n > limit {
		bufs.Put(b)
		return limit
	}
	bufs.Put(b)
	return n
}

// Acquire hands the pooled buffer to the caller by contract.
//
//twlint:pool-transfer released by Release when the caller is done with the buffer
func Acquire() *[]float64 {
	return bufs.Get().(*[]float64)
}

// Release returns a buffer taken by Acquire.
func Release(b *[]float64) {
	bufs.Put(b)
}
