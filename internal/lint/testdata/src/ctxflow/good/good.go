// Package good threads contexts correctly: every unbounded loop on a
// request path polls for cancellation — through a select on ctx.Done, a
// masked-counter helper whose summary touches the context, or a receive —
// and the only re-root is an audited wrapper outside any request path.
package good

import "context"

type searcher struct {
	ctx context.Context
	n   int
}

// checkCancel is the masked-counter poll: it touches the context, so its
// summary makes any loop that calls it a polling loop.
func (s *searcher) checkCancel() {
	if s.n&63 == 0 {
		_ = s.ctx.Err()
	}
}

// Run polls through the helper every iteration.
func Run(ctx context.Context, s *searcher) int {
	s.ctx = ctx
	for {
		s.n++
		s.checkCancel()
		if s.n > 10 {
			return s.n
		}
	}
}

// WaitDone selects on the context each turn.
func WaitDone(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-work:
			total += v
		}
	}
}

// Collect re-checks the done channel with a receive each iteration.
func Collect(ctx context.Context, done chan struct{}, src func() int) int {
	total := 0
	for {
		select {
		case <-done:
			return total
		default:
		}
		total += src()
	}
}

// Drain ends when the channel closes; for range needs no poll.
func Drain(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// RunCompat is a public wrapper for callers with no context; nothing on a
// request path calls it.
//
//twlint:ctx-root fixture: public compatibility wrapper for context-free callers
func RunCompat(s *searcher) int {
	return Run(context.Background(), s)
}
