// Package ignored must pass ctxflow only because the poll-free loop's
// iteration bound is audited with a directive.
package ignored

import "context"

// Spin busy-waits a bounded number of turns; the bound, not a poll, caps
// how long the request can be held.
func Spin(ctx context.Context) int {
	n := 0
	//lint:ignore ctxflow fixture: the loop is bounded by the counter check below, so it cannot outlive the request
	for {
		n++
		if n == 100 {
			return n
		}
	}
}
