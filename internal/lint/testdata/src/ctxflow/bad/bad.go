// Package server exercises every ctxflow rule: an unmarked re-root, a
// re-root beneath a context parameter, a request path calling an audited
// wrapper, and a handler loop that never polls. The package is named
// server so the handle*/serve* root convention applies.
package server

import "context"

// Scan is an audited compatibility wrapper; the marker covers its root for
// outside callers, not request-path calls to it.
//
//twlint:ctx-root fixture: compat wrapper for context-free callers
func Scan() int {
	_ = context.Background()
	return 1
}

// Fresh roots a context with no audit trail.
func Fresh() context.Context {
	return context.Background()
}

// handleQuery is a request root by the server handle* convention; calling
// the wrapper discards the request deadline beneath it.
func handleQuery(q int) int {
	return q + Scan()
}

// serveBatch re-roots despite receiving ctx, and spins without polling.
func serveBatch(ctx context.Context, jobs []int) int {
	c := context.TODO()
	_ = c
	i, n := 0, 0
	for {
		n += jobs[i%len(jobs)]
		i++
		if i == len(jobs) {
			return n
		}
	}
}
