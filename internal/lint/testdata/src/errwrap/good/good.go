// Package good must pass errwrap: underlying errors are wrapped with %w
// and pure-text errors carry no error operand at all.
package good

import (
	"errors"
	"fmt"
	"os"
)

// ErrEmpty is a sentinel callers can match.
var ErrEmpty = errors.New("good: empty file")

// Load is exported library API.
func Load(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("good: loading %s: %w", path, err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("good: %s: %w", path, ErrEmpty)
	}
	return data, nil
}
