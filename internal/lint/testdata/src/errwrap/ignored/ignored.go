// Package ignored must pass errwrap because the flattening site carries an
// audited directive.
package ignored

import (
	"fmt"
	"os"
)

// Load deliberately flattens the cause.
func Load(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		//lint:ignore errwrap fixture: cause is quoted into an opaque user-facing message by design
		return nil, fmt.Errorf("ignored: loading %s: %v", path, err)
	}
	return data, nil
}
