// Package bad must trigger errwrap: an underlying error is flattened with
// %v, so callers cannot errors.Is through the boundary.
package bad

import (
	"fmt"
	"os"
)

// Load is exported library API.
func Load(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bad: loading %s: %v", path, err)
	}
	return data, nil
}
