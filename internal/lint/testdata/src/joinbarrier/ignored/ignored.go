// Package ignored must pass joinbarrier only because the mid-flight
// progress read is audited with a directive.
package ignored

import "sync"

// stats is worker-private until the join barrier.
//
//twlint:join-merged
type stats struct{ nodes int }

type searcher struct{ stats stats }

// Search reads the pre-seeded count mid-flight for a progress estimate;
// workers write their own shards and never touch s.stats, so the read is
// stable despite running before the join.
func (s *searcher) Search(parts [][]float64) int {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() {
			wg.Done()
		}()
	}
	//lint:ignore joinbarrier fixture: workers write private shards, never s.stats, so this mid-flight read is stable
	seen := s.stats.nodes
	wg.Wait()
	return seen
}
