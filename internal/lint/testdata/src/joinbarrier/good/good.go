// Package good must pass joinbarrier: join-merged stats are touched before
// the spawn and merged only after the join barrier — behind a completed
// channel drain in one variant, behind WaitGroup.Wait in the other.
package good

import "sync"

// stats is worker-private until the join barrier.
//
//twlint:join-merged
type stats struct{ nodes int }

type searcher struct{ stats stats }

// Search seeds before spawning and merges after the drain completes.
func (s *searcher) Search(parts [][]float64) {
	s.stats.nodes++
	var wg sync.WaitGroup
	results := make(chan int, len(parts))
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- 1
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	total := 0
	for r := range results {
		total += r
	}
	s.stats.nodes += total
}

// SearchWait gives each worker a private shard and merges after Wait.
func (s *searcher) SearchWait(parts [][]float64) {
	var wg sync.WaitGroup
	workers := make([]stats, len(parts))
	for i := range parts {
		wg.Add(1)
		go func(w *stats) {
			defer wg.Done()
			w.nodes++
		}(&workers[i])
	}
	wg.Wait()
	for i := range workers {
		s.stats.nodes += workers[i].nodes
	}
}
