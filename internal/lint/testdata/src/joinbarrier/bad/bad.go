// Package bad must trigger joinbarrier twice: join-merged stats touched
// between goroutine spawn and the join, once on the driver's straight line
// and once inside the result drain while workers may still run.
package bad

import "sync"

// stats is worker-private until the join barrier.
//
//twlint:join-merged
type stats struct{ nodes int }

type searcher struct{ stats stats }

// Search spawns workers and merges too early: the increment races with the
// workers, and the drain-loop merge runs before the drain has completed.
func (s *searcher) Search(parts [][]float64) {
	var wg sync.WaitGroup
	results := make(chan int, len(parts))
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- 1
		}()
	}
	s.stats.nodes++
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		s.stats.nodes += r
	}
}
