// Package bad must trigger floateq: exact equality between computed
// distances.
package bad

// SameDistance compares two distances exactly.
func SameDistance(a, b float64) bool {
	return a == b
}
