// Package good must pass floateq: threshold comparison, and the exempt
// literal-zero unset check.
package good

import "math"

// SameDistance compares with a tolerance.
func SameDistance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// Configured reports whether eps was set ("zero means unset" idiom).
func Configured(eps float64) bool {
	return eps != 0
}
