// Package ignored must pass floateq because the exact comparison carries an
// audited directive.
package ignored

// Unchanged reports an exact fixpoint.
func Unchanged(prev, next float64) bool {
	//lint:ignore floateq fixture: exact fixpoint test, iteration is bounded elsewhere
	return prev == next
}
