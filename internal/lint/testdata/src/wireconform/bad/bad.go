// Package bad must trigger wireconform twice: the Header decoder reads the
// nonce at the wrong width, and the Req encoder version-gates a field the
// decoder reads unconditionally.
package bad

import "encoding/binary"

// Reader is the fixture's decode cursor; wireconform recognizes its
// accessor methods by receiver type name.
type Reader struct {
	buf []byte
	off int
}

func (r *Reader) U32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Header carries a magic word and an 8-byte nonce.
type Header struct {
	Magic uint32
	Nonce uint64
}

// EncodeHeader writes the magic then the full 8-byte nonce.
func EncodeHeader(b []byte, h Header) []byte {
	b = binary.LittleEndian.AppendUint32(b, h.Magic)
	b = binary.LittleEndian.AppendUint64(b, h.Nonce)
	return b
}

// DecodeHeader reads the nonce at half its written width.
func DecodeHeader(r *Reader) Header {
	var h Header
	h.Magic = r.U32()
	h.Nonce = uint64(r.U32())
	return h
}

// Req gained Flags in version 3.
type Req struct {
	ID    uint32
	Flags uint32
}

// EncodeReqAt writes Flags only for v3+ peers.
func EncodeReqAt(b []byte, m Req, version uint16) []byte {
	b = binary.LittleEndian.AppendUint32(b, m.ID)
	if version >= 3 {
		b = binary.LittleEndian.AppendUint32(b, m.Flags)
	}
	return b
}

// DecodeReqAt reads Flags unconditionally, desynchronizing v2 frames.
func DecodeReqAt(r *Reader, version uint16) Req {
	var m Req
	m.ID = r.U32()
	m.Flags = r.U32()
	return m
}
