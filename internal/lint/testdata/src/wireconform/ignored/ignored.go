// Package ignored must pass wireconform only because the deliberate nonce
// truncation is audited with a directive.
package ignored

import "encoding/binary"

// Reader is the fixture's decode cursor.
type Reader struct {
	buf []byte
	off int
}

func (r *Reader) U32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Header carries a magic word and an 8-byte nonce.
type Header struct {
	Magic uint32
	Nonce uint64
}

// EncodeHeader writes the full 8-byte nonce.
func EncodeHeader(b []byte, h Header) []byte {
	b = binary.LittleEndian.AppendUint32(b, h.Magic)
	b = binary.LittleEndian.AppendUint64(b, h.Nonce)
	return b
}

// DecodeHeader keeps only the nonce's low half; the directive records why
// the tail bytes may be dropped.
func DecodeHeader(r *Reader) Header {
	var h Header
	h.Magic = r.U32()
	//lint:ignore wireconform fixture: legacy peers use only the low nonce word; the high word is reserved padding until the flag day
	h.Nonce = uint64(r.U32())
	return h
}
