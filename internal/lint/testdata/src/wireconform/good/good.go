// Package good lays out every frame symmetrically: the boolean if/else
// collapses, the version gate is mirrored, the repeated group pairs loop
// with loop, and the fixed-size range unrolls to the decoder's scalar reads.
package good

import "encoding/binary"

// Reader is the fixture's decode cursor.
type Reader struct {
	buf []byte
	off int
}

func (r *Reader) U8() uint8 {
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *Reader) U32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Req is a frame with a flag, a repeated group, and a gated tail field.
type Req struct {
	ID     uint32
	Sparse bool
	Items  []uint64
	Flags  uint32
}

// EncodeReqAt writes id, flag byte, count-prefixed items, and the v3 tail.
func EncodeReqAt(b []byte, m Req, version uint16) []byte {
	b = binary.LittleEndian.AppendUint32(b, m.ID)
	if m.Sparse {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Items)))
	for _, v := range m.Items {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	if version >= 3 {
		b = binary.LittleEndian.AppendUint32(b, m.Flags)
	}
	return b
}

// DecodeReqAt mirrors the layout field for field, gate for gate.
func DecodeReqAt(r *Reader, version uint16) Req {
	var m Req
	m.ID = r.U32()
	m.Sparse = r.U8() == 1
	n := int(r.U32())
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, r.U64())
	}
	if version >= 3 {
		m.Flags = r.U32()
	}
	return m
}

// Pair is written by a fixed-size range that unrolls to two scalars.
type Pair struct {
	A, B uint32
}

// EncodePair ranges over a two-element literal; the unrolled layout is
// exactly two 4-byte scalars.
func EncodePair(b []byte, p Pair) []byte {
	for _, v := range []uint32{p.A, p.B} {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// DecodePair reads the two scalars straight.
func DecodePair(r *Reader) Pair {
	var p Pair
	p.A = r.U32()
	p.B = r.U32()
	return p
}
