package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the all-or-nothing contract of sync/atomic: once any
// access to a variable goes through the atomic package, every access must —
// a plain read can observe a torn or stale value next to a concurrent
// atomic write, and the race detector only catches the interleavings a
// test happens to schedule. The analyzer is the static complement: it
// collects every variable whose address is passed to a sync/atomic
// function (atomic.AddUint64(&c.n, 1), atomic.LoadInt64(&v), ...) anywhere
// in the package, then flags every plain read or write of the same
// variable elsewhere.
//
// Typed atomics (atomic.Uint64, atomic.Bool, ...) are immune by
// construction — their plain method calls are the atomic API — which is
// why the storage pool and the parallel-search stop flag use them; this
// check guards the function-style API where the discipline is on the
// programmer. Initialization before publication is a legitimate exception:
// audit it with //lint:ignore atomicmix and a reason.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed through sync/atomic is also read or written " +
		"plainly; use the atomic API everywhere or switch to a typed atomic",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	if !pass.Library {
		return
	}

	// Pass 1: collect the objects whose address reaches a sync/atomic
	// function, the identifiers making up those operands (exempt from pass
	// 2), and one representative atomic-use position per object.
	atomicAt := make(map[types.Object]token.Position)
	exempt := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, id := atomicOperand(pass.Info, call)
			if obj == nil {
				return true
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = pass.Fset.Position(call.Pos())
			}
			exempt[id] = true
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: any other use of those objects is a plain access. Reporting
	// on identifiers (the Sel of a field selector resolves to the field
	// object) gives exactly one finding per access.
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || exempt[id] {
				return true
			}
			// Only uses count: the identifier declaring the field or
			// variable (Defs) is not an access.
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if at, ok := atomicAt[obj]; ok {
				pass.Report(id, "%s is accessed with sync/atomic at %s:%d; this plain access races with it — use the atomic API everywhere or a typed atomic", id.Name, shortPath(at.Filename), at.Line)
			}
			return true
		})
	}
}

// atomicOperand resolves a call of the form atomicpkg.Fn(&x, ...) to the
// object of x and the identifier spelling it. Only package-level functions
// of sync/atomic count: typed-atomic method calls carry no raw address.
func atomicOperand(info *types.Info, call *ast.CallExpr) (types.Object, *ast.Ident) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, nil
	}
	switch operand := ast.Unparen(addr.X).(type) {
	case *ast.Ident:
		obj := info.Uses[operand]
		if obj == nil {
			obj = info.Defs[operand]
		}
		return obj, operand
	case *ast.SelectorExpr:
		return info.Uses[operand.Sel], operand.Sel
	}
	return nil, nil
}

// shortPath trims a position's filename to its last two path elements so
// cross-references in messages stay readable.
func shortPath(filename string) string {
	parts := strings.Split(filename, "/")
	if len(parts) <= 2 {
		return filename
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
