package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CloseCheck reports storage/disktree handles that are opened and then
// either never closed or closed with the error always discarded. These
// handles own buffer pools over file-backed pages; a missing Close leaks a
// descriptor and a pool, and a discarded Close error can hide a failed
// flush of dirty pages — which corrupts the index the no-false-dismissal
// guarantee is computed from.
//
// The analysis is per function and deliberately conservative: a handle that
// escapes the function (passed to a call, returned, stored in a struct or
// variable) becomes its new owner's responsibility and is not reported.
// Within one function, at least one Close on the handle must consume the
// error (assign, return, or branch on it); a function that only ever writes
// `h.Close()` or `defer h.Close()` is reported and must either check the
// error or carry a //lint:ignore closecheck directive saying why the error
// is immaterial (e.g. a read-only handle on an error path).
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "storage/disktree handle not closed on every path, or Close error " +
		"never checked",
	Run: runCloseCheck,
}

// handleProducers names the constructor prefixes of the two page-file
// packages whose handles the check tracks.
func isHandleProducer(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if !strings.HasSuffix(path, "internal/storage") && !strings.HasSuffix(path, "internal/disktree") {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Open") || strings.HasPrefix(fn.Name(), "Create")
}

func runCloseCheck(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHandles(pass, fd)
		}
	}
}

type handleState struct {
	origin  *ast.CallExpr // the Open/Create call
	callee  string        // pkg.Fn for the message
	escapes bool
	closes  int
	checked int
}

func checkHandles(pass *Pass, fd *ast.FuncDecl) {
	handles := make(map[types.Object]*handleState)
	defIdents := make(map[*ast.Ident]bool)

	// Pass 1: find handle-producing assignments h, err := pkg.OpenX(...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if !isHandleProducer(fn) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		defIdents[id] = true
		handles[obj] = &handleState{
			origin: call,
			callee: fn.Pkg().Name() + "." + fn.Name(),
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	// Pass 2: classify every other use of each handle. The walker keeps the
	// path of enclosing nodes so a use can see its context.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || defIdents[id] {
			return true
		}
		obj := pass.Info.Uses[id]
		st, tracked := handles[obj]
		if !tracked {
			return true
		}
		classifyUse(pass, stack, st)
		return true
	})

	for _, st := range handles {
		if st.escapes {
			continue
		}
		switch {
		case st.closes == 0:
			pass.Report(st.origin, "handle from %s is never closed in this function", st.callee)
		case st.checked == 0:
			pass.Report(st.origin, "handle from %s: Close error is never checked", st.callee)
		}
	}
}

// classifyUse inspects the enclosing-node path of one identifier use
// (stack[len-1] is the ident itself) and updates the handle state.
func classifyUse(pass *Pass, stack []ast.Node, st *handleState) {
	if len(stack) < 2 {
		st.escapes = true
		return
	}
	parent := stack[len(stack)-2]

	// h.Close() — a method call on the handle. Anything else reached
	// through a selector (h.Meta(), h.SizeBytes()) is a plain read.
	if sel, ok := parent.(*ast.SelectorExpr); ok && len(stack) >= 3 {
		if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
			if sel.Sel.Name != "Close" {
				return
			}
			st.closes++
			if closeErrorChecked(stack[:len(stack)-3]) {
				st.checked++
			}
			return
		}
		return
	}

	switch p := parent.(type) {
	case *ast.CallExpr:
		// Appearing among the arguments (or as a function value) hands the
		// handle to someone else.
		if p.Fun != stack[len(stack)-1] {
			st.escapes = true
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		st.escapes = true
	case *ast.UnaryExpr:
		st.escapes = true // address taken (or weirder)
	case *ast.AssignStmt:
		// On the right-hand side the handle is copied somewhere new.
		for _, rhs := range p.Rhs {
			if rhs == stack[len(stack)-1] {
				st.escapes = true
			}
		}
	case *ast.IndexExpr:
		if p.Index == stack[len(stack)-1] {
			st.escapes = true
		}
	}
}

// closeErrorChecked reports whether the h.Close() call whose enclosing path
// is given consumes the returned error: any context other than a bare
// expression statement or a bare defer counts.
func closeErrorChecked(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch stack[len(stack)-1].(type) {
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
		return false
	}
	return true
}
