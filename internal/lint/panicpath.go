package lint

import (
	"go/ast"
	"go/types"
)

// PanicPath reports panic calls reachable from the exported API of library
// packages. The search engine's callers (servers holding millions of users'
// queries) must get errors, not process aborts; a panic is acceptable only
// as an unreachable-state assertion, and then the call site must carry a
// //lint:ignore panicpath directive stating the invariant that makes it
// unreachable.
//
// Reachability is computed per package: a panic is reported when it occurs
// lexically inside an exported function or method, or inside an unexported
// function that some exported function of the same package calls
// (transitively, through static calls).
var PanicPath = &Analyzer{
	Name: "panicpath",
	Doc: "panic() reachable from exported library API; return an error or " +
		"annotate the call site with the invariant that makes it unreachable",
	Run: runPanicPath,
}

func runPanicPath(pass *Pass) {
	if !pass.Library {
		return
	}

	type fnInfo struct {
		decl   *ast.FuncDecl
		panics []*ast.CallExpr
		calls  []*types.Func // static intra-package callees
	}
	fns := make(map[*types.Func]*fnInfo)

	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			info := &fnInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						info.panics = append(info.panics, call)
						return true
					}
				}
				if callee := calleeFunc(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
					info.calls = append(info.calls, callee)
				}
				return true
			})
			fns[obj] = info
		}
	}

	// Breadth-first walk from every exported function; record, for each
	// reachable function, one exported entry point for the message.
	via := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for obj := range fns {
		if obj.Exported() {
			via[obj] = obj
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range fns[cur].calls {
			if _, seen := via[callee]; seen {
				continue
			}
			if _, known := fns[callee]; !known {
				continue
			}
			via[callee] = via[cur]
			queue = append(queue, callee)
		}
	}

	for obj, info := range fns {
		entry, reachable := via[obj]
		if !reachable {
			continue
		}
		for _, p := range info.panics {
			if entry == obj {
				pass.Report(p, "panic reachable from exported %s; return an error instead", obj.Name())
			} else {
				pass.Report(p, "panic in %s reachable from exported %s; return an error instead", obj.Name(), entry.Name())
			}
		}
	}
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes, when that can be determined (plain calls and method calls;
// not calls through function values or interfaces).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
