package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"twsearch/internal/lint/cfg"
)

// JoinBarrier enforces the merged-at-the-join-barrier ownership protocol
// the parallel search drivers rely on (core/parallel.go,
// multivar/mparallel.go): a type marked
//
//	//twlint:join-merged
//
// in its doc comment (SearchStats, multivar.Stats, pending.Set) holds
// counters or shards that workers own privately while they run and the
// driver merges only after all workers have exited. In any function that
// spawns goroutines, the driver side may therefore touch such state only
// before the first spawn or after a join barrier — a sync.WaitGroup.Wait
// call or the completion of a `for ... range ch` drain over a channel.
// An access between spawn and join is exactly the race the exactness
// argument excludes ("no counter is ever written by two goroutines"), and
// the race detector only sees it on the schedules a test happens to hit.
//
// Worker-side accesses sit inside the `go` function literals and are
// exempt, as are functions that spawn nothing. Accesses through function
// literals that are not goroutines are not tracked (a closure body is a
// separate flow); the drivers' delivery closures touch only unmarked
// state. The marker is checked like every other: one that is not the doc
// comment of a struct type declaration is stale and reported.
var JoinBarrier = &Analyzer{
	Name: "joinbarrier",
	Doc: "join-merged state (//twlint:join-merged) touched between goroutine " +
		"spawn and the join barrier; merge only after Wait or the channel drain",
	Run: runJoinBarrier,
}

// joinMergedComment returns the //twlint:join-merged line of a doc comment.
func joinMergedComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//twlint:join-merged") {
			return c
		}
	}
	return nil
}

func runJoinBarrier(pass *Pass) {
	if !pass.Library {
		return
	}
	jb := &joinChecker{pass: pass, marked: make(map[string]map[string]bool)}
	jb.collectLocalMarkers()

	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				jb.checkFunc(fd)
			}
		}
	}
}

type joinChecker struct {
	pass *Pass
	// marked caches, per package path, the set of type names whose doc
	// carries //twlint:join-merged.
	marked map[string]map[string]bool
}

// collectLocalMarkers records this package's marked types and reports stale
// markers: a //twlint:join-merged that is not the doc comment of a struct
// type declaration protects nothing.
func (jb *joinChecker) collectLocalMarkers() {
	names, attached := scanJoinMerged(jb.pass.Files)
	jb.marked[jb.pass.Path] = names
	for _, file := range jb.pass.Files {
		if isTestFile(jb.pass.Fset.Position(file.Pos())) {
			continue
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, "//twlint:join-merged") && !attached[c] {
					jb.pass.ReportPos(c.Pos(), "stale //twlint:join-merged: the directive is not the doc comment of a struct type declaration, so it protects nothing; move it onto the type or delete it")
				}
			}
		}
	}
}

// scanJoinMerged finds marked struct type declarations in a file set.
func scanJoinMerged(files []*ast.File) (names map[string]bool, attached map[*ast.Comment]bool) {
	names = make(map[string]bool)
	attached = make(map[*ast.Comment]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				c := joinMergedComment(ts.Doc)
				if c == nil && len(gd.Specs) == 1 {
					c = joinMergedComment(gd.Doc)
				}
				if c == nil {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); isStruct {
					names[ts.Name.Name] = true
					attached[c] = true
				}
			}
		}
	}
	return names, attached
}

// isJoinMerged reports whether t (possibly behind pointers) is a named
// struct type marked //twlint:join-merged, resolving cross-package types
// through the loader's AST cache.
func (jb *joinChecker) isJoinMerged(t types.Type) bool {
	if t == nil {
		return false
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	names, ok := jb.marked[path]
	if !ok {
		names = make(map[string]bool)
		if jb.pass.src != nil && jb.pass.src.loader != nil {
			if dpkg := jb.pass.src.loader.cache[path]; dpkg != nil {
				names, _ = scanJoinMerged(dpkg.Files)
			}
		}
		jb.marked[path] = names
	}
	return names[obj.Name()]
}

// checkFunc analyzes one function declaration for driver-side accesses to
// join-merged state between spawn and join.
func (jb *joinChecker) checkFunc(fd *ast.FuncDecl) {
	// Cheap pre-scan: only functions that spawn goroutines have a barrier
	// protocol to violate.
	hasGo := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			hasGo = true
		}
		return !hasGo
	})
	if !hasGo {
		return
	}

	g := cfg.Build(jb.pass.Fset, fd)
	dom := g.Dominators()

	// Spawn points, and the blocks reachable after one (successor closure).
	type point struct {
		b   *cfg.Block
		idx int
	}
	var spawns []point
	postSpawnBlock := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if _, ok := n.(*ast.GoStmt); ok {
				spawns = append(spawns, point{b, i})
			}
		}
	}
	if len(spawns) == 0 {
		return // every go statement sits inside a nested literal
	}
	var mark func(b *cfg.Block)
	mark = func(b *cfg.Block) {
		if postSpawnBlock[b.Index] {
			return
		}
		postSpawnBlock[b.Index] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	for _, sp := range spawns {
		for _, s := range sp.b.Succs {
			mark(s)
		}
	}
	postSpawn := func(b *cfg.Block, i int) bool {
		if postSpawnBlock[b.Index] {
			return true
		}
		for _, sp := range spawns {
			if sp.b == b && i > sp.idx {
				return true
			}
		}
		return false
	}

	// Join points: a sync.WaitGroup.Wait node, or the done block of a
	// range over a channel (the drain completes when the loop exits).
	var waitJoins []point
	var doneBlocks []*cfg.Block
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if r, ok := n.(*ast.RangeStmt); ok {
				if tv, ok := jb.pass.Info.Types[r.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(b.Succs) == 2 {
						doneBlocks = append(doneBlocks, b.Succs[1])
					}
				}
				continue
			}
			if nodeHasWaitCall(jb.pass.Info, n) {
				waitJoins = append(waitJoins, point{b, i})
			}
		}
	}
	postJoin := func(b *cfg.Block, i int) bool {
		for _, j := range waitJoins {
			if dom.Dominates(j.b, b) && (b != j.b || i > j.idx) {
				return true
			}
		}
		for _, d := range doneBlocks {
			if dom.Dominates(d, b) {
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if !postSpawn(b, i) || postJoin(b, i) {
				continue
			}
			jb.checkNode(n)
		}
	}
}

// nodeHasWaitCall reports whether a node calls sync.WaitGroup.Wait outside
// any nested function literal.
func nodeHasWaitCall(info *types.Info, n ast.Node) bool {
	found := false
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
			found = true
		}
		return true
	})
	return found
}

// checkNode flags accesses to join-merged state in one mid-flight node.
// The walk stops at the outermost matching selector so one access yields
// one finding, and skips function literals (goroutine bodies are the
// workers' own side of the protocol).
func (jb *joinChecker) checkNode(n ast.Node) {
	root := n
	cfg.InspectNode(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != root {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		hit := false
		if tv, ok := jb.pass.Info.Types[sel]; ok && jb.isJoinMerged(tv.Type) {
			hit = true
		}
		if s, ok := jb.pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && jb.isJoinMerged(s.Recv()) {
			hit = true
		}
		if hit {
			jb.pass.Report(sel, "join-merged state %s touched between goroutine spawn and the join barrier; workers own it until Wait (or the channel drain) completes — move the access before the spawn or after the join", exprString(sel))
			return false
		}
		return true
	})
}

// exprString renders a small expression for a message.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
