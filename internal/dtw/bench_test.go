package dtw

import "testing"

func benchSeqs(n, m int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, m)
	for i := range a {
		a[i] = float64(i%23) * 0.5
	}
	for i := range b {
		b[i] = float64(i%17) * 0.7
	}
	return a, b
}

func BenchmarkDistance232x20(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, q)
	}
}

func BenchmarkDistanceWindow232x20w10(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceWindow(x, q, 10)
	}
}

func BenchmarkDistanceEarlyAbandonTight(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceEarlyAbandon(x, q, 1)
	}
}

func BenchmarkDistanceIntervals(b *testing.B) {
	x, q := benchSeqs(232, 20)
	ivs := make([]Interval, len(x))
	for i, v := range x {
		ivs[i] = Interval{Lo: v - 0.5, Hi: v + 0.5}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceIntervals(q, ivs)
	}
}

func BenchmarkTableAddRowValue(b *testing.B) {
	_, q := benchSeqs(1, 20)
	tab := NewTable(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.AddRowValue(float64(i % 13))
		if tab.Depth() >= 512 {
			tab.Truncate(0)
		}
	}
}

func BenchmarkTableAddRowInterval(b *testing.B) {
	_, q := benchSeqs(1, 20)
	tab := NewTable(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := float64(i % 13)
		tab.AddRowInterval(v-0.5, v+0.5)
		if tab.Depth() >= 512 {
			tab.Truncate(0)
		}
	}
}

func BenchmarkAlign64x64(b *testing.B) {
	x, q := benchSeqs(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Align(x, q)
	}
}
