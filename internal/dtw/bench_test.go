package dtw

import "testing"

func benchSeqs(n, m int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, m)
	for i := range a {
		a[i] = float64(i%23) * 0.5
	}
	for i := range b {
		b[i] = float64(i%17) * 0.7
	}
	return a, b
}

func BenchmarkDistance232x20(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, q)
	}
}

func BenchmarkDistanceWindow232x20w10(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceWindow(x, q, 10)
	}
}

func BenchmarkDistanceEarlyAbandonTight(b *testing.B) {
	x, q := benchSeqs(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceEarlyAbandon(x, q, 1)
	}
}

func BenchmarkDistanceIntervals(b *testing.B) {
	x, q := benchSeqs(232, 20)
	ivs := make([]Interval, len(x))
	for i, v := range x {
		ivs[i] = Interval{Lo: v - 0.5, Hi: v + 0.5}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceIntervals(q, ivs)
	}
}

func BenchmarkTableAddRowValue(b *testing.B) {
	_, q := benchSeqs(1, 20)
	tab := NewTable(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.AddRowValue(float64(i % 13))
		if tab.Depth() >= 512 {
			tab.Truncate(0)
		}
	}
}

func BenchmarkTableAddRowInterval(b *testing.B) {
	_, q := benchSeqs(1, 20)
	tab := NewTable(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := float64(i % 13)
		tab.AddRowInterval(v-0.5, v+0.5)
		if tab.Depth() >= 512 {
			tab.Truncate(0)
		}
	}
}

// The row kernels must not allocate once the table's row storage is warm:
// AddRow* runs millions of times per search, and a hidden allocation per row
// would dominate the traversal. Guarded as a test (benchmarks can report but
// not assert), same warm-storage shape as the benchmarks above.
func TestAddRowNoAllocs(t *testing.T) {
	_, q := benchSeqs(1, 20)
	for _, w := range []int{-1, 5} {
		tab := NewTableWindow(q, w)
		for i := 0; i < 512; i++ { // warm the row storage to full depth
			tab.AddRowValue(float64(i % 13))
		}
		tab.Truncate(0)
		i := 0
		if got := testing.AllocsPerRun(1000, func() {
			tab.AddRowValue(float64(i % 13))
			i++
			if tab.Depth() >= 512 {
				tab.Truncate(0)
			}
		}); got != 0 {
			t.Errorf("window=%d: AddRowValue allocates %.1f per row on a warm table, want 0", w, got)
		}
		tab.Truncate(0)
		if got := testing.AllocsPerRun(1000, func() {
			v := float64(i % 13)
			tab.AddRowInterval(v-0.5, v+0.5)
			i++
			if tab.Depth() >= 512 {
				tab.Truncate(0)
			}
		}); got != 0 {
			t.Errorf("window=%d: AddRowInterval allocates %.1f per row on a warm table, want 0", w, got)
		}
	}
}

func BenchmarkAlign64x64(b *testing.B) {
	x, q := benchSeqs(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Align(x, q)
	}
}
