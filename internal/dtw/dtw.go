// Package dtw implements the time warping distance of the paper
// (Definition 1/2): dynamic-time-warping with a city-block base distance,
// the cumulative distance table that can grow one row at a time, the
// Theorem-1 early-abandon test, lower-bound base distances against category
// intervals (Definition 3), and the optional Sakoe–Chiba warping-window
// constraint from the paper's conclusion.
package dtw

import "math"

// Inf is the positive infinity used for unreachable table cells.
var Inf = math.Inf(1)

// Base is the paper's D_base: the city-block distance between two elements.
func Base(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// BaseInterval is the paper's D_base-lb (Definition 3): the smallest possible
// city-block distance between the value a and any value inside [lo, hi].
// It is zero when a lies inside the interval.
func BaseInterval(a, lo, hi float64) float64 {
	switch {
	case a > hi:
		return a - hi
	case a < lo:
		return lo - a
	default:
		return 0
	}
}

// Distance returns the time warping distance D_tw(a, b) of Definition 1,
// computed with the O(|a|·|b|) dynamic program of Definition 2.
// It panics if either sequence is empty: D_tw is defined on non-null
// sequences only.
func Distance(a, b []float64) float64 {
	return distance(a, b, -1)
}

// DistanceWindow returns D_tw(a, b) restricted to a Sakoe–Chiba band of
// half-width w: element a[x] may only be matched to b[y] when |x-y| <= w.
// A window of 0 degenerates to the city-block distance of aligned prefixes;
// w >= max(|a|,|b|) is equivalent to the unconstrained distance. The result
// is Inf when the band is too narrow to connect the two corners, which can
// happen only when |len(a)-len(b)| > w.
func DistanceWindow(a, b []float64, w int) float64 {
	if w < 0 {
		//lint:ignore panicpath precondition assertion: a negative band is a construction-time bug, never data-dependent
		panic("dtw: negative warping window")
	}
	return distance(a, b, w)
}

// distance computes DTW with two rolling rows. w < 0 means unconstrained.
func distance(a, b []float64, w int) float64 {
	if len(a) == 0 || len(b) == 0 {
		//lint:ignore panicpath precondition assertion: the engine validates queries before the kernel; a silent zero distance would break exactness
		panic("dtw: distance of empty sequence")
	}
	// Rows indexed by a, columns by b.
	prev := make([]float64, len(b))
	curr := make([]float64, len(b))
	for x := 0; x < len(a); x++ {
		for y := 0; y < len(b); y++ {
			if w >= 0 && abs(x-y) > w {
				curr[y] = Inf
				continue
			}
			base := Base(a[x], b[y])
			switch {
			case x == 0 && y == 0:
				curr[y] = base
			case x == 0:
				curr[y] = base + curr[y-1]
			case y == 0:
				curr[y] = base + prev[y]
			default:
				curr[y] = base + min3(curr[y-1], prev[y], prev[y-1])
			}
		}
		prev, curr = curr, prev
	}
	return prev[len(b)-1]
}

// DistanceEarlyAbandon computes D_tw(a, b) but abandons as soon as Theorem 1
// applies: if every column of some row exceeds eps, no extension of the table
// can reach a distance <= eps, so the function returns (Inf, true).
// Otherwise it returns the exact distance and false.
func DistanceEarlyAbandon(a, b []float64, eps float64) (float64, bool) {
	if len(a) == 0 || len(b) == 0 {
		//lint:ignore panicpath precondition assertion: the engine validates queries before the kernel; a silent zero distance would break exactness
		panic("dtw: distance of empty sequence")
	}
	prev := make([]float64, len(b))
	curr := make([]float64, len(b))
	for x := 0; x < len(a); x++ {
		rowMin := Inf
		for y := 0; y < len(b); y++ {
			base := Base(a[x], b[y])
			switch {
			case x == 0 && y == 0:
				curr[y] = base
			case x == 0:
				curr[y] = base + curr[y-1]
			case y == 0:
				curr[y] = base + prev[y]
			default:
				curr[y] = base + min3(curr[y-1], prev[y], prev[y-1])
			}
			if curr[y] < rowMin {
				rowMin = curr[y]
			}
		}
		if rowMin > eps {
			return Inf, true
		}
		prev, curr = curr, prev
	}
	return prev[len(b)-1], false
}

// Interval is a closed range of element values. Category symbols map to
// intervals; a sequence of intervals stands for every numeric sequence whose
// elements fall inside them element-wise.
type Interval struct {
	Lo, Hi float64
}

// DistanceIntervals returns the lower-bound time warping distance
// D_tw-lb(a, ivs) of Definition 3: the same recurrence as D_tw but with the
// interval base distance. By Theorem 2 the result never exceeds D_tw(a, b)
// for any b whose elements lie inside ivs.
//
//twlint:bound-source results=0
func DistanceIntervals(a []float64, ivs []Interval) float64 {
	if len(a) == 0 || len(ivs) == 0 {
		//lint:ignore panicpath precondition assertion: an empty query or edge label cannot reach the lower-bound kernel; D_tw-lb of nothing is undefined
		panic("dtw: distance of empty sequence")
	}
	// Rows indexed by ivs, columns by a — matches the orientation the tree
	// search uses (query along columns).
	prev := make([]float64, len(a))
	curr := make([]float64, len(a))
	for x := 0; x < len(ivs); x++ {
		iv := ivs[x]
		for y := 0; y < len(a); y++ {
			base := BaseInterval(a[y], iv.Lo, iv.Hi)
			switch {
			case x == 0 && y == 0:
				curr[y] = base
			case x == 0:
				curr[y] = base + curr[y-1]
			case y == 0:
				curr[y] = base + prev[y]
			default:
				curr[y] = base + min3(curr[y-1], prev[y], prev[y-1])
			}
		}
		prev, curr = curr, prev
	}
	return prev[len(a)-1]
}

// MinMaxAnswerLength applies the conclusion-section observation: with a
// warping window of half-width w, any subsequence within the window-
// constrained distance of a query of length qLen has a length in
// [qLen-w, qLen+w]. It returns that closed range, clamping the minimum at 1.
func MinMaxAnswerLength(qLen, w int) (minLen, maxLen int) {
	minLen = qLen - w
	if minLen < 1 {
		minLen = 1
	}
	return minLen, qLen + w
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
