package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// refAddRow is the straightforward rendering of Definition 2 that the
// specialized AddRowValue/AddRowInterval kernels must reproduce bit for bit:
// one switch per cell, explicit window test, fused row minimum.
func refAddRow(q []float64, window int, rows [][]float64, base func(q float64) float64) (dist, minDist float64, out []float64) {
	n := len(q)
	x := len(rows)
	curr := make([]float64, n)
	minDist = Inf
	for y := 0; y < n; y++ {
		if window >= 0 && abs(x-y) > window {
			curr[y] = Inf
			continue
		}
		b := base(q[y])
		switch {
		case x == 0 && y == 0:
			curr[y] = b
		case x == 0:
			curr[y] = b + curr[y-1]
		case y == 0:
			curr[y] = b + rows[x-1][y]
		default:
			curr[y] = b + min3(curr[y-1], rows[x-1][y], rows[x-1][y-1])
		}
		if curr[y] < minDist {
			minDist = curr[y]
		}
	}
	return curr[n-1], minDist, curr
}

// The tightened kernel must agree with the reference recurrence bit for bit
// for every window width, including bands narrower than the query and rows
// past the end of the band.
func TestAddRowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 20} {
		for _, w := range []int{-1, 0, 1, 3, n, 5 * n} {
			q := make([]float64, n)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			tab := NewTableWindow(q, w)
			var refRows [][]float64
			for x := 0; x < 2*n+2*max(w, 1)+3; x++ {
				var d, m float64
				var base func(float64) float64
				if x%2 == 0 {
					v := rng.NormFloat64()
					d, m = tab.AddRowValue(v)
					base = func(qv float64) float64 { return Base(v, qv) }
				} else {
					lo := rng.NormFloat64()
					hi := lo + rng.Float64()
					d, m = tab.AddRowInterval(lo, hi)
					base = func(qv float64) float64 { return BaseInterval(qv, lo, hi) }
				}
				rd, rm, row := refAddRow(q, w, refRows, base)
				refRows = append(refRows, row)
				if math.Float64bits(d) != math.Float64bits(rd) || math.Float64bits(m) != math.Float64bits(rm) {
					t.Fatalf("n=%d w=%d row %d: kernel (%v, %v) != reference (%v, %v)", n, w, x, d, m, rd, rm)
				}
				for y := 0; y < n; y++ {
					if math.Float64bits(tab.Row(x)[y]) != math.Float64bits(row[y]) {
						t.Fatalf("n=%d w=%d cell (%d,%d): kernel %v != reference %v", n, w, x, y, tab.Row(x)[y], row[y])
					}
				}
			}
		}
	}
}

// A forked table must continue exactly like the table it was forked from:
// same rows in, same distances and row minima out, bit for bit.
func TestTableForkContinuesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{-1, 2} {
		q := []float64{1, 3, 2, 5, 4, 0.5}
		tab := NewTableWindow(q, w)
		vals := make([]float64, 12)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 3
		}
		for _, v := range vals[:5] {
			tab.AddRowValue(v)
		}
		fork := tab.Fork(3)
		if fork.Depth() != 3 {
			t.Fatalf("fork depth = %d, want 3", fork.Depth())
		}
		if fork.Cells() != 0 {
			t.Fatalf("fork cell counter = %d, want 0 (prefix cells are counted by the parent)", fork.Cells())
		}
		// Rewind the parent to the fork point; both must now evolve in
		// lockstep on the same suffix of rows.
		tab.Truncate(3)
		for _, v := range vals[5:] {
			d1, m1 := tab.AddRowValue(v)
			d2, m2 := fork.AddRowValue(v)
			if math.Float64bits(d1) != math.Float64bits(d2) || math.Float64bits(m1) != math.Float64bits(m2) {
				t.Fatalf("w=%d: fork diverged: (%v, %v) != (%v, %v)", w, d2, m2, d1, m1)
			}
		}
		// The fork owns its storage: popping it must not disturb the parent.
		parentLast := tab.LastColumn(tab.Depth() - 1)
		fork.Truncate(0)
		if got := tab.LastColumn(tab.Depth() - 1); math.Float64bits(got) != math.Float64bits(parentLast) {
			t.Fatalf("truncating the fork changed the parent: %v != %v", got, parentLast)
		}
	}
}

func TestTableForkBadDepthPanics(t *testing.T) {
	tab := NewTable([]float64{1, 2})
	tab.AddRowValue(1)
	for _, d := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Fork(%d) on depth-1 table did not panic", d)
				}
			}()
			tab.Fork(d)
		}()
	}
}

// CopyFrom must reproduce the source rows (continuations agree bit for bit)
// while reusing the receiver's storage and leaving its cell counter alone.
func TestTableCopyFrom(t *testing.T) {
	q := []float64{2, 1, 4, 3}
	src := NewTable(q)
	for _, v := range []float64{1, 5, 2} {
		src.AddRowValue(v)
	}
	prefix := src.Fork(src.Depth())

	dst := NewTable([]float64{9, 9}) // different query: Bind-style reuse
	dst.AddRowValue(1)               // leave a counted cell behind
	cellsBefore := dst.Cells()
	dst.CopyFrom(prefix)
	if dst.Depth() != 3 {
		t.Fatalf("depth after CopyFrom = %d, want 3", dst.Depth())
	}
	if dst.Cells() != cellsBefore {
		t.Fatalf("CopyFrom changed the cell counter: %d != %d", dst.Cells(), cellsBefore)
	}
	for _, v := range []float64{0.5, 7, 3} {
		d1, m1 := src.AddRowValue(v)
		d2, m2 := dst.AddRowValue(v)
		if math.Float64bits(d1) != math.Float64bits(d2) || math.Float64bits(m1) != math.Float64bits(m2) {
			t.Fatalf("copy diverged from source: (%v, %v) != (%v, %v)", d2, m2, d1, m1)
		}
	}
	if want := cellsBefore + 3*uint64(len(q)); dst.Cells() != want {
		t.Fatalf("cells after 3 rows = %d, want %d", dst.Cells(), want)
	}
}
