package dtw

// Table is the cumulative time warping distance table of Definition 2,
// grown one row at a time. The query sequence runs along the columns; each
// AddRow* call appends the row for one more element of the subsequence being
// matched (one symbol of a suffix-tree edge label), exactly like the paper's
// AddRow(T, Q, label, D) step in Filter-ST.
//
// Rows can also be popped, which is what lets one Table be shared by an
// entire depth-first traversal of a suffix tree: descend → AddRow,
// backtrack → Pop. Sharing the table across all suffixes with a common
// prefix is the paper's R_d reduction factor.
//
// A Table is not safe for concurrent use; searches that run in parallel use
// one Table each.
type Table struct {
	q      []float64
	window int       // Sakoe–Chiba half-width; <0 means unconstrained
	rows   []float64 // depth*len(q) cells, row-major
	depth  int
	cells  uint64 // number of DP cells computed since Reset
}

// NewTable returns a table for the given query with no warping-window
// constraint. It panics on an empty query.
func NewTable(q []float64) *Table {
	return NewTableWindow(q, -1)
}

// NewTableWindow returns a table whose rows apply a Sakoe–Chiba band of
// half-width w; pass w < 0 for no constraint.
func NewTableWindow(q []float64, w int) *Table {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("dtw: empty query")
	}
	return &Table{q: q, window: w}
}

// Bind re-targets the table at a new query and window, dropping all rows
// but keeping the row storage. Pooled query contexts use it so a reused
// table serves its next search without reallocating.
func (t *Table) Bind(q []float64, w int) {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("dtw: empty query")
	}
	t.q = q
	t.window = w
	t.Reset()
}

// Query returns the query sequence the table was built for.
func (t *Table) Query() []float64 { return t.q }

// Depth returns the number of rows currently in the table.
func (t *Table) Depth() int { return t.depth }

// Cells returns the number of DP cells computed since the last Reset — the
// machine-independent work counter used by the benchmark harness.
func (t *Table) Cells() uint64 { return t.cells }

// Reset drops all rows and zeroes the cell counter.
func (t *Table) Reset() {
	t.rows = t.rows[:0]
	t.depth = 0
	t.cells = 0
}

// Pop removes the most recently added row. It panics on an empty table.
func (t *Table) Pop() {
	if t.depth == 0 {
		//lint:ignore panicpath row-discipline assertion: an unmatched Pop means AddRow/Pop bookkeeping is already corrupt, so lower bounds can no longer be trusted
		panic("dtw: Pop on empty table")
	}
	t.depth--
	t.rows = t.rows[:t.depth*len(t.q)]
}

// Truncate pops rows until exactly depth rows remain.
func (t *Table) Truncate(depth int) {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: truncating past the stack means traversal bookkeeping is already corrupt
		panic("dtw: bad Truncate depth")
	}
	t.depth = depth
	t.rows = t.rows[:depth*len(t.q)]
}

// AddRowValue appends the row for a numeric element v using the exact base
// distance and returns the row's last column (the distance between the query
// and the subsequence accumulated so far, per Definition 2) and its minimum
// column (the Theorem-1 pruning value).
//
//twlint:bound-source results=1
func (t *Table) AddRowValue(v float64) (dist, minDist float64) {
	return t.addRow(func(q float64) float64 { return Base(v, q) })
}

// AddRowInterval appends the row for a category symbol whose observed value
// range is [lo, hi], using the lower-bound base distance D_base-lb of
// Definition 3.
//
//twlint:bound-source results=0,1
func (t *Table) AddRowInterval(lo, hi float64) (dist, minDist float64) {
	return t.addRow(func(q float64) float64 { return BaseInterval(q, lo, hi) })
}

func (t *Table) addRow(base func(q float64) float64) (dist, minDist float64) {
	n := len(t.q)
	x := t.depth // row index of the new row
	// Grow within capacity when possible: every cell of the new row is
	// written below (Inf for out-of-band columns), so stale bytes from a
	// previous binding are never observed.
	if need := (x + 1) * n; need <= cap(t.rows) {
		t.rows = t.rows[:need]
	} else {
		t.rows = append(t.rows, make([]float64, n)...)
	}
	curr := t.rows[x*n : (x+1)*n]
	var prev []float64
	if x > 0 {
		prev = t.rows[(x-1)*n : x*n]
	}
	minDist = Inf
	for y := 0; y < n; y++ {
		if t.window >= 0 && abs(x-y) > t.window {
			curr[y] = Inf
			continue
		}
		b := base(t.q[y])
		switch {
		case x == 0 && y == 0:
			curr[y] = b
		case x == 0:
			curr[y] = b + curr[y-1]
		case y == 0:
			curr[y] = b + prev[y]
		default:
			curr[y] = b + min3(curr[y-1], prev[y], prev[y-1])
		}
		if curr[y] < minDist {
			minDist = curr[y]
		}
	}
	t.cells += uint64(n)
	t.depth++
	return curr[n-1], minDist
}

// Row returns the cells of row r (0-based). The slice aliases the table's
// storage and is invalidated by the next AddRow*/Pop.
func (t *Table) Row(r int) []float64 {
	n := len(t.q)
	return t.rows[r*n : (r+1)*n]
}

// LastColumn returns the final column of row r: the cumulative distance
// between the full query and the first r+1 elements of the matched
// subsequence.
func (t *Table) LastColumn(r int) float64 {
	n := len(t.q)
	return t.rows[r*n+n-1]
}
