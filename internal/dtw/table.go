package dtw

// Table is the cumulative time warping distance table of Definition 2,
// grown one row at a time. The query sequence runs along the columns; each
// AddRow* call appends the row for one more element of the subsequence being
// matched (one symbol of a suffix-tree edge label), exactly like the paper's
// AddRow(T, Q, label, D) step in Filter-ST.
//
// Rows can also be popped, which is what lets one Table be shared by an
// entire depth-first traversal of a suffix tree: descend → AddRow,
// backtrack → Pop. Sharing the table across all suffixes with a common
// prefix is the paper's R_d reduction factor.
//
// A Table is not safe for concurrent use; searches that run in parallel use
// one Table each.
type Table struct {
	q      []float64
	window int       // Sakoe–Chiba half-width; <0 means unconstrained
	rows   []float64 // depth*len(q) cells, row-major
	depth  int
	cells  uint64 // number of DP cells computed since Reset
}

// NewTable returns a table for the given query with no warping-window
// constraint. It panics on an empty query.
func NewTable(q []float64) *Table {
	return NewTableWindow(q, -1)
}

// NewTableWindow returns a table whose rows apply a Sakoe–Chiba band of
// half-width w; pass w < 0 for no constraint.
func NewTableWindow(q []float64, w int) *Table {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("dtw: empty query")
	}
	return &Table{q: q, window: w}
}

// Bind re-targets the table at a new query and window, dropping all rows
// but keeping the row storage. Pooled query contexts use it so a reused
// table serves its next search without reallocating.
func (t *Table) Bind(q []float64, w int) {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("dtw: empty query")
	}
	t.q = q
	t.window = w
	t.Reset()
}

// Query returns the query sequence the table was built for.
func (t *Table) Query() []float64 { return t.q }

// Depth returns the number of rows currently in the table.
func (t *Table) Depth() int { return t.depth }

// Cells returns the number of DP cells computed since the last Reset — the
// machine-independent work counter used by the benchmark harness.
func (t *Table) Cells() uint64 { return t.cells }

// Reset drops all rows and zeroes the cell counter.
func (t *Table) Reset() {
	t.rows = t.rows[:0]
	t.depth = 0
	t.cells = 0
}

// Pop removes the most recently added row. It panics on an empty table.
//
//twlint:steady-state
func (t *Table) Pop() {
	if t.depth == 0 {
		//lint:ignore panicpath row-discipline assertion: an unmatched Pop means AddRow/Pop bookkeeping is already corrupt, so lower bounds can no longer be trusted
		panic("dtw: Pop on empty table")
	}
	t.depth--
	t.rows = t.rows[:t.depth*len(t.q)]
}

// Truncate pops rows until exactly depth rows remain.
//
//twlint:steady-state
func (t *Table) Truncate(depth int) {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: truncating past the stack means traversal bookkeeping is already corrupt
		panic("dtw: bad Truncate depth")
	}
	t.depth = depth
	t.rows = t.rows[:depth*len(t.q)]
}

// Fork returns a new table over the same query and window whose first depth
// rows are copies of t's — the paper's R_d prefix sharing cut at a parallel
// frontier: one traversal computes the shared prefix once, and each subtree
// task extends its own fork of it. The fork owns separate row storage and
// starts with a zero cell counter, so prefix cells are counted exactly once,
// by the table that computed them.
func (t *Table) Fork(depth int) *Table {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: forking past the stack means traversal bookkeeping is already corrupt
		panic("dtw: bad Fork depth")
	}
	n := len(t.q)
	f := &Table{q: t.q, window: t.window, depth: depth}
	f.rows = append(f.rows, t.rows[:depth*n]...)
	return f
}

// CopyFrom makes t a row-for-row copy of src — same query, window, and
// depth — reusing t's row storage when it is large enough. The cell counter
// is left untouched: copied rows were computed (and counted) elsewhere, so a
// worker table keeps accumulating only the cells it computes itself across
// the tasks it executes.
func (t *Table) CopyFrom(src *Table) {
	t.q = src.q
	t.window = src.window
	t.depth = src.depth
	need := src.depth * len(src.q)
	if cap(t.rows) >= need {
		t.rows = t.rows[:need]
	} else {
		t.rows = make([]float64, need)
	}
	copy(t.rows, src.rows)
}

// AddRowValue appends the row for a numeric element v using the exact base
// distance and returns the row's last column (the distance between the query
// and the subsequence accumulated so far, per Definition 2) and its minimum
// column (the Theorem-1 pruning value).
//
//twlint:bound-source results=1
//twlint:steady-state
func (t *Table) AddRowValue(v float64) (dist, minDist float64) {
	q := t.q
	n := len(q)
	x := t.depth // row index of the new row
	curr := t.growRow(n, x)
	bandLo, bandHi := t.bandFill(curr, n, x)
	minDist = Inf
	t.cells += uint64(n)
	t.depth++
	if bandLo >= bandHi {
		return curr[n-1], minDist
	}
	if x == 0 {
		// First row: bandLo is always 0, and each cell accumulates the
		// previous column (curr[y-1] chain fused into acc).
		acc := Base(v, q[0])
		curr[0] = acc
		minDist = acc
		for y := 1; y < bandHi; y++ {
			acc += Base(v, q[y])
			curr[y] = acc
			if acc < minDist {
				minDist = acc
			}
		}
		return curr[n-1], minDist
	}
	prev := t.rows[(x-1)*n : x*n : x*n]
	y := bandLo
	// left and diag carry curr[y-1] and prev[y-1] in registers, so the loop
	// body reads prev exactly once per cell. Out-of-band neighbours hold
	// Inf, so the three-way min is safe at band edges.
	left := Inf
	if y == 0 {
		c := Base(v, q[0]) + prev[0]
		curr[0] = c
		minDist = c
		left = c
		y = 1
	}
	if y < bandHi {
		diag := prev[y-1]
		// Equal-length reslices let the compiler drop the per-cell bounds
		// checks: y < len(qb) covers all three.
		qb, cb, pb := q[:bandHi], curr[:bandHi], prev[:bandHi]
		for ; y < len(qb); y++ {
			up := pb[y]
			c := Base(v, qb[y]) + min3(left, up, diag)
			cb[y] = c
			if c < minDist {
				minDist = c
			}
			left = c
			diag = up
		}
	}
	return curr[n-1], minDist
}

// AddRowInterval appends the row for a category symbol whose observed value
// range is [lo, hi], using the lower-bound base distance D_base-lb of
// Definition 3.
//
//twlint:bound-source results=0,1
//twlint:steady-state
func (t *Table) AddRowInterval(lo, hi float64) (dist, minDist float64) {
	q := t.q
	n := len(q)
	x := t.depth // row index of the new row
	curr := t.growRow(n, x)
	bandLo, bandHi := t.bandFill(curr, n, x)
	minDist = Inf
	t.cells += uint64(n)
	t.depth++
	if bandLo >= bandHi {
		return curr[n-1], minDist
	}
	if x == 0 {
		acc := BaseInterval(q[0], lo, hi)
		curr[0] = acc
		minDist = acc
		for y := 1; y < bandHi; y++ {
			acc += BaseInterval(q[y], lo, hi)
			curr[y] = acc
			if acc < minDist {
				minDist = acc
			}
		}
		return curr[n-1], minDist
	}
	prev := t.rows[(x-1)*n : x*n : x*n]
	y := bandLo
	left := Inf
	if y == 0 {
		c := BaseInterval(q[0], lo, hi) + prev[0]
		curr[0] = c
		minDist = c
		left = c
		y = 1
	}
	if y < bandHi {
		diag := prev[y-1]
		qb, cb, pb := q[:bandHi], curr[:bandHi], prev[:bandHi]
		for ; y < len(qb); y++ {
			up := pb[y]
			c := BaseInterval(qb[y], lo, hi) + min3(left, up, diag)
			cb[y] = c
			if c < minDist {
				minDist = c
			}
			left = c
			diag = up
		}
	}
	return curr[n-1], minDist
}

// LastRow returns a read-only view of the deepest row's cumulative costs
// (Inf in out-of-band columns) — the DP frontier a lookahead bound can
// splice per-column tail charges onto. It panics via slice bounds at depth
// 0; callers handle the no-rows-yet case themselves. The view is
// invalidated by the next AddRow/Truncate/Bind.
func (t *Table) LastRow() []float64 {
	n := len(t.q)
	return t.rows[(t.depth-1)*n : t.depth*n]
}

// growRow extends the row storage by one row of n cells and returns the new
// row as a full slice expression (appends beyond it can never reach older
// rows). Growing within capacity is safe even on a rebound table: every cell
// of the row is written by the caller (Inf for out-of-band columns), so
// stale bytes from a previous binding are never observed.
func (t *Table) growRow(n, x int) []float64 {
	if need := (x + 1) * n; need <= cap(t.rows) {
		t.rows = t.rows[:need]
	} else {
		t.rows = append(t.rows, make([]float64, n)...)
	}
	return t.rows[x*n : (x+1)*n : (x+1)*n]
}

// bandFill computes the Sakoe–Chiba band [bandLo, bandHi) of row x and
// writes Inf into every out-of-band cell of curr, so the recurrence loop can
// read neighbours unconditionally. Without a window the band is [0, n).
func (t *Table) bandFill(curr []float64, n, x int) (bandLo, bandHi int) {
	bandLo, bandHi = 0, n
	if t.window >= 0 {
		if bandLo = x - t.window; bandLo < 0 {
			bandLo = 0
		} else if bandLo > n {
			bandLo = n
		}
		if bandHi = x + t.window + 1; bandHi > n {
			bandHi = n
		}
	}
	for y := 0; y < bandLo; y++ {
		curr[y] = Inf
	}
	for y := bandHi; y < n; y++ {
		curr[y] = Inf
	}
	return bandLo, bandHi
}

// Row returns the cells of row r (0-based). The slice aliases the table's
// storage and is invalidated by the next AddRow*/Pop.
func (t *Table) Row(r int) []float64 {
	n := len(t.q)
	return t.rows[r*n : (r+1)*n]
}

// LastColumn returns the final column of row r: the cumulative distance
// between the full query and the first r+1 elements of the matched
// subsequence.
func (t *Table) LastColumn(r int) float64 {
	n := len(t.q)
	return t.rows[r*n+n-1]
}
