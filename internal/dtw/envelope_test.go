package dtw

import (
	"math/rand"
	"testing"
)

// naiveEnvelope computes L/U at position x by direct scan — the executable
// spec the deque-based slide is checked against.
func naiveEnvelope(q []float64, w, x int) (lo, hi float64) {
	a := x - w
	if a < 0 {
		a = 0
	}
	b := x + w
	if b > len(q)-1 {
		b = len(q) - 1
	}
	lo, hi = q[a], q[a]
	for _, v := range q[a+1 : b+1] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := float64(rng.Intn(20))
	for i := range s {
		v += float64(rng.Intn(7) - 3)
		s[i] = v
	}
	return s
}

func TestEnvelopeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 200; trial++ {
		q := randSeries(rng, 1+rng.Intn(30))
		w := rng.Intn(12)
		e := NewEnvelope(q, w)
		lo, hi := e.Bounds()
		if len(lo) != len(q)+w || len(hi) != len(q)+w {
			t.Fatalf("envelope length %d, want %d", len(lo), len(q)+w)
		}
		for x := 0; x < len(q)+w; x++ {
			wlo, whi := naiveEnvelope(q, w, x)
			if lo[x] != wlo || hi[x] != whi {
				t.Fatalf("|q|=%d w=%d x=%d: envelope [%v,%v], naive [%v,%v]",
					len(q), w, x, lo[x], hi[x], wlo, whi)
			}
			// At clamps past the last reachable position.
			alo, ahi := e.At(x + len(q) + w)
			if alo != lo[len(lo)-1] || ahi != hi[len(hi)-1] {
				t.Fatal("At did not clamp")
			}
		}
		// Suffix hulls are the running min/max of the tails.
		sufLo, sufHi := e.SuffixBounds()
		for x := range sufLo {
			wlo, whi := Inf, -Inf
			for y := x; y < len(lo); y++ {
				if lo[y] < wlo {
					wlo = lo[y]
				}
				if hi[y] > whi {
					whi = hi[y]
				}
			}
			if sufLo[x] != wlo || sufHi[x] != whi {
				t.Fatalf("suffix hull at %d: [%v,%v], want [%v,%v]", x, sufLo[x], sufHi[x], wlo, whi)
			}
		}
	}
}

func TestEnvelopeUnconstrained(t *testing.T) {
	e := NewEnvelope([]float64{3, 1, 4, 1, 5}, -1)
	lo, hi := e.Bounds()
	if len(lo) != 1 || len(hi) != 1 || lo[0] != 1 || hi[0] != 5 {
		t.Fatalf("unconstrained envelope = [%v,%v] (len %d)", lo, hi, len(lo))
	}
	if l, h := e.At(100); l != 1 || h != 5 {
		t.Fatal("constant envelope At wrong")
	}
	if l, h := e.SuffixAt(100); l != 1 || h != 5 {
		t.Fatal("constant envelope SuffixAt wrong")
	}
}

func TestGapInterval(t *testing.T) {
	cases := []struct {
		aLo, aHi, bLo, bHi, want float64
	}{
		{0, 1, 2, 3, 1}, // a below b
		{2, 3, 0, 1, 1}, // a above b
		{0, 2, 1, 3, 0}, // overlap
		{1, 1, 1, 1, 0}, // identical points
		{0, 5, 2, 3, 0}, // containment
		{-3, -1, 1, 2, 2},
	}
	for _, c := range cases {
		if got := GapInterval(c.aLo, c.aHi, c.bLo, c.bHi); got != c.want {
			t.Errorf("GapInterval(%v,%v,%v,%v) = %v, want %v", c.aLo, c.aHi, c.bLo, c.bHi, got, c.want)
		}
	}
}

// TestQuickLowerBoundChain pins the cascade's ordering property on equal
// lengths: LB_Keogh <= LB_Improved <= D_tw under the window the envelope was
// bound with, for both banded and unconstrained envelopes.
func TestQuickLowerBoundChain(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	scratch := &LBScratch{}
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(24)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		w := -1
		if rng.Intn(2) == 0 {
			w = rng.Intn(n + 2)
		}
		e := NewEnvelope(q, w)
		lbk := LBKeogh(c, e)
		lbi := LBImproved(c, e, scratch)
		var d float64
		if w < 0 {
			d = Distance(c, q)
		} else {
			d = DistanceWindow(c, q, w)
		}
		const slack = 1e-9 // float sums associate differently across kernels
		if lbk > lbi+slack {
			t.Fatalf("|q|=%d w=%d: LB_Keogh %v > LB_Improved %v", n, w, lbk, lbi)
		}
		if lbi > d+slack {
			t.Fatalf("|q|=%d w=%d: LB_Improved %v > D_tw %v", n, w, lbi, d)
		}
	}
}

// TestQuickLBKeoghUnequalLengths: LB_Keogh is still a lower bound when the
// candidate's length differs from the query's — the shape the engine's
// progressive traversal relies on (it sums gaps row by row).
func TestQuickLBKeoghUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 400; trial++ {
		q := randSeries(rng, 1+rng.Intn(20))
		c := randSeries(rng, 1+rng.Intn(28))
		w := -1
		if rng.Intn(2) == 0 {
			w = rng.Intn(len(q) + len(c))
		}
		e := NewEnvelope(q, w)
		lbk := LBKeogh(c, e)
		var d float64
		if w < 0 {
			d = Distance(c, q)
		} else {
			d = DistanceWindow(c, q, w)
		}
		if lbk > d+1e-9 {
			t.Fatalf("|q|=%d |c|=%d w=%d: LB_Keogh %v > D_tw %v", len(q), len(c), w, lbk, d)
		}
	}
}

func TestLBImprovedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LBImproved([]float64{1, 2}, NewEnvelope([]float64{1, 2, 3}, -1), nil)
}

func TestEnvelopePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEnvelope(nil, 3)
}

// TestEnvelopeBindNoAllocs: rebinding a pooled envelope and running both
// kernels is allocation-free after warmup — the steady-state contract the
// per-query context relies on.
func TestEnvelopeBindNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	q := randSeries(rng, 64)
	c := randSeries(rng, 64)
	e := NewEnvelope(q, 8)
	scratch := &LBScratch{}
	// Warm up every growth path.
	e.Bind(q, 8)
	LBKeogh(c, e)
	LBImproved(c, e, scratch)
	allocs := testing.AllocsPerRun(100, func() {
		e.Bind(q, 8)
		LBKeogh(c, e)
		LBImproved(c, e, scratch)
		e.Bind(q, -1)
		LBKeogh(c, e)
	})
	if allocs != 0 {
		t.Fatalf("steady-state envelope allocations: %v per run", allocs)
	}
}
