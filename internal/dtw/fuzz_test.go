package dtw

import (
	"math"
	"testing"
)

// bytesToSeq derives a bounded, finite float sequence from fuzz bytes.
func bytesToSeq(data []byte, max int) []float64 {
	if len(data) == 0 {
		return []float64{0}
	}
	if len(data) > max {
		data = data[:max]
	}
	out := make([]float64, len(data))
	for i, b := range data {
		out[i] = float64(int(b)-128) / 4
	}
	return out
}

// FuzzDistanceProperties checks the metric-adjacent invariants on arbitrary
// inputs: non-negativity, symmetry, identity, agreement between the
// rolling-array distance, the window-unbounded variant, and the
// incremental table.
func FuzzDistanceProperties(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0}, []byte{255})
	f.Add([]byte{10, 10, 10, 10}, []byte{10})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		x := bytesToSeq(a, 16)
		y := bytesToSeq(b, 16)
		d := Distance(x, y)
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("distance %v", d)
		}
		if sym := Distance(y, x); math.Abs(d-sym) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d, sym)
		}
		if self := Distance(x, x); self != 0 {
			t.Fatalf("self distance %v", self)
		}
		if w := DistanceWindow(x, y, len(x)+len(y)); math.Abs(d-w) > 1e-9 {
			t.Fatalf("wide window differs: %v vs %v", d, w)
		}
		tab := NewTable(y)
		var last float64
		for _, v := range x {
			last, _ = tab.AddRowValue(v)
		}
		if math.Abs(last-d) > 1e-9 {
			t.Fatalf("table %v != distance %v", last, d)
		}
		// Early abandon must never contradict the exact distance.
		eps := d / 2
		if got, abandoned := DistanceEarlyAbandon(x, y, eps); abandoned {
			if d <= eps {
				t.Fatalf("abandoned although distance %v <= eps %v", d, eps)
			}
		} else if math.Abs(got-d) > 1e-9 {
			t.Fatalf("early-abandon distance %v != %v", got, d)
		}
	})
}

// FuzzIntervalLowerBound checks Theorem 2's core inequality on arbitrary
// interval inflations.
func FuzzIntervalLowerBound(f *testing.F) {
	f.Add([]byte{5, 9, 2}, []byte{9, 5}, uint8(3))
	f.Fuzz(func(t *testing.T, a, b []byte, widen uint8) {
		x := bytesToSeq(a, 12)
		y := bytesToSeq(b, 12)
		w := float64(widen) / 16
		ivs := make([]Interval, len(x))
		for i, v := range x {
			ivs[i] = Interval{Lo: v - w, Hi: v + w}
		}
		lb := DistanceIntervals(y, ivs)
		if exact := Distance(x, y); lb > exact+1e-9 {
			t.Fatalf("lower bound %v exceeds exact %v", lb, exact)
		}
	})
}
