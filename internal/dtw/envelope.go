package dtw

// Sakoe–Chiba query envelopes and the Keogh/Lemire lower-bound kernels built
// on them — the O(1)-per-row prefilter tier that runs before any cumulative
// table row. For a query Q and band half-width w, the envelope at candidate
// position x is the hull of every query element a row at depth x may be
// matched to:
//
//	L[x] = min Q[max(0,x-w) .. min(n-1,x+w)]
//	U[x] = max Q[max(0,x-w) .. min(n-1,x+w)]
//
// Any warping path covers every candidate row exactly once, and a row at
// depth x can only align with query columns inside the band, so each row
// contributes at least its gap to the envelope: summing gaps lower-bounds
// D_tw (LB_Keogh). Without a window the envelope degenerates to the query's
// global [min, max] hull, which is also what makes the bound safe for the
// sparse tree's shifted suffixes (a constant envelope reads the same at
// every depth, so shifting rows never changes a gap).
//
// An Envelope is bound once per query and reused across the whole traversal;
// Bind reuses all storage, so a pooled query context pays zero steady-state
// allocations for it.

// Envelope is the per-position value hull of a query under a Sakoe–Chiba
// band (constant without one), plus the suffix hulls the subtree-pruning
// tier looks ahead with. It is not safe for concurrent use; parallel search
// workers bind one each.
type Envelope struct {
	q      []float64
	window int

	// lo/hi are the envelope per candidate position. With a window they
	// have length len(q)+window (positions beyond are unreachable under the
	// band); without one they are the single global hull entry. Readers
	// clamp their index — see At.
	lo, hi []float64
	// sufLo/sufHi are suffix hulls: sufLo[x] = min(lo[x:]), sufHi[x] =
	// max(hi[x:]) — the widest envelope any row at depth >= x can see.
	sufLo, sufHi []float64

	deq []int32 // sliding-window deque scratch, reused across Bind calls
}

// NewEnvelope returns an envelope of q under band half-width w (< 0 means
// unconstrained). It panics on an empty query, matching the table kernels.
func NewEnvelope(q []float64, w int) *Envelope {
	e := &Envelope{}
	e.Bind(q, w)
	return e
}

// Bind re-targets the envelope at a new query and window, reusing all
// storage. Pooled query contexts call it once per search.
func (e *Envelope) Bind(q []float64, w int) {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any envelope exists
		panic("dtw: empty query")
	}
	e.q = q
	e.window = w
	n := len(q)
	if w < 0 {
		// Unconstrained: one global hull entry serves every position.
		minQ, maxQ := q[0], q[0]
		for _, v := range q[1:] {
			if v < minQ {
				minQ = v
			}
			if v > maxQ {
				maxQ = v
			}
		}
		e.lo = append(e.lo[:0], minQ)
		e.hi = append(e.hi[:0], maxQ)
		e.sufLo = append(e.sufLo[:0], minQ)
		e.sufHi = append(e.sufHi[:0], maxQ)
		return
	}
	m := n + w // positions 0 .. n-1+w are reachable under the band
	e.lo = grow(e.lo, m)
	e.hi = grow(e.hi, m)
	e.slide(q, w, e.lo, true)
	e.slide(q, w, e.hi, false)
	e.sufLo = grow(e.sufLo, m)
	e.sufHi = grow(e.sufHi, m)
	e.sufLo[m-1], e.sufHi[m-1] = e.lo[m-1], e.hi[m-1]
	for x := m - 2; x >= 0; x-- {
		e.sufLo[x] = min(e.lo[x], e.sufLo[x+1])
		e.sufHi[x] = max(e.hi[x], e.sufHi[x+1])
	}
}

// slide fills out[x] with the min (or max) of q over the band around x using
// a monotonic index deque — O(n+w) total for all positions.
func (e *Envelope) slide(q []float64, w int, out []float64, wantMin bool) {
	n := len(q)
	e.deq = e.deq[:0]
	front := 0
	next := 0
	for x := range out {
		hiIdx := x + w
		if hiIdx > n-1 {
			hiIdx = n - 1
		}
		for ; next <= hiIdx; next++ {
			v := q[next]
			for len(e.deq) > front {
				b := q[e.deq[len(e.deq)-1]]
				if wantMin && b < v || !wantMin && b > v {
					break
				}
				e.deq = e.deq[:len(e.deq)-1]
			}
			e.deq = append(e.deq, int32(next))
		}
		loIdx := x - w
		for int(e.deq[front]) < loIdx {
			front++
		}
		out[x] = q[e.deq[front]]
	}
}

// grow returns s resized to n entries, reusing capacity.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// Window returns the band half-width the envelope was bound with (< 0 means
// unconstrained).
func (e *Envelope) Window() int { return e.window }

// Query returns the query the envelope was bound to.
func (e *Envelope) Query() []float64 { return e.q }

// At returns the envelope interval at candidate position x, clamping x past
// the last reachable position (rows out there are unreachable under the
// band, so any interval is a sound stand-in). The slices returned by Bounds
// are the unclamped storage for hot loops that do the clamp themselves.
func (e *Envelope) At(x int) (lo, hi float64) {
	if m := len(e.lo) - 1; x > m {
		x = m
	}
	return e.lo[x], e.hi[x]
}

// SuffixAt returns the hull of the envelope over every position >= x, with
// the same clamping as At.
func (e *Envelope) SuffixAt(x int) (lo, hi float64) {
	if m := len(e.sufLo) - 1; x > m {
		x = m
	}
	return e.sufLo[x], e.sufHi[x]
}

// Bounds returns the per-position envelope slices (length 1 when the
// envelope is constant). The slices alias the envelope's storage and are
// invalidated by the next Bind.
func (e *Envelope) Bounds() (lo, hi []float64) { return e.lo, e.hi }

// SuffixBounds returns the suffix-hull slices, aliasing like Bounds.
func (e *Envelope) SuffixBounds() (lo, hi []float64) { return e.sufLo, e.sufHi }

// GapInterval returns the smallest possible city-block distance between any
// value in [aLo, aHi] and any value in [bLo, bHi] — zero when the intervals
// overlap. With a for a candidate symbol's value interval and b for an
// envelope interval, it lower-bounds every base distance a table row over
// that symbol could produce, which is what lets the cascade prune without
// computing the row.
//
//twlint:bound-source results=0
func GapInterval(aLo, aHi, bLo, bHi float64) float64 {
	g := bLo - aHi
	if d := aLo - bHi; d > g {
		g = d
	}
	if g < 0 {
		return 0
	}
	return g
}

// LBKeogh returns the Keogh envelope lower bound of D_tw(c, Q) for the
// query the envelope was bound to: the sum over candidate positions of the
// gap between c[x] and the envelope at x. The loop is branch-light — one
// clamped index and two max folds per element, no per-element allocation or
// call. LB_Keogh(c, Env(Q,w)) <= DistanceWindow(c, Q, w) for every c (and
// <= Distance(c, Q) when unconstrained), so pruning via "> eps" keeps the
// no-false-dismissal contract.
//
//twlint:bound-source results=0
func LBKeogh(c []float64, e *Envelope) float64 {
	if len(c) == 0 {
		//lint:ignore panicpath precondition assertion: the engine validates candidates before the kernel; a silent zero bound would be claimed sound when it is vacuous
		panic("dtw: LBKeogh of empty sequence")
	}
	lo, hi := e.lo, e.hi
	m := len(lo) - 1
	var sum float64
	for x, v := range c {
		if x > m {
			x = m
		}
		below := lo[x] - v
		above := v - hi[x]
		g := 0.0
		if below > g {
			g = below
		}
		if above > g {
			g = above
		}
		sum += g
	}
	return sum
}

// LBScratch is the reusable buffer of LBImproved's second pass: the
// projection of the candidate onto the envelope and that projection's own
// envelope. A pooled scratch makes repeated LBImproved calls allocation-free
// after warmup.
type LBScratch struct {
	h   []float64
	env Envelope
}

// LBImproved returns Lemire's two-pass envelope bound: LB_Keogh(c, Env(Q))
// plus LB_Keogh(Q, Env(H)), where H is c clamped into Q's envelope. The
// second term re-spends exactly the distance the first term already charged,
// so LB_Keogh <= LB_Improved <= D_tw. Both series must have the same length
// (Lemire's setting); the engine's traversal never calls this — a
// progressive scan cannot use it because the second term is not monotone in
// the candidate's end — so it serves the one-shot kernels and benchmarks.
// scratch may be nil for one-shot use.
func LBImproved(c []float64, e *Envelope, scratch *LBScratch) float64 {
	if len(c) != len(e.q) {
		//lint:ignore panicpath precondition assertion: the two-pass bound is defined for equal lengths; a silent partial projection would overstate the bound and dismiss true answers
		panic("dtw: LBImproved length mismatch")
	}
	if scratch == nil {
		scratch = &LBScratch{}
	}
	lo, hi := e.lo, e.hi
	m := len(lo) - 1
	scratch.h = grow(scratch.h, len(c))
	var sum float64
	for x, v := range c {
		ix := x
		if ix > m {
			ix = m
		}
		h := v
		below := lo[ix] - v
		above := v - hi[ix]
		switch {
		case below > 0:
			sum += below
			h = lo[ix]
		case above > 0:
			sum += above
			h = hi[ix]
		}
		scratch.h[x] = h
	}
	scratch.env.Bind(scratch.h, e.window)
	return sum + LBKeogh(e.q, &scratch.env)
}
