package dtw

// Pair records that element a[X] was matched to element b[Y] by the optimal
// warping path.
type Pair struct {
	X, Y int
}

// Align computes the time warping distance between a and b together with the
// optimal warping path, traced backward through the full cumulative table by
// always stepping to the predecessor with the lowest cumulative distance
// (Figure 1(b) of the paper). The path is returned in forward order, starts
// at (0,0), ends at (len(a)-1, len(b)-1), and each step advances X, Y, or
// both by one.
func Align(a, b []float64) (float64, []Pair) {
	if len(a) == 0 || len(b) == 0 {
		//lint:ignore panicpath precondition assertion: the engine validates queries before the kernel; a silent zero-distance path would break exactness
		panic("dtw: align of empty sequence")
	}
	na, nb := len(a), len(b)
	cum := make([]float64, na*nb)
	at := func(x, y int) float64 { return cum[x*nb+y] }
	for x := 0; x < na; x++ {
		for y := 0; y < nb; y++ {
			base := Base(a[x], b[y])
			switch {
			case x == 0 && y == 0:
				cum[x*nb+y] = base
			case x == 0:
				cum[x*nb+y] = base + at(x, y-1)
			case y == 0:
				cum[x*nb+y] = base + at(x-1, y)
			default:
				cum[x*nb+y] = base + min3(at(x, y-1), at(x-1, y), at(x-1, y-1))
			}
		}
	}

	// Backtrace.
	path := make([]Pair, 0, na+nb)
	x, y := na-1, nb-1
	for {
		path = append(path, Pair{X: x, Y: y})
		if x == 0 && y == 0 {
			break
		}
		switch {
		case x == 0:
			y--
		case y == 0:
			x--
		default:
			diag, up, left := at(x-1, y-1), at(x-1, y), at(x, y-1)
			// Prefer the diagonal on ties: it yields the shortest path.
			if diag <= up && diag <= left {
				x, y = x-1, y-1
			} else if up <= left {
				x--
			} else {
				y--
			}
		}
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return at(na-1, nb-1), path
}
