package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDistance is Definition 1 verbatim, memoized — the executable spec the
// dynamic program is checked against.
func naiveDistance(a, b []float64) float64 {
	type key struct{ i, j int }
	memo := map[key]float64{}
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i >= len(a) || j >= len(b) {
			return Inf
		}
		if v, ok := memo[key{i, j}]; ok {
			return v
		}
		base := Base(a[i], b[j])
		var rest float64
		if i == len(a)-1 && j == len(b)-1 {
			rest = 0
		} else {
			rest = min3(rec(i, j+1), rec(i+1, j), rec(i+1, j+1))
		}
		memo[key{i, j}] = base + rest
		return base + rest
	}
	return rec(0, 0)
}

func TestBase(t *testing.T) {
	if Base(3, 5) != 2 || Base(5, 3) != 2 || Base(4, 4) != 0 {
		t.Fatal("Base wrong")
	}
}

func TestBaseInterval(t *testing.T) {
	cases := []struct {
		a, lo, hi, want float64
	}{
		{5, 1, 10, 0},
		{1, 1, 10, 0},
		{10, 1, 10, 0},
		{12, 1, 10, 2},
		{-3, 1, 10, 4},
		{5, 5, 5, 0},
		{4, 5, 5, 1},
	}
	for _, c := range cases {
		if got := BaseInterval(c.a, c.lo, c.hi); got != c.want {
			t.Errorf("BaseInterval(%v,%v,%v) = %v, want %v", c.a, c.lo, c.hi, got, c.want)
		}
	}
}

// TestPaperFigure1 reproduces the worked example of Figure 1:
// S3 = <3,4,3>, S4 = <4,5,6,7,6,6>.
func TestPaperFigure1(t *testing.T) {
	s3 := []float64{3, 4, 3}
	s4 := []float64{4, 5, 6, 7, 6, 6}
	if got := Distance(s3, s4); got != 12 {
		t.Errorf("D_tw(S3,S4) = %v, want 12", got)
	}
	// The paper reads D_tw(S3, S4[1:4]) = 8 off the last column of row 4.
	if got := Distance(s3, s4[:4]); got != 8 {
		t.Errorf("D_tw(S3,S4[1:4]) = %v, want 8", got)
	}
	// Same prefix distances via the incremental table: S4 on rows, S3 as query.
	tab := NewTable(s3)
	wantLast := []float64{2, 3, 5, 8, 10, 12}
	for r, v := range s4 {
		dist, _ := tab.AddRowValue(v)
		if dist != wantLast[r] {
			t.Errorf("row %d last column = %v, want %v", r+1, dist, wantLast[r])
		}
	}
}

// TestPaperIntroExample: S1 and S2 from the introduction are identical under
// time warping (S2 at half the sampling rate).
func TestPaperIntroExample(t *testing.T) {
	s1 := []float64{20, 20, 21, 21, 20, 20, 23, 23}
	s2 := []float64{20, 21, 20, 23}
	if got := Distance(s1, s2); got != 0 {
		t.Errorf("D_tw(S1,S2) = %v, want 0", got)
	}
}

// TestTheorem1Example: with eps = 3, Figure 1's table abandons after row 3.
func TestTheorem1Example(t *testing.T) {
	s3 := []float64{3, 4, 3}
	s4 := []float64{4, 5, 6, 7, 6, 6}
	tab := NewTable(s3)
	abandonRow := -1
	for r, v := range s4 {
		_, minDist := tab.AddRowValue(v)
		if minDist > 3 {
			abandonRow = r + 1
			break
		}
	}
	if abandonRow != 3 {
		t.Errorf("abandoned at row %d, want 3", abandonRow)
	}
	dist, abandoned := DistanceEarlyAbandon(s4, s3, 3)
	if !abandoned || !math.IsInf(dist, 1) {
		t.Errorf("DistanceEarlyAbandon = (%v, %v), want (Inf, true)", dist, abandoned)
	}
}

func TestDistanceSingletons(t *testing.T) {
	if got := Distance([]float64{5}, []float64{8}); got != 3 {
		t.Errorf("singleton distance = %v, want 3", got)
	}
	if got := Distance([]float64{5}, []float64{1, 2, 3}); got != 4+3+2 {
		t.Errorf("1xN distance = %v, want 9", got)
	}
}

func TestDistancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Distance(nil, []float64{1})
}

func randSeq(rng *rand.Rand, maxLen int) []float64 {
	n := 1 + rng.Intn(maxLen)
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Round(rng.NormFloat64()*100) / 10
	}
	return s
}

func TestDistanceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a, b := randSeq(rng, 8), randSeq(rng, 8)
		got, want := Distance(a, b), naiveDistance(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Distance(%v,%v) = %v, naive = %v", a, b, got, want)
		}
	}
}

func TestQuickSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		a, b := randSeq(rng, 20), randSeq(rng, 20)
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIdentityAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		a, b := randSeq(rng, 20), randSeq(rng, 20)
		return Distance(a, a) == 0 && Distance(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEarlyAbandonAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		a, b := randSeq(rng, 15), randSeq(rng, 15)
		eps := rng.Float64() * 30
		exact := Distance(a, b)
		got, abandoned := DistanceEarlyAbandon(a, b, eps)
		if abandoned {
			// Abandoning is only sound when the true distance exceeds eps.
			return exact > eps
		}
		return math.Abs(got-exact) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 1 property: the per-row minimum of the cumulative table is
// non-decreasing as rows are appended, so a row whose minimum exceeds eps
// certifies every deeper row does too.
func TestQuickTheorem1Monotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func() bool {
		q, s := randSeq(rng, 12), randSeq(rng, 20)
		tab := NewTable(q)
		prevMin := 0.0
		for _, v := range s {
			_, m := tab.AddRowValue(v)
			if m < prevMin-1e-12 {
				return false
			}
			prevMin = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Table rows must agree with the standalone Distance on every prefix.
func TestQuickTablePrefixDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		q, s := randSeq(rng, 10), randSeq(rng, 10)
		tab := NewTable(q)
		for r := 0; r < len(s); r++ {
			dist, _ := tab.AddRowValue(s[r])
			if math.Abs(dist-Distance(s[:r+1], q)) > 1e-9 {
				return false
			}
			if tab.LastColumn(r) != dist {
				return false
			}
		}
		return tab.Depth() == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Pop must restore the table exactly, so a DFS can reuse one table.
func TestTablePushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	q := randSeq(rng, 8)
	tab := NewTable(q)
	d1, m1 := tab.AddRowValue(1.5)
	tab.AddRowValue(2.5)
	tab.AddRowValue(-1)
	tab.Pop()
	tab.Pop()
	if tab.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", tab.Depth())
	}
	if tab.LastColumn(0) != d1 {
		t.Fatal("row 0 corrupted by Pop")
	}
	d2, m2 := tab.AddRowValue(1.5) // different branch, same value
	tab.Pop()
	tab.Pop()
	if tab.Depth() != 0 {
		t.Fatal("not empty after pops")
	}
	d1b, m1b := tab.AddRowValue(1.5)
	if d1b != d1 || m1b != m1 {
		t.Fatal("re-adding first row gives different result")
	}
	d2b, m2b := tab.AddRowValue(1.5)
	if d2b != d2 || m2b != m2 {
		t.Fatal("re-adding second row gives different result")
	}
}

func TestTableTruncateAndReset(t *testing.T) {
	tab := NewTable([]float64{1, 2})
	tab.AddRowValue(1)
	tab.AddRowValue(2)
	tab.AddRowValue(3)
	tab.Truncate(1)
	if tab.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", tab.Depth())
	}
	if tab.Cells() != 6 {
		t.Fatalf("cells = %d, want 6", tab.Cells())
	}
	tab.Reset()
	if tab.Depth() != 0 || tab.Cells() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Truncate to depth 0 empties the row stack like Reset (minus the cell
// counter) and leaves the table fully reusable: rebuilding must reproduce
// the original rows bit-for-bit.
func TestTableTruncateToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	q := randSeq(rng, 6)
	vals := randSeq(rng, 4)

	tab := NewTable(q)
	dists := make([]float64, len(vals))
	mins := make([]float64, len(vals))
	for i, v := range vals {
		dists[i], mins[i] = tab.AddRowValue(v)
	}
	cells := tab.Cells()

	tab.Truncate(0)
	if tab.Depth() != 0 {
		t.Fatalf("depth after Truncate(0) = %d, want 0", tab.Depth())
	}
	if tab.Cells() != cells {
		t.Fatalf("Truncate(0) changed the cell counter: %d != %d", tab.Cells(), cells)
	}
	for i, v := range vals {
		d, m := tab.AddRowValue(v)
		if d != dists[i] || m != mins[i] {
			t.Fatalf("row %d after Truncate(0): (%v, %v), want (%v, %v)", i, d, m, dists[i], mins[i])
		}
	}
}

// A degenerate interval row (lo == hi) is an exact row: its returned
// min-dist must equal the minimum, over all query prefixes, of the
// from-scratch Distance between the accumulated values and that prefix —
// the Theorem-1 pruning value computed independently.
func TestTablePointIntervalMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := func() bool {
		q := randSeq(rng, 7)
		vals := randSeq(rng, 5)
		tab := NewTable(q)
		for r := range vals {
			_, minDist := tab.AddRowInterval(vals[r], vals[r])
			want := Inf
			for j := 1; j <= len(q); j++ {
				if d := Distance(vals[:r+1], q[:j]); d < want {
					want = d
				}
			}
			if math.Abs(minDist-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTablePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTable([]float64{1}).Pop()
}

// Theorem 2 at the distance level: the interval lower bound never exceeds
// the exact distance for any sequence inside the intervals.
func TestQuickIntervalLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		q, s := randSeq(rng, 10), randSeq(rng, 10)
		ivs := make([]Interval, len(s))
		for i, v := range s {
			lo := v - rng.Float64()*3
			hi := v + rng.Float64()*3
			ivs[i] = Interval{Lo: lo, Hi: hi}
		}
		lb := DistanceIntervals(q, ivs)
		return lb <= Distance(s, q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Point intervals make the lower bound exact.
func TestQuickPointIntervalsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func() bool {
		q, s := randSeq(rng, 10), randSeq(rng, 10)
		ivs := make([]Interval, len(s))
		for i, v := range s {
			ivs[i] = Interval{Lo: v, Hi: v}
		}
		return math.Abs(DistanceIntervals(q, ivs)-Distance(s, q)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The table's interval rows must agree with DistanceIntervals on prefixes.
func TestQuickTableIntervalRows(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		q := randSeq(rng, 8)
		n := 1 + rng.Intn(8)
		ivs := make([]Interval, n)
		for i := range ivs {
			c := rng.NormFloat64() * 5
			ivs[i] = Interval{Lo: c - rng.Float64(), Hi: c + rng.Float64()}
		}
		tab := NewTable(q)
		for r, iv := range ivs {
			dist, _ := tab.AddRowInterval(iv.Lo, iv.Hi)
			if math.Abs(dist-DistanceIntervals(q, ivs[:r+1])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowWideEqualsUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		a, b := randSeq(rng, 12), randSeq(rng, 12)
		w := len(a) + len(b)
		if Distance(a, b) != DistanceWindow(a, b, w) {
			t.Fatalf("wide window differs: %v vs %v", Distance(a, b), DistanceWindow(a, b, w))
		}
	}
}

func TestWindowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		a, b := randSeq(rng, 10), randSeq(rng, 10)
		prev := Inf
		for w := 0; w <= len(a)+len(b); w++ {
			d := DistanceWindow(a, b, w)
			if d > prev+1e-9 {
				t.Fatalf("window %d increased distance: %v > %v", w, d, prev)
			}
			prev = d
		}
		if prev != Distance(a, b) {
			t.Fatalf("max window != unconstrained")
		}
	}
}

func TestWindowTooNarrow(t *testing.T) {
	// |len(a)-len(b)| = 3 > w = 1: the band cannot connect the corners.
	d := DistanceWindow([]float64{1, 1, 1, 1, 1}, []float64{1, 1}, 1)
	if !math.IsInf(d, 1) {
		t.Fatalf("narrow band distance = %v, want Inf", d)
	}
}

func TestWindowZeroIsLockstep(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 5}
	// w=0 forces the diagonal: |1-2|+|2-2|+|3-5| = 3.
	if got := DistanceWindow(a, b, 0); got != 3 {
		t.Fatalf("lockstep distance = %v, want 3", got)
	}
}

func TestWindowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DistanceWindow([]float64{1}, []float64{1}, -1)
}

func TestTableWindowMatchesDistanceWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		q, s := randSeq(rng, 8), randSeq(rng, 8)
		w := rng.Intn(6)
		tab := NewTableWindow(q, w)
		var last float64
		for _, v := range s {
			last, _ = tab.AddRowValue(v)
		}
		want := DistanceWindow(s, q, w)
		if last != want && !(math.IsInf(last, 1) && math.IsInf(want, 1)) {
			t.Fatalf("table window dist %v != %v (w=%d q=%v s=%v)", last, want, w, q, s)
		}
	}
}

func TestMinMaxAnswerLength(t *testing.T) {
	mn, mx := MinMaxAnswerLength(20, 5)
	if mn != 15 || mx != 25 {
		t.Fatalf("got (%d,%d), want (15,25)", mn, mx)
	}
	mn, mx = MinMaxAnswerLength(3, 10)
	if mn != 1 || mx != 13 {
		t.Fatalf("got (%d,%d), want (1,13)", mn, mx)
	}
}

func TestAlignMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 200; trial++ {
		a, b := randSeq(rng, 10), randSeq(rng, 10)
		d, path := Align(a, b)
		if math.Abs(d-Distance(a, b)) > 1e-9 {
			t.Fatalf("Align distance %v != %v", d, Distance(a, b))
		}
		// Path validity: starts at origin, ends at the far corner, each step
		// advances x, y, or both by one, and base distances along the path
		// sum to the distance.
		if path[0] != (Pair{0, 0}) {
			t.Fatalf("path starts at %v", path[0])
		}
		if path[len(path)-1] != (Pair{len(a) - 1, len(b) - 1}) {
			t.Fatalf("path ends at %v", path[len(path)-1])
		}
		sum := 0.0
		for i, p := range path {
			sum += Base(a[p.X], b[p.Y])
			if i > 0 {
				dx, dy := p.X-path[i-1].X, p.Y-path[i-1].Y
				if dx < 0 || dy < 0 || dx > 1 || dy > 1 || (dx == 0 && dy == 0) {
					t.Fatalf("invalid step %v -> %v", path[i-1], p)
				}
			}
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path base sum %v != distance %v", sum, d)
		}
	}
}

func TestAlignIntroExample(t *testing.T) {
	s1 := []float64{20, 20, 21, 21, 20, 20, 23, 23}
	s2 := []float64{20, 21, 20, 23}
	d, path := Align(s1, s2)
	if d != 0 {
		t.Fatalf("distance = %v, want 0", d)
	}
	// Every matched pair must be equal for a zero-distance alignment.
	for _, p := range path {
		if s1[p.X] != s2[p.Y] {
			t.Fatalf("pair %v matches unequal values", p)
		}
	}
}
