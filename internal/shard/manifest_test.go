package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestContiguous(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Range
	}{
		{10, 3, []Range{{0, 4}, {4, 3}, {7, 3}}},
		{6, 3, []Range{{0, 2}, {2, 2}, {4, 2}}},
		{5, 1, []Range{{0, 5}}},
		{3, 5, []Range{{0, 1}, {1, 1}, {2, 1}, {3, 0}, {3, 0}}},
		{0, 2, []Range{{0, 0}, {0, 0}}},
	}
	for _, tc := range cases {
		got, err := Contiguous(tc.n, tc.shards)
		if err != nil {
			t.Fatalf("Contiguous(%d, %d): %v", tc.n, tc.shards, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Contiguous(%d, %d) = %v, want %v", tc.n, tc.shards, got, tc.want)
		}
	}
	if _, err := Contiguous(5, 0); err == nil {
		t.Error("Contiguous(5, 0) should fail")
	}
	if _, err := Contiguous(-1, 2); err == nil {
		t.Error("Contiguous(-1, 2) should fail")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestName)
	m, err := NewContiguous(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip: got %+v, want %+v", got, m)
	}
	if got.Sequences() != 11 {
		t.Errorf("Sequences() = %d, want 11", got.Sequences())
	}
}

func TestManifestIgnoresCommentsAndUnknownKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestName)
	content := "# a comment\nshards=2\nassign=contiguous\nfuture-key=whatever\n\nrange=0:0:3\nrange=1:3:2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 2 || m.Sequences() != 5 {
		t.Errorf("got %+v, want 2 shards over 5 sequences", m)
	}
}

// TestManifestCorruption checks that every class of damage is a loud error:
// a silently misread manifest would misroute sequences and drop answers.
func TestManifestCorruption(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantSub string
	}{
		{"not key=value", "shards=2\nassign=contiguous\nbogus line\nrange=0:0:3\nrange=1:3:2\n", "not key=value"},
		{"bad shards value", "shards=two\nassign=contiguous\nrange=0:0:3\nrange=1:3:2\n", "bad shards value"},
		{"bad range arity", "shards=2\nassign=contiguous\nrange=0:0\nrange=1:3:2\n", "bad range"},
		{"bad range number", "shards=2\nassign=contiguous\nrange=0:zero:3\nrange=1:3:2\n", "bad range"},
		{"duplicate range", "shards=2\nassign=contiguous\nrange=0:0:3\nrange=0:3:2\n", "duplicate range"},
		{"missing shards", "assign=contiguous\nrange=0:0:3\n", "missing shards="},
		{"missing assign", "shards=1\nrange=0:0:3\n", "missing assign="},
		{"unknown assign", "shards=1\nassign=hashed\nrange=0:0:3\n", "unknown assignment"},
		{"shard id out of bounds", "shards=2\nassign=contiguous\nrange=0:0:3\nrange=5:3:2\n", "out of bounds"},
		{"missing range", "shards=2\nassign=contiguous\nrange=0:0:3\n", "2 shards but holds 1 ranges"},
		{"gap between ranges", "shards=2\nassign=contiguous\nrange=0:0:3\nrange=1:4:2\n", "must tile"},
		{"overlapping ranges", "shards=2\nassign=contiguous\nrange=0:0:3\nrange=1:2:2\n", "must tile"},
		{"negative count", "shards=2\nassign=contiguous\nrange=0:0:3\nrange=1:3:-1\n", "negative count"},
		{"nonpositive shards", "shards=0\nassign=contiguous\n", "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), ManifestName)
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadManifest(path)
			if err == nil {
				t.Fatalf("corrupt manifest accepted:\n%s", tc.content)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestManifestMissingFile(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing manifest should be an error")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	m := &Manifest{Shards: 2, Assign: AssignContiguous, Ranges: []Range{{0, 3}, {4, 2}}}
	if err := m.Write(filepath.Join(t.TempDir(), ManifestName)); err == nil {
		t.Error("Write accepted ranges with a gap")
	}
}
