// Package shard implements horizontal sharding for twsearch: one logical
// sequence database split across N self-contained index shards, searched by
// a scatter-gather coordinator that fans a query out shard-parallel and
// merges the result streams back into the global order.
//
// The design follows kmcp's partition-then-merge shape: every shard is a
// complete database (its own data file, suffix-tree indexes and buffer
// pools), so capacity grows by adding shards instead of by growing one
// tree, and each shard is searched through the existing, unmodified engine.
// Because the range search over each shard is complete for that shard's
// sequences and a subsequence lives in exactly one shard, the union of the
// per-shard answer sets is exactly the unsharded answer set — the paper's
// no-false-dismissal contract survives sharding untouched (Niennattrakul et
// al. use the same argument for partitioned DTW indexes).
//
// The partitioner is deterministic and contiguous: shard i holds a
// consecutive block of the global sequence numbering. That choice makes the
// merge trivial and exact — every match of shard i precedes every match of
// shard i+1 in the global (sequence, start, end) order, so a scatter-gather
// search delivers shard i's sorted matches as soon as shards 0..i have
// completed, while later shards are still running.
package shard

import "fmt"

// ManifestName is the file that marks a directory as a sharded database
// root and records the partitioning.
const ManifestName = "MANIFEST.shards"

// AssignContiguous names the contiguous block partitioner — the only
// assignment function so far; the manifest records it so a future
// hash-assigned layout cannot be silently misread as a contiguous one.
const AssignContiguous = "contiguous"

// Range is one shard's slice of the global sequence numbering: Count
// sequences starting at global sequence number Start.
type Range struct {
	Start int
	Count int
}

// End returns the exclusive upper bound of the range.
func (r Range) End() int { return r.Start + r.Count }

// Match is one answer as the coordinator sees it: identical to the public
// seqdb.Match shape, with Seq already mapped to the global sequence
// numbering.
type Match struct {
	SeqID    string
	Seq      int
	Start    int
	End      int
	Distance float64
}

// Options carries the per-search execution options that travel to every
// shard of a fanned-out query.
type Options struct {
	// Parallelism is the intra-query worker hint forwarded to each shard's
	// engine; the shards themselves always run concurrently with each other.
	Parallelism int
}

// Contiguous deterministically assigns n sequences to shards contiguous
// blocks: the first n%shards shards hold one extra sequence, so any two
// builds over the same inputs produce byte-identical shard contents.
func Contiguous(n, shards int) ([]Range, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", shards)
	}
	if n < 0 {
		return nil, fmt.Errorf("shard: negative sequence count %d", n)
	}
	base, rem := n/shards, n%shards
	out := make([]Range, shards)
	start := 0
	for i := range out {
		count := base
		if i < rem {
			count++
		}
		out[i] = Range{Start: start, Count: count}
		start += count
	}
	return out, nil
}
