package shard

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
)

// fakeBackend is one shard holding a fixed answer set with precomputed
// distances. Search returns the matches within eps in local (sequence,
// start, end) order, mimicking the engine's exact threshold search; err
// makes every call fail, exercising mid-stream shard loss while the other
// shards succeed.
type fakeBackend struct {
	ms  []Match // local sequence numbers, any order
	err error   // returned by every Search/Scan when set
}

func (b *fakeBackend) Search(ctx context.Context, index string, q []float64, eps float64, opts Options) ([]Match, Stats, error) {
	if b.err != nil {
		return nil, Stats{NodesVisited: 1}, b.err
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	var out []Match
	for _, m := range b.ms {
		if m.Distance <= eps {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i], out[j]) })
	return out, Stats{NodesVisited: 1, Answers: uint64(len(out))}, nil
}

func (b *fakeBackend) Scan(ctx context.Context, q []float64, eps float64) ([]Match, Stats, error) {
	return b.Search(ctx, "", q, eps, Options{})
}

func mkCoord(t *testing.T, backends ...*fakeBackend) *Coordinator {
	t.Helper()
	bs := make([]Backend, len(backends))
	ranges := make([]Range, len(backends))
	start := 0
	for i, b := range backends {
		bs[i] = b
		// Each fake covers enough of the numbering for its local Seq values.
		ranges[i] = Range{Start: start, Count: 10}
		start += 10
	}
	c, err := NewCoordinator(bs, ranges)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, nil); err == nil {
		t.Error("no backends should be an error")
	}
	if _, err := NewCoordinator([]Backend{&fakeBackend{}}, []Range{{0, 1}, {1, 1}}); err == nil {
		t.Error("backend/range count mismatch should be an error")
	}
}

func TestSearchMergesInGlobalOrder(t *testing.T) {
	// Shard 1 answers instantly, shard 0 slowly: the merged order must
	// still be shard 0 first because the contiguous numbering puts its
	// sequences first.
	b0 := &fakeBackend{ms: []Match{{SeqID: "a", Seq: 1, Start: 5, End: 9, Distance: 1}, {SeqID: "b", Seq: 2, Start: 0, End: 4, Distance: 2}}}
	b1 := &fakeBackend{ms: []Match{{SeqID: "c", Seq: 0, Start: 3, End: 8, Distance: 0.5}}}
	c := mkCoord(t, b0, b1)

	ms, stats, err := c.Search(context.Background(), "ix", []float64{1, 2}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{
		{SeqID: "a", Seq: 1, Start: 5, End: 9, Distance: 1},
		{SeqID: "b", Seq: 2, Start: 0, End: 4, Distance: 2},
		{SeqID: "c", Seq: 10, Start: 3, End: 8, Distance: 0.5}, // rebased by +10
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("got %v, want %v", ms, want)
	}
	if stats.NodesVisited != 2 {
		t.Errorf("stats merged %d node visits, want 2 (one per shard)", stats.NodesVisited)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not set to the scatter-gather wall clock")
	}
}

func TestSearchVisitEarlyStop(t *testing.T) {
	b0 := &fakeBackend{ms: []Match{{Seq: 0, Start: 0, End: 2, Distance: 1}, {Seq: 0, Start: 1, End: 3, Distance: 1}}}
	b1 := &fakeBackend{ms: []Match{{Seq: 0, Start: 4, End: 6, Distance: 1}}}
	c := mkCoord(t, b0, b1)

	seen := 0
	_, err := c.SearchVisit(context.Background(), "ix", []float64{1}, 5, func(Match) bool {
		seen++
		return false
	}, Options{})
	if err != nil {
		t.Fatalf("visitor stop must not surface an error, got %v", err)
	}
	if seen != 1 {
		t.Errorf("visitor ran %d times after stopping, want 1", seen)
	}
}

func TestSearchPartialFailure(t *testing.T) {
	cause := errors.New("disk gone")
	b0 := &fakeBackend{ms: []Match{{Seq: 0, Start: 0, End: 2, Distance: 1}}}
	b1 := &fakeBackend{err: cause}
	b2 := &fakeBackend{ms: []Match{{Seq: 0, Start: 4, End: 6, Distance: 1}}}
	c := mkCoord(t, b0, b1, b2)

	var streamed []Match
	_, err := c.SearchVisit(context.Background(), "ix", []float64{1}, 5, func(m Match) bool {
		streamed = append(streamed, m)
		return true
	}, Options{})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !reflect.DeepEqual(pe.Answered, []int{0, 2}) || !reflect.DeepEqual(pe.Failed, []int{1}) {
		t.Errorf("answered=%v failed=%v, want [0 2] and [1]", pe.Answered, pe.Failed)
	}
	if !errors.Is(err, cause) {
		t.Error("errors.Is must see through PartialError to the cause")
	}
	// Delivery is strictly in shard order, so the matches streamed before
	// the failure are exactly shard 0's — an exact prefix of the global
	// answer stream, never a gapped subset.
	if len(streamed) != 1 || streamed[0].Seq != 0 {
		t.Errorf("streamed %v, want exactly shard 0's match", streamed)
	}
}

func TestScanMerges(t *testing.T) {
	b0 := &fakeBackend{ms: []Match{{Seq: 3, Start: 0, End: 2, Distance: 1}}}
	b1 := &fakeBackend{ms: []Match{{Seq: 4, Start: 1, End: 3, Distance: 2}}}
	c := mkCoord(t, b0, b1)
	ms, _, err := c.Scan(context.Background(), []float64{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Seq != 3 || ms[1].Seq != 14 {
		t.Errorf("got %v, want seqs 3 and 14", ms)
	}
}

func TestSearchKNNAcrossShards(t *testing.T) {
	// 2 shards, k=3: the nearest three live on both sides, with a distance
	// tie that must resolve by global position.
	b0 := &fakeBackend{ms: []Match{
		{SeqID: "a", Seq: 0, Start: 0, End: 4, Distance: 1.0},
		{SeqID: "a", Seq: 0, Start: 2, End: 6, Distance: 7.0},
	}}
	b1 := &fakeBackend{ms: []Match{
		{SeqID: "b", Seq: 0, Start: 1, End: 5, Distance: 2.0},
		{SeqID: "b", Seq: 1, Start: 0, End: 3, Distance: 2.0},
		{SeqID: "b", Seq: 2, Start: 0, End: 3, Distance: 9.0},
	}}
	c := mkCoord(t, b0, b1)

	ms, stats, err := c.SearchKNN(context.Background(), "ix", []float64{1, 2, 30}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{
		{SeqID: "a", Seq: 0, Start: 0, End: 4, Distance: 1.0},
		{SeqID: "b", Seq: 10, Start: 1, End: 5, Distance: 2.0},
		{SeqID: "b", Seq: 11, Start: 0, End: 3, Distance: 2.0},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("got %v, want %v", ms, want)
	}
	if stats.Answers != 3 {
		t.Errorf("Answers = %d, want 3", stats.Answers)
	}
}

func TestSearchKNNTieEviction(t *testing.T) {
	// k=2 with three candidates at the same distance: the survivors must be
	// the two earliest in global position order, matching the unsharded
	// engine's stable selection.
	b0 := &fakeBackend{ms: []Match{{SeqID: "x", Seq: 5, Start: 0, End: 2, Distance: 3.0}}}
	b1 := &fakeBackend{ms: []Match{
		{SeqID: "y", Seq: 0, Start: 0, End: 2, Distance: 3.0},
		{SeqID: "y", Seq: 0, Start: 1, End: 3, Distance: 3.0},
	}}
	c := mkCoord(t, b0, b1)
	ms, _, err := c.SearchKNN(context.Background(), "ix", []float64{1, 50}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{
		{SeqID: "x", Seq: 5, Start: 0, End: 2, Distance: 3.0},
		{SeqID: "y", Seq: 10, Start: 0, End: 2, Distance: 3.0},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("got %v, want %v", ms, want)
	}
}

func TestSearchKNNPartialFailure(t *testing.T) {
	cause := errors.New("leg down")
	b0 := &fakeBackend{ms: []Match{{Seq: 0, Start: 0, End: 2, Distance: 1}}}
	b1 := &fakeBackend{err: cause}
	c := mkCoord(t, b0, b1)
	_, _, err := c.SearchKNN(context.Background(), "ix", []float64{1, 2}, 1, Options{})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !reflect.DeepEqual(pe.Failed, []int{1}) {
		t.Errorf("failed=%v, want [1]", pe.Failed)
	}
	if !errors.Is(err, cause) {
		t.Error("errors.Is must see through PartialError to the cause")
	}
}

func TestSearchKNNValidation(t *testing.T) {
	c := mkCoord(t, &fakeBackend{})
	if _, _, err := c.SearchKNN(context.Background(), "ix", []float64{1}, 0, Options{}); err == nil {
		t.Error("k=0 should be an error")
	}
	if _, _, err := c.SearchKNN(context.Background(), "ix", nil, 1, Options{}); err == nil {
		t.Error("empty query should be an error")
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := mkCoord(t, &fakeBackend{ms: []Match{{Seq: 0, Start: 0, End: 1, Distance: 0}}})
	_, _, err := c.Search(ctx, "ix", []float64{1}, 5, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled through the partial error, got %v", err)
	}
}
