package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"twsearch/internal/core"
)

// Stats re-exports the engine's per-search work counters: the coordinator
// merges one per shard, exactly once, at the join barrier.
type Stats = core.SearchStats

// Backend is one shard as the coordinator sees it: a complete database that
// answers range searches (and scans) over its own slice of the sequences.
// Matches come back in the shard's local (sequence, start, end) order with
// shard-local sequence numbers; the coordinator adds the shard's base
// offset. A *seqdb.DB, a remote twsearchd reached through seqdb/client, and
// a test fake all implement it.
type Backend interface {
	// Search runs a range search through the named index and returns the
	// complete local answer set sorted by (sequence, start, end).
	Search(ctx context.Context, index string, q []float64, eps float64, opts Options) ([]Match, Stats, error)
	// Scan runs the exhaustive sequential-scan baseline.
	Scan(ctx context.Context, q []float64, eps float64) ([]Match, Stats, error)
}

// PartialError reports a scatter-gather search in which one or more shards
// failed. Answered lists the shards that returned complete results (their
// matches may already have been streamed to the caller), Failed the shards
// that did not; Cause is the first failure in shard order. Unwrap exposes
// the cause, so errors.Is sees through to context.DeadlineExceeded, a
// wire error code, or whatever the shard reported.
type PartialError struct {
	Answered []int
	Failed   []int
	Cause    error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("shard: %d/%d shards answered (failed %v): %v",
		len(e.Answered), len(e.Answered)+len(e.Failed), e.Failed, e.Cause)
}

// Unwrap exposes the first underlying shard failure.
func (e *PartialError) Unwrap() error { return e.Cause }

// Coordinator fans one search out over every shard in parallel and merges
// the streams back in global order. It is stateless between calls and safe
// for concurrent use: per-search state lives on the stack of each call.
type Coordinator struct {
	backends []Backend
	bases    []int
}

// NewCoordinator assembles a coordinator from the shard backends and the
// manifest ranges that place each shard in the global sequence numbering.
func NewCoordinator(backends []Backend, ranges []Range) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	if len(backends) != len(ranges) {
		return nil, fmt.Errorf("shard: %d backends but %d manifest ranges", len(backends), len(ranges))
	}
	bases := make([]int, len(ranges))
	for i, r := range ranges {
		bases[i] = r.Start
	}
	return &Coordinator{backends: backends, bases: bases}, nil
}

// Shards returns the number of shards behind the coordinator.
func (c *Coordinator) Shards() int { return len(c.backends) }

// gather runs one scatter-gather round: `run` executes on every backend
// concurrently, and completed shards' matches (rebased to global sequence
// numbers) are delivered to fn strictly in shard order — which, with the
// contiguous partitioner, is the global (sequence, start, end) order.
// Delivery of shard i begins as soon as shards 0..i have completed, while
// later shards are still searching, so the head of a large answer stream
// reaches the caller before the slowest shard finishes.
//
// Work counters are aggregated exactly at the join barrier: each worker
// owns its private Stats slot (core.SearchStats is //twlint:join-merged
// state) and the driver sums the slots only after wg.Wait.
func (c *Coordinator) gather(
	ctx context.Context,
	run func(ctx context.Context, b Backend) ([]Match, Stats, error),
	fn func(Match) bool,
) (Stats, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(c.backends)
	matches := make([][]Match, n)
	errs := make([]error, n)
	stats := make([]Stats, n)
	done := make([]chan struct{}, n)
	started := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		done[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			ms, st, err := run(ctx, c.backends[i])
			if err != nil {
				errs[i] = err
				return
			}
			rebase(ms, c.bases[i])
			matches[i] = ms
			stats[i] = st
		}(i)
	}

	// Ordered incremental delivery: wait for each shard in shard order and
	// stream its (already sorted) matches. The close of done[i] orders the
	// worker's writes before the reads here. A visitor stop or a shard
	// failure cancels the remaining shards; delivery never resumes after
	// either, so the delivered stream is always an exact prefix of the
	// global order.
	stopped := false
	var firstErr error
	for i := 0; i < n && !stopped && firstErr == nil; i++ {
		<-done[i]
		if errs[i] != nil {
			firstErr = errs[i]
			cancel()
			break
		}
		for _, m := range matches[i] {
			if !fn(m) {
				stopped = true
				cancel()
				break
			}
		}
	}
	wg.Wait()

	var merged Stats
	for i := range stats {
		merged.Add(stats[i])
	}
	merged.Elapsed = time.Since(started)
	if firstErr == nil || stopped {
		return merged, nil
	}
	var answered, failed []int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			failed = append(failed, i)
		} else {
			answered = append(answered, i)
		}
	}
	return merged, &PartialError{Answered: answered, Failed: failed, Cause: firstErr}
}

// rebase maps a shard's local sequence numbers into the global numbering.
func rebase(ms []Match, base int) {
	for i := range ms {
		ms[i].Seq += base
	}
}

// SearchVisit streams a range search's answers to fn in global (sequence,
// start, end) order; returning false stops the search and cancels the
// remaining shards. The answer set — matches and exact distances — is
// identical to the unsharded search over the same data at any shard count.
func (c *Coordinator) SearchVisit(ctx context.Context, index string, q []float64, eps float64, fn func(Match) bool, opts Options) (Stats, error) {
	return c.gather(ctx, func(ctx context.Context, b Backend) ([]Match, Stats, error) {
		return b.Search(ctx, index, q, eps, opts)
	}, fn)
}

// Search materializes a range search's full answer set in global order.
func (c *Coordinator) Search(ctx context.Context, index string, q []float64, eps float64, opts Options) ([]Match, Stats, error) {
	var out []Match
	stats, err := c.SearchVisit(ctx, index, q, eps, func(m Match) bool {
		out = append(out, m)
		return true
	}, opts)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// Scan fans the exhaustive sequential-scan baseline out over the shards.
func (c *Coordinator) Scan(ctx context.Context, q []float64, eps float64) ([]Match, Stats, error) {
	var out []Match
	stats, err := c.gather(ctx, func(ctx context.Context, b Backend) ([]Match, Stats, error) {
		return b.Scan(ctx, q, eps)
	}, func(m Match) bool {
		out = append(out, m)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// knnMaxEps mirrors the engine's expansion ceiling: past any plausible
// distance, everything reachable has been found.
const knnMaxEps = 1e18

// initialKNNEps is the engine's starting threshold — one typical step of
// the query — reproduced here so the per-shard expansion schedule matches
// the unsharded one round for round.
func initialKNNEps(q []float64) float64 {
	eps := 0.0
	for i := 1; i < len(q); i++ {
		eps += math.Abs(q[i] - q[i-1])
	}
	return eps/float64(len(q)) + 1e-9
}

// SearchKNN returns the k globally nearest subsequences in (sequence,
// start, end) order — byte-identical to the unsharded SearchKNN. Every
// shard runs its own threshold-expansion rounds concurrently; completed
// shards feed a bounded merge heap of the k best candidates so far, and the
// heap's current kth-best distance caps the remaining shards' expansion: a
// shard may stop as soon as its threshold covers that bound, because any
// match it has not yet found is strictly farther than the bound and can
// never enter the global top k.
func (c *Coordinator) SearchKNN(ctx context.Context, index string, q []float64, k int, opts Options) ([]Match, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, errors.New("shard: k must be positive")
	}
	if len(q) == 0 {
		return nil, Stats{}, errors.New("shard: empty query")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(c.backends)
	h := newKNNHeap(k)
	errs := make([]error, n)
	stats := make([]Stats, n)
	started := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps := initialKNNEps(q)
			for {
				ms, st, err := c.backends[i].Search(ctx, index, q, eps, opts)
				stats[i].Add(st)
				if err != nil {
					errs[i] = err
					return
				}
				// The shard is exhausted for k-NN purposes when it holds k
				// local answers (its kth best already bounds everything it
				// has not found), when the shared bound says no unfound
				// match can enter the global top k, or when the threshold
				// has passed any plausible distance.
				if len(ms) >= k || eps > knnMaxEps {
					rebase(ms, c.bases[i])
					h.merge(ms)
					return
				}
				if bound, full := h.bound(); full && eps >= bound {
					rebase(ms, c.bases[i])
					h.merge(ms)
					return
				}
				eps *= 4
			}
		}(i)
	}
	wg.Wait()

	var merged Stats
	for i := range stats {
		merged.Add(stats[i])
	}
	merged.Elapsed = time.Since(started)
	var answered, failed []int
	var firstErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			failed = append(failed, i)
			if firstErr == nil {
				firstErr = errs[i]
			}
		} else {
			answered = append(answered, i)
		}
	}
	if firstErr != nil {
		return nil, merged, &PartialError{Answered: answered, Failed: failed, Cause: firstErr}
	}
	out := h.take()
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i], out[j]) })
	merged.Answers = uint64(len(out))
	return out, merged, nil
}

// positionLess orders matches by (sequence, start, end) — the engine's
// deterministic output order.
func positionLess(a, b Match) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.End < b.End
}

// knnWorse orders candidates by (distance, sequence, start, end): exactly
// the order a stable by-distance sort of the position-sorted unsharded
// answer set produces, so the heap's k survivors are byte-identical to the
// unsharded selection, ties and all.
func knnWorse(a, b Match) bool {
	if a.Distance > b.Distance {
		return true
	}
	if a.Distance < b.Distance {
		return false
	}
	return positionLess(b, a)
}

// knnHeap is the bounded merge heap of the k best candidates seen so far,
// shared by the shard workers under its own mutex. The root is the worst
// retained candidate, so a full heap admits a new candidate only by
// evicting the root, and the root's distance is the tightening bound.
type knnHeap struct {
	mu sync.Mutex
	k  int
	ms []Match
}

func newKNNHeap(k int) *knnHeap { return &knnHeap{k: k} }

// bound returns the current kth-best distance and whether the heap is full;
// the bound is only meaningful when full is true.
func (h *knnHeap) bound() (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ms) < h.k {
		return 0, false
	}
	return h.ms[0].Distance, true
}

// merge offers a shard's complete local answer set to the heap.
func (h *knnHeap) merge(ms []Match) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, m := range ms {
		h.add(m)
	}
}

// add inserts one candidate, evicting the worst when full. Caller holds mu.
func (h *knnHeap) add(m Match) {
	if len(h.ms) < h.k {
		h.ms = append(h.ms, m)
		h.up(len(h.ms) - 1)
		return
	}
	if !knnWorse(m, h.ms[0]) {
		h.ms[0] = m
		h.down(0)
	}
}

// take drains the heap; the heap is unusable afterwards.
func (h *knnHeap) take() []Match {
	h.mu.Lock()
	defer h.mu.Unlock()
	ms := h.ms
	h.ms = nil
	return ms
}

func (h *knnHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !knnWorse(h.ms[i], h.ms[parent]) {
			return
		}
		h.ms[i], h.ms[parent] = h.ms[parent], h.ms[i]
		i = parent
	}
}

func (h *knnHeap) down(i int) {
	for i < len(h.ms) {
		worst := i
		if l := 2*i + 1; l < len(h.ms) && knnWorse(h.ms[l], h.ms[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h.ms) && knnWorse(h.ms[r], h.ms[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.ms[i], h.ms[worst] = h.ms[worst], h.ms[i]
		i = worst
	}
}
