package shard

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Manifest describes a sharded database root: how many shards exist, which
// assignment function produced them, and which slice of the global sequence
// numbering each shard holds. It is persisted as a small line-based file
// (ManifestName) next to the shard directories:
//
//	shards=4
//	assign=contiguous
//	range=0:0:25
//	range=1:25:25
//	range=2:50:25
//	range=3:75:25
//
// Every range line is shard:start:count. Parsing is deliberately loud: a
// malformed value for a known key, a missing or duplicate range, or ranges
// that do not tile the sequence numbering are all errors — a silently
// misread manifest would route queries to the wrong shards and break the
// no-false-dismissal contract in the worst possible way, by dropping
// answers. Unknown keys are ignored for forward compatibility.
type Manifest struct {
	Shards int
	Assign string
	Ranges []Range
}

// NewContiguous builds the manifest of a fresh contiguous partitioning of n
// sequences over the given shard count.
func NewContiguous(n, shards int) (*Manifest, error) {
	ranges, err := Contiguous(n, shards)
	if err != nil {
		return nil, err
	}
	return &Manifest{Shards: shards, Assign: AssignContiguous, Ranges: ranges}, nil
}

// Sequences returns the total sequence count across all shards.
func (m *Manifest) Sequences() int {
	n := 0
	for _, r := range m.Ranges {
		n += r.Count
	}
	return n
}

// Validate checks the manifest's internal consistency. It is run by both
// Read and Write, so neither side can produce or accept a manifest that
// misroutes sequences.
func (m *Manifest) Validate() error {
	if m.Shards <= 0 {
		return fmt.Errorf("shard: manifest shard count %d must be positive", m.Shards)
	}
	if m.Assign != AssignContiguous {
		return fmt.Errorf("shard: manifest names unknown assignment function %q", m.Assign)
	}
	if len(m.Ranges) != m.Shards {
		return fmt.Errorf("shard: manifest declares %d shards but holds %d ranges", m.Shards, len(m.Ranges))
	}
	next := 0
	for i, r := range m.Ranges {
		if r.Count < 0 {
			return fmt.Errorf("shard: manifest range %d has negative count %d", i, r.Count)
		}
		if r.Start != next {
			return fmt.Errorf("shard: manifest range %d starts at %d, want %d (ranges must tile the sequence numbering)", i, r.Start, next)
		}
		next = r.End()
	}
	return nil
}

// Write persists the manifest to path, validating first.
func (m *Manifest) Write(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards=%d\n", m.Shards)
	fmt.Fprintf(&b, "assign=%s\n", m.Assign)
	for i, r := range m.Ranges {
		fmt.Fprintf(&b, "range=%d:%d:%d\n", i, r.Start, r.Count)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// ReadManifest parses and validates a manifest file. Any malformed field is
// an error, never a default.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	m := &Manifest{Shards: -1}
	sawAssign := false
	ranges := map[int]Range{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("shard: %s: line %q is not key=value", path, line)
		}
		v = strings.TrimSpace(v)
		switch k {
		case "shards":
			n, perr := strconv.Atoi(v)
			if perr != nil {
				return nil, fmt.Errorf("shard: %s: bad shards value %q", path, v)
			}
			m.Shards = n
		case "assign":
			m.Assign = v
			sawAssign = true
		case "range":
			parts := strings.Split(v, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("shard: %s: bad range %q, want shard:start:count", path, v)
			}
			var nums [3]int
			for i, p := range parts {
				n, perr := strconv.Atoi(strings.TrimSpace(p))
				if perr != nil {
					return nil, fmt.Errorf("shard: %s: bad range %q, want shard:start:count", path, v)
				}
				nums[i] = n
			}
			if _, dup := ranges[nums[0]]; dup {
				return nil, fmt.Errorf("shard: %s: duplicate range for shard %d", path, nums[0])
			}
			ranges[nums[0]] = Range{Start: nums[1], Count: nums[2]}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("shard: reading %s: %w", path, err)
	}
	if m.Shards < 0 {
		return nil, fmt.Errorf("shard: %s: missing shards= line", path)
	}
	if !sawAssign {
		return nil, fmt.Errorf("shard: %s: missing assign= line", path)
	}
	m.Ranges = make([]Range, len(ranges))
	for id, r := range ranges {
		if id < 0 || id >= len(ranges) {
			return nil, fmt.Errorf("shard: %s: range for shard %d out of bounds of %d ranges", path, id, len(ranges))
		}
		m.Ranges[id] = r
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return m, nil
}
