package multivar

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"twsearch/internal/categorize"
)

func mMatchesBitIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ref != b[i].Ref ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

// mExactStats strips Stats to the counters that are exact under parallelism
// (everything but wall clock — the multivariate engine has no pool fields).
func mExactStats(s Stats) [6]uint64 {
	return [6]uint64{s.NodesVisited, s.FilterCells, s.PostCells, s.Candidates, s.FalseAlarms, s.Answers}
}

// TestMultivarParallelDeterministic mirrors core's tentpole contract for the
// multivariate engine: every worker count returns matches, order, and exact
// stats byte-identical to the serial traversal, across dense/sparse and
// windowed index shapes.
func TestMultivarParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	dir := t.TempDir()
	variants := []struct {
		name string
		opts Options
	}{
		{"dense(ME,4)", Options{Kind: categorize.KindMaxEntropy, CatsPerDim: 4}},
		{"dense(ME,3,w3)", Options{Kind: categorize.KindMaxEntropy, CatsPerDim: 3, Window: 3}},
		{"sparse(ME,3)", Options{Kind: categorize.KindMaxEntropy, CatsPerDim: 3, Sparse: true}},
		{"sparse(EL,4,w4)", Options{Kind: categorize.KindEqualLength, CatsPerDim: 4, Sparse: true, Window: 4}},
	}
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}

	for vi, v := range variants {
		data := randomVecDataset(rng, 6, 30, 2)
		ix, err := Build(data, filepath.Join(dir, fmt.Sprintf("mix-%d.twt", vi)), v.opts)
		if err != nil {
			t.Fatalf("%s: Build: %v", v.name, err)
		}
		for qi := 0; qi < 3; qi++ {
			q := randomVecQuery(rng, 8, 2)
			eps := float64(rng.Intn(8)) + 0.5

			wantM, wantS, err := ix.Search(q, eps)
			if err != nil {
				t.Fatalf("%s: serial Search: %v", v.name, err)
			}
			var wantVisit []Match
			wantVS, err := ix.SearchVisit(q, eps, func(m Match) bool {
				wantVisit = append(wantVisit, m)
				return true
			})
			if err != nil {
				t.Fatalf("%s: serial SearchVisit: %v", v.name, err)
			}
			wantK, wantKS, err := ix.SearchKNN(q, 4)
			if err != nil {
				t.Fatalf("%s: serial SearchKNN: %v", v.name, err)
			}

			rng.Shuffle(len(workerCounts), func(i, j int) {
				workerCounts[i], workerCounts[j] = workerCounts[j], workerCounts[i]
			})
			for _, par := range workerCounts {
				opts := SearchOptions{Parallelism: par}

				gotM, gotS, err := ix.SearchOpts(q, eps, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchOpts: %v", v.name, par, err)
				}
				if !mMatchesBitIdentical(gotM, wantM) {
					t.Fatalf("%s par=%d q%d: Search diverged from serial: %d matches vs %d",
						v.name, par, qi, len(gotM), len(wantM))
				}
				if mExactStats(gotS) != mExactStats(wantS) {
					t.Fatalf("%s par=%d q%d: Search stats diverged: %v vs %v",
						v.name, par, qi, mExactStats(gotS), mExactStats(wantS))
				}

				var gotVisit []Match
				gotVS, err := ix.SearchVisitOpts(q, eps, func(m Match) bool {
					gotVisit = append(gotVisit, m)
					return true
				}, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchVisitOpts: %v", v.name, par, err)
				}
				if !mMatchesBitIdentical(gotVisit, wantVisit) {
					t.Fatalf("%s par=%d q%d: visitor delivery order diverged from serial (%d vs %d answers)",
						v.name, par, qi, len(gotVisit), len(wantVisit))
				}
				if mExactStats(gotVS) != mExactStats(wantVS) {
					t.Fatalf("%s par=%d q%d: SearchVisit stats diverged: %v vs %v",
						v.name, par, qi, mExactStats(gotVS), mExactStats(wantVS))
				}

				gotK, gotKS, err := ix.SearchKNNOpts(q, 4, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchKNNOpts: %v", v.name, par, err)
				}
				if !mMatchesBitIdentical(gotK, wantK) {
					t.Fatalf("%s par=%d q%d: KNN diverged from serial", v.name, par, qi)
				}
				if mExactStats(gotKS) != mExactStats(wantKS) {
					t.Fatalf("%s par=%d q%d: KNN stats diverged: %v vs %v",
						v.name, par, qi, mExactStats(gotKS), mExactStats(wantKS))
				}
			}
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultivarParallelVisitorEarlyStop: a stopping visitor halts the workers
// cleanly and the pre-stop deliveries are the serial prefix.
func TestMultivarParallelVisitorEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	data := randomVecDataset(rng, 6, 30, 2)
	ix, err := Build(data, filepath.Join(t.TempDir(), "mix.twt"),
		Options{Kind: categorize.KindMaxEntropy, CatsPerDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomVecQuery(rng, 6, 2)
	const eps = 14.5

	var all []Match
	if _, err := ix.SearchVisit(q, eps, func(m Match) bool {
		all = append(all, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Skipf("workload produced only %d answers; early-stop needs a few", len(all))
	}

	for _, par := range []int{2, 3} {
		stopAfter := len(all) / 2
		var got []Match
		_, err := ix.SearchVisitOpts(q, eps, func(m Match) bool {
			got = append(got, m)
			return len(got) < stopAfter
		}, SearchOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != stopAfter {
			t.Fatalf("par=%d: delivered %d answers after stop at %d", par, len(got), stopAfter)
		}
		if !mMatchesBitIdentical(got, all[:stopAfter]) {
			t.Fatalf("par=%d: pre-stop deliveries are not the serial prefix", par)
		}
	}
}

// TestMultivarTableFork: a fork continues row-for-row bit-identical to its
// parent, and CopyFrom rebuilds a worker's entry state without disturbing
// the cell counter.
func TestMultivarTableFork(t *testing.T) {
	rng := rand.New(rand.NewSource(439))
	dim := 3
	q := randomVecQuery(rng, 9, dim)
	mkPoint := func() []float64 {
		p := make([]float64, dim)
		for k := range p {
			p[k] = rng.Float64() * 10
		}
		return p
	}

	for _, w := range []int{-1, 2} {
		parent := NewTableWindow(q, w)
		for i := 0; i < 3; i++ {
			parent.AddRowPoint(mkPoint())
		}
		fork := parent.Fork(parent.Depth())
		if fork.Cells() != 0 {
			t.Fatalf("w=%d: fork starts with %d cells, want 0", w, fork.Cells())
		}

		worker := NewTableWindow(q, w)
		worker.AddRowPoint(mkPoint()) // dirty the worker before CopyFrom
		preCells := worker.Cells()
		worker.CopyFrom(fork)
		if worker.Cells() != preCells {
			t.Fatalf("w=%d: CopyFrom changed the cell counter", w)
		}

		// Parent and worker must now extend identically.
		for i := 0; i < 4; i++ {
			p := mkPoint()
			pd, pm := parent.AddRowPoint(p)
			wd, wm := worker.AddRowPoint(p)
			if math.Float64bits(pd) != math.Float64bits(wd) ||
				math.Float64bits(pm) != math.Float64bits(wm) {
				t.Fatalf("w=%d row %d: fork continuation diverged: (%v,%v) vs (%v,%v)",
					w, i, pd, pm, wd, wm)
			}
			pr, wr := parent.Row(parent.Depth()-1), worker.Row(worker.Depth()-1)
			for y := range pr {
				if math.Float64bits(pr[y]) != math.Float64bits(wr[y]) {
					t.Fatalf("w=%d row %d col %d: cell diverged", w, i, y)
				}
			}
		}
	}
}
