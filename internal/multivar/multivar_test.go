package multivar

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
)

func randomVecDataset(rng *rand.Rand, nSeq, maxLen, dim int) *Dataset {
	d := NewDataset(dim)
	for i := 0; i < nSeq; i++ {
		n := 2 + rng.Intn(maxLen-1)
		points := make([][]float64, n)
		v := make([]float64, dim)
		for k := range v {
			v[k] = float64(rng.Intn(10))
		}
		for j := range points {
			p := make([]float64, dim)
			for k := range p {
				v[k] += float64(rng.Intn(3) - 1)
				p[k] = v[k]
			}
			points[j] = p
		}
		d.MustAdd(Sequence{ID: fmt.Sprintf("m%d", i), Points: points})
	}
	return d
}

func randomVecQuery(rng *rand.Rand, maxLen, dim int) [][]float64 {
	n := 1 + rng.Intn(maxLen)
	q := make([][]float64, n)
	v := make([]float64, dim)
	for k := range v {
		v[k] = float64(rng.Intn(10))
	}
	for j := range q {
		p := make([]float64, dim)
		for k := range p {
			v[k] += float64(rng.Intn(3) - 1)
			p[k] = v[k]
		}
		q[j] = p
	}
	return q
}

func TestBaseAndBox(t *testing.T) {
	if Base([]float64{1, 2}, []float64{3, 0}) != 4 {
		t.Fatal("Base wrong")
	}
	box := Box{Lo: []float64{0, 10}, Hi: []float64{5, 20}}
	if got := BaseBox([]float64{3, 15}, box); got != 0 {
		t.Fatalf("inside box = %v", got)
	}
	if got := BaseBox([]float64{7, 25}, box); got != 2+5 {
		t.Fatalf("outside box = %v, want 7", got)
	}
}

func TestDistanceReducesToUnivariate(t *testing.T) {
	// dim=1 must agree with dtw.Distance semantics; spot check Figure 1.
	a := [][]float64{{3}, {4}, {3}}
	b := [][]float64{{4}, {5}, {6}, {7}, {6}, {6}}
	if got := Distance(a, b); got != 12 {
		t.Fatalf("Distance = %v, want 12", got)
	}
}

func TestDatasetValidation(t *testing.T) {
	d := NewDataset(2)
	if _, err := d.Add(Sequence{ID: "", Points: [][]float64{{1, 2}}}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := d.Add(Sequence{ID: "a", Points: nil}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := d.Add(Sequence{ID: "a", Points: [][]float64{{1}}}); err == nil {
		t.Error("wrong dim accepted")
	}
	if _, err := d.Add(Sequence{ID: "a", Points: [][]float64{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(Sequence{ID: "a", Points: [][]float64{{3, 4}}}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestFitGridBoxesContainPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	data := randomVecDataset(rng, 5, 30, 3)
	grid, err := FitGrid(data, categorize.KindMaxEntropy, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumCells() == 0 {
		t.Fatal("no cells")
	}
	for i := 0; i < data.Len(); i++ {
		syms, err := grid.Encode(data.Points(i))
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range data.Points(i) {
			box := grid.Box(syms[j])
			for k := range p {
				if p[k] < box.Lo[k] || p[k] > box.Hi[k] {
					t.Fatalf("point %v outside its cell box %+v", p, box)
				}
			}
			// Lower bound of the point against its own box must be zero.
			if BaseBox(p, box) != 0 {
				t.Fatalf("BaseBox of member point = %v", BaseBox(p, box))
			}
		}
	}
}

func TestEncodeUnseenCellFails(t *testing.T) {
	// Only the diagonal cells (low,low) and (high,high) are observed; the
	// off-diagonal combination (low,high) has no cell symbol.
	d := NewDataset(2)
	d.MustAdd(Sequence{ID: "a", Points: [][]float64{{1, 1}, {10, 10}}})
	grid, err := FitGrid(d, categorize.KindEqualLength, 2)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumCells() != 2 {
		t.Fatalf("cells = %d, want 2", grid.NumCells())
	}
	if _, err := grid.Encode([][]float64{{1, 10}}); err == nil {
		t.Error("point in unseen cell encoded")
	}
}

// Multivariate no-false-dismissal: index search equals sequential scan.
func TestMultivarNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	dir := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		dim := 1 + rng.Intn(3)
		data := randomVecDataset(rng, 2+rng.Intn(3), 20, dim)
		q := randomVecQuery(rng, 6, dim)
		eps := float64(rng.Intn(10)) + 0.5
		for _, sparse := range []bool{false, true} {
			path := filepath.Join(dir, fmt.Sprintf("mix-%d-%v.twt", trial, sparse))
			ix, err := Build(data, path, Options{
				Kind:       categorize.KindMaxEntropy,
				CatsPerDim: 1 + rng.Intn(4),
				Sparse:     sparse,
			})
			if err != nil {
				t.Fatalf("trial %d: Build: %v", trial, err)
			}
			want, _, err := SeqScan(data, q, eps, -1)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := ix.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			ix.Close()
			if len(got) != len(want) {
				t.Fatalf("trial %d sparse=%v eps=%v: index %d matches, scan %d",
					trial, sparse, eps, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref != want[i].Ref || math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
					t.Fatalf("trial %d sparse=%v: match %d differs: %+v vs %+v",
						trial, sparse, i, got[i], want[i])
				}
			}
			if stats.Candidates == 0 && stats.Answers > 0 {
				t.Error("answers found without any candidates")
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	data := randomVecDataset(rng, 2, 10, 2)
	ix, err := Build(data, filepath.Join(t.TempDir(), "v.twt"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, _, err := ix.Search(nil, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, _, err := ix.Search([][]float64{{1}}, 1); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, _, err := ix.Search([][]float64{{1, 2}}, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestTableMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(3)
		q := randomVecQuery(rng, 6, dim)
		s := randomVecQuery(rng, 6, dim)
		tab := NewTable(q)
		var last float64
		for _, p := range s {
			last, _ = tab.AddRowPoint(p)
		}
		if want := Distance(s, q); math.Abs(last-want) > 1e-9 {
			t.Fatalf("table %v != distance %v", last, want)
		}
	}
}
