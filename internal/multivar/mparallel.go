package multivar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"twsearch/internal/disktree"
	"twsearch/internal/suffixtree"
)

// SearchOptions tunes how a single multivariate search executes; the zero
// value is the serial traversal. See core.SearchOptions — the semantics are
// identical: results are byte-identical to serial at every worker count.
type SearchOptions struct {
	// Parallelism is the maximum number of worker goroutines; <= 1 means
	// serial. The engine takes the value as given.
	Parallelism int
}

// SearchOpts is Search with execution options.
func (ix *Index) SearchOpts(q [][]float64, eps float64, opts SearchOptions) ([]Match, Stats, error) {
	if opts.Parallelism <= 1 {
		return ix.search(q, eps, nil)
	}
	return ix.searchParallel(q, eps, nil, opts.Parallelism)
}

// SearchVisitOpts is SearchVisit with execution options. fn is always
// called from the calling goroutine, in the serial delivery order.
func (ix *Index) SearchVisitOpts(q [][]float64, eps float64, fn func(Match) bool, opts SearchOptions) (Stats, error) {
	if fn == nil {
		return Stats{}, errors.New("multivar: nil visitor")
	}
	if opts.Parallelism <= 1 {
		_, stats, err := ix.search(q, eps, fn)
		return stats, err
	}
	_, stats, err := ix.searchParallel(q, eps, fn, opts.Parallelism)
	return stats, err
}

// SearchKNNOpts is SearchKNN with execution options: each threshold-
// expansion round runs as one (possibly parallel) range search.
func (ix *Index) SearchKNNOpts(q [][]float64, k int, opts SearchOptions) ([]Match, Stats, error) {
	return ix.searchKNN(q, k, opts)
}

// mparTask mirrors core.parTask for the multivariate engine: one frontier
// subtree plus the forked prefix rows and path state a worker needs to
// resume the serial DFS there. Index order is DFS rank.
type mparTask struct {
	ptr    disktree.Ptr
	prefix *Table // read-only once published; workers CopyFrom it

	runBroken bool
	firstRun  int
	firstSym  suffixtree.Symbol
	base0     float64

	// envSum/envBase0 resume the envelope row tier at the fork depth; see
	// core.parTask.
	envSum   float64
	envBase0 float64

	frontierMark int
}

type mparResult struct {
	matches []Match
	err     error
}

// searchParallel mirrors core.Index.searchParallel — frontier expansion,
// work-stealing workers over forked tables, ordered merge, single exact
// pass over the merged candidate shards — without the context plumbing
// (the multivariate engine has no cancellation path).
func (ix *Index) searchParallel(q [][]float64, eps float64, visit func(Match) bool, par int) ([]Match, Stats, error) {
	if len(q) == 0 {
		return nil, Stats{}, errors.New("multivar: empty query")
	}
	for i, p := range q {
		if len(p) != ix.Data.Dim() {
			return nil, Stats{}, fmt.Errorf("multivar: query point %d has %d dims, want %d", i, len(p), ix.Data.Dim())
		}
	}
	if eps < 0 {
		return nil, Stats{}, errors.New("multivar: negative distance threshold")
	}
	started := time.Now()
	s := ix.queries.acquire(ix, q, eps, nil)
	defer ix.queries.release(s)

	root := s.node(0)
	if err := ix.Tree.ReadNodeInto(ix.Tree.Root(), root); err != nil {
		return nil, Stats{}, err
	}
	s.stats.NodesVisited++

	// Frontier expansion; same placement rule as core (a root fanout that
	// dwarfs the worker count splits at depth 1, otherwise at depth 2).
	if len(root.Children) >= 4*par {
		prefix := s.table.Fork(0)
		for i := range root.Children {
			s.tasks = append(s.tasks, mparTask{ptr: root.Children[i].Ptr, prefix: prefix})
		}
	} else {
		s.spawnLevel = 1
		for i := range root.Children {
			if s.stopped {
				break
			}
			if err := s.processEdge(root.Children[i].Ptr, 1, false, 0); err != nil {
				return nil, Stats{}, err
			}
		}
		s.spawnLevel = 0
	}
	tasks := s.tasks

	var stop atomic.Bool
	var cursor atomic.Int64
	results := make([]mparResult, len(tasks))
	nw := par
	if nw > len(tasks) {
		nw = len(tasks)
	}
	workers := make([]*msearcher, nw)
	for i := range workers {
		w := ix.queries.acquire(ix, q, eps, nil)
		w.extStop = &stop
		w.readAhead = true
		workers[i] = w
	}
	done := make(chan int, len(tasks))
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		w := workers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				k := int(cursor.Add(1)) - 1
				if k >= len(tasks) {
					return
				}
				t := &tasks[k]
				w.table.CopyFrom(t.prefix)
				w.firstSym = t.firstSym
				w.base0 = t.base0
				w.envBase0 = t.envBase0
				w.setEnvSum(w.table.Depth(), t.envSum)
				from := len(w.matches)
				err := w.processEdge(t.ptr, 1, t.runBroken, t.firstRun)
				results[k] = mparResult{
					matches: w.matches[from:len(w.matches):len(w.matches)],
					err:     err,
				}
				done <- k
				if err != nil || w.stopped {
					stop.Store(true)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Stitched delivery in DFS-rank order while workers run.
	var out []Match
	visitorStopped := false
	deliver := func(ms []Match) {
		if visitorStopped {
			return
		}
		for i := range ms {
			if visit == nil {
				out = append(out, ms[i])
				continue
			}
			if !visit(ms[i]) {
				visitorStopped = true
				stop.Store(true)
				return
			}
		}
	}
	frontier := s.matches
	completed := make([]bool, len(tasks))
	nextRank, frontDelivered := 0, 0
	for k := range done { // closed once every worker has exited
		completed[k] = true
		for nextRank < len(tasks) && completed[nextRank] {
			t := &tasks[nextRank]
			deliver(frontier[frontDelivered:t.frontierMark])
			frontDelivered = t.frontierMark
			deliver(results[nextRank].matches)
			nextRank++
		}
	}

	var taskErr error
	for k := range results {
		if results[k].err != nil {
			taskErr = results[k].err
			break
		}
	}
	filterCells := s.table.Cells()
	for _, w := range workers {
		filterCells += w.table.Cells()
		s.stats.NodesVisited += w.stats.NodesVisited
		s.stats.Candidates += w.stats.Candidates
		s.stats.Answers += w.stats.Answers
		s.stats.EnvelopePruned += w.stats.EnvelopePruned
		s.stats.LBCells += w.stats.LBCells
		s.pend.MergeFrom(&w.pend)
		ix.queries.release(w)
	}
	if taskErr != nil {
		return nil, Stats{}, taskErr
	}

	s.stopped = visitorStopped
	if !s.stopped {
		deliver(frontier[frontDelivered:])
	}

	s.visit = visit
	s.matches = out
	s.postProcess()
	out = s.matches

	s.stats.FilterCells = filterCells
	s.stats.PostCells = s.post.Cells()
	s.stats.Elapsed = time.Since(started)
	sortMatches(out)
	s.matches = nil // ownership transfers to the caller; release must not pool it
	return out, s.stats, nil
}

// spawnSubtreeTasks queues every child of n as a parallel task, sharing one
// fork of the prefix rows; see core.searcher.spawnSubtreeTasks.
func (s *msearcher) spawnSubtreeTasks(n *disktree.Node, runBroken bool, firstRun int) {
	prefix := s.table.Fork(s.table.Depth())
	var envSum float64
	if s.envOn {
		envSum = s.envSums[s.table.Depth()]
	}
	for i := range n.Children {
		s.tasks = append(s.tasks, mparTask{
			ptr:          n.Children[i].Ptr,
			prefix:       prefix,
			runBroken:    runBroken,
			firstRun:     firstRun,
			firstSym:     s.firstSym,
			base0:        s.base0,
			envSum:       envSum,
			envBase0:     s.envBase0,
			frontierMark: len(s.matches),
		})
	}
}

// setEnvSum seeds the envelope prefix sum at a task's fork depth; shallower
// entries are never read by the resumed descent.
func (s *msearcher) setEnvSum(depth int, sum float64) {
	for len(s.envSums) <= depth {
		s.envSums = append(s.envSums, 0)
	}
	s.envSums[depth] = sum
}
