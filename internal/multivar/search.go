package multivar

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
	"twsearch/internal/dtw"
	"twsearch/internal/pending"
	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// Ref identifies the subsequence Points[Start:End] of sequence Seq.
type Ref struct {
	Seq, Start, End int
}

// Match is an answer subsequence with its exact multivariate time warping
// distance.
type Match struct {
	Ref      Ref
	Distance float64
}

// Stats mirrors core.SearchStats for the multivariate engine. Under a
// parallel search each worker counts on its own pooled context and the
// driver sums them at the join barrier.
//
//twlint:join-merged
type Stats struct {
	NodesVisited uint64
	FilterCells  uint64
	PostCells    uint64
	Candidates   uint64
	FalseAlarms  uint64
	Answers      uint64
	// EnvelopePruned counts edge rows cut by the envelope cascade before
	// their table row was computed; LBCells counts its gap evaluations (one
	// per examined row — each sums the per-dimension gaps). Both are exact
	// under parallelism, like the other traversal counters.
	EnvelopePruned uint64
	LBCells        uint64
	Elapsed        time.Duration
}

// Options configures a multivariate index build.
type Options struct {
	// Kind is the per-dimension categorization method (default ME).
	Kind categorize.Kind
	// CatsPerDim is the per-dimension category count (default 8).
	CatsPerDim int
	// Sparse selects the sparse suffix tree.
	Sparse bool
	// Window is the Sakoe–Chiba warping-window half-width; <= 0 means
	// unconstrained.
	Window int
	// MinAnswerLen, when > 1, skips suffixes shorter than this at build
	// time and restricts answers to at least this length.
	MinAnswerLen int
	// Build tunes the disk pipeline.
	Build disktree.BuildOptions
}

// Index is the multivariate suffix-tree index. Like core.Index it is
// immutable at query time with per-query state pooled, so one handle serves
// concurrent searches.
type Index struct {
	Data  *Dataset
	Grid  *GridScheme
	Store *suffixtree.TextStore
	Tree  *disktree.File
	// Window is the warping-window half-width, or -1.
	Window int
	// DisableEnvelopes turns off the per-dimension envelope row prefilter;
	// like the univariate flag it changes only the work done, never the
	// answers. (The multivariate engine has no subtree-hull tier: grid cell
	// symbols order cells lexicographically, not by value, so a persisted
	// [MinSym, MaxSym] span would not bound the cells' value boxes.)
	DisableEnvelopes bool
	maxRun           int
	minAnswerLen     int

	seqOffsets    []int
	totalElements int
	// queries recycles per-query msearcher state; behind a pointer so Dup's
	// shallow copy shares the pool instead of copying a sync.Pool.
	queries *mqueryPool
}

// Build fits the grid, encodes every sequence to cell symbols, and builds
// the disk-based suffix tree at path.
func Build(data *Dataset, path string, opts Options) (*Index, error) {
	if opts.Kind == "" {
		opts.Kind = categorize.KindMaxEntropy
	}
	if opts.CatsPerDim == 0 {
		opts.CatsPerDim = 8
	}
	if opts.Window <= 0 {
		opts.Window = -1
	}
	opts.Build.Sparse = opts.Sparse
	opts.Build.MinSuffixLen = opts.MinAnswerLen
	grid, err := FitGrid(data, opts.Kind, opts.CatsPerDim)
	if err != nil {
		return nil, err
	}
	store := suffixtree.NewTextStore()
	maxRun := 1
	for i := 0; i < data.Len(); i++ {
		syms, err := grid.Encode(data.Points(i))
		if err != nil {
			return nil, fmt.Errorf("multivar: encoding %q: %w", data.Seq(i).ID, err)
		}
		store.Add(syms)
		run := 1
		for j := 1; j < len(syms); j++ {
			if syms[j] == syms[j-1] {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 1
			}
		}
	}
	seqs := make([]int, data.Len())
	for i := range seqs {
		seqs[i] = i
	}
	tree, err := disktree.Build(store, seqs, path, opts.Build)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Data: data, Grid: grid, Store: store, Tree: tree,
		Window: opts.Window, maxRun: maxRun, minAnswerLen: tree.MinSuffixLen(),
	}
	ix.computeOffsets()
	return ix, nil
}

// Open attaches an existing multivariate tree file to its dataset and grid.
// window <= 0 disables the warping-window constraint.
func Open(data *Dataset, grid *GridScheme, treePath string, poolPages, window int) (*Index, error) {
	return OpenWith(data, grid, treePath, poolPages, window, storage.BackendPool)
}

// OpenWith is Open with an explicit page-source backend for the tree file.
func OpenWith(data *Dataset, grid *GridScheme, treePath string, poolPages, window int, backend storage.Backend) (*Index, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	if window <= 0 {
		window = -1
	}
	tree, err := disktree.OpenBackend(treePath, poolPages, true, backend)
	if err != nil {
		return nil, err
	}
	store := suffixtree.NewTextStore()
	maxRun := 1
	for i := 0; i < data.Len(); i++ {
		syms, err := grid.Encode(data.Points(i))
		if err != nil {
			tree.Close()
			return nil, fmt.Errorf("multivar: re-encoding %q: %w", data.Seq(i).ID, err)
		}
		store.Add(syms)
		run := 1
		for j := 1; j < len(syms); j++ {
			if syms[j] == syms[j-1] {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 1
			}
		}
	}
	ix := &Index{
		Data: data, Grid: grid, Store: store, Tree: tree,
		Window: window, maxRun: maxRun, minAnswerLen: tree.MinSuffixLen(),
	}
	ix.computeOffsets()
	return ix, nil
}

func (ix *Index) computeOffsets() {
	ix.seqOffsets = make([]int, ix.Data.Len())
	off := 0
	for i := 0; i < ix.Data.Len(); i++ {
		ix.seqOffsets[i] = off
		off += len(ix.Data.Points(i))
	}
	ix.totalElements = off
	ix.queries = &mqueryPool{}
}

// MinAnswerLen returns the answer length floor the index was built with.
func (ix *Index) MinAnswerLen() int { return ix.minAnswerLen }

// Close releases the tree file.
func (ix *Index) Close() error { return ix.Tree.Close() }

// Search returns every subsequence within time warping distance eps of the
// vector query q — the multivariate SimSearch, with no false dismissals.
func (ix *Index) Search(q [][]float64, eps float64) ([]Match, Stats, error) {
	return ix.search(q, eps, nil)
}

// SearchVisit streams answers to fn (unordered); returning false stops the
// search early.
func (ix *Index) SearchVisit(q [][]float64, eps float64, fn func(Match) bool) (Stats, error) {
	if fn == nil {
		return Stats{}, errors.New("multivar: nil visitor")
	}
	_, stats, err := ix.search(q, eps, fn)
	return stats, err
}

func (ix *Index) search(q [][]float64, eps float64, visit func(Match) bool) ([]Match, Stats, error) {
	if len(q) == 0 {
		return nil, Stats{}, errors.New("multivar: empty query")
	}
	for i, p := range q {
		if len(p) != ix.Data.Dim() {
			return nil, Stats{}, fmt.Errorf("multivar: query point %d has %d dims, want %d", i, len(p), ix.Data.Dim())
		}
	}
	if eps < 0 {
		return nil, Stats{}, errors.New("multivar: negative distance threshold")
	}
	started := time.Now()
	s := ix.queries.acquire(ix, q, eps, visit)
	defer ix.queries.release(s)
	root := s.node(0)
	if err := ix.Tree.ReadNodeInto(ix.Tree.Root(), root); err != nil {
		return nil, Stats{}, err
	}
	s.stats.NodesVisited++
	for i := range root.Children {
		if s.stopped {
			break
		}
		if err := s.processEdge(root.Children[i].Ptr, 1, false, 0); err != nil {
			return nil, Stats{}, err
		}
	}
	s.postProcess()
	s.stats.FilterCells = s.table.Cells()
	s.stats.PostCells = s.post.Cells()
	s.stats.Elapsed = time.Since(started)
	sortMatches(s.matches)
	matches := s.matches
	s.matches = nil // ownership transfers to the caller; release must not pool it
	return matches, s.stats, nil
}

// mqueryPool recycles per-query msearcher state across the searches of one
// (shared-pool family of) index handle; see core's queryPool for the
// immutable-index/pooled-context argument.
type mqueryPool struct {
	p sync.Pool
}

// acquire returns an msearcher bound to this query, reusing a pooled one's
// allocations when available; release it when the search finishes.
//
//twlint:pool-transfer the msearcher is handed to the caller; release returns it via qp.p.Put
func (qp *mqueryPool) acquire(ix *Index, q [][]float64, eps float64, visit func(Match) bool) *msearcher {
	s, _ := qp.p.Get().(*msearcher)
	if s == nil {
		s = &msearcher{}
	}
	// Mirror of core's sparse+window handling: the D_tw-lb2 shift is
	// misaligned with a band on the shared filter table, so sparse indexes
	// filter unconstrained (still a lower bound) and the banded
	// post-processing enforces the exact semantics.
	filterWindow := ix.Window
	sparse := ix.Tree.Sparse()
	if sparse && ix.Window >= 0 {
		filterWindow = -1
	}
	s.ix = ix
	s.q = q
	s.eps = eps
	s.sparse = sparse
	s.visit = visit
	s.stopped = false
	s.stats = Stats{}
	s.matches = nil
	s.firstSym = 0
	s.base0 = 0
	s.spawnLevel = 0
	s.extStop = nil
	s.readAhead = false
	if s.table == nil {
		s.table = NewTableWindow(q, filterWindow)
		s.post = NewTableWindow(q, ix.Window)
	} else {
		s.table.Bind(q, filterWindow)
		s.post.Bind(q, ix.Window)
	}
	s.pend.Reset(ix.totalElements)

	// Per-dimension envelopes under the filter window; the coordinate
	// series and envelope storage are pooled with the msearcher.
	s.envOn = !ix.DisableEnvelopes
	if s.envOn {
		dim := ix.Data.Dim()
		for len(s.envs) < dim {
			s.envs = append(s.envs, dtw.Envelope{})
			s.qDim = append(s.qDim, nil)
		}
		for k := 0; k < dim; k++ {
			qd := s.qDim[k][:0]
			for _, p := range q {
				qd = append(qd, p[k])
			}
			s.qDim[k] = qd
			s.envs[k].Bind(qd, filterWindow)
		}
	}
	if len(s.envSums) == 0 {
		s.envSums = append(s.envSums, 0)
	}
	s.envSums[0] = 0
	s.envBase0 = 0
	return s
}

// release returns an msearcher to the pool, dropping caller-owned refs.
func (qp *mqueryPool) release(s *msearcher) {
	s.ix = nil
	s.visit = nil
	s.matches = nil
	s.tasks = nil // tasks reference forked tables; don't pin them in the pool
	s.extStop = nil
	qp.p.Put(s)
}

// SeqScan is the multivariate sequential-scanning baseline and ground
// truth: exact distances for every suffix, early-abandoned by Theorem 1.
// window < 0 disables the warping-window constraint.
func SeqScan(data *Dataset, q [][]float64, eps float64, window int) ([]Match, Stats, error) {
	return seqScan(data, q, eps, window, true)
}

// SeqScanFull is the paper's no-abandon baseline, multivariate.
func SeqScanFull(data *Dataset, q [][]float64, eps float64, window int) ([]Match, Stats, error) {
	return seqScan(data, q, eps, window, false)
}

func seqScan(data *Dataset, q [][]float64, eps float64, window int, abandon bool) ([]Match, Stats, error) {
	if len(q) == 0 {
		return nil, Stats{}, errors.New("multivar: empty query")
	}
	started := time.Now()
	table := NewTableWindow(q, window)
	var matches []Match
	var stats Stats
	for seq := 0; seq < data.Len(); seq++ {
		points := data.Points(seq)
		for p := 0; p < len(points); p++ {
			table.Truncate(0)
			for r := p; r < len(points); r++ {
				dist, minDist := table.AddRowPoint(points[r])
				if dist <= eps {
					matches = append(matches, Match{Ref: Ref{Seq: seq, Start: p, End: r + 1}, Distance: dist})
				}
				if abandon && minDist > eps {
					break
				}
			}
		}
	}
	stats.FilterCells = table.Cells()
	stats.Answers = uint64(len(matches))
	stats.Elapsed = time.Since(started)
	sortMatches(matches)
	return matches, stats, nil
}

// SearchKNN returns the k nearest subsequences under the multivariate time
// warping distance, by the same complete threshold expansion as the
// univariate engine.
func (ix *Index) SearchKNN(q [][]float64, k int) ([]Match, Stats, error) {
	return ix.searchKNN(q, k, SearchOptions{})
}

func (ix *Index) searchKNN(q [][]float64, k int, opts SearchOptions) ([]Match, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, errors.New("multivar: k must be positive")
	}
	if len(q) == 0 {
		return nil, Stats{}, errors.New("multivar: empty query")
	}
	eps := 0.0
	for i := 1; i < len(q); i++ {
		eps += Base(q[i], q[i-1])
	}
	eps = eps/float64(len(q)) + 1e-9
	var total Stats
	for {
		matches, stats, err := ix.SearchOpts(q, eps, opts)
		total.FilterCells += stats.FilterCells
		total.PostCells += stats.PostCells
		total.Candidates += stats.Candidates
		total.NodesVisited += stats.NodesVisited
		total.Elapsed += stats.Elapsed
		if err != nil {
			return nil, total, err
		}
		if len(matches) >= k || eps > 1e18 {
			sort.SliceStable(matches, func(i, j int) bool {
				return matches[i].Distance < matches[j].Distance
			})
			if len(matches) > k {
				matches = matches[:k]
			}
			sortMatches(matches)
			total.Answers = uint64(len(matches))
			return matches, total, nil
		}
		eps *= 4
	}
}

type msearcher struct {
	ix     *Index
	q      [][]float64
	eps    float64
	table  *Table
	post   *Table
	sparse bool

	stats   Stats
	matches []Match

	nodes        []*disktree.Node
	collectNodes []*disktree.Node

	firstSym suffixtree.Symbol
	base0    float64

	// The envelope cascade's row tier, per dimension: envs[k] is the
	// Sakoe–Chiba envelope of the query's k-th coordinate series under the
	// filter window (constant on sparse trees), qDim[k] its backing series.
	// envSums[d] is the running sum over the path's first d rows of the
	// per-dimension gap totals; envBase0 is the first row's total — the
	// per-shift discount unit for sparse candidates. See core.searcher for
	// the soundness argument; it transfers dimension-wise because both the
	// base distance and the envelope gap sum over dimensions independently.
	envs     []dtw.Envelope
	qDim     [][]float64
	envSums  []float64
	envBase0 float64
	envOn    bool

	// pend groups candidates by (seq, start) keeping the furthest end,
	// keyed by global element offset; post-processing scans each touched
	// start once (see core.searcher.postProcess for the argument). Its
	// backing arrays persist across queries via the pool.
	pend pending.Set

	// visit, when set, streams answers instead of accumulating them.
	visit   func(Match) bool
	stopped bool

	// Parallel-search hooks, mirroring core.searcher: spawnLevel > 0 makes
	// processEdge queue child subtrees as tasks instead of descending;
	// extStop is the search-wide stop flag shared by one query's workers;
	// readAhead batches child page fetches (workers only). See mparallel.go.
	spawnLevel int
	tasks      []mparTask
	extStop    *atomic.Bool
	readAhead  bool
}

// emit delivers one verified answer to the result slice or the visitor.
func (s *msearcher) emit(m Match) {
	if s.stopped {
		return
	}
	s.stats.Answers++
	if s.visit != nil {
		if !s.visit(m) {
			s.stopped = true
		}
		return
	}
	s.matches = append(s.matches, m)
}

func (s *msearcher) node(level int) *disktree.Node {
	for len(s.nodes) <= level {
		s.nodes = append(s.nodes, &disktree.Node{})
	}
	return s.nodes[level]
}

func (s *msearcher) collectNode(level int) *disktree.Node {
	for len(s.collectNodes) <= level {
		s.collectNodes = append(s.collectNodes, &disktree.Node{})
	}
	return s.collectNodes[level]
}

func (s *msearcher) processEdge(ptr disktree.Ptr, level int, runBroken bool, firstRun int) error {
	n := s.node(level)
	if err := s.ix.Tree.ReadNodeInto(ptr, n); err != nil {
		return err
	}
	s.stats.NodesVisited++
	// Poll the shared stop flag at the same thinned cadence core uses for
	// cancellation, so a visitor stop halts sibling workers promptly.
	if s.extStop != nil && s.stats.NodesVisited&63 == 0 && s.extStop.Load() {
		s.stopped = true
	}

	entryDepth := s.table.Depth()
	descend := true
	pendD := 0
	pendDist := dtw.Inf
	for i := 0; i < int(n.LabelLen); i++ {
		var sym suffixtree.Symbol
		if len(n.Label) > 0 {
			sym = n.Label[i]
		} else {
			sym = s.ix.Store.Sym(int(n.LabelSeq), int(n.LabelStart)+i)
		}
		if suffixtree.IsTerminator(sym) {
			descend = false
			break
		}
		box := s.ix.Grid.Box(sym)
		x := s.table.Depth()
		if x == 0 {
			s.firstSym = sym
			s.base0 = BaseBox(s.q[0], box)
			firstRun = 1
		} else if !runBroken {
			if sym == s.firstSym {
				firstRun++
			} else {
				runBroken = true
			}
		}

		// Envelope cascade, row tier: the per-dimension gap total extends
		// the LB_Keogh prefix sum, which lower-bounds every filter distance
		// at this depth or deeper (discounted per shifted-away leading-run
		// row on sparse trees); see core.searcher.processEdge.
		if s.envOn {
			g := 0.0
			for k := range s.envs {
				elo, ehi := s.envs[k].At(x)
				g += dtw.GapInterval(box.Lo[k], box.Hi[k], elo, ehi)
			}
			s.stats.LBCells++
			if x == 0 {
				s.envBase0 = g
			}
			newSum := s.envSums[x] + g
			envBound := newSum
			if s.sparse {
				j := firstRun - 1
				if !runBroken {
					j = s.ix.maxRun - 1
				}
				if j > 0 {
					envBound = newSum - float64(j)*s.envBase0
				}
			}
			if envBound > s.eps {
				s.stats.EnvelopePruned++
				descend = false
				break
			}
			if len(s.envSums) <= x+1 {
				s.envSums = append(s.envSums, 0)
			}
			s.envSums[x+1] = newSum
		}

		dist, minDist := s.table.AddRowBox(box)
		d := s.table.Depth()

		emitBound := dist
		if s.sparse && firstRun > 1 {
			emitBound = dist - float64(firstRun-1)*s.base0
		}
		if emitBound <= s.eps {
			pendD = d
			if dist < pendDist {
				pendDist = dist
			}
		}

		pruneBound := minDist
		if s.sparse {
			j := firstRun - 1
			if !runBroken {
				j = s.ix.maxRun - 1
			}
			if j > 0 {
				pruneBound = minDist - float64(j)*s.base0
			}
		}
		if pruneBound > s.eps {
			descend = false
			break
		}

		// Answer-length cutoff for sparse+window (see core).
		if s.sparse && s.ix.Window >= 0 {
			j := firstRun - 1
			if !runBroken {
				j = s.ix.maxRun - 1
			}
			if d-j > len(s.q)+s.ix.Window {
				descend = false
				break
			}
		}
	}

	if pendD > 0 {
		if err := s.collect(n, pendD, pendDist); err != nil {
			return err
		}
	}
	if descend && !n.Leaf && !s.stopped {
		if s.spawnLevel > 0 && level == s.spawnLevel {
			s.spawnSubtreeTasks(n, runBroken, firstRun)
		} else {
			if s.readAhead && len(n.Children) > 1 {
				s.ix.Tree.ReadAhead(n.Children)
			}
			for i := range n.Children {
				if s.stopped {
					break
				}
				if err := s.processEdge(n.Children[i].Ptr, level+1, runBroken, firstRun); err != nil {
					return err
				}
			}
		}
	}
	s.table.Truncate(entryDepth)
	return nil
}

func (s *msearcher) collect(n *disktree.Node, d int, dist float64) error {
	if n.Leaf {
		s.emitLeaf(n, d, dist)
		return nil
	}
	return s.collectChildren(n, 0, d, dist)
}

func (s *msearcher) collectChildren(n *disktree.Node, level, d int, dist float64) error {
	for i := range n.Children {
		c := s.collectNode(level)
		if err := s.ix.Tree.ReadNodeInto(n.Children[i].Ptr, c); err != nil {
			return err
		}
		if c.Leaf {
			s.emitLeaf(c, d, dist)
			continue
		}
		if err := s.collectChildren(c, level+1, d, dist); err != nil {
			return err
		}
	}
	return nil
}

func (s *msearcher) emitLeaf(leaf *disktree.Node, d int, dist float64) {
	seq := int(leaf.LabelSeq)
	pos := int(leaf.Pos)
	if dist <= s.eps {
		s.candidate(seq, pos, pos+d)
	}
	if !s.sparse {
		return
	}
	jMax := int(leaf.RunLen)
	if d < jMax {
		jMax = d
	}
	for j := 1; j < jMax; j++ {
		if dist-float64(j)*s.base0 <= s.eps {
			s.candidate(seq, pos+j, pos+d)
		}
	}
}

func (s *msearcher) candidate(seq, start, end int) {
	if end-start < s.ix.minAnswerLen {
		return
	}
	s.stats.Candidates++
	s.pend.Add(int32(s.ix.seqOffsets[seq]+start), int32(end))
}

func (s *msearcher) postProcess() {
	seq := 0
	for _, off := range s.pend.Sorted() {
		if s.stopped {
			break
		}
		for seq+1 < s.ix.Data.Len() && int(off) >= s.ix.seqOffsets[seq+1] {
			seq++
		}
		points := s.ix.Data.Points(seq)
		start := int(off) - s.ix.seqOffsets[seq]
		maxEnd := int(s.pend.MaxEnd(off))
		s.post.Truncate(0)
		for e := start; e < maxEnd && !s.stopped; e++ {
			dist, minDist := s.post.AddRowPoint(points[e])
			if dist <= s.eps && e+1-start >= s.ix.minAnswerLen {
				s.emit(Match{Ref: Ref{Seq: seq, Start: start, End: e + 1}, Distance: dist})
			}
			if minDist > s.eps {
				break
			}
		}
	}
	if s.stats.Candidates >= s.stats.Answers {
		s.stats.FalseAlarms = s.stats.Candidates - s.stats.Answers
	}
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Ref, ms[j].Ref
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}

// Dup returns an independent handle on the same index file with its own
// buffer pool. An Index already serves concurrent searches; Dup remains for
// callers that want a private page cache. The duplicate shares the
// immutable dataset, grid, texts and query-context pool.
func (ix *Index) Dup(poolPages int) (*Index, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	tree, err := disktree.Open(ix.Tree.Path(), poolPages, true)
	if err != nil {
		return nil, err
	}
	dup := *ix
	dup.Tree = tree
	return &dup, nil
}
