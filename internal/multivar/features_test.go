package multivar

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/suffixtree"
)

func TestDatasetBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 10; trial++ {
		dim := 1 + rng.Intn(4)
		d := randomVecDataset(rng, 1+rng.Intn(5), 20, dim)
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dim() != d.Dim() || got.Len() != d.Len() {
			t.Fatal("header mismatch")
		}
		for i := 0; i < d.Len(); i++ {
			if got.Seq(i).ID != d.Seq(i).ID || !reflect.DeepEqual(got.Points(i), d.Points(i)) {
				t.Fatalf("sequence %d differs", i)
			}
		}
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	d := randomVecDataset(rng, 3, 15, 2)
	path := filepath.Join(t.TempDir(), "vec.twvdb")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatal("length mismatch")
	}
}

func TestDatasetBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXXXXXXgarbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGridRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(507))
	data := randomVecDataset(rng, 4, 25, 3)
	grid, err := FitGrid(data, categorize.KindMaxEntropy, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := grid.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != grid.NumCells() {
		t.Fatalf("cells = %d, want %d", got.NumCells(), grid.NumCells())
	}
	// Same encoding and boxes after the round trip.
	for i := 0; i < data.Len(); i++ {
		a, err := grid.Encode(data.Points(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Encode(data.Points(i))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("encoding differs for sequence %d", i)
		}
	}
	for s := 0; s < grid.NumCells(); s++ {
		a, b := grid.Box(suffixtree.Symbol(s)), got.Box(suffixtree.Symbol(s))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("box %d differs", s)
		}
	}
	if _, err := ReadGrid(bytes.NewReader([]byte("XXXXXXXXjunkjunk"))); err == nil {
		t.Fatal("garbage grid accepted")
	}
}

// Windowed multivariate search must equal the windowed scan.
func TestMultivarWindowedNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	for trial := 0; trial < 8; trial++ {
		dim := 1 + rng.Intn(2)
		data := randomVecDataset(rng, 2+rng.Intn(3), 18, dim)
		q := randomVecQuery(rng, 6, dim)
		eps := float64(rng.Intn(8)) + 0.5
		window := 1 + rng.Intn(5)
		for _, sparse := range []bool{false, true} {
			ix, err := Build(data, filepath.Join(t.TempDir(), "w.twt"), Options{
				CatsPerDim: 1 + rng.Intn(3), Sparse: sparse, Window: window,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := SeqScan(data, q, eps, window)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ix.Search(q, eps)
			ix.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d sparse=%v w=%d: %d vs %d", trial, sparse, window, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref != want[i].Ref || math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
					t.Fatalf("trial %d: match %d differs", trial, i)
				}
			}
		}
	}
}

// Length-filtered multivariate indexes return exactly the scan answers of
// at least the floor length.
func TestMultivarMinAnswerLen(t *testing.T) {
	rng := rand.New(rand.NewSource(511))
	for trial := 0; trial < 6; trial++ {
		data := randomVecDataset(rng, 3, 20, 2)
		q := randomVecQuery(rng, 5, 2)
		eps := float64(rng.Intn(8)) + 0.5
		minLen := 2 + rng.Intn(4)
		ix, err := Build(data, filepath.Join(t.TempDir(), "ml.twt"), Options{
			CatsPerDim: 3, Sparse: trial%2 == 0, MinAnswerLen: minLen,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ix.MinAnswerLen() != minLen {
			t.Fatalf("MinAnswerLen = %d", ix.MinAnswerLen())
		}
		got, _, err := ix.Search(q, eps)
		ix.Close()
		if err != nil {
			t.Fatal(err)
		}
		all, _, err := SeqScan(data, q, eps, -1)
		if err != nil {
			t.Fatal(err)
		}
		var want []Match
		for _, m := range all {
			if m.Ref.End-m.Ref.Start >= minLen {
				want = append(want, m)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Ref != want[i].Ref {
				t.Fatalf("trial %d: match %d differs", trial, i)
			}
		}
	}
}

func TestMultivarKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(513))
	data := randomVecDataset(rng, 3, 20, 2)
	ix, err := Build(data, filepath.Join(t.TempDir(), "knn.twt"), Options{CatsPerDim: 3, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomVecQuery(rng, 5, 2)
	k := 7
	got, _, err := ix.SearchKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("kNN returned %d", len(got))
	}
	all, _, err := SeqScan(data, q, 1e18, -1)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Distance < all[j].Distance })
	kth := all[k-1].Distance
	for _, m := range got {
		if m.Distance > kth+1e-9 {
			t.Fatalf("kNN distance %v beyond true kth %v", m.Distance, kth)
		}
	}
	if _, _, err := ix.SearchKNN(q, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.SearchKNN(nil, 2); err == nil {
		t.Error("empty query accepted")
	}
}

// Open must reproduce a built index's answers from the persisted grid.
func TestMultivarOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(517))
	data := randomVecDataset(rng, 4, 20, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "mv.twt")
	ix, err := Build(data, path, Options{CatsPerDim: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	q := randomVecQuery(rng, 5, 2)
	want, _, err := ix.Search(q, 9.5)
	if err != nil {
		t.Fatal(err)
	}
	// Persist and reload the grid, then reopen.
	var buf bytes.Buffer
	if err := ix.Grid.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	grid, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(data, grid, path, 16, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.Search(q, 9.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d differs after reopen", i)
		}
	}
}

func TestMultivarSeqScanFullAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(519))
	data := randomVecDataset(rng, 3, 15, 2)
	q := randomVecQuery(rng, 5, 2)
	want, ps, err := SeqScan(data, q, 6.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, fs, err := SeqScanFull(data, q, 6.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("full %d vs pruned %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d differs", i)
		}
	}
	if fs.FilterCells < ps.FilterCells {
		t.Error("full scan did less work than pruned scan")
	}
}

func TestMultivarWindowTable(t *testing.T) {
	rng := rand.New(rand.NewSource(521))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(3)
		q := randomVecQuery(rng, 6, dim)
		s := randomVecQuery(rng, 6, dim)
		w := len(q) + len(s)
		wide := NewTableWindow(q, w)
		var last float64
		for _, p := range s {
			last, _ = wide.AddRowPoint(p)
		}
		if want := Distance(s, q); math.Abs(last-want) > 1e-9 {
			t.Fatalf("wide window %v != unconstrained %v", last, want)
		}
	}
	// Too-narrow band yields Inf.
	q := [][]float64{{0}}
	s := [][]float64{{0}, {0}, {0}, {0}}
	tab := NewTableWindow(q, 1)
	var last float64
	for _, p := range s {
		last, _ = tab.AddRowPoint(p)
	}
	if !math.IsInf(last, 1) {
		t.Fatalf("narrow band distance = %v, want Inf", last)
	}
}

func TestMultivarBuildOptionErrors(t *testing.T) {
	d := NewDataset(1)
	d.MustAdd(Sequence{ID: "a", Points: [][]float64{{1}, {2}, {3}}})
	// Build with every option combination must produce a searchable index.
	for _, opts := range []Options{
		{},
		{Sparse: true},
		{Window: 2},
		{MinAnswerLen: 2, Sparse: true},
		{Kind: categorize.KindEqualLength, CatsPerDim: 2},
	} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("o%v%v.twt", opts.Sparse, opts.Window))
		ix, err := Build(d, path, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if _, _, err := ix.Search([][]float64{{2}}, 1); err != nil {
			t.Fatalf("%+v: search: %v", opts, err)
		}
		ix.Close()
	}
}

func TestVectorAddRejectsNonFinite(t *testing.T) {
	d := NewDataset(2)
	if _, err := d.Add(Sequence{ID: "nan", Points: [][]float64{{1, math.NaN()}}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := d.Add(Sequence{ID: "inf", Points: [][]float64{{math.Inf(1), 0}}}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestMultivarDup(t *testing.T) {
	rng := rand.New(rand.NewSource(523))
	data := randomVecDataset(rng, 4, 20, 2)
	ix, err := Build(data, filepath.Join(t.TempDir(), "dup.twt"), Options{CatsPerDim: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomVecQuery(rng, 5, 2)
	want, _, err := ix.Search(q, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := ix.Dup(16)
	if err != nil {
		t.Fatal(err)
	}
	defer dup.Close()
	got, _, err := dup.Search(q, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("dup %d, original %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d differs", i)
		}
	}
}

func TestMultivarSearchVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(541))
	data := randomVecDataset(rng, 3, 20, 2)
	ix, err := Build(data, filepath.Join(t.TempDir(), "sv.twt"), Options{CatsPerDim: 3, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomVecQuery(rng, 5, 2)
	want, _, err := ix.Search(q, 9.5)
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	if _, err := ix.SearchVisit(q, 9.5, func(m Match) bool {
		got = append(got, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("streamed %d, Search %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d differs", i)
		}
	}
	if len(want) > 2 {
		count := 0
		if _, err := ix.SearchVisit(q, 9.5, func(Match) bool {
			count++
			return count < 2
		}); err != nil {
			t.Fatal(err)
		}
		if count != 2 {
			t.Fatalf("early stop delivered %d", count)
		}
	}
	if _, err := ix.SearchVisit(q, 9.5, nil); err == nil {
		t.Error("nil visitor accepted")
	}
}
