// Package multivar implements the paper's conclusion-section extension to
// multivariate sequences: elements are vectors, the base distance is the
// city-block distance summed over dimensions, and categorization becomes a
// multi-dimensional grid (an MTAH-style per-dimension categorization whose
// cells are the categories). The same suffix-tree index construction and
// the same lower-bound filtering then apply to the cell-symbol sequences.
package multivar

import (
	"errors"
	"fmt"
	"math"

	"twsearch/internal/categorize"
	"twsearch/internal/dtw"
	"twsearch/internal/suffixtree"
)

// Sequence is a named series of vector samples; all points of all sequences
// in a Dataset share one dimensionality.
type Sequence struct {
	ID     string
	Points [][]float64
}

// Dataset owns multivariate sequences.
type Dataset struct {
	dim  int
	seqs []Sequence
	byID map[string]int
}

// NewDataset returns an empty dataset for vectors of the given dimension.
func NewDataset(dim int) *Dataset {
	return &Dataset{dim: dim, byID: make(map[string]int)}
}

// Dim returns the vector dimensionality.
func (d *Dataset) Dim() int { return d.dim }

// Add appends a sequence, validating id uniqueness and point shape.
func (d *Dataset) Add(s Sequence) (int, error) {
	if s.ID == "" {
		return 0, errors.New("multivar: empty id")
	}
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("multivar: %q has no points", s.ID)
	}
	if _, dup := d.byID[s.ID]; dup {
		return 0, fmt.Errorf("multivar: duplicate id %q", s.ID)
	}
	for i, p := range s.Points {
		if len(p) != d.dim {
			return 0, fmt.Errorf("multivar: %q point %d has %d dims, want %d", s.ID, i, len(p), d.dim)
		}
		for k, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("multivar: %q point %d dim %d is %v", s.ID, i, k, v)
			}
		}
	}
	idx := len(d.seqs)
	d.seqs = append(d.seqs, s)
	d.byID[s.ID] = idx
	return idx, nil
}

// MustAdd panics on error; for generators and tests.
func (d *Dataset) MustAdd(s Sequence) int {
	idx, err := d.Add(s)
	if err != nil {
		//lint:ignore panicpath Must-prefix constructor contract (regexp.MustCompile idiom): generators pass ids and points that are valid by construction; Add is the error-returning path
		panic(err)
	}
	return idx
}

// Len returns the number of sequences.
func (d *Dataset) Len() int { return len(d.seqs) }

// Seq returns sequence i.
func (d *Dataset) Seq(i int) Sequence { return d.seqs[i] }

// Points returns the samples of sequence i (not to be mutated).
func (d *Dataset) Points(i int) [][]float64 { return d.seqs[i].Points }

// Base is the multivariate D_base: city-block distance summed over
// dimensions.
func Base(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += dtw.Base(a[i], b[i])
	}
	return s
}

// Box is a per-dimension interval — the observed bounding box of one grid
// cell, the multivariate analogue of [B.lb, B.ub].
type Box struct {
	Lo, Hi []float64
}

// BaseBox is the multivariate D_base-lb: the minimum possible Base distance
// between the point p and any point inside the box.
func BaseBox(p []float64, b Box) float64 {
	s := 0.0
	for i := range p {
		s += dtw.BaseInterval(p[i], b.Lo[i], b.Hi[i])
	}
	return s
}

// Distance is the multivariate time warping distance.
func Distance(a, b [][]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		//lint:ignore panicpath precondition assertion: the engine validates queries before the kernel; a silent zero distance would break exactness
		panic("multivar: distance of empty sequence")
	}
	prev := make([]float64, len(b))
	curr := make([]float64, len(b))
	for x := 0; x < len(a); x++ {
		for y := 0; y < len(b); y++ {
			base := Base(a[x], b[y])
			switch {
			case x == 0 && y == 0:
				curr[y] = base
			case x == 0:
				curr[y] = base + curr[y-1]
			case y == 0:
				curr[y] = base + prev[y]
			default:
				m := curr[y-1]
				if prev[y] < m {
					m = prev[y]
				}
				if prev[y-1] < m {
					m = prev[y-1]
				}
				curr[y] = base + m
			}
		}
		prev, curr = curr, prev
	}
	return prev[len(b)-1]
}

// GridScheme is an MTAH-style multi-dimensional categorization: one
// univariate scheme per dimension; a cell is a combination of per-dimension
// categories; only observed cells get (dense) symbols, each with the
// observed bounding box of its points.
type GridScheme struct {
	dims  []*categorize.Scheme
	cells map[uint64]suffixtree.Symbol
	boxes []Box
}

// FitGrid fits one univariate categorizer per dimension (catsPerDim
// categories each) and assigns dense cell symbols to every observed
// combination.
func FitGrid(data *Dataset, kind categorize.Kind, catsPerDim int) (*GridScheme, error) {
	if data.Len() == 0 {
		return nil, errors.New("multivar: empty dataset")
	}
	dim := data.Dim()
	g := &GridScheme{
		dims:  make([]*categorize.Scheme, dim),
		cells: make(map[uint64]suffixtree.Symbol),
	}
	for k := 0; k < dim; k++ {
		var vals []float64
		for i := 0; i < data.Len(); i++ {
			for _, p := range data.Points(i) {
				vals = append(vals, p[k])
			}
		}
		s, err := categorize.Fit(kind, vals, catsPerDim, 20)
		if err != nil {
			return nil, fmt.Errorf("multivar: fitting dim %d: %w", k, err)
		}
		g.dims[k] = s
	}
	// Register every observed cell and grow its box.
	for i := 0; i < data.Len(); i++ {
		for _, p := range data.Points(i) {
			sym := g.symbolFor(p, true)
			box := &g.boxes[sym]
			for k := 0; k < dim; k++ {
				if p[k] < box.Lo[k] {
					box.Lo[k] = p[k]
				}
				if p[k] > box.Hi[k] {
					box.Hi[k] = p[k]
				}
			}
		}
	}
	return g, nil
}

// cellKey mixes per-dimension category indexes into one key.
func (g *GridScheme) cellKey(p []float64) uint64 {
	key := uint64(0)
	for k, s := range g.dims {
		key = key*uint64(s.NumCategories()) + uint64(s.Symbol(p[k]))
	}
	return key
}

// symbolFor returns the dense symbol of p's cell, creating it when create
// is set. It returns -1 for an unseen cell when create is false.
func (g *GridScheme) symbolFor(p []float64, create bool) suffixtree.Symbol {
	key := g.cellKey(p)
	if sym, ok := g.cells[key]; ok {
		return sym
	}
	if !create {
		return -1
	}
	sym := suffixtree.Symbol(len(g.boxes))
	g.cells[key] = sym
	lo := make([]float64, len(g.dims))
	hi := make([]float64, len(g.dims))
	for k := range g.dims {
		lo[k] = p[k]
		hi[k] = p[k]
	}
	g.boxes = append(g.boxes, Box{Lo: lo, Hi: hi})
	return sym
}

// NumCells returns the number of observed cells.
func (g *GridScheme) NumCells() int { return len(g.boxes) }

// Box returns the observed bounding box of a cell symbol.
func (g *GridScheme) Box(sym suffixtree.Symbol) Box { return g.boxes[sym] }

// Encode converts a point sequence drawn from the fitted data into cell
// symbols. It returns an error on a point from an unseen cell, which cannot
// happen for fitted sequences.
func (g *GridScheme) Encode(points [][]float64) ([]suffixtree.Symbol, error) {
	out := make([]suffixtree.Symbol, len(points))
	for i, p := range points {
		sym := g.symbolFor(p, false)
		if sym < 0 {
			return nil, fmt.Errorf("multivar: point %d falls in an unfitted cell", i)
		}
		out[i] = sym
	}
	return out, nil
}
