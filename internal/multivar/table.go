package multivar

import "twsearch/internal/dtw"

// Table is the multivariate counterpart of dtw.Table: the cumulative time
// warping distance table with the query's points along the columns, grown
// (and popped) one row at a time by the tree traversal.
type Table struct {
	q      [][]float64
	window int // Sakoe–Chiba half-width; <0 means unconstrained
	rows   []float64
	depth  int
	cells  uint64
}

// NewTable returns a table for the given query with no warping-window
// constraint. It panics on an empty query.
func NewTable(q [][]float64) *Table {
	return NewTableWindow(q, -1)
}

// NewTableWindow returns a table whose rows apply a Sakoe–Chiba band of
// half-width w; pass w < 0 for no constraint.
func NewTableWindow(q [][]float64, w int) *Table {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("multivar: empty query")
	}
	return &Table{q: q, window: w}
}

// Bind re-targets the table at a new query and window, dropping all rows
// but keeping the row storage, so pooled query contexts reuse one table
// across searches.
func (t *Table) Bind(q [][]float64, w int) {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("multivar: empty query")
	}
	t.q = q
	t.window = w
	t.rows = t.rows[:0]
	t.depth = 0
	t.cells = 0
}

// Depth returns the current number of rows.
func (t *Table) Depth() int { return t.depth }

// Cells returns the number of DP cells computed since construction.
func (t *Table) Cells() uint64 { return t.cells }

// Truncate pops rows until depth rows remain (the cell counter keeps
// accumulating).
//
//twlint:steady-state
func (t *Table) Truncate(depth int) {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: truncating past the stack means traversal bookkeeping is already corrupt
		panic("multivar: bad Truncate depth")
	}
	t.depth = depth
	t.rows = t.rows[:depth*len(t.q)]
}

// Fork returns a new table over the same query and window whose first depth
// rows are copies of t's — R_d prefix sharing cut at a parallel frontier.
// The fork owns separate row storage and starts with a zero cell counter,
// so prefix cells are counted exactly once, by the table that computed them.
func (t *Table) Fork(depth int) *Table {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: forking past the stack means traversal bookkeeping is already corrupt
		panic("multivar: bad Fork depth")
	}
	n := len(t.q)
	f := &Table{q: t.q, window: t.window, depth: depth}
	f.rows = append(f.rows, t.rows[:depth*n]...)
	return f
}

// CopyFrom makes t a row-for-row copy of src — same query, window, and
// depth — reusing t's row storage when it is large enough. The cell counter
// is left untouched: copied rows were computed (and counted) elsewhere.
func (t *Table) CopyFrom(src *Table) {
	t.q = src.q
	t.window = src.window
	t.depth = src.depth
	need := src.depth * len(src.q)
	if cap(t.rows) >= need {
		t.rows = t.rows[:need]
	} else {
		t.rows = make([]float64, need)
	}
	copy(t.rows, src.rows)
}

// Row returns row r's cells (read-only view; valid until the next mutation).
func (t *Table) Row(r int) []float64 {
	n := len(t.q)
	return t.rows[r*n : (r+1)*n]
}

// AddRowPoint appends the row for a data point using the exact base
// distance; returns the last column (prefix distance) and row minimum.
//
//twlint:bound-source results=1
//twlint:steady-state
func (t *Table) AddRowPoint(p []float64) (dist, minDist float64) {
	q := t.q
	n := len(q)
	x := t.depth
	curr := t.growRow(n, x)
	bandLo, bandHi := t.bandFill(curr, n, x)
	minDist = dtw.Inf
	t.cells += uint64(n)
	t.depth++
	if bandLo >= bandHi {
		return curr[n-1], minDist
	}
	if x == 0 {
		acc := Base(p, q[0])
		curr[0] = acc
		minDist = acc
		for y := 1; y < bandHi; y++ {
			acc += Base(p, q[y])
			curr[y] = acc
			if acc < minDist {
				minDist = acc
			}
		}
		return curr[n-1], minDist
	}
	prev := t.rows[(x-1)*n : x*n : x*n]
	y := bandLo
	// left and diag carry curr[y-1] and prev[y-1] in registers, so the loop
	// body reads prev exactly once per cell. Out-of-band neighbours hold
	// Inf, so the three-way min is safe at band edges.
	left := dtw.Inf
	if y == 0 {
		c := Base(p, q[0]) + prev[0]
		curr[0] = c
		minDist = c
		left = c
		y = 1
	}
	if y < bandHi {
		diag := prev[y-1]
		// Equal-length reslices let the compiler drop the per-cell bounds
		// checks: y < len(qb) covers all three.
		qb, cb, pb := q[:bandHi], curr[:bandHi], prev[:bandHi]
		for ; y < len(qb); y++ {
			up := pb[y]
			c := Base(p, qb[y]) + min3(left, up, diag)
			cb[y] = c
			if c < minDist {
				minDist = c
			}
			left = c
			diag = up
		}
	}
	return curr[n-1], minDist
}

// AddRowBox appends the row for a cell symbol's bounding box using the
// lower-bound base distance.
//
//twlint:bound-source results=0,1
//twlint:steady-state
func (t *Table) AddRowBox(b Box) (dist, minDist float64) {
	q := t.q
	n := len(q)
	x := t.depth
	curr := t.growRow(n, x)
	bandLo, bandHi := t.bandFill(curr, n, x)
	minDist = dtw.Inf
	t.cells += uint64(n)
	t.depth++
	if bandLo >= bandHi {
		return curr[n-1], minDist
	}
	if x == 0 {
		acc := BaseBox(q[0], b)
		curr[0] = acc
		minDist = acc
		for y := 1; y < bandHi; y++ {
			acc += BaseBox(q[y], b)
			curr[y] = acc
			if acc < minDist {
				minDist = acc
			}
		}
		return curr[n-1], minDist
	}
	prev := t.rows[(x-1)*n : x*n : x*n]
	y := bandLo
	left := dtw.Inf
	if y == 0 {
		c := BaseBox(q[0], b) + prev[0]
		curr[0] = c
		minDist = c
		left = c
		y = 1
	}
	if y < bandHi {
		diag := prev[y-1]
		qb, cb, pb := q[:bandHi], curr[:bandHi], prev[:bandHi]
		for ; y < len(qb); y++ {
			up := pb[y]
			c := BaseBox(qb[y], b) + min3(left, up, diag)
			cb[y] = c
			if c < minDist {
				minDist = c
			}
			left = c
			diag = up
		}
	}
	return curr[n-1], minDist
}

// growRow extends the row storage by one row of n cells and returns the new
// row as a full slice expression. Growing within capacity is safe even on a
// rebound table: every cell of the row is written by the caller (Inf for
// out-of-band columns), so stale bytes from a previous binding are never
// observed.
func (t *Table) growRow(n, x int) []float64 {
	if need := (x + 1) * n; need <= cap(t.rows) {
		t.rows = t.rows[:need]
	} else {
		t.rows = append(t.rows, make([]float64, n)...)
	}
	return t.rows[x*n : (x+1)*n : (x+1)*n]
}

// bandFill computes the Sakoe–Chiba band [bandLo, bandHi) of row x and
// writes Inf into every out-of-band cell of curr, so the recurrence loop can
// read neighbours unconditionally. Without a window the band is [0, n).
func (t *Table) bandFill(curr []float64, n, x int) (bandLo, bandHi int) {
	bandLo, bandHi = 0, n
	if t.window >= 0 {
		if bandLo = x - t.window; bandLo < 0 {
			bandLo = 0
		} else if bandLo > n {
			bandLo = n
		}
		if bandHi = x + t.window + 1; bandHi > n {
			bandHi = n
		}
	}
	for y := 0; y < bandLo; y++ {
		curr[y] = dtw.Inf
	}
	for y := bandHi; y < n; y++ {
		curr[y] = dtw.Inf
	}
	return bandLo, bandHi
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
