package multivar

import "twsearch/internal/dtw"

// Table is the multivariate counterpart of dtw.Table: the cumulative time
// warping distance table with the query's points along the columns, grown
// (and popped) one row at a time by the tree traversal.
type Table struct {
	q      [][]float64
	window int // Sakoe–Chiba half-width; <0 means unconstrained
	rows   []float64
	depth  int
	cells  uint64
}

// NewTable returns a table for the given query with no warping-window
// constraint. It panics on an empty query.
func NewTable(q [][]float64) *Table {
	return NewTableWindow(q, -1)
}

// NewTableWindow returns a table whose rows apply a Sakoe–Chiba band of
// half-width w; pass w < 0 for no constraint.
func NewTableWindow(q [][]float64, w int) *Table {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("multivar: empty query")
	}
	return &Table{q: q, window: w}
}

// Bind re-targets the table at a new query and window, dropping all rows
// but keeping the row storage, so pooled query contexts reuse one table
// across searches.
func (t *Table) Bind(q [][]float64, w int) {
	if len(q) == 0 {
		//lint:ignore panicpath precondition assertion: search entry points reject empty queries before any table exists
		panic("multivar: empty query")
	}
	t.q = q
	t.window = w
	t.rows = t.rows[:0]
	t.depth = 0
	t.cells = 0
}

// Depth returns the current number of rows.
func (t *Table) Depth() int { return t.depth }

// Cells returns the number of DP cells computed since construction.
func (t *Table) Cells() uint64 { return t.cells }

// Truncate pops rows until depth rows remain (the cell counter keeps
// accumulating).
func (t *Table) Truncate(depth int) {
	if depth < 0 || depth > t.depth {
		//lint:ignore panicpath row-discipline assertion: truncating past the stack means traversal bookkeeping is already corrupt
		panic("multivar: bad Truncate depth")
	}
	t.depth = depth
	t.rows = t.rows[:depth*len(t.q)]
}

// AddRowPoint appends the row for a data point using the exact base
// distance; returns the last column (prefix distance) and row minimum.
//
//twlint:bound-source results=1
func (t *Table) AddRowPoint(p []float64) (dist, minDist float64) {
	return t.addRow(func(q []float64) float64 { return Base(p, q) })
}

// AddRowBox appends the row for a cell symbol's bounding box using the
// lower-bound base distance.
//
//twlint:bound-source results=0,1
func (t *Table) AddRowBox(b Box) (dist, minDist float64) {
	return t.addRow(func(q []float64) float64 { return BaseBox(q, b) })
}

func (t *Table) addRow(base func(q []float64) float64) (dist, minDist float64) {
	n := len(t.q)
	x := t.depth
	// Grow within capacity when possible: every cell of the new row is
	// written below (Inf for out-of-band columns), so stale bytes from a
	// previous binding are never observed.
	if need := (x + 1) * n; need <= cap(t.rows) {
		t.rows = t.rows[:need]
	} else {
		t.rows = append(t.rows, make([]float64, n)...)
	}
	curr := t.rows[x*n : (x+1)*n]
	var prev []float64
	if x > 0 {
		prev = t.rows[(x-1)*n : x*n]
	}
	minDist = dtw.Inf
	for y := 0; y < n; y++ {
		if t.window >= 0 && absInt(x-y) > t.window {
			curr[y] = dtw.Inf
			continue
		}
		b := base(t.q[y])
		switch {
		case x == 0 && y == 0:
			curr[y] = b
		case x == 0:
			curr[y] = b + curr[y-1]
		case y == 0:
			curr[y] = b + prev[y]
		default:
			m := curr[y-1]
			if prev[y] < m {
				m = prev[y]
			}
			if prev[y-1] < m {
				m = prev[y-1]
			}
			curr[y] = b + m
		}
		if curr[y] < minDist {
			minDist = curr[y]
		}
	}
	t.cells += uint64(n)
	t.depth++
	return curr[n-1], minDist
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
