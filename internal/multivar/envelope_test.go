package multivar

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
)

// TestMultivarEnvelopeCascade: the per-dimension envelope row tier changes
// only the work done — answers are identical across (cascade on, off) ×
// (serial, parallel), the counters are zero when disabled, and serial and
// parallel runs count the cascade identically.
func TestMultivarEnvelopeCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	dir := t.TempDir()
	for trial := 0; trial < 4; trial++ {
		dim := 1 + rng.Intn(3)
		data := randomVecDataset(rng, 4, 25, dim)
		q := randomVecQuery(rng, 8, dim)
		for _, sparse := range []bool{false, true} {
			for _, window := range []int{-1, 3} {
				path := filepath.Join(dir, fmt.Sprintf("ix-%d-%v-%d.twt", trial, sparse, window))
				ix, err := Build(data, path, Options{
					Kind: categorize.KindMaxEntropy, CatsPerDim: 4,
					Sparse: sparse, Window: window,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range []float64{1.5, 8.5} {
					label := fmt.Sprintf("trial=%d dim=%d sparse=%v w=%d eps=%v", trial, dim, sparse, window, eps)
					on, onStats, err := ix.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					ix.DisableEnvelopes = true
					off, offStats, err := ix.Search(q, eps)
					ix.DisableEnvelopes = false
					if err != nil {
						t.Fatal(err)
					}
					par, parStats, err := ix.SearchOpts(q, eps, SearchOptions{Parallelism: 3})
					if err != nil {
						t.Fatal(err)
					}
					if len(on) != len(off) || len(on) != len(par) {
						t.Fatalf("%s: answer counts diverge: on=%d off=%d par=%d", label, len(on), len(off), len(par))
					}
					for i := range on {
						if on[i] != off[i] || on[i] != par[i] {
							t.Fatalf("%s: answer %d diverges: %+v / %+v / %+v", label, i, on[i], off[i], par[i])
						}
					}
					if offStats.EnvelopePruned != 0 || offStats.LBCells != 0 {
						t.Errorf("%s: disabled cascade counted work", label)
					}
					if onStats.EnvelopePruned != parStats.EnvelopePruned || onStats.LBCells != parStats.LBCells {
						t.Errorf("%s: serial/parallel cascade counters diverge: (%d,%d) vs (%d,%d)",
							label, onStats.EnvelopePruned, onStats.LBCells, parStats.EnvelopePruned, parStats.LBCells)
					}
					if onStats.FilterCells > offStats.FilterCells {
						t.Errorf("%s: cascade increased filter work: %d > %d", label, onStats.FilterCells, offStats.FilterCells)
					}
					// Ground truth: the window-matched sequential scan.
					want, _, err := SeqScan(data, q, eps, window)
					if err != nil {
						t.Fatal(err)
					}
					if len(on) != len(want) {
						t.Fatalf("%s: index %d matches, seqscan %d", label, len(on), len(want))
					}
				}
				ix.Close()
			}
		}
	}
}
