package multivar

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"twsearch/internal/categorize"
	"twsearch/internal/suffixtree"
)

// Vector dataset binary format:
//
//	magic  [8]byte "TWVECDB1"
//	dim    uint16
//	count  uint32
//	per sequence: idLen uint16, id, n uint32, n*dim float64 (row-major)
var vecMagic = [8]byte{'T', 'W', 'V', 'E', 'C', 'D', 'B', '1'}

// ErrBadVecMagic reports that a stream is not a vector dataset.
var ErrBadVecMagic = errors.New("multivar: bad magic, not a TWVECDB1 stream")

// WriteBinary serializes the dataset.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(vecMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(d.dim)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(d.seqs))); err != nil {
		return err
	}
	for _, s := range d.seqs {
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s.ID))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Points))); err != nil {
			return err
		}
		for _, p := range s.Points {
			if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a stream written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("multivar: reading magic: %w", err)
	}
	if magic != vecMagic {
		return nil, ErrBadVecMagic
	}
	var dim uint16
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	d := NewDataset(int(dim))
	for i := uint32(0); i < count; i++ {
		var idLen uint16
		if err := binary.Read(br, binary.LittleEndian, &idLen); err != nil {
			return nil, fmt.Errorf("multivar: seq %d: %w", i, err)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(br, idBuf); err != nil {
			return nil, err
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		points := make([][]float64, n)
		for j := range points {
			p := make([]float64, dim)
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, fmt.Errorf("multivar: seq %d point %d: %w", i, j, err)
			}
			points[j] = p
		}
		if _, err := d.Add(Sequence{ID: string(idBuf), Points: points}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset file written by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Grid scheme binary format:
//
//	magic   [8]byte "TWGRID01"
//	dim     uint16
//	per dim: one categorize scheme (its own framed format)
//	cells   uint32, then per cell: key uint64, sym int32
//	boxes   per symbol (ascending): dim × (lo, hi float64)
var gridMagic = [8]byte{'T', 'W', 'G', 'R', 'I', 'D', '0', '1'}

// ErrBadGridMagic reports that a stream is not a grid scheme.
var ErrBadGridMagic = errors.New("multivar: bad magic, not a TWGRID01 stream")

// Write serializes the grid scheme.
func (g *GridScheme) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(gridMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(g.dims))); err != nil {
		return err
	}
	for _, s := range g.dims {
		if err := s.Write(bw); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(g.cells))); err != nil {
		return err
	}
	// Deterministic cell order.
	keys := make([]uint64, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := binary.Write(bw, binary.LittleEndian, k); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int32(g.cells[k])); err != nil {
			return err
		}
	}
	for _, box := range g.boxes {
		if err := binary.Write(bw, binary.LittleEndian, box.Lo); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, box.Hi); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGrid parses a stream written by Write.
func ReadGrid(r io.Reader) (*GridScheme, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("multivar: reading grid magic: %w", err)
	}
	if magic != gridMagic {
		return nil, ErrBadGridMagic
	}
	var dim uint16
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	g := &GridScheme{
		dims:  make([]*categorize.Scheme, dim),
		cells: make(map[uint64]suffixtree.Symbol),
	}
	for k := range g.dims {
		s, err := categorize.ReadScheme(br)
		if err != nil {
			return nil, fmt.Errorf("multivar: dim %d scheme: %w", k, err)
		}
		g.dims[k] = s
	}
	var nCells uint32
	if err := binary.Read(br, binary.LittleEndian, &nCells); err != nil {
		return nil, err
	}
	maxSym := suffixtree.Symbol(-1)
	for i := uint32(0); i < nCells; i++ {
		var key uint64
		var sym int32
		if err := binary.Read(br, binary.LittleEndian, &key); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &sym); err != nil {
			return nil, err
		}
		g.cells[key] = suffixtree.Symbol(sym)
		if suffixtree.Symbol(sym) > maxSym {
			maxSym = suffixtree.Symbol(sym)
		}
	}
	if int(maxSym)+1 != int(nCells) {
		return nil, fmt.Errorf("multivar: grid symbols not dense (%d cells, max symbol %d)", nCells, maxSym)
	}
	g.boxes = make([]Box, nCells)
	for i := range g.boxes {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		if err := binary.Read(br, binary.LittleEndian, lo); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, hi); err != nil {
			return nil, err
		}
		g.boxes[i] = Box{Lo: lo, Hi: hi}
	}
	return g, nil
}
