package categorize

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Scheme binary format:
//
//	magic  [8]byte  "TWCATSC1"
//	kind   uint8    0=EL 1=ME 2=KM 3=ID
//	count  uint32   number of categories
//	per category: Lo, Hi, ObsLo, ObsHi float64, Count uint64
//
// A persisted index directory stores its scheme next to the tree file so a
// reopened database encodes queries' candidate subsequences identically.

var schemeMagic = [8]byte{'T', 'W', 'C', 'A', 'T', 'S', 'C', '1'}

// ErrBadSchemeFile reports a malformed scheme stream.
var ErrBadSchemeFile = errors.New("categorize: not a TWCATSC1 scheme stream")

var kindCodes = map[Kind]uint8{
	KindEqualLength: 0,
	KindMaxEntropy:  1,
	KindKMeans:      2,
	KindIdentity:    3,
}

var codeKinds = map[uint8]Kind{
	0: KindEqualLength,
	1: KindMaxEntropy,
	2: KindKMeans,
	3: KindIdentity,
}

// Write serializes the scheme to w in the TWCATSC1 binary format.
func (s *Scheme) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(schemeMagic[:]); err != nil {
		return err
	}
	code, ok := kindCodes[s.kind]
	if !ok {
		return fmt.Errorf("categorize: unknown kind %q", s.kind)
	}
	if err := bw.WriteByte(code); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.cats))); err != nil {
		return err
	}
	for _, c := range s.cats {
		for _, f := range []float64{c.Lo, c.Hi, c.ObsLo, c.ObsHi} {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(c.Count)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadScheme parses a stream written by Write. It reads exactly the bytes
// the scheme occupies (no read-ahead), so several framed structures can
// share one stream.
func ReadScheme(r io.Reader) (*Scheme, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("categorize: reading magic: %w", err)
	}
	if magic != schemeMagic {
		return nil, ErrBadSchemeFile
	}
	var codeBuf [1]byte
	if _, err := io.ReadFull(r, codeBuf[:]); err != nil {
		return nil, fmt.Errorf("categorize: reading kind: %w", err)
	}
	kind, ok := codeKinds[codeBuf[0]]
	if !ok {
		return nil, fmt.Errorf("categorize: unknown kind code %d", codeBuf[0])
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("categorize: reading category count: %w", err)
	}
	cats := make([]Category, count)
	uppers := make([]float64, count)
	for i := range cats {
		var f [4]float64
		for j := range f {
			if err := binary.Read(r, binary.LittleEndian, &f[j]); err != nil {
				return nil, fmt.Errorf("categorize: category %d: %w", i, err)
			}
		}
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("categorize: category %d count: %w", i, err)
		}
		cats[i] = Category{Lo: f[0], Hi: f[1], ObsLo: f[2], ObsHi: f[3], Count: int(n)}
		uppers[i] = f[1]
	}
	return &Scheme{kind: kind, cats: cats, uppers: uppers}, nil
}
