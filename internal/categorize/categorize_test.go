package categorize

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"twsearch/internal/dtw"
)

func randValues(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64()*1000) / 100
	}
	return vals
}

func TestEqualLengthBasics(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	s, err := EqualLength(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindEqualLength {
		t.Fatalf("kind = %q", s.Kind())
	}
	if s.NumCategories() != 5 {
		t.Fatalf("categories = %d, want 5", s.NumCategories())
	}
	// Width (10-0)/5 = 2 per bin.
	for i := 0; i < 5; i++ {
		c := s.Category(i)
		if math.Abs((c.Hi-c.Lo)-2) > 1e-12 {
			t.Errorf("category %d width = %v", i, c.Hi-c.Lo)
		}
	}
	// Every fitted value maps inside its category's observed interval.
	for _, v := range vals {
		iv := s.Interval(s.Symbol(v))
		if v < iv.Lo || v > iv.Hi {
			t.Errorf("value %v outside interval %+v of its own category", v, iv)
		}
	}
}

func TestEqualLengthPaperExample(t *testing.T) {
	// Section 5's example: C1=[0.1,3.9], C2=[4.0,10.0] maps
	// S7=<5.27,2.56,3.85> to <C2,C1,C1>. We fit EL with 2 bins on values
	// spanning [0.1, 10.0]; the midpoint boundary 5.05 reproduces the same
	// symbol pattern.
	vals := []float64{0.1, 3.9, 4.0, 10.0, 5.27, 2.56, 3.85}
	s, err := EqualLength(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Encode([]float64{5.27, 2.56, 3.85})
	want := []Symbol{1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Encode = %v, want %v", got, want)
	}
}

func TestMaxEntropyEqualCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randValues(rng, 10000)
	s, err := MaxEntropy(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCategories() != 10 {
		t.Fatalf("categories = %d, want 10", s.NumCategories())
	}
	for i := 0; i < s.NumCategories(); i++ {
		c := s.Category(i)
		if c.Count < 800 || c.Count > 1200 {
			t.Errorf("category %d count = %d, far from uniform 1000", i, c.Count)
		}
	}
	// ME entropy should be close to log2(10).
	if h := s.Entropy(); h < 3.2 {
		t.Errorf("entropy = %v, want near %v", h, math.Log2(10))
	}
}

func TestMaxEntropyBeatsEqualLengthOnSkewedData(t *testing.T) {
	// Heavily skewed data: EL wastes bins on the empty range, ME does not.
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()) // log-normal
	}
	el, err := EqualLength(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	me, err := MaxEntropy(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	if me.Entropy() <= el.Entropy() {
		t.Errorf("ME entropy %v <= EL entropy %v on skewed data", me.Entropy(), el.Entropy())
	}
}

func TestMaxEntropyHeavyTies(t *testing.T) {
	// 90% of values identical: boundaries collapse instead of duplicating.
	vals := make([]float64, 100)
	for i := range vals {
		if i < 90 {
			vals[i] = 5
		} else {
			vals[i] = float64(i)
		}
	}
	s, err := MaxEntropy(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCategories() > 10 || s.NumCategories() < 1 {
		t.Fatalf("categories = %d", s.NumCategories())
	}
	// All fitted values must still encode into categories containing them.
	for _, v := range vals {
		iv := s.Interval(s.Symbol(v))
		if v < iv.Lo || v > iv.Hi {
			t.Fatalf("value %v outside its interval %+v", v, iv)
		}
	}
}

func TestKMeans(t *testing.T) {
	// Three well-separated clusters must be recovered exactly.
	var vals []float64
	rng := rand.New(rand.NewSource(7))
	for _, center := range []float64{0, 100, 200} {
		for i := 0; i < 100; i++ {
			vals = append(vals, center+rng.Float64())
		}
	}
	s, err := KMeans(vals, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCategories() != 3 {
		t.Fatalf("categories = %d, want 3", s.NumCategories())
	}
	for i, c := range []float64{0.5, 100.5, 200.5} {
		if got := int(s.Symbol(c)); got != i {
			t.Errorf("Symbol(%v) = %d, want %d", c, got, i)
		}
	}
	for i := 0; i < 3; i++ {
		if n := s.Category(i).Count; n != 100 {
			t.Errorf("category %d count = %d, want 100", i, n)
		}
	}
}

func TestIdentityIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := randValues(rng, 500)
	s, err := Identity(vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		iv := s.Interval(s.Symbol(v))
		if iv.Lo != v || iv.Hi != v {
			t.Fatalf("identity interval of %v is %+v, want point", v, iv)
		}
	}
	// Distinct values get distinct symbols.
	a, b := s.Symbol(vals[0]), s.Symbol(vals[0])
	if a != b {
		t.Fatal("same value mapped to different symbols")
	}
}

func TestDegenerateSingleValue(t *testing.T) {
	vals := []float64{7, 7, 7}
	for _, kind := range []Kind{KindEqualLength, KindMaxEntropy, KindKMeans, KindIdentity} {
		s, err := Fit(kind, vals, 10, 10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.NumCategories() != 1 {
			t.Errorf("%s: categories = %d, want 1", kind, s.NumCategories())
		}
		if s.Symbol(7) != 0 {
			t.Errorf("%s: Symbol(7) != 0", kind)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := EqualLength(nil, 5); err != ErrNoValues {
		t.Errorf("EqualLength(nil): err = %v", err)
	}
	if _, err := MaxEntropy([]float64{1}, 0); err != ErrBadCount {
		t.Errorf("MaxEntropy count 0: err = %v", err)
	}
	if _, err := Fit("bogus", []float64{1}, 2, 2); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSymbolTotal(t *testing.T) {
	// Out-of-sample values (queries can have them) must clamp, not panic.
	s, err := EqualLength([]float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Symbol(-100) != 0 {
		t.Error("below-range value not clamped to first category")
	}
	if int(s.Symbol(100)) != s.NumCategories()-1 {
		t.Error("above-range value not clamped to last category")
	}
}

// Property: for every fitted categorizer and every fitted value v,
// the observed interval of v's category contains v, and the interval is
// contained in the boundary range. This is exactly what Theorem 2 needs
// from the categorization layer.
func TestQuickIntervalsContainValues(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		vals := randValues(rng, 1+rng.Intn(300))
		c := 1 + rng.Intn(20)
		for _, kind := range []Kind{KindEqualLength, KindMaxEntropy, KindKMeans, KindIdentity} {
			s, err := Fit(kind, vals, c, 10)
			if err != nil {
				return false
			}
			for _, v := range vals {
				cat := s.Category(int(s.Symbol(v)))
				if v < cat.ObsLo || v > cat.ObsHi {
					return false
				}
				if cat.ObsLo < cat.Lo-1e-9 || cat.ObsHi > cat.Hi+1e-9 {
					return false
				}
			}
			// Counts sum to the number of fitted values.
			total := 0
			for i := 0; i < s.NumCategories(); i++ {
				total += s.Category(i).Count
			}
			if total != len(vals) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lower-bound distance through any categorizer never exceeds
// the exact distance (Theorem 2 end to end at the categorize+dtw level).
func TestQuickTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		vals := randValues(rng, 50+rng.Intn(100))
		c := 1 + rng.Intn(15)
		for _, kind := range []Kind{KindEqualLength, KindMaxEntropy, KindKMeans} {
			s, err := Fit(kind, vals, c, 10)
			if err != nil {
				return false
			}
			// Pick a subsequence of the fitted data and a random query.
			start := rng.Intn(len(vals) - 1)
			end := start + 1 + rng.Intn(len(vals)-start-1)
			sub := vals[start:end]
			q := randValues(rng, 1+rng.Intn(12))
			syms := s.Encode(sub)
			ivs := make([]dtw.Interval, len(syms))
			for i, sym := range syms {
				ivs[i] = s.Interval(sym)
			}
			if dtw.DistanceIntervals(q, ivs) > dtw.Distance(sub, q)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHeads(t *testing.T) {
	syms := []Symbol{1, 1, 1, 3, 2, 2}
	got := RunHeads(syms)
	want := []int{0, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunHeads = %v, want %v", got, want)
	}
	if RunLengthAt(syms, 0) != 3 || RunLengthAt(syms, 3) != 1 || RunLengthAt(syms, 4) != 2 {
		t.Fatal("RunLengthAt wrong")
	}
	if RunHeads(nil) != nil {
		t.Fatal("RunHeads(nil) != nil")
	}
}

// Property: run heads partition the sequence into maximal equal runs.
func TestQuickRunHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func() bool {
		n := 1 + rng.Intn(50)
		syms := make([]Symbol, n)
		for i := range syms {
			syms[i] = Symbol(rng.Intn(3))
		}
		heads := RunHeads(syms)
		covered := 0
		for i, h := range heads {
			runLen := RunLengthAt(syms, h)
			if h != covered {
				return false
			}
			covered += runLen
			// Run content equal, and differs from the next run's first symbol.
			for j := h; j < h+runLen; j++ {
				if syms[j] != syms[h] {
					return false
				}
			}
			if i+1 < len(heads) && syms[heads[i+1]] == syms[h] {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelSelect(t *testing.T) {
	m := CostModel{Wt: 1, Ws: 0.001}
	measures := []Measure{
		{Count: 10, TimeCost: 100, SpaceCost: 500},
		{Count: 80, TimeCost: 20, SpaceCost: 4000},
		{Count: 300, TimeCost: 25, SpaceCost: 25000},
	}
	best, err := m.SelectCount(measures)
	if err != nil {
		t.Fatal(err)
	}
	if best.Count != 80 {
		t.Fatalf("best count = %d, want 80", best.Count)
	}
	if _, err := m.SelectCount(nil); err == nil {
		t.Fatal("empty measures accepted")
	}
	// Space-dominated weights flip the choice.
	m2 := CostModel{Wt: 0.001, Ws: 1}
	best2, _ := m2.SelectCount(measures)
	if best2.Count != 10 {
		t.Fatalf("space-weighted best = %d, want 10", best2.Count)
	}
}

func TestSchemeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := randValues(rng, 200)
	for _, kind := range []Kind{KindEqualLength, KindMaxEntropy, KindKMeans, KindIdentity} {
		s, err := Fit(kind, vals, 7, 10)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatalf("%s Write: %v", kind, err)
		}
		got, err := ReadScheme(&buf)
		if err != nil {
			t.Fatalf("%s ReadScheme: %v", kind, err)
		}
		if got.Kind() != s.Kind() || got.NumCategories() != s.NumCategories() {
			t.Fatalf("%s: header mismatch", kind)
		}
		for i := 0; i < s.NumCategories(); i++ {
			if got.Category(i) != s.Category(i) {
				t.Fatalf("%s: category %d mismatch: %+v vs %+v", kind, i, got.Category(i), s.Category(i))
			}
		}
		// Same encoding behaviour after the round trip.
		probe := randValues(rng, 50)
		if !reflect.DeepEqual(got.Encode(probe), s.Encode(probe)) {
			t.Fatalf("%s: encoding differs after round trip", kind)
		}
	}
}

func TestReadSchemeErrors(t *testing.T) {
	if _, err := ReadScheme(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := ReadScheme(bytes.NewReader([]byte("XXXXXXXXrest"))); err == nil {
		t.Error("bad magic accepted")
	}
}
