package categorize

import (
	"bytes"
	"testing"
)

// FuzzReadScheme must never panic; accepted schemes must encode values into
// categories that contain them within their boundary range.
func FuzzReadScheme(f *testing.F) {
	s, err := MaxEntropy([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TWCATSC1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadScheme(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.NumCategories() == 0 {
			return
		}
		// Symbol must be total and in range for any probe value.
		for _, v := range []float64{-1e18, -1, 0, 1, 1e18} {
			sym := got.Symbol(v)
			if int(sym) < 0 || int(sym) >= got.NumCategories() {
				t.Fatalf("Symbol(%v) = %d out of range", v, sym)
			}
		}
	})
}

// FuzzFit derives a value set and category count from fuzz input and checks
// the fitting invariants for every method.
func FuzzFit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 200}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, c uint8) {
		if len(data) == 0 {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		vals := make([]float64, len(data))
		for i, b := range data {
			vals[i] = float64(int(b)-128) / 3
		}
		count := int(c)%16 + 1
		for _, kind := range []Kind{KindEqualLength, KindMaxEntropy, KindKMeans, KindIdentity} {
			s, err := Fit(kind, vals, count, 8)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			total := 0
			for i := 0; i < s.NumCategories(); i++ {
				cat := s.Category(i)
				total += cat.Count
				if cat.ObsLo > cat.ObsHi {
					t.Fatalf("%s: inverted observed interval %+v", kind, cat)
				}
			}
			if total != len(vals) {
				t.Fatalf("%s: counts %d != %d values", kind, total, len(vals))
			}
			for _, v := range vals {
				iv := s.Interval(s.Symbol(v))
				if v < iv.Lo || v > iv.Hi {
					t.Fatalf("%s: value %v outside its interval %+v", kind, v, iv)
				}
			}
		}
	})
}
