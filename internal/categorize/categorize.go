// Package categorize converts sequences of continuous values into sequences
// of discrete category symbols (Section 5 of the paper). A small alphabet
// lengthens and multiplies the common prefixes among suffixes, which is what
// makes the categorized suffix tree ST_C compact and fast to search.
//
// Three fitted categorizers are provided — equal-length (EL), maximum-entropy
// (ME), and k-means — plus an identity scheme with one point category per
// distinct value, which turns the categorized machinery back into the exact
// suffix tree ST of Section 4.
//
// Every category records the minimum and maximum element value actually
// observed inside it (the paper's B.lb and B.ub); those bounds feed the
// lower-bound base distance D_base-lb of Definition 3.
package categorize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"twsearch/internal/dtw"
)

// Symbol is a category index. Symbols are dense, starting at 0. Negative
// values are never produced; the suffix-tree layer reserves them for
// per-sequence terminators.
type Symbol int32

// Category is one bin of a categorization scheme.
type Category struct {
	// Lo and Hi are the assignment boundaries: values v in (Lo, Hi] map to
	// this category; the first category also includes its lower bound.
	Lo, Hi float64
	// ObsLo and ObsHi are the smallest and largest values observed in this
	// category while fitting — the paper's B.lb and B.ub. They are what the
	// lower-bound distance uses, and they are never wider than [Lo, Hi].
	ObsLo, ObsHi float64
	// Count is the number of fitted values that fell in this category.
	Count int
}

// Kind names a categorization method.
type Kind string

// The available categorization methods.
const (
	KindEqualLength Kind = "equal-length"
	KindMaxEntropy  Kind = "max-entropy"
	KindKMeans      Kind = "k-means"
	KindIdentity    Kind = "identity"
)

// Scheme assigns values to categories and reports the observed interval of
// each category. A Scheme is immutable after construction and safe for
// concurrent use.
type Scheme struct {
	kind Kind
	cats []Category
	// uppers[i] is the assignment upper boundary of category i (== cats[i].Hi);
	// kept separately for binary search.
	uppers []float64
}

// ErrNoValues is returned when a categorizer is fitted on an empty value set.
var ErrNoValues = errors.New("categorize: no values to fit")

// ErrBadCount is returned when the requested category count is < 1.
var ErrBadCount = errors.New("categorize: category count must be >= 1")

// Kind returns the method that produced this scheme.
func (s *Scheme) Kind() Kind { return s.kind }

// NumCategories returns the number of categories.
func (s *Scheme) NumCategories() int { return len(s.cats) }

// Category returns the i-th category.
func (s *Scheme) Category(i int) Category { return s.cats[i] }

// Symbol maps a value to its category symbol. Values below the first
// boundary map to category 0 and values above the last map to the final
// category, so encoding is total.
func (s *Scheme) Symbol(v float64) Symbol {
	// First category whose upper boundary admits v.
	i := sort.SearchFloat64s(s.uppers, v)
	if i >= len(s.cats) {
		i = len(s.cats) - 1
	}
	return Symbol(i)
}

// Interval returns the observed value interval [B.lb, B.ub] of a symbol,
// ready for dtw.BaseInterval.
func (s *Scheme) Interval(sym Symbol) dtw.Interval {
	c := s.cats[sym]
	return dtw.Interval{Lo: c.ObsLo, Hi: c.ObsHi}
}

// Encode converts a numeric sequence to its categorized form CS.
func (s *Scheme) Encode(vals []float64) []Symbol {
	out := make([]Symbol, len(vals))
	for i, v := range vals {
		out[i] = s.Symbol(v)
	}
	return out
}

// Entropy returns H(C) = -Σ P(C_i) log2 P(C_i) over the fitted counts.
// Categories with zero observations contribute nothing.
func (s *Scheme) Entropy() float64 {
	total := 0
	for _, c := range s.cats {
		total += c.Count
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range s.cats {
		if c.Count == 0 {
			continue
		}
		p := float64(c.Count) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// newScheme assigns values to the given ascending boundaries and fills in
// observed bounds and counts. uppers must be ascending; uppers[len-1] must
// admit the largest value.
func newScheme(kind Kind, values []float64, lowers, uppers []float64) *Scheme {
	cats := make([]Category, len(uppers))
	for i := range cats {
		cats[i] = Category{Lo: lowers[i], Hi: uppers[i], ObsLo: math.Inf(1), ObsHi: math.Inf(-1)}
	}
	s := &Scheme{kind: kind, cats: cats, uppers: uppers}
	for _, v := range values {
		i := s.Symbol(v)
		c := &s.cats[i]
		c.Count++
		if v < c.ObsLo {
			c.ObsLo = v
		}
		if v > c.ObsHi {
			c.ObsHi = v
		}
	}
	// Empty categories get their boundary range as the observed interval so
	// Interval stays well-defined (they can still be produced by Symbol for
	// out-of-sample values).
	for i := range s.cats {
		if s.cats[i].Count == 0 {
			s.cats[i].ObsLo, s.cats[i].ObsHi = s.cats[i].Lo, s.cats[i].Hi
		}
	}
	return s
}

// EqualLength fits the paper's equal-length (EL) categorization: c bins of
// identical width (MAX-MIN)/c over the fitted values.
func EqualLength(values []float64, c int) (*Scheme, error) {
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	if c < 1 {
		return nil, ErrBadCount
	}
	min, max := minMax(values)
	//lint:ignore floateq exact equality detects fully degenerate data; any nonzero spread is a valid bin width
	if min == max {
		// Degenerate data: one real bin is enough regardless of c.
		return newScheme(KindEqualLength, values, []float64{min}, []float64{max}), nil
	}
	width := (max - min) / float64(c)
	lowers := make([]float64, c)
	uppers := make([]float64, c)
	for i := 0; i < c; i++ {
		lowers[i] = min + float64(i)*width
		uppers[i] = min + float64(i+1)*width
	}
	uppers[c-1] = max // avoid the largest value falling off the end
	return newScheme(KindEqualLength, values, lowers, uppers), nil
}

// MaxEntropy fits the paper's maximum-entropy (ME) categorization: category
// boundaries are placed at quantiles so every category holds (as nearly as
// possible, given ties) the same number of fitted values, which maximizes
// H(C).
func MaxEntropy(values []float64, c int) (*Scheme, error) {
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	if c < 1 {
		return nil, ErrBadCount
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	min, max := sorted[0], sorted[len(sorted)-1]
	//lint:ignore floateq exact equality detects fully degenerate data; quantile boundaries are valid for any nonzero spread
	if min == max {
		return newScheme(KindMaxEntropy, values, []float64{min}, []float64{max}), nil
	}
	// Boundary i sits at the ((i+1)/c)-quantile. Duplicate boundaries (heavy
	// ties) are collapsed, so the scheme may end up with fewer than c
	// categories rather than empty ones.
	var uppers []float64
	for i := 0; i < c-1; i++ {
		q := sorted[(i+1)*len(sorted)/c]
		if len(uppers) == 0 || q > uppers[len(uppers)-1] {
			uppers = append(uppers, q)
		}
	}
	if len(uppers) == 0 || max > uppers[len(uppers)-1] {
		uppers = append(uppers, max)
	}
	lowers := make([]float64, len(uppers))
	lowers[0] = min
	for i := 1; i < len(uppers); i++ {
		lowers[i] = uppers[i-1]
	}
	return newScheme(KindMaxEntropy, values, lowers, uppers), nil
}

// KMeans fits a 1-D k-means categorization (mentioned by the paper as an
// alternative method). Centroids are initialized at quantiles and refined
// with Lloyd iterations; category boundaries are the midpoints between
// neighboring centroids.
func KMeans(values []float64, c, iters int) (*Scheme, error) {
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	if c < 1 {
		return nil, ErrBadCount
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	min, max := sorted[0], sorted[len(sorted)-1]
	//lint:ignore floateq exact equality detects fully degenerate data; clustering is meaningful for any nonzero spread
	if min == max || c == 1 {
		return newScheme(KindKMeans, values, []float64{min}, []float64{max}), nil
	}
	// Quantile initialization keeps centroids distinct and deterministic.
	centroids := make([]float64, 0, c)
	for i := 0; i < c; i++ {
		q := sorted[i*len(sorted)/c+len(sorted)/(2*c)]
		if len(centroids) == 0 || q > centroids[len(centroids)-1] {
			centroids = append(centroids, q)
		}
	}
	for iter := 0; iter < iters; iter++ {
		sums := make([]float64, len(centroids))
		counts := make([]int, len(centroids))
		// Values are sorted, centroids ascending: sweep with a moving index.
		j := 0
		for _, v := range sorted {
			for j+1 < len(centroids) && math.Abs(centroids[j+1]-v) <= math.Abs(centroids[j]-v) {
				j++
			}
			sums[j] += v
			counts[j]++
		}
		moved := false
		next := centroids[:0:0]
		for i := range centroids {
			if counts[i] == 0 {
				continue // drop empty clusters
			}
			m := sums[i] / float64(counts[i])
			if len(next) > 0 && m <= next[len(next)-1] {
				continue // keep centroids strictly ascending
			}
			//lint:ignore floateq exact fixpoint test: iteration stops when centroids stop changing at all, and the loop is bounded by iters regardless
			if m != centroids[i] {
				moved = true
			}
			next = append(next, m)
		}
		if len(next) != len(centroids) {
			moved = true
		}
		centroids = next
		if !moved {
			break
		}
	}
	uppers := make([]float64, len(centroids))
	lowers := make([]float64, len(centroids))
	lowers[0] = min
	for i := 0; i < len(centroids)-1; i++ {
		uppers[i] = (centroids[i] + centroids[i+1]) / 2
		lowers[i+1] = uppers[i]
	}
	uppers[len(centroids)-1] = max
	return newScheme(KindKMeans, values, lowers, uppers), nil
}

// Identity builds a scheme with one point category per distinct fitted
// value. Encoding with it loses no information: the observed interval of
// every symbol is a single point, D_base-lb degenerates to the exact
// D_base, and the categorized suffix tree becomes the exact tree ST.
func Identity(values []float64) (*Scheme, error) {
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var uppers []float64
	for _, v := range sorted {
		if len(uppers) == 0 || v > uppers[len(uppers)-1] {
			uppers = append(uppers, v)
		}
	}
	lowers := append([]float64(nil), uppers...)
	return newScheme(KindIdentity, values, lowers, uppers), nil
}

// Fit dispatches on kind. The iters parameter is used by k-means only; the
// count parameter is ignored by the identity scheme.
func Fit(kind Kind, values []float64, count, iters int) (*Scheme, error) {
	switch kind {
	case KindEqualLength:
		return EqualLength(values, count)
	case KindMaxEntropy:
		return MaxEntropy(values, count)
	case KindKMeans:
		return KMeans(values, count, iters)
	case KindIdentity:
		return Identity(values)
	default:
		return nil, fmt.Errorf("categorize: unknown kind %q", kind)
	}
}

// RunHeads returns the indices p with syms[p] != syms[p-1] (and always 0):
// the start positions of the runs of equal symbols. These are exactly the
// suffixes the sparse suffix tree SST_C stores (Section 6.1).
func RunHeads(syms []Symbol) []int {
	if len(syms) == 0 {
		return nil
	}
	heads := []int{0}
	for p := 1; p < len(syms); p++ {
		if syms[p] != syms[p-1] {
			heads = append(heads, p)
		}
	}
	return heads
}

// RunLengthAt returns the number of consecutive elements equal to syms[p]
// starting at p.
func RunLengthAt(syms []Symbol, p int) int {
	n := 1
	for p+n < len(syms) && syms[p+n] == syms[p] {
		n++
	}
	return n
}

// CostModel weights query-processing cost against index-storage cost when
// choosing the number of categories (Section 5.1's W_t·C_t + W_s·C_s).
type CostModel struct {
	Wt float64 // weight of query-processing cost
	Ws float64 // weight of index-storage cost
}

// Measure reports the two costs of one candidate category count, in
// whatever consistent units the caller uses (e.g. seconds and kilobytes).
type Measure struct {
	Count     int
	TimeCost  float64
	SpaceCost float64
}

// SelectCount returns the candidate whose weighted cost is smallest. It
// returns an error when no measures are given.
func (m CostModel) SelectCount(measures []Measure) (Measure, error) {
	if len(measures) == 0 {
		return Measure{}, errors.New("categorize: no measures")
	}
	best := measures[0]
	bestCost := m.Wt*best.TimeCost + m.Ws*best.SpaceCost
	for _, meas := range measures[1:] {
		cost := m.Wt*meas.TimeCost + m.Ws*meas.SpaceCost
		if cost < bestCost {
			best, bestCost = meas, cost
		}
	}
	return best, nil
}

func minMax(values []float64) (min, max float64) {
	min, max = values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
