package core

import (
	"context"
	"sync"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
	"twsearch/internal/dtw"
)

// queryPool recycles per-query execution state (searcher) across the
// searches of one index. The index itself is immutable at query time — the
// tree, scheme, texts and raw data never change during a search — so all
// mutation lives in the pooled searcher, and any number of goroutines can
// search one Index concurrently, each holding its own searcher for the
// duration of the call.
//
// The pool lives behind a pointer on Index (not inline) so Dup's shallow
// copy shares it instead of copying a sync.Pool; Dup handles see the same
// scheme and dataset, so their searchers are interchangeable.
type queryPool struct {
	p sync.Pool
}

// acquire returns a searcher bound to this query, reusing a pooled one's
// allocations (tables, interval cache, scratch nodes, pending set) when
// available. Callers must release it when the search finishes.
//
//twlint:pool-transfer the searcher is handed to the caller; release returns it via qp.p.Put
func (qp *queryPool) acquire(ix *Index, ctx context.Context, q []float64, eps float64, visit func(Match) bool) *searcher {
	s, _ := qp.p.Get().(*searcher)
	if s == nil {
		s = &searcher{}
	}

	// On sparse trees the D_tw-lb2 shift moves a candidate's rows relative
	// to the query columns, so a Sakoe–Chiba band on the shared filter
	// table would be misaligned for shifted candidates and could dismiss
	// true answers. The unconstrained D_tw-lb is still a lower bound of the
	// band-constrained distance (constraints only increase D_tw), so for
	// sparse+window we filter unconstrained and let the banded
	// post-processing enforce the exact semantics; an explicit
	// answer-length cutoff (conclusion section) replaces the band's depth
	// pruning.
	filterWindow := ix.Window
	sparse := ix.Tree.Sparse()
	if sparse && ix.Window >= 0 {
		filterWindow = -1
	}

	s.ix = ix
	s.ctx = ctx
	s.ctxErr = nil
	s.q = q
	s.eps = eps
	s.sparse = sparse
	s.exactStored = ix.Exact && filterWindow == ix.Window
	s.seqOffsets = ix.seqOffsets
	s.visit = visit
	s.stopped = false
	s.stats = SearchStats{}
	s.matches = nil // ownership of the previous slice passed to its caller
	s.firstSym = 0
	s.base0 = 0
	s.spawnLevel = 0
	s.extStop = nil
	s.readAhead = false

	if s.table == nil {
		s.table = dtw.NewTableWindow(q, filterWindow)
		s.post = dtw.NewTableWindow(q, ix.Window)
	} else {
		s.table.Bind(q, filterWindow)
		s.post.Bind(q, ix.Window)
	}
	s.pend.Reset(ix.totalElements)

	// The envelope cascade runs under the same window as the filter table,
	// so its bounds are never tighter than what the table itself enforces.
	// Tier A (subtree hulls) additionally needs the v3 tree format: older
	// files decode the hull fields as zeros, which look like real hulls.
	s.envOn = !ix.DisableEnvelopes
	s.hullOn = s.envOn && ix.Tree.Encoding() == disktree.EncodingV3
	s.env.Bind(q, filterWindow)
	if len(s.envSums) == 0 {
		s.envSums = append(s.envSums, 0)
	}
	s.envSums[0] = 0
	s.envBase0 = 0

	// The symbol→interval cache depends only on the scheme, which is
	// immutable and shared by every handle that shares this pool, so a
	// pooled searcher computes it once and keeps it.
	if len(s.intervals) != ix.Scheme.NumCategories() {
		s.intervals = make([]dtw.Interval, ix.Scheme.NumCategories())
		for i := range s.intervals {
			s.intervals[i] = ix.Scheme.Interval(categorize.Symbol(i))
		}
	}
	return s
}

// release returns a searcher to the pool, dropping references to
// caller-owned state so nothing outlives the call it belongs to.
func (qp *queryPool) release(s *searcher) {
	s.ix = nil
	s.ctx = nil
	s.visit = nil
	s.matches = nil
	s.seqOffsets = nil
	s.tasks = nil // tasks reference forked tables; don't pin them in the pool
	s.extStop = nil
	qp.p.Put(s)
}

// scanTables recycles the cumulative table of the sequential-scan baseline,
// which has no index (and so no queryPool) to hang per-query state on.
var scanTables = sync.Pool{New: func() any { return &dtw.Table{} }}

// acquireScanTable returns a pooled table bound to q; hand it back with
// releaseScanTable.
//
//twlint:pool-transfer the table is handed to the caller; releaseScanTable returns it
func acquireScanTable(q []float64, window int) *dtw.Table {
	t := scanTables.Get().(*dtw.Table)
	t.Bind(q, window)
	return t
}

func releaseScanTable(t *dtw.Table) { scanTables.Put(t) }
