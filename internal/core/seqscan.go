package core

import (
	"context"
	"errors"
	"time"

	"twsearch/internal/sequence"
)

// SeqScan is the sequential-scanning baseline strengthened with the
// Theorem-1 early abandon: for every suffix of every sequence it grows a
// cumulative distance table row by row, reporting each prefix within eps
// and abandoning the suffix as soon as every column of a row exceeds eps.
// Its exact answers double as the ground truth the index searches are
// verified against. window < 0 disables the warping-window constraint.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable scans use SeqScanCtx
func SeqScan(data *sequence.Dataset, q []float64, eps float64, window int) ([]Match, SearchStats, error) {
	return seqScan(context.Background(), data, q, eps, window, true)
}

// SeqScanCtx is SeqScan with cancellation: ctx is polled once per suffix
// start, so an abort costs at most one cumulative-table scan and returns
// ctx.Err().
func SeqScanCtx(ctx context.Context, data *sequence.Dataset, q []float64, eps float64, window int) ([]Match, SearchStats, error) {
	return seqScan(ctx, data, q, eps, window, true)
}

// SeqScanFull is the paper's own baseline (Section 4.3): one full
// cumulative table per suffix, O(M·L̄²·|Q|) regardless of eps — no early
// abandon, which is why the paper's measured scan times barely vary with
// the threshold. Table 3's speedup factors are quoted against this.
//
//twlint:ctx-root measurement baseline, run to completion by design; the paper's timings assume no early abort
func SeqScanFull(data *sequence.Dataset, q []float64, eps float64, window int) ([]Match, SearchStats, error) {
	return seqScan(context.Background(), data, q, eps, window, false)
}

func seqScan(ctx context.Context, data *sequence.Dataset, q []float64, eps float64, window int, abandon bool) ([]Match, SearchStats, error) {
	if len(q) == 0 {
		return nil, SearchStats{}, errors.New("core: empty query")
	}
	if eps < 0 {
		return nil, SearchStats{}, errors.New("core: negative distance threshold")
	}
	started := time.Now()
	table := acquireScanTable(q, window)
	defer releaseScanTable(table)
	var matches []Match
	var stats SearchStats
	for seq := 0; seq < data.Len(); seq++ {
		vals := data.Values(seq)
		for p := 0; p < len(vals); p++ {
			if err := ctx.Err(); err != nil {
				stats.Elapsed = time.Since(started)
				return nil, stats, err
			}
			table.Truncate(0)
			for r, v := range vals[p:] {
				dist, minDist := table.AddRowValue(v)
				if dist <= eps {
					matches = append(matches, Match{
						Ref:      sequence.Ref{Seq: seq, Start: p, End: p + r + 1},
						Distance: dist,
					})
				}
				if abandon && minDist > eps {
					break
				}
			}
		}
	}
	stats.FilterCells = table.Cells()
	stats.Answers = uint64(len(matches))
	stats.Elapsed = time.Since(started)
	sortMatches(matches)
	return matches, stats, nil
}
