package core

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
)

// matchesIdentical is matchesEqual with no tolerance: the envelope cascade
// only skips work, it never reroutes a surviving candidate through different
// arithmetic, so answers must be bit-identical across every tier toggle.
func matchesIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnvelopeCascadeIdentity: for every index variant, window, and tree
// encoding, the answer set is bit-identical across (cascade on, cascade
// off) × (serial, parallel), and agrees with the sequential scan. The
// cascade counters are exactly zero when disabled and exactly equal between
// serial and parallel runs (the join barrier merges path-local counts).
func TestEnvelopeCascadeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	dir := t.TempDir()
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		data := randomWalkDataset(rng, 3+rng.Intn(3), 25)
		queries := [][]float64{randomQuery(rng, 8), randomQuery(rng, 4)}
		for vi, v := range variants() {
			for _, window := range []int{-1, 3} {
				for _, enc := range []disktree.Encoding{disktree.EncodingV2, disktree.EncodingV3} {
					opts := v.opts
					opts.Window = window
					opts.Encoding = enc
					opts.Build.BatchSize = 2
					path := filepath.Join(dir, fmt.Sprintf("ix-%d-%d-%d-%s.twt", trial, vi, window, enc))
					ix, err := Build(data, path, opts)
					if err != nil {
						t.Fatalf("%s w=%d %s: Build: %v", v.name, window, enc, err)
					}
					for _, q := range queries {
						for _, eps := range []float64{1.5, 9.5} {
							label := fmt.Sprintf("%s w=%d %s eps=%v |q|=%d", v.name, window, enc, eps, len(q))

							on, onStats, err := ix.Search(q, eps)
							if err != nil {
								t.Fatalf("%s: Search: %v", label, err)
							}
							ix.DisableEnvelopes = true
							off, offStats, err := ix.Search(q, eps)
							ix.DisableEnvelopes = false
							if err != nil {
								t.Fatalf("%s: Search (cascade off): %v", label, err)
							}
							par, parStats, err := ix.SearchOpts(ctx, q, eps, SearchOptions{Parallelism: 3})
							if err != nil {
								t.Fatalf("%s: SearchOpts: %v", label, err)
							}

							if !matchesIdentical(on, off) {
								t.Fatalf("%s: cascade changed answers: %d on, %d off", label, len(on), len(off))
							}
							if !matchesIdentical(on, par) {
								t.Fatalf("%s: parallel+cascade changed answers: %d serial, %d parallel", label, len(on), len(par))
							}
							want, _, err := SeqScan(data, q, eps, window)
							if err != nil {
								t.Fatal(err)
							}
							if !matchesEqual(on, want) {
								t.Fatalf("%s: index %d matches, seqscan %d", label, len(on), len(want))
							}

							if offStats.EnvelopePruned != 0 || offStats.LBCells != 0 {
								t.Errorf("%s: disabled cascade counted work: pruned=%d lbcells=%d",
									label, offStats.EnvelopePruned, offStats.LBCells)
							}
							if onStats.EnvelopePruned != parStats.EnvelopePruned || onStats.LBCells != parStats.LBCells {
								t.Errorf("%s: serial/parallel cascade counters diverge: (%d,%d) vs (%d,%d)",
									label, onStats.EnvelopePruned, onStats.LBCells,
									parStats.EnvelopePruned, parStats.LBCells)
							}
							if onStats.NodesVisited != parStats.NodesVisited {
								t.Errorf("%s: serial/parallel NodesVisited diverge: %d vs %d",
									label, onStats.NodesVisited, parStats.NodesVisited)
							}
							if onStats.FilterCells > offStats.FilterCells {
								t.Errorf("%s: cascade increased filter work: %d > %d",
									label, onStats.FilterCells, offStats.FilterCells)
							}
						}
					}
					if err := ix.RemoveFile(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestEnvelopeCascadeReducesWork: on a selective query the cascade must
// actually fire, and the v3 subtree hulls must additionally cut node reads
// — the headline effect the format exists for.
func TestEnvelopeCascadeReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(337))
	data := randomWalkDataset(rng, 12, 60)
	q := randomQuery(rng, 10)
	// A tight threshold makes the traversal prune-bound: exactly where the
	// cascade should win.
	const eps = 2.5
	dir := t.TempDir()
	for _, enc := range []disktree.Encoding{disktree.EncodingV2, disktree.EncodingV3} {
		ix, err := Build(data, filepath.Join(dir, "ix-"+enc.String()+".twt"), Options{
			Kind: categorize.KindMaxEntropy, Categories: 8, Encoding: enc,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, on, err := ix.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		ix.DisableEnvelopes = true
		_, off, err := ix.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if on.EnvelopePruned == 0 {
			t.Errorf("%s: cascade never fired", enc)
		}
		if on.FilterCells >= off.FilterCells {
			t.Errorf("%s: cascade did not cut filter cells: %d vs %d", enc, on.FilterCells, off.FilterCells)
		}
		if enc == disktree.EncodingV3 && on.NodesVisited >= off.NodesVisited {
			t.Errorf("v3: subtree hulls did not cut node reads: %d vs %d", on.NodesVisited, off.NodesVisited)
		}
		if err := ix.RemoveFile(); err != nil {
			t.Fatal(err)
		}
	}
}
