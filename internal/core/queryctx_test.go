package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"twsearch/internal/categorize"
)

// TestQueryCtxReuse runs many sequential queries of varying shapes through
// one index, so the pooled query contexts are reused over and over, and
// checks every answer set against both a first-run baseline and the brute
// force. Any pending-set epoch bug or table-rebind bug that leaks state
// from one query into the next shows up as a diff here.
func TestQueryCtxReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	data := randomWalkDataset(rng, 6, 40)
	ix, err := Build(data, filepath.Join(t.TempDir(), "reuse.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 8, Sparse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	type probe struct {
		q   []float64
		eps float64
	}
	probes := make([]probe, 10)
	baseline := make([][]Match, len(probes))
	for i := range probes {
		probes[i] = probe{q: randomQuery(rng, 8), eps: float64(2 + rng.Intn(12))}
		ms, _, err := ix.Search(probes[i].q, probes[i].eps)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = ms
		want := bruteForce(data, probes[i].q, probes[i].eps, -1)
		if !matchesEqual(ms, want) {
			t.Fatalf("probe %d: first run already disagrees with brute force", i)
		}
	}

	// Replay the probes in a shuffled order several times: each repeat
	// reuses a pooled context previously bound to a different query.
	for round := 0; round < 5; round++ {
		order := rng.Perm(len(probes))
		for _, i := range order {
			ms, _, err := ix.Search(probes[i].q, probes[i].eps)
			if err != nil {
				t.Fatalf("round %d probe %d: %v", round, i, err)
			}
			if len(ms) != len(baseline[i]) {
				t.Fatalf("round %d probe %d: %d matches, want %d",
					round, i, len(ms), len(baseline[i]))
			}
			for j := range ms {
				if ms[j].Ref != baseline[i][j].Ref ||
					math.Float64bits(ms[j].Distance) != math.Float64bits(baseline[i][j].Distance) {
					t.Fatalf("round %d probe %d match %d: %+v, want %+v",
						round, i, j, ms[j], baseline[i][j])
				}
			}
		}
	}
}

// bytesPerSearch measures steady-state heap bytes allocated per search.
func bytesPerSearch(t *testing.T, ix *Index, q []float64, eps float64) float64 {
	t.Helper()
	run := func() {
		if _, err := ix.SearchVisit(q, eps, func(Match) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ { // warm the context pool and buffer pool
		run()
	}
	const runs = 50
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / runs
}

// TestSearchAllocationSteadyState checks the refactor's allocation bar:
// per-query allocation must not scale with database size. The old dense
// pending array alone was 4 bytes per database element per query (~200 KB
// on the large index here); the pooled epoch-stamped contexts amortize to
// near zero, so the bound is far below the old floor yet loose enough not
// to flake.
func TestSearchAllocationSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation measurements")
	}
	rng := rand.New(rand.NewSource(78))
	small := randomWalkDataset(rng, 5, 40)
	large := randomWalkDataset(rng, 250, 400)
	if n := large.TotalElements(); n < 20000 {
		t.Fatalf("large dataset only %d elements; bump the generator", n)
	}
	// A query far outside the data's value range: the filter prunes every
	// candidate near the root, so the measurement isolates the fixed
	// per-query cost — the part that used to include a dense 4-byte-per-
	// element pending array and a full-database post-process scan.
	// Candidate-proportional work is allowed to allocate; database-
	// proportional work is not.
	q := []float64{10000, 10001, 10000, 10002, 10001}
	const eps = 4.0

	dir := t.TempDir()
	ixSmall, err := Build(small, filepath.Join(dir, "small.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 8, Sparse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ixSmall.Close()
	ixLarge, err := Build(large, filepath.Join(dir, "large.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 8, Sparse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ixLarge.Close()

	smallBytes := bytesPerSearch(t, ixSmall, q, eps)
	largeBytes := bytesPerSearch(t, ixLarge, q, eps)
	t.Logf("bytes/query: small=%.0f large=%.0f (large db: %d elements)",
		smallBytes, largeBytes, large.TotalElements())

	// The dense pending array alone would cost 4*TotalElements bytes per
	// query on the large index. Steady state must sit far below that.
	limit := float64(large.TotalElements())
	if largeBytes > limit {
		t.Errorf("large-db search allocates %.0f bytes/query, want < %.0f", largeBytes, limit)
	}
}
