package core

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/dtw"
	"twsearch/internal/sequence"
)

// randomWalkDataset builds integer-valued random walks; integer values keep
// distance arithmetic exact so index results can be compared to the
// baseline with ==.
func randomWalkDataset(rng *rand.Rand, nSeq, maxLen int) *sequence.Dataset {
	d := sequence.NewDataset()
	for i := 0; i < nSeq; i++ {
		n := 2 + rng.Intn(maxLen-1)
		vals := make([]float64, n)
		v := float64(rng.Intn(20))
		for j := range vals {
			v += float64(rng.Intn(5) - 2)
			vals[j] = v
		}
		d.MustAdd(sequence.Sequence{ID: fmt.Sprintf("s%d", i), Values: vals})
	}
	return d
}

func randomQuery(rng *rand.Rand, maxLen int) []float64 {
	n := 1 + rng.Intn(maxLen)
	q := make([]float64, n)
	v := float64(rng.Intn(20))
	for i := range q {
		v += float64(rng.Intn(5) - 2)
		q[i] = v
	}
	return q
}

// bruteForce enumerates every subsequence and computes its exact distance —
// the independent ground truth for SeqScan itself.
func bruteForce(data *sequence.Dataset, q []float64, eps float64, window int) []Match {
	var out []Match
	for seq := 0; seq < data.Len(); seq++ {
		vals := data.Values(seq)
		for a := 0; a < len(vals); a++ {
			for b := a + 1; b <= len(vals); b++ {
				var dist float64
				if window < 0 {
					dist = dtw.Distance(vals[a:b], q)
				} else {
					dist = dtw.DistanceWindow(vals[a:b], q, window)
				}
				if dist <= eps {
					out = append(out, Match{Ref: sequence.Ref{Seq: seq, Start: a, End: b}, Distance: dist})
				}
			}
		}
	}
	sortMatches(out)
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ref != b[i].Ref {
			return false
		}
		if math.Abs(a[i].Distance-b[i].Distance) > 1e-9 {
			return false
		}
	}
	return true
}

func TestSeqScanPaperExample(t *testing.T) {
	data := sequence.NewDataset()
	data.MustAdd(sequence.Sequence{ID: "s4", Values: []float64{4, 5, 6, 7, 6, 6}})
	q := []float64{3, 4, 3}
	matches, stats, err := SeqScan(data, q, 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	// D_tw(S3, S4[1:4]) = 8 (Figure 1): subsequence [0:4) must be reported
	// with distance exactly 8.
	found := false
	for _, m := range matches {
		if m.Ref == (sequence.Ref{Seq: 0, Start: 0, End: 4}) {
			found = true
			if m.Distance != 8 {
				t.Errorf("distance = %v, want 8", m.Distance)
			}
		}
		sub := data.Values(0)[m.Ref.Start:m.Ref.End]
		if want := dtw.Distance(sub, q); m.Distance != want {
			t.Errorf("%v distance = %v, want %v", m.Ref, m.Distance, want)
		}
	}
	if !found {
		t.Error("S4[1:4] missing from answers")
	}
	if stats.Answers != uint64(len(matches)) {
		t.Error("Answers counter wrong")
	}
	if stats.FilterCells == 0 {
		t.Error("no cells counted")
	}
}

func TestSeqScanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 40; trial++ {
		data := randomWalkDataset(rng, 1+rng.Intn(4), 20)
		q := randomQuery(rng, 8)
		eps := float64(rng.Intn(12)) + 0.5
		window := -1
		if rng.Intn(3) == 0 {
			window = rng.Intn(8)
		}
		got, _, err := SeqScan(data, q, eps, window)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(data, q, eps, window)
		if !matchesEqual(got, want) {
			t.Fatalf("trial %d: SeqScan %d matches, brute force %d (eps=%v, w=%d)",
				trial, len(got), len(want), eps, window)
		}
	}
}

func TestSearchInputErrors(t *testing.T) {
	data := randomWalkDataset(rand.New(rand.NewSource(1)), 2, 10)
	ix, err := Build(data, filepath.Join(t.TempDir(), "ix.twt"), Options{Kind: categorize.KindMaxEntropy, Categories: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, _, err := ix.Search(nil, 5); err == nil {
		t.Error("empty query accepted")
	}
	if _, _, err := ix.Search([]float64{1}, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, _, err := SeqScan(data, nil, 5, -1); err == nil {
		t.Error("SeqScan empty query accepted")
	}
	if _, _, err := SeqScan(data, []float64{1}, -2, -1); err == nil {
		t.Error("SeqScan negative eps accepted")
	}
	if _, err := Build(sequence.NewDataset(), filepath.Join(t.TempDir(), "e.twt"), Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

// variant describes one of the paper's three index configurations.
type variant struct {
	name string
	opts Options
}

func variants() []variant {
	return []variant{
		{"ST(identity,dense)", Options{Kind: categorize.KindIdentity}},
		{"STc(EL,8)", Options{Kind: categorize.KindEqualLength, Categories: 8}},
		{"STc(ME,8)", Options{Kind: categorize.KindMaxEntropy, Categories: 8}},
		{"STc(ME,3)", Options{Kind: categorize.KindMaxEntropy, Categories: 3}},
		{"SSTc(EL,8)", Options{Kind: categorize.KindEqualLength, Categories: 8, Sparse: true}},
		{"SSTc(ME,3)", Options{Kind: categorize.KindMaxEntropy, Categories: 3, Sparse: true}},
		{"SSTc(KM,5)", Options{Kind: categorize.KindKMeans, Categories: 5, Sparse: true}},
		{"ST(identity,sparse)", Options{Kind: categorize.KindIdentity, Sparse: true}},
	}
}

// TestNoFalseDismissals is the paper's headline guarantee, end to end:
// every index variant returns exactly the SeqScan answer set.
func TestNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	dir := t.TempDir()
	for trial := 0; trial < 12; trial++ {
		data := randomWalkDataset(rng, 2+rng.Intn(4), 25)
		queries := [][]float64{randomQuery(rng, 8), randomQuery(rng, 4)}
		epses := []float64{0.5, float64(rng.Intn(10)) + 0.5, 25.5}
		for vi, v := range variants() {
			path := filepath.Join(dir, fmt.Sprintf("ix-%d-%d.twt", trial, vi))
			opts := v.opts
			opts.Build.BatchSize = 1 + rng.Intn(4)
			ix, err := Build(data, path, opts)
			if err != nil {
				t.Fatalf("trial %d %s: Build: %v", trial, v.name, err)
			}
			for _, q := range queries {
				for _, eps := range epses {
					want, _, err := SeqScan(data, q, eps, -1)
					if err != nil {
						t.Fatal(err)
					}
					got, stats, err := ix.Search(q, eps)
					if err != nil {
						t.Fatalf("trial %d %s: Search: %v", trial, v.name, err)
					}
					if !matchesEqual(got, want) {
						t.Fatalf("trial %d %s eps=%v |q|=%d: index %d matches, seqscan %d",
							trial, v.name, eps, len(q), len(got), len(want))
					}
					if stats.Answers != uint64(len(got)) {
						t.Errorf("%s: Answers counter %d != %d", v.name, stats.Answers, len(got))
					}
					if stats.Candidates == 0 && stats.Answers > 0 {
						t.Errorf("%s: answers without candidates", v.name)
					}
				}
			}
			if err := ix.RemoveFile(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Window-constrained search must also agree with the window-constrained scan.
func TestNoFalseDismissalsWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	dir := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		data := randomWalkDataset(rng, 2+rng.Intn(3), 20)
		q := randomQuery(rng, 6)
		eps := float64(rng.Intn(8)) + 0.5
		window := 1 + rng.Intn(5) // window 0 means "unset" in Options; lockstep is covered in dtw tests
		for vi, v := range variants()[:6] {
			opts := v.opts
			opts.Window = window
			path := filepath.Join(dir, fmt.Sprintf("wix-%d-%d.twt", trial, vi))
			ix, err := Build(data, path, opts)
			if err != nil {
				t.Fatal(err)
			}
			w := opts.Window
			want, _, err := SeqScan(data, q, eps, w)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ix.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("trial %d %s w=%d eps=%v: index %d matches, seqscan %d",
					trial, v.name, w, eps, len(got), len(want))
			}
			ix.RemoveFile()
		}
	}
}

// The identity index computes exact distances while filtering: stored
// candidates bypass post-processing entirely on dense trees.
func TestIdentityIndexSkipsPostProcessing(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	data := randomWalkDataset(rng, 3, 20)
	ix, err := Build(data, filepath.Join(t.TempDir(), "id.twt"), Options{Kind: categorize.KindIdentity})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	_, stats, err := ix.Search(randomQuery(rng, 5), 6.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PostCells != 0 {
		t.Errorf("identity dense index did post-processing: %d cells", stats.PostCells)
	}
	if stats.FalseAlarms != 0 {
		t.Errorf("identity dense index had %d false alarms", stats.FalseAlarms)
	}
}

// Lossy categorization must never report a distance below the true one —
// every returned Distance is the exact D_tw.
func TestReportedDistancesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	data := randomWalkDataset(rng, 3, 25)
	ix, err := Build(data, filepath.Join(t.TempDir(), "m.twt"),
		Options{Kind: categorize.KindMaxEntropy, Categories: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomQuery(rng, 6)
	matches, _, err := ix.Search(q, 12.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		sub := data.Values(m.Ref.Seq)[m.Ref.Start:m.Ref.End]
		if want := dtw.Distance(sub, q); math.Abs(m.Distance-want) > 1e-9 {
			t.Fatalf("%v: reported %v, exact %v", m.Ref, m.Distance, want)
		}
	}
}

// Branch pruning must not change results, only work: a tiny eps visits few
// nodes, a huge eps visits everything (R_p -> 1, Section 4.3).
func TestPruningReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	data := randomWalkDataset(rng, 10, 60)
	ix, err := Build(data, filepath.Join(t.TempDir(), "p.twt"),
		Options{Kind: categorize.KindMaxEntropy, Categories: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomQuery(rng, 10)
	_, small, err := ix.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := ix.Search(q, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if small.NodesVisited >= large.NodesVisited {
		t.Errorf("small eps visited %d nodes, large eps %d", small.NodesVisited, large.NodesVisited)
	}
	if small.FilterCells >= large.FilterCells {
		t.Errorf("small eps computed %d cells, large eps %d", small.FilterCells, large.FilterCells)
	}
}

// With eps large enough to accept everything, the answer count must equal
// the total number of subsequences (the paper's "all subsequences are
// answers" extreme).
func TestHugeEpsReturnsAllSubsequences(t *testing.T) {
	rng := rand.New(rand.NewSource(337))
	data := randomWalkDataset(rng, 3, 12)
	total := 0
	for i := 0; i < data.Len(); i++ {
		n := len(data.Values(i))
		total += n * (n + 1) / 2
	}
	for _, v := range variants()[:4] {
		ix, err := Build(data, filepath.Join(t.TempDir(), "all.twt"), v.opts)
		if err != nil {
			t.Fatal(err)
		}
		matches, _, err := ix.Search(randomQuery(rng, 4), 1e12)
		if err != nil {
			t.Fatal(err)
		}
		ix.RemoveFile()
		if len(matches) != total {
			t.Fatalf("%s: %d matches, want %d", v.name, len(matches), total)
		}
	}
}

func TestOpenExistingIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(347))
	data := randomWalkDataset(rng, 4, 20)
	path := filepath.Join(t.TempDir(), "keep.twt")
	opts := Options{Kind: categorize.KindMaxEntropy, Categories: 5, Sparse: true}
	ix, err := Build(data, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, 5)
	want, _, err := ix.Search(q, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	scheme := ix.Scheme
	ix.Close()

	re, err := Open(data, scheme, path, 16, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.Search(q, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatal("reopened index returns different answers")
	}
}

func TestStatsPagesCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(349))
	data := randomWalkDataset(rng, 8, 50)
	path := filepath.Join(t.TempDir(), "pg.twt")
	ix, err := Build(data, path, Options{Kind: categorize.KindMaxEntropy, Categories: 6})
	if err != nil {
		t.Fatal(err)
	}
	scheme := ix.Scheme
	ix.Close()
	// Reopen through a tiny pool to force misses.
	re, err := Open(data, scheme, path, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, stats, err := re.Search(randomQuery(rng, 8), 20.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoolMisses == 0 || stats.PagesRead == 0 {
		t.Errorf("no I/O recorded: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestStatsAdd(t *testing.T) {
	a := SearchStats{NodesVisited: 1, FilterCells: 2, PostCells: 3, Candidates: 4,
		FalseAlarms: 5, Answers: 6, PagesRead: 7, PoolHits: 8, PoolMisses: 9, Elapsed: 10}
	b := a
	a.Add(b)
	if a.NodesVisited != 2 || a.Cells() != 10 || a.Elapsed != 20 || a.PoolMisses != 18 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// SeqScanFull must return the same answers as the abandoning SeqScan, at
// strictly more work.
func TestSeqScanFullAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(353))
	data := randomWalkDataset(rng, 4, 30)
	q := randomQuery(rng, 6)
	got, fullStats, err := SeqScanFull(data, q, 4.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	want, prunedStats, err := SeqScan(data, q, 4.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatal("SeqScanFull differs from SeqScan")
	}
	if fullStats.FilterCells < prunedStats.FilterCells {
		t.Errorf("full scan did less work (%d) than pruned scan (%d)",
			fullStats.FilterCells, prunedStats.FilterCells)
	}
}
