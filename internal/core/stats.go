package core

import (
	"sort"
	"time"

	"twsearch/internal/sequence"
)

// Match is one answer subsequence: its location and its exact time warping
// distance from the query.
type Match struct {
	Ref      sequence.Ref
	Distance float64
}

// SearchStats records machine-independent work counters for one search —
// the numbers the benchmark harness reports next to wall-clock time, so the
// paper's shape comparisons survive hardware differences.
//
// Under a parallel search (SearchOptions.Parallelism > 1) each worker
// counts on its own pooled context and the driver sums them at the join
// barrier, so no counter is ever written by two goroutines. The traversal
// counters — NodesVisited, FilterCells, PostCells, Candidates, FalseAlarms,
// Answers, EnvelopePruned, LBCells — are exact and byte-identical to the
// serial run (pruning is path-local and shared prefix rows are counted once,
// by the goroutine that computed them; the envelope cascade's decisions
// depend only on the path, so its counters merge exactly too). PagesRead, PoolHits and PoolMisses are approximate: they
// are deltas of index-wide atomic counters, so they attribute every
// concurrent goroutine's traffic — including sibling workers and the
// read-ahead batching — to this search. Elapsed is wall clock. After an
// early stop (visitor returning false, cancellation) all counters reflect
// only the work actually done, which under parallelism depends on worker
// scheduling.
//
//twlint:join-merged
type SearchStats struct {
	// NodesVisited counts tree nodes read during filtering.
	NodesVisited uint64
	// FilterCells counts cumulative-distance-table cells computed while
	// filtering (the R_d·R_p-reduced work of Section 4.3).
	FilterCells uint64
	// PostCells counts table cells computed during post-processing (the
	// n·L̄·|Q| term of Sections 5.5/6.5).
	PostCells uint64
	// Candidates counts filter emissions: candidate subsequences whose
	// lower bound passed the filter, after per-edge grouping (so one
	// emission may stand for several prefixes verified by one scan).
	Candidates uint64
	// FalseAlarms counts emissions not confirmed by exact verification
	// (0 when answers outnumber grouped emissions).
	FalseAlarms uint64
	// Answers counts returned matches.
	Answers uint64
	// EnvelopePruned counts envelope-cascade prune events: edge rows cut
	// before their table row was computed (tier B) and child subtrees
	// skipped before their node was read (tier A).
	EnvelopePruned uint64
	// LBCells counts envelope gap evaluations — the O(1) work the cascade
	// spends to avoid O(|Q|) table rows. Compare against the FilterCells it
	// saves: the cascade pays one LBCell per row or child it examines.
	LBCells uint64
	// PagesRead counts physical page reads; PoolHits/PoolMisses count
	// buffer pool activity during this search.
	PagesRead  uint64
	PoolHits   uint64
	PoolMisses uint64
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// Cells returns total table cells computed (filter + post-process).
func (s SearchStats) Cells() uint64 { return s.FilterCells + s.PostCells }

// Add accumulates other into s (for averaging over query workloads).
func (s *SearchStats) Add(other SearchStats) {
	s.NodesVisited += other.NodesVisited
	s.FilterCells += other.FilterCells
	s.PostCells += other.PostCells
	s.Candidates += other.Candidates
	s.FalseAlarms += other.FalseAlarms
	s.Answers += other.Answers
	s.EnvelopePruned += other.EnvelopePruned
	s.LBCells += other.LBCells
	s.PagesRead += other.PagesRead
	s.PoolHits += other.PoolHits
	s.PoolMisses += other.PoolMisses
	s.Elapsed += other.Elapsed
}

// sortMatches puts matches in deterministic (seq, start, end) order.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Ref, ms[j].Ref
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}
