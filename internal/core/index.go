// Package core implements the paper's contribution: similarity search for
// subsequences under the time warping distance, with no false dismissals,
// over a disk-based suffix tree.
//
// The three index/search variants of the paper are all driven by one engine:
//
//   - SimSearch-ST (Section 4): the identity categorization gives every
//     distinct value a point category, so the lower-bound base distance
//     degenerates to the exact city-block distance and filtering distances
//     are exact — no post-processing is needed.
//   - SimSearch-ST_C (Section 5): a lossy categorization (EL/ME/k-means)
//     makes the tree compact; traversal computes D_tw-lb (Definition 3) and
//     candidates are verified against the raw values (PostProcess).
//   - SimSearch-SST_C (Section 6): the sparse tree stores only run-head
//     suffixes; subsequences starting inside a run are recovered through
//     D_tw-lb2 (Definition 4) and verified in the same post-processing step.
//
// The sequential-scanning baseline of Section 7 lives in seqscan.go.
package core

import (
	"fmt"
	"os"
	"path/filepath"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
	"twsearch/internal/sequence"
	"twsearch/internal/storage"
	"twsearch/internal/suffixtree"
)

// Options configures an index build.
type Options struct {
	// Kind selects the categorization method. categorize.KindIdentity
	// yields the exact suffix tree ST of Section 4.
	Kind categorize.Kind
	// Categories is the number of categories c (ignored by identity).
	Categories int
	// Sparse selects the sparse suffix tree SST_C of Section 6.
	Sparse bool
	// Window is the optional Sakoe–Chiba warping-window half-width from the
	// paper's conclusion; < 0 disables the constraint.
	Window int
	// MinAnswerLen, when > 1, applies the conclusion's other space
	// optimization: suffixes shorter than this are not indexed, and Search
	// returns only answers of at least this length. With a window w and
	// minimum query length qmin, dtw.MinMaxAnswerLength gives the right
	// value (qmin - w).
	MinAnswerLen int
	// KMeansIters bounds k-means refinement (k-means only). Defaults to 20.
	KMeansIters int
	// Layout selects the disk node format: reference (default, compact) or
	// inline (the paper's storage model; Table 1's sizes).
	Layout disktree.Layout
	// Encoding selects the record serialization (v1 fixed-width by default;
	// v2 compact varints).
	Encoding disktree.Encoding
	// InMemory builds the index into an in-memory page file instead of the
	// given path — no filesystem footprint, no persistence. The tree is
	// built wholly in memory (no spill-and-merge pipeline), so this is for
	// datasets whose tree fits in RAM.
	InMemory bool
	// Build tunes the disk construction pipeline.
	Build disktree.BuildOptions
}

func (o Options) withDefaults() Options {
	if o.Kind == "" {
		o.Kind = categorize.KindMaxEntropy
	}
	if o.Categories == 0 {
		o.Categories = 20
	}
	if o.KMeansIters == 0 {
		o.KMeansIters = 20
	}
	if o.Window == 0 {
		o.Window = -1
	}
	o.Build.Sparse = o.Sparse
	o.Build.MinSuffixLen = o.MinAnswerLen
	o.Build.Layout = o.Layout
	o.Build.Encoding = o.Encoding
	return o
}

// Index bundles everything a search needs: the raw data (for
// post-processing), the categorization scheme (for symbol intervals), the
// categorized texts, and the disk-resident tree. All of it is immutable at
// query time, and the per-query mutable state lives in pooled query
// contexts, so one Index serves any number of concurrent searches.
type Index struct {
	Data   *sequence.Dataset
	Scheme *categorize.Scheme
	Store  *suffixtree.TextStore
	Tree   *disktree.File
	// Exact records that filtering distances are exact (identity scheme):
	// stored-suffix candidates skip post-processing.
	Exact bool
	// Window is the warping-window half-width, or -1.
	Window int
	// DisablePruning turns off the Theorem-1 branch pruning (R_p -> 1).
	// It exists only for the ablation benchmarks; results are unchanged,
	// only the work done.
	DisablePruning bool
	// DisableEnvelopes turns off the envelope lower-bound cascade (the
	// O(1)-per-row prefilter and, on v3 trees, the per-child subtree hull
	// skip). Like DisablePruning it changes only the work done, never the
	// answers; the ablation benchmarks toggle it to measure the cascade.
	DisableEnvelopes bool
	// BuildStats records how the disk tree was constructed (zero for
	// indexes attached with Open).
	BuildStats disktree.BuildStats
	// minAnswerLen mirrors the tree's suffix length filter: Search emits
	// only answers of at least this length.
	minAnswerLen int
	// maxRun is the longest equal-symbol run in any categorized sequence;
	// it bounds the D_tw-lb2 shift during sparse branch pruning.
	maxRun int
	// seqOffsets[i] is the global element offset of sequence i; searches
	// use it to key their pending candidate sets. totalElements is the sum
	// of all sequence lengths.
	seqOffsets    []int
	totalElements int
	// queries recycles per-query execution state. Behind a pointer so Dup's
	// shallow copy shares the pool instead of copying a sync.Pool.
	queries *queryPool
}

// computeOffsets fills seqOffsets and totalElements from the dataset and
// equips the index with its query-context pool.
func (ix *Index) computeOffsets() {
	ix.seqOffsets = make([]int, ix.Data.Len())
	off := 0
	for i := 0; i < ix.Data.Len(); i++ {
		ix.seqOffsets[i] = off
		off += len(ix.Data.Values(i))
	}
	ix.totalElements = off
	ix.queries = &queryPool{}
}

// Build fits the categorizer on the dataset, encodes every sequence, and
// constructs the disk-based suffix tree at path.
func Build(data *sequence.Dataset, path string, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if data.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	scheme, err := categorize.Fit(opts.Kind, data.AllValues(), opts.Categories, opts.KMeansIters)
	if err != nil {
		return nil, fmt.Errorf("core: fitting categorizer: %w", err)
	}
	return BuildWithScheme(data, scheme, path, opts)
}

// BuildWithScheme is Build with a pre-fitted categorization scheme (used
// when several indexes must share one scheme, or when reopening).
func BuildWithScheme(data *sequence.Dataset, scheme *categorize.Scheme, path string, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	store, maxRun := encodeAll(data, scheme)
	seqs := make([]int, data.Len())
	for i := range seqs {
		seqs[i] = i
	}
	var buildStats disktree.BuildStats
	opts.Build.Stats = &buildStats
	var tree *disktree.File
	var err error
	if opts.InMemory {
		mem := suffixtree.BuildMergedFiltered(store, seqs, opts.Sparse, opts.MinAnswerLen)
		poolPages := opts.Build.PoolPages
		if poolPages <= 0 {
			poolPages = 256
		}
		tree, err = disktree.CreateMemEncoded(mem, poolPages, opts.Layout, opts.Encoding)
	} else {
		tree, err = disktree.Build(store, seqs, path, opts.Build)
	}
	if err != nil {
		return nil, fmt.Errorf("core: building tree: %w", err)
	}
	ix := &Index{
		Data:         data,
		Scheme:       scheme,
		Store:        store,
		Tree:         tree,
		Exact:        scheme.Kind() == categorize.KindIdentity,
		Window:       opts.Window,
		BuildStats:   buildStats,
		maxRun:       maxRun,
		minAnswerLen: tree.MinSuffixLen(),
	}
	ix.computeOffsets()
	return ix, nil
}

// Open attaches an existing tree file to its dataset and scheme. window < 0
// disables the warping-window constraint.
func Open(data *sequence.Dataset, scheme *categorize.Scheme, treePath string, poolPages, window int) (*Index, error) {
	return OpenWith(data, scheme, treePath, poolPages, window, storage.BackendPool)
}

// OpenWith is Open with an explicit page-source backend for the tree file.
func OpenWith(data *sequence.Dataset, scheme *categorize.Scheme, treePath string, poolPages, window int, backend storage.Backend) (*Index, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	tree, err := disktree.OpenBackend(treePath, poolPages, true, backend)
	if err != nil {
		return nil, err
	}
	store, maxRun := encodeAll(data, scheme)
	ix := &Index{
		Data:         data,
		Scheme:       scheme,
		Store:        store,
		Tree:         tree,
		Exact:        scheme.Kind() == categorize.KindIdentity,
		Window:       window,
		maxRun:       maxRun,
		minAnswerLen: tree.MinSuffixLen(),
	}
	ix.computeOffsets()
	return ix, nil
}

// MinAnswerLen returns the answer length floor the index was built with
// (0 = unrestricted).
func (ix *Index) MinAnswerLen() int { return ix.minAnswerLen }

// Dup returns an independent handle on the same index file with its own
// buffer pool. An Index is already safe for concurrent searches — per-query
// state is pooled, the tree's striped buffer pool takes concurrent readers —
// so Dup is no longer needed for parallelism; it remains for callers that
// want I/O isolation (a private page cache whose hit rate one noisy workload
// cannot disturb). The duplicate shares the immutable dataset, scheme,
// categorized texts and query-context pool; Close it independently.
func (ix *Index) Dup(poolPages int) (*Index, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	tree, err := disktree.Open(ix.Tree.Path(), poolPages, true)
	if err != nil {
		return nil, err
	}
	dup := *ix
	dup.Tree = tree
	return &dup, nil
}

// Close releases the underlying tree file.
func (ix *Index) Close() error { return ix.Tree.Close() }

// SizeBytes returns the on-disk index size (Table 1's metric).
func (ix *Index) SizeBytes() int64 { return ix.Tree.SizeBytes() }

// RemoveFile closes the index and deletes its tree file (a no-op delete for
// in-memory indexes); benchmarks use it to clean up throwaway indexes.
func (ix *Index) RemoveFile() error {
	path := ix.Tree.Path()
	if err := ix.Tree.Close(); err != nil {
		return err
	}
	if path == storage.MemoryPath {
		return nil
	}
	return os.Remove(filepath.Clean(path))
}

// encodeAll categorizes every sequence and returns the text store and the
// longest equal-symbol run.
func encodeAll(data *sequence.Dataset, scheme *categorize.Scheme) (*suffixtree.TextStore, int) {
	store := suffixtree.NewTextStore()
	maxRun := 1
	for i := 0; i < data.Len(); i++ {
		syms := scheme.Encode(data.Values(i))
		store.Add(syms)
		run := 1
		for j := 1; j < len(syms); j++ {
			if syms[j] == syms[j-1] {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 1
			}
		}
	}
	return store, maxRun
}
