package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"twsearch/internal/categorize"
)

// matchesBitIdentical demands byte-identical results: same locations, same
// IEEE-754 bits in every distance, same order.
func matchesBitIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ref != b[i].Ref ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

// exactStats strips a SearchStats down to the counters that are defined to
// be exact under parallelism (see the SearchStats doc); the advisory pool
// and wall-clock fields are excluded.
func exactStats(s SearchStats) [6]uint64 {
	return [6]uint64{s.NodesVisited, s.FilterCells, s.PostCells, s.Candidates, s.FalseAlarms, s.Answers}
}

// TestParallelSearchDeterministic is the tentpole's contract: for every
// worker count, on each of the paper's index shapes (ST, ST_C, SST_C, with
// and without a warping window), all three entry points return results
// byte-identical to the serial traversal — matches, distances, order, and
// the exact stats counters. Run under -race this also shakes out data races
// in the fork/steal/merge machinery.
func TestParallelSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	dir := t.TempDir()
	vs := []variant{
		{"ST(identity,dense)", Options{Kind: categorize.KindIdentity}},
		{"STc(ME,8)", Options{Kind: categorize.KindMaxEntropy, Categories: 8}},
		{"STc(ME,6,w3)", Options{Kind: categorize.KindMaxEntropy, Categories: 6, Window: 3}},
		{"SSTc(ME,5)", Options{Kind: categorize.KindMaxEntropy, Categories: 5, Sparse: true}},
		{"SSTc(EL,8,w4)", Options{Kind: categorize.KindEqualLength, Categories: 8, Sparse: true, Window: 4}},
	}
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	ctx := context.Background()

	for vi, v := range vs {
		data := randomWalkDataset(rng, 6, 40)
		ix, err := Build(data, filepath.Join(dir, fmt.Sprintf("ix-%d.twt", vi)), v.opts)
		if err != nil {
			t.Fatalf("%s: Build: %v", v.name, err)
		}
		for qi := 0; qi < 3; qi++ {
			q := randomQuery(rng, 10)
			eps := float64(rng.Intn(10)) + 0.5

			wantM, wantS, err := ix.SearchCtx(ctx, q, eps)
			if err != nil {
				t.Fatalf("%s: serial Search: %v", v.name, err)
			}
			var wantVisit []Match
			wantVS, err := ix.SearchVisitCtx(ctx, q, eps, func(m Match) bool {
				wantVisit = append(wantVisit, m)
				return true
			})
			if err != nil {
				t.Fatalf("%s: serial SearchVisit: %v", v.name, err)
			}
			wantK, wantKS, err := ix.SearchKNNCtx(ctx, q, 5)
			if err != nil {
				t.Fatalf("%s: serial SearchKNN: %v", v.name, err)
			}

			// Shuffle the worker counts so pool reuse order varies: a pooled
			// context leaking state between parallelism levels would show up
			// as a schedule-dependent diff.
			rng.Shuffle(len(workerCounts), func(i, j int) {
				workerCounts[i], workerCounts[j] = workerCounts[j], workerCounts[i]
			})
			for _, par := range workerCounts {
				opts := SearchOptions{Parallelism: par}

				gotM, gotS, err := ix.SearchOpts(ctx, q, eps, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchOpts: %v", v.name, par, err)
				}
				if !matchesBitIdentical(gotM, wantM) {
					t.Fatalf("%s par=%d q%d: Search diverged from serial: %d matches vs %d",
						v.name, par, qi, len(gotM), len(wantM))
				}
				if exactStats(gotS) != exactStats(wantS) {
					t.Fatalf("%s par=%d q%d: Search stats diverged: %v vs %v",
						v.name, par, qi, exactStats(gotS), exactStats(wantS))
				}

				var gotVisit []Match
				gotVS, err := ix.SearchVisitOpts(ctx, q, eps, func(m Match) bool {
					gotVisit = append(gotVisit, m)
					return true
				}, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchVisitOpts: %v", v.name, par, err)
				}
				if !matchesBitIdentical(gotVisit, wantVisit) {
					t.Fatalf("%s par=%d q%d: visitor delivery order diverged from serial (%d vs %d answers)",
						v.name, par, qi, len(gotVisit), len(wantVisit))
				}
				if exactStats(gotVS) != exactStats(wantVS) {
					t.Fatalf("%s par=%d q%d: SearchVisit stats diverged: %v vs %v",
						v.name, par, qi, exactStats(gotVS), exactStats(wantVS))
				}

				gotK, gotKS, err := ix.SearchKNNOpts(ctx, q, 5, opts)
				if err != nil {
					t.Fatalf("%s par=%d: SearchKNNOpts: %v", v.name, par, err)
				}
				if !matchesBitIdentical(gotK, wantK) {
					t.Fatalf("%s par=%d q%d: KNN diverged from serial", v.name, par, qi)
				}
				if exactStats(gotKS) != exactStats(wantKS) {
					t.Fatalf("%s par=%d q%d: KNN stats diverged: %v vs %v",
						v.name, par, qi, exactStats(gotKS), exactStats(wantKS))
				}
			}
		}
		if err := ix.RemoveFile(); err != nil {
			t.Fatal(err)
		}
	}
}

// A visitor that stops early must halt a parallel search cleanly: no
// further deliveries, no hung workers (the -race run doubles as a leak
// check via the test's clean exit), and a nil error like the serial path.
func TestParallelVisitorEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	data := randomWalkDataset(rng, 6, 40)
	ix, err := Build(data, filepath.Join(t.TempDir(), "ix.twt"),
		Options{Kind: categorize.KindMaxEntropy, Categories: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomQuery(rng, 8)
	const eps = 20.5

	var all []Match
	if _, err := ix.SearchVisitCtx(context.Background(), q, eps, func(m Match) bool {
		all = append(all, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Skipf("workload produced only %d answers; early-stop needs a few", len(all))
	}

	for _, par := range []int{2, 3} {
		stopAfter := len(all) / 2
		var got []Match
		_, err := ix.SearchVisitOpts(context.Background(), q, eps, func(m Match) bool {
			got = append(got, m)
			return len(got) < stopAfter
		}, SearchOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != stopAfter {
			t.Fatalf("par=%d: delivered %d answers after stop at %d", par, len(got), stopAfter)
		}
		// Deliveries before the stop follow serial order, so they must be a
		// prefix of the serial stream.
		if !matchesBitIdentical(got, all[:stopAfter]) {
			t.Fatalf("par=%d: pre-stop deliveries are not the serial prefix", par)
		}
	}
}

// Cancellation must propagate through a parallel search: workers observe
// the context at the same cadence as the serial traversal, and the call
// reports ctx.Err().
func TestParallelSearchCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	data := randomWalkDataset(rng, 8, 60)
	ix, err := Build(data, filepath.Join(t.TempDir(), "ix.twt"),
		Options{Kind: categorize.KindMaxEntropy, Categories: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomQuery(rng, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.SearchOpts(ctx, q, 10.5, SearchOptions{Parallelism: 3}); err != context.Canceled {
		t.Fatalf("pre-canceled parallel search: err = %v, want context.Canceled", err)
	}

	// Cancel from inside a visitor: the stop must drain the workers without
	// deadlocking, and any reported error must be the cancellation. (Whether
	// the cancellation is observed before the search finishes is a timing
	// race, same as serial; the hard requirement is a clean drain.)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	calls := 0
	_, err = ix.SearchVisitOpts(ctx2, q, 30.5, func(Match) bool {
		calls++
		cancel2()
		return true
	}, SearchOptions{Parallelism: 2})
	if err != nil && err != context.Canceled {
		t.Fatalf("mid-search cancel: err = %v (visitor calls %d), want nil or context.Canceled", err, calls)
	}
}
