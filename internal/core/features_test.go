package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
)

// Length-filtered indexes must return exactly the scan answers of at least
// the floor length — the conclusion-section space optimization must not
// change the (restricted) answer set.
func TestMinAnswerLenNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	dir := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		data := randomWalkDataset(rng, 2+rng.Intn(4), 25)
		q := randomQuery(rng, 6)
		eps := float64(rng.Intn(10)) + 0.5
		minLen := 2 + rng.Intn(5)
		for vi, sparse := range []bool{false, true} {
			ix, err := Build(data, filepath.Join(dir, fmt.Sprintf("ml-%d-%d.twt", trial, vi)), Options{
				Kind: categorize.KindMaxEntropy, Categories: 6,
				Sparse: sparse, MinAnswerLen: minLen,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ix.MinAnswerLen() != minLen {
				t.Fatalf("MinAnswerLen = %d, want %d", ix.MinAnswerLen(), minLen)
			}
			got, _, err := ix.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			ix.RemoveFile()

			all, _, err := SeqScan(data, q, eps, -1)
			if err != nil {
				t.Fatal(err)
			}
			var want []Match
			for _, m := range all {
				if m.Ref.Len() >= minLen {
					want = append(want, m)
				}
			}
			if !matchesEqual(got, want) {
				t.Fatalf("trial %d sparse=%v minLen=%d: got %d, want %d",
					trial, sparse, minLen, len(got), len(want))
			}
		}
	}
}

// The length filter must actually shrink the index.
func TestMinAnswerLenShrinksIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	data := randomWalkDataset(rng, 8, 60)
	full, err := Build(data, filepath.Join(t.TempDir(), "f.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	filtered, err := Build(data, filepath.Join(t.TempDir(), "g.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 6, MinAnswerLen: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer filtered.Close()
	if filtered.Tree.NumLeaves() >= full.Tree.NumLeaves() {
		t.Fatalf("filtered leaves %d >= full %d", filtered.Tree.NumLeaves(), full.Tree.NumLeaves())
	}
	// A sequence of length L keeps exactly max(0, L-minLen+1) suffixes.
	want := uint64(0)
	for i := 0; i < data.Len(); i++ {
		if kept := len(data.Values(i)) - 15 + 1; kept > 0 {
			want += uint64(kept)
		}
	}
	if filtered.Tree.NumLeaves() != want {
		t.Fatalf("filtered leaves = %d, want %d", filtered.Tree.NumLeaves(), want)
	}
}

// kNN must agree with brute force: the k smallest exact distances.
func TestSearchKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 8; trial++ {
		data := randomWalkDataset(rng, 3, 25)
		q := randomQuery(rng, 6)
		k := 1 + rng.Intn(12)
		ix, err := Build(data, filepath.Join(t.TempDir(), "knn.twt"), Options{
			Kind: categorize.KindMaxEntropy, Categories: 5, Sparse: trial%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := ix.SearchKNN(q, k)
		ix.RemoveFile()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("trial %d: got %d matches, want k=%d", trial, len(got), k)
		}
		if stats.Answers != uint64(k) {
			t.Fatalf("stats.Answers = %d", stats.Answers)
		}

		// Brute force k smallest distances.
		all, _, err := SeqScan(data, q, 1e18, -1)
		if err != nil {
			t.Fatal(err)
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].Distance < all[j].Distance })
		kth := all[k-1].Distance
		// Every returned distance must be <= the true k-th distance, and
		// there must be no missed answer strictly below the largest
		// returned distance.
		maxGot := 0.0
		for _, m := range got {
			if m.Distance > kth+1e-9 {
				t.Fatalf("trial %d: returned distance %v beyond true kth %v", trial, m.Distance, kth)
			}
			if m.Distance > maxGot {
				maxGot = m.Distance
			}
		}
		gotSet := map[Match]bool{}
		for _, m := range got {
			gotSet[m] = true
		}
		for _, m := range all {
			if m.Distance < maxGot-1e-9 && !gotSet[m] {
				t.Fatalf("trial %d: missed closer neighbor %+v", trial, m)
			}
		}
	}
}

func TestSearchKNNErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	data := randomWalkDataset(rng, 2, 10)
	ix, err := Build(data, filepath.Join(t.TempDir(), "k.twt"), Options{Categories: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, _, err := ix.SearchKNN([]float64{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.SearchKNN(nil, 3); err == nil {
		t.Error("empty query accepted")
	}
}

// SearchKNN with k exceeding the total number of subsequences returns all
// of them.
func TestSearchKNNExhaustsDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(423))
	data := randomWalkDataset(rng, 1, 6)
	n := len(data.Values(0))
	total := n * (n + 1) / 2
	ix, err := Build(data, filepath.Join(t.TempDir(), "k2.twt"), Options{Categories: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	got, _, err := ix.SearchKNN(randomQuery(rng, 4), total+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("got %d, want all %d subsequences", len(got), total)
	}
}

// Dup handles must be independently usable, including concurrently.
func TestDupConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	data := randomWalkDataset(rng, 6, 40)
	ix, err := Build(data, filepath.Join(t.TempDir(), "dup.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 8, Sparse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = randomQuery(rng, 8)
	}
	want := make([][]Match, len(queries))
	for i, q := range queries {
		want[i], _, err = ix.Search(q, 8.5)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	got := make([][]Match, len(queries))
	errs := make([]error, len(queries))
	for i := range queries {
		dup, err := ix.Dup(16)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, d *Index) {
			defer wg.Done()
			defer d.Close()
			got[i], _, errs[i] = d.Search(queries[i], 8.5)
		}(i, dup)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !matchesEqual(got[i], want[i]) {
			t.Fatalf("query %d: concurrent result differs", i)
		}
	}
}

func TestSelectCategories(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	data := randomWalkDataset(rng, 8, 40)
	queries := [][]float64{randomQuery(rng, 6), randomQuery(rng, 8)}
	counts := []int{4, 16, 64}

	// Space-dominated weights must pick the smallest index (fewest cats).
	best, measures, err := SelectCategories(data, queries, 8, counts,
		categorize.CostModel{Wt: 0, Ws: 1},
		Options{Kind: categorize.KindMaxEntropy, Sparse: true}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(measures) != len(counts) {
		t.Fatalf("measures = %d", len(measures))
	}
	if best.Count != 4 {
		t.Fatalf("space-weighted best = %d, want 4", best.Count)
	}
	// Sparse index sizes grow with category count.
	for i := 1; i < len(measures); i++ {
		if measures[i].SpaceCost < measures[i-1].SpaceCost {
			t.Fatalf("index size shrank with more categories: %+v", measures)
		}
	}
	if _, _, err := SelectCategories(data, queries, 8, nil,
		categorize.CostModel{Wt: 1}, Options{}, t.TempDir()); err == nil {
		t.Error("empty counts accepted")
	}
	if _, _, err := SelectCategories(data, nil, 8, counts,
		categorize.CostModel{Wt: 1}, Options{}, t.TempDir()); err == nil {
		t.Error("no queries accepted")
	}
}

// Inline-layout indexes (the paper's storage model) must return the same
// answers as reference-layout ones and the scan.
func TestInlineLayoutNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	for trial := 0; trial < 8; trial++ {
		data := randomWalkDataset(rng, 3, 25)
		q := randomQuery(rng, 6)
		eps := float64(rng.Intn(10)) + 0.5
		ix, err := Build(data, filepath.Join(t.TempDir(), "il.twt"), Options{
			Kind: categorize.KindMaxEntropy, Categories: 5,
			Sparse: trial%2 == 0, Layout: disktree.LayoutInline,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Tree.Layout() != disktree.LayoutInline {
			t.Fatal("layout not applied")
		}
		got, _, err := ix.Search(q, eps)
		ix.RemoveFile()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := SeqScan(data, q, eps, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(got, want) {
			t.Fatalf("trial %d: inline %d matches, scan %d", trial, len(got), len(want))
		}
	}
}

// In-memory indexes (no filesystem) must behave identically to disk ones.
func TestInMemoryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(457))
	data := randomWalkDataset(rng, 4, 30)
	q := randomQuery(rng, 7)
	mem, err := Build(data, "", Options{
		Kind: categorize.KindMaxEntropy, Categories: 6, Sparse: true, InMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mem.Tree.Path() != ":memory:" {
		t.Fatalf("path = %q", mem.Tree.Path())
	}
	got, _, err := mem.Search(q, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := SeqScan(data, q, 8.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatalf("in-memory index %d matches, scan %d", len(got), len(want))
	}
	// kNN and length floors work too.
	if _, _, err := mem.SearchKNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if err := mem.RemoveFile(); err != nil {
		t.Fatalf("RemoveFile on in-memory index: %v", err)
	}

	// Filtered in-memory variant.
	mem2, err := Build(data, "", Options{
		Kind: categorize.KindMaxEntropy, Categories: 6, InMemory: true, MinAnswerLen: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem2.Close()
	got2, _, err := mem2.Search(q, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got2 {
		if m.Ref.Len() < 5 {
			t.Fatalf("short answer from filtered in-memory index: %+v", m)
		}
	}
}

// SearchVisit streams exactly the Search answer set (order aside) and
// honors early stop.
func TestSearchVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(461))
	data := randomWalkDataset(rng, 4, 30)
	ix, err := Build(data, filepath.Join(t.TempDir(), "sv.twt"), Options{
		Kind: categorize.KindMaxEntropy, Categories: 6, Sparse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randomQuery(rng, 6)
	want, _, err := ix.Search(q, 12.5)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []Match
	stats, err := ix.SearchVisit(q, 12.5, func(m Match) bool {
		streamed = append(streamed, m)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sortMatches(streamed)
	if !matchesEqual(streamed, want) {
		t.Fatalf("streamed %d answers, Search found %d", len(streamed), len(want))
	}
	if stats.Answers != uint64(len(want)) {
		t.Fatalf("stats.Answers = %d", stats.Answers)
	}

	// Early stop delivers no more answers after false (the one in-flight
	// emit is the last).
	if len(want) > 3 {
		count := 0
		if _, err := ix.SearchVisit(q, 12.5, func(Match) bool {
			count++
			return count < 3
		}); err != nil {
			t.Fatal(err)
		}
		if count != 3 {
			t.Fatalf("early stop delivered %d answers, want 3", count)
		}
	}
	if _, err := ix.SearchVisit(q, 12.5, nil); err == nil {
		t.Error("nil visitor accepted")
	}

	// Exact (identity) indexes stream from the filter directly.
	exact, err := Build(data, filepath.Join(t.TempDir(), "sve.twt"), Options{Kind: categorize.KindIdentity})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	wantExact, _, err := exact.Search(q, 12.5)
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	if _, err := exact.SearchVisit(q, 12.5, func(m Match) bool {
		got = append(got, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sortMatches(got)
	if !matchesEqual(got, wantExact) {
		t.Fatalf("exact streamed %d, Search %d", len(got), len(wantExact))
	}
}
