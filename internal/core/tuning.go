package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"twsearch/internal/categorize"
	"twsearch/internal/sequence"
)

// SelectCategories runs the paper's Section 5.1 procedure for picking the
// number of categories: build a trial index per candidate count, measure
// the average query-processing cost C_t (seconds over the sample queries at
// the given threshold) and the storage cost C_s (index kilobytes), and
// return the candidate minimizing W_t·C_t + W_s·C_s. Trial index files are
// created in dir and removed.
func SelectCategories(
	data *sequence.Dataset,
	queries [][]float64,
	eps float64,
	counts []int,
	model categorize.CostModel,
	opts Options,
	dir string,
) (categorize.Measure, []categorize.Measure, error) {
	if len(counts) == 0 {
		return categorize.Measure{}, nil, errors.New("core: no candidate counts")
	}
	if len(queries) == 0 {
		return categorize.Measure{}, nil, errors.New("core: no sample queries")
	}
	measures := make([]categorize.Measure, 0, len(counts))
	for _, c := range counts {
		o := opts
		o.Categories = c
		ix, err := Build(data, filepath.Join(dir, fmt.Sprintf(".tune-%d.twt", c)), o)
		if err != nil {
			return categorize.Measure{}, nil, fmt.Errorf("core: trial build c=%d: %w", c, err)
		}
		start := time.Now()
		for _, q := range queries {
			if _, _, err := ix.Search(q, eps); err != nil {
				ix.RemoveFile()
				return categorize.Measure{}, nil, err
			}
		}
		elapsed := time.Since(start)
		measures = append(measures, categorize.Measure{
			Count:     c,
			TimeCost:  elapsed.Seconds() / float64(len(queries)),
			SpaceCost: float64(ix.SizeBytes()) / 1024,
		})
		if err := ix.RemoveFile(); err != nil {
			return categorize.Measure{}, nil, err
		}
	}
	best, err := model.SelectCount(measures)
	return best, measures, err
}
