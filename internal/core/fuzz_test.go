package core

import (
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/sequence"
)

// FuzzSearchMatchesScan derives a tiny database and query from fuzz bytes
// and asserts the end-to-end no-false-dismissal equality on a sparse ME
// index — the whole stack under fuzz.
func FuzzSearchMatchesScan(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{2, 3, 4}, uint8(10), uint8(3))
	f.Add([]byte{9, 9, 9, 9, 9, 1}, []byte{9, 9}, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seqBytes, qBytes []byte, epsRaw, catsRaw uint8) {
		if len(seqBytes) < 4 || len(qBytes) == 0 {
			return
		}
		if len(seqBytes) > 48 {
			seqBytes = seqBytes[:48]
		}
		if len(qBytes) > 8 {
			qBytes = qBytes[:8]
		}
		// Two sequences cut from the byte stream.
		data := sequence.NewDataset()
		half := len(seqBytes) / 2
		for i, chunk := range [][]byte{seqBytes[:half], seqBytes[half:]} {
			vals := make([]float64, len(chunk))
			for j, b := range chunk {
				vals[j] = float64(int(b) % 32)
			}
			data.MustAdd(sequence.Sequence{ID: string(rune('a' + i)), Values: vals})
		}
		q := make([]float64, len(qBytes))
		for j, b := range qBytes {
			q[j] = float64(int(b) % 32)
		}
		eps := float64(epsRaw%40) + 0.5
		cats := int(catsRaw)%8 + 1

		ix, err := Build(data, filepath.Join(t.TempDir(), "fz.twt"), Options{
			Kind: categorize.KindMaxEntropy, Categories: cats, Sparse: true,
		})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		defer ix.Close()
		got, _, err := ix.Search(q, eps)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		want, _, err := SeqScan(data, q, eps, -1)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if !matchesEqual(got, want) {
			t.Fatalf("index %d matches, scan %d (eps=%v cats=%d)", len(got), len(want), eps, cats)
		}
	})
}
