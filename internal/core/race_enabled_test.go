//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-measuring tests skip themselves under it, since shadow-memory
// bookkeeping inflates every heap number they read.
const raceEnabled = true
