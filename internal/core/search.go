package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"twsearch/internal/disktree"
	"twsearch/internal/dtw"
	"twsearch/internal/pending"
	"twsearch/internal/sequence"
	"twsearch/internal/suffixtree"
)

// Search finds every subsequence whose time warping distance from q is at
// most eps — the paper's SimSearch-ST / SimSearch-ST_C / SimSearch-SST_C,
// selected by how the index was built. Results are sorted by (sequence,
// start, end). The guarantee is no false dismissals: the returned set is
// exactly what SeqScan returns.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable searches use SearchCtx
func (ix *Index) Search(q []float64, eps float64) ([]Match, SearchStats, error) {
	return ix.search(context.Background(), q, eps, nil)
}

// SearchCtx is Search with cancellation: when ctx is canceled or its
// deadline passes, the traversal aborts through the same early-stop path a
// visitor uses and ctx.Err() is returned. Cancellation is checked every few
// tree nodes and once per post-processing group, so an abort costs at most
// one group's verification scan.
func (ix *Index) SearchCtx(ctx context.Context, q []float64, eps float64) ([]Match, SearchStats, error) {
	return ix.search(ctx, q, eps, nil)
}

// SearchVisit streams answers to fn instead of materializing them: fn is
// called once per answer, in no particular order; returning false stops the
// search early. Use it when a permissive threshold would produce answer
// sets too large to hold in memory.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable streaming uses SearchVisitCtx
func (ix *Index) SearchVisit(q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	return ix.SearchVisitCtx(context.Background(), q, eps, fn)
}

// SearchVisitCtx is SearchVisit with cancellation; see SearchCtx. After a
// cancellation no further answers are delivered to fn.
func (ix *Index) SearchVisitCtx(ctx context.Context, q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	if fn == nil {
		return SearchStats{}, errors.New("core: nil visitor")
	}
	_, stats, err := ix.search(ctx, q, eps, fn)
	return stats, err
}

func (ix *Index) search(ctx context.Context, q []float64, eps float64, visit func(Match) bool) ([]Match, SearchStats, error) {
	if len(q) == 0 {
		return nil, SearchStats{}, errors.New("core: empty query")
	}
	if eps < 0 {
		return nil, SearchStats{}, errors.New("core: negative distance threshold")
	}
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	started := time.Now()
	// Pool counters are index-wide: under concurrent searches the deltas
	// attribute other goroutines' traffic too. Matches stay byte-identical;
	// only these advisory counters blur.
	poolBefore := ix.Tree.PoolStats()
	pagesBefore := ix.Tree.PagesRead()

	s := ix.queries.acquire(ix, ctx, q, eps, visit)
	defer ix.queries.release(s)

	root := s.node(0)
	if err := ix.Tree.ReadNodeInto(ix.Tree.Root(), root); err != nil {
		return nil, SearchStats{}, err
	}
	s.stats.NodesVisited++
	for i := range root.Children {
		if s.stopped {
			break
		}
		if s.pruneChild(root.Children[i], 0) {
			continue
		}
		if err := s.processEdge(root.Children[i].Ptr, 1, false, 0); err != nil {
			return nil, SearchStats{}, err
		}
	}

	s.postProcess()

	s.stats.FilterCells = s.table.Cells()
	s.stats.PostCells = s.post.Cells()
	poolAfter := ix.Tree.PoolStats()
	s.stats.PoolHits = poolAfter.Hits - poolBefore.Hits
	s.stats.PoolMisses = poolAfter.Misses - poolBefore.Misses
	s.stats.PagesRead = ix.Tree.PagesRead() - pagesBefore
	s.stats.Elapsed = time.Since(started)
	if s.ctxErr != nil {
		return nil, s.stats, s.ctxErr
	}
	sortMatches(s.matches)
	matches := s.matches
	s.matches = nil // ownership transfers to the caller; release must not pool it
	return matches, s.stats, nil
}

// searcher is the pooled per-query execution context: every piece of
// mutable search state lives here, so the Index it runs against stays
// read-only and shareable across goroutines. One cumulative distance table
// is shared by the whole traversal: descend = AddRow, backtrack = Pop — the
// paper's R_d table-sharing. A searcher is reused across queries via
// queryPool; acquire rebinds everything per call.
type searcher struct {
	ix *Index
	// ctx carries the caller's cancellation; checkCancel folds it into the
	// stopped flag so aborts flow through the one early-stop path shared
	// with visitors. ctxErr records the reason for the final error return.
	ctx    context.Context
	ctxErr error
	q      []float64
	eps    float64
	table  *dtw.Table
	post   *dtw.Table
	sparse bool
	// exactStored marks stored-suffix filter distances as exact answers
	// (identity categorization with a band-consistent filter table).
	exactStored bool

	intervals []dtw.Interval
	stats     SearchStats
	matches   []Match

	// pend groups unverified candidates by (seq, start), keeping only the
	// furthest end per start (key: seqOffsets[seq]+start). PostProcess then
	// scans each touched start once: every end whose exact distance is
	// within eps is an answer, and by the no-false-dismissal property those
	// are exactly the true answers at that start — so one table per start
	// verifies all its candidates at once, bounding post-processing by the
	// baseline's total work. The epoch-stamped set makes per-query cost
	// O(candidates), not O(total elements): its backing arrays are
	// allocated once per pooled searcher and survive across queries.
	pend       pending.Set
	seqOffsets []int

	// nodes[level] is the scratch node for DFS level; collectNodes[level]
	// serves the leaf-collection recursion. Reuse keeps the traversal
	// allocation-free after warmup.
	nodes        []*disktree.Node
	collectNodes []*disktree.Node

	// firstSym and base0 describe the current root-to-here path's first
	// symbol: base0 = D_base-lb(q[0], interval(firstSym)) is the per-shift
	// discount of D_tw-lb2 (Definition 4).
	firstSym suffixtree.Symbol
	base0    float64

	// The envelope lower-bound cascade. env is the query's Sakoe–Chiba
	// envelope under the filter window (constant on sparse trees, whose
	// filter is always unconstrained — which is exactly what makes the bound
	// shift-safe for D_tw-lb2 candidates). envSums[d] is the running
	// LB_Keogh prefix: the sum of per-row envelope gaps over the current
	// path's first d rows; it lower-bounds every filter distance at depth
	// >= d, so a row whose new sum (minus the sparse shift discount) exceeds
	// eps is cut before its O(|Q|) table row is computed (tier B). envBase0
	// is the first row's envelope gap — the per-shift discount unit of the
	// envelope bound, playing base0's role (each shifted-away leading-run
	// row contributed exactly envBase0 to the sum). envOn gates the tier;
	// hullOn additionally gates the tier-A subtree-hull skip, which needs
	// the v3 on-disk format (older files decode hull fields as zero, which
	// would falsely claim symbol 0).
	env      dtw.Envelope
	envSums  []float64
	envBase0 float64
	envOn    bool
	hullOn   bool

	// visit, when set, receives answers as they are found instead of
	// accumulating them in matches; stopped records an early stop request.
	visit   func(Match) bool
	stopped bool

	// spawnLevel, when > 0, turns the traversal into the frontier-expansion
	// pass of a parallel search: processEdge stops descending at that tree
	// level and queues each child subtree as a task (in DFS order) instead
	// of recursing. tasks collects them; see parallel.go.
	spawnLevel int
	tasks      []parTask
	// extStop, when set, is the search-wide stop flag shared by all workers
	// of one parallel query; checkCancel folds it into stopped so a visitor
	// stop or a failed sibling task halts every worker at the same cadence
	// as context cancellation.
	extStop *atomic.Bool
	// readAhead batches child page fetches ahead of the per-child DP work;
	// set only on parallel workers, where a worker blocked on a read-ahead
	// overlaps with the other workers' table rows.
	readAhead bool
}

// checkCancel polls the context and converts a cancellation into the
// early-stop flag. The traversal calls it every few nodes (cancelMask), the
// post-processing scan once per pending group; both are frequent enough to
// bound abort latency and rare enough to keep ctx.Err off the hot path.
//
//twlint:steady-state
func (s *searcher) checkCancel() {
	if s.extStop != nil && s.extStop.Load() {
		s.stopped = true
	}
	if s.ctxErr != nil {
		return
	}
	if err := s.ctx.Err(); err != nil {
		s.ctxErr = err
		s.stopped = true
	}
}

// cancelMask thins traversal-side cancellation checks to one per 64 nodes.
const cancelMask = 63

// emit delivers one verified answer, either into the result slice or to the
// streaming visitor. After an early stop nothing further is delivered.
//
//twlint:steady-state
func (s *searcher) emit(m Match) {
	if s.stopped {
		return
	}
	s.stats.Answers++
	if s.visit != nil {
		if !s.visit(m) {
			s.stopped = true
		}
		return
	}
	//lint:ignore steadystate answer materialization: the slice is the result handed to the caller, so its growth is the answer set's own footprint, not per-query churn
	s.matches = append(s.matches, m)
}

func (s *searcher) node(level int) *disktree.Node {
	for len(s.nodes) <= level {
		s.nodes = append(s.nodes, &disktree.Node{})
	}
	return s.nodes[level]
}

func (s *searcher) collectNode(level int) *disktree.Node {
	for len(s.collectNodes) <= level {
		s.collectNodes = append(s.collectNodes, &disktree.Node{})
	}
	return s.collectNodes[level]
}

// processEdge walks the edge label into the node at ptr, adding one table
// row per symbol, emitting candidates whenever a row qualifies, pruning by
// Theorem 1 (adjusted for the sparse shift discount), and recursing into
// children. runBroken/firstRun describe the path's leading equal-symbol
// run on entry; the table is restored to its entry depth before returning.
//
//twlint:steady-state
func (s *searcher) processEdge(ptr disktree.Ptr, level int, runBroken bool, firstRun int) error {
	n := s.node(level)
	if err := s.ix.Tree.ReadNodeInto(ptr, n); err != nil {
		return err
	}
	s.stats.NodesVisited++
	if s.stats.NodesVisited&cancelMask == 0 {
		s.checkCancel()
	}

	entryDepth := s.table.Depth()
	descend := true
	// lastMin is the last added row's column minimum — by Theorem 1 a lower
	// bound on every deeper filter distance, which the tier-A subtree-hull
	// skip charges extra envelope gaps on top of.
	lastMin := 0.0
	// Deferred emission: on non-exact indexes a candidate only contributes
	// its start and a max end to the pending table, so one collect per edge
	// at the deepest qualifying depth (with the smallest qualifying filter
	// distance, which only loosens bounds) subsumes per-depth collects.
	// Exact indexes emit answers with per-depth distances, so they collect
	// at every qualifying depth.
	pendD := 0
	pendDist := dtw.Inf
	for i := 0; i < int(n.LabelLen); i++ {
		var sym suffixtree.Symbol
		if len(n.Label) > 0 {
			sym = n.Label[i] // inline layout: label travels with the record
		} else {
			sym = s.ix.Store.Sym(int(n.LabelSeq), int(n.LabelStart)+i)
		}
		if suffixtree.IsTerminator(sym) {
			// The suffix ends here; all its prefixes were handled at
			// shallower depths. Nothing lies below a terminator.
			descend = false
			break
		}
		iv := s.intervals[sym]
		x := s.table.Depth() // 0-based position of the row about to be added
		if x == 0 {
			s.firstSym = sym
			s.base0 = dtw.BaseInterval(s.q[0], iv.Lo, iv.Hi)
			firstRun = 1
		} else if !runBroken {
			if sym == s.firstSym {
				firstRun++
			} else {
				runBroken = true
			}
		}

		// Envelope cascade, tier B: the row's envelope gap extends the
		// LB_Keogh prefix sum, which lower-bounds every filter distance at
		// this depth or deeper — for shifted sparse candidates after
		// discounting envBase0 per shifted-away leading-run row. When the
		// discounted sum already exceeds eps, the O(|Q|) table row (and
		// everything below) is provably fruitless and is cut for the price
		// of one gap evaluation.
		if s.envOn {
			elo, ehi := s.env.At(x)
			g := dtw.GapInterval(iv.Lo, iv.Hi, elo, ehi)
			s.stats.LBCells++
			if x == 0 {
				s.envBase0 = g
			}
			newSum := s.envSums[x] + g
			envBound := newSum
			if s.sparse {
				j := firstRun - 1
				if !runBroken {
					j = s.ix.maxRun - 1
				}
				if j > 0 {
					envBound = newSum - float64(j)*s.envBase0
				}
			}
			if envBound > s.eps && !s.ix.DisablePruning {
				s.stats.EnvelopePruned++
				descend = false
				break
			}
			if len(s.envSums) <= x+1 {
				//lint:ignore steadystate pooled scratch: the prefix-sum slice grows once per context to the deepest path ever walked, then every later query reuses the capacity
				s.envSums = append(s.envSums, 0)
			}
			s.envSums[x+1] = newSum
		}

		dist, minDist := s.table.AddRowInterval(iv.Lo, iv.Hi)
		lastMin = minDist
		d := s.table.Depth()

		// Candidate emission. For dense trees only dist counts; for sparse
		// trees a shifted start can lower the bound by up to
		// (firstRun-1)·base0, so collection may be warranted even when
		// dist > eps.
		emitBound := dist
		if s.sparse && firstRun > 1 {
			emitBound = dist - float64(firstRun-1)*s.base0
		}
		if emitBound <= s.eps {
			if s.exactStored {
				if err := s.collect(n, d, dist); err != nil {
					return err
				}
			} else {
				pendD = d
				if dist < pendDist {
					pendDist = dist
				}
			}
		}

		// Branch pruning (Theorem 1). For sparse trees the row minimum must
		// be discounted by the largest shift any deeper candidate could
		// claim: (firstRun-1) once the run is broken (every leaf below has
		// exactly that run), or (maxRun-1) while the path is still one run
		// (deeper leaves may extend it).
		pruneBound := minDist
		if s.sparse {
			j := firstRun - 1
			if !runBroken {
				j = s.ix.maxRun - 1
			}
			if j > 0 {
				pruneBound = minDist - float64(j)*s.base0
			}
		}
		if pruneBound > s.eps && !s.ix.DisablePruning {
			descend = false
			break
		}

		// Answer-length cutoff for sparse+window: the shortest candidate a
		// depth-d row can produce has length d minus the largest shift; once
		// that exceeds |Q|+w every deeper candidate is infeasible under the
		// band. (Dense trees get this pruning from the banded table itself.)
		if s.sparse && s.ix.Window >= 0 {
			j := firstRun - 1
			if !runBroken {
				j = s.ix.maxRun - 1
			}
			if d-j > len(s.q)+s.ix.Window {
				descend = false
				break
			}
		}
	}

	if pendD > 0 {
		if err := s.collect(n, pendD, pendDist); err != nil {
			return err
		}
	}

	if descend && !n.Leaf && !s.stopped {
		// edgeBound lower-bounds every filter distance below this node
		// (Theorem 1's row minimum, discounted for the sparse shift) — what
		// the tier-A subtree-hull check charges each child's envelope gap
		// on top of.
		edgeBound := lastMin
		if s.sparse {
			j := firstRun - 1
			if !runBroken {
				j = s.ix.maxRun - 1
			}
			if j > 0 {
				edgeBound -= float64(j) * s.base0
			}
		}
		if s.spawnLevel > 0 && level == s.spawnLevel {
			// Parallel frontier: each child subtree becomes a task carrying
			// a fork of the shared prefix rows instead of being walked here.
			s.spawnSubtreeTasks(n, runBroken, firstRun, edgeBound)
		} else {
			if s.readAhead && len(n.Children) > 1 {
				s.ix.Tree.ReadAhead(n.Children)
			}
			// n's Children may be overwritten by deeper levels reusing
			// scratch; deeper levels use level+1 though, and collect uses
			// its own pool, so iterating the slice here is safe.
			for i := range n.Children {
				if s.stopped {
					break
				}
				if s.pruneChild(n.Children[i], edgeBound) {
					continue
				}
				if err := s.processEdge(n.Children[i].Ptr, level+1, runBroken, firstRun); err != nil {
					return err
				}
			}
		}
	}

	s.table.Truncate(entryDepth)
	return nil
}

// pruneChild is the envelope cascade's tier A: gap evaluations against the
// persisted subtree hull decide whether any answer can lie under child c —
// before reading c's node. Every candidate below c contains at least one
// row within the hull's horizon whose symbol sits inside c's hull (its
// first row past this depth — for a shifted sparse candidate either the
// continuation of the leading run or the row right below this node, both
// within the horizon), and every row lands at a position covered by the
// envelope's suffix hull; so every deeper filter distance is at least
// edgeBound plus the hull-vs-suffix gap. At the root (no rows yet) the same argument holds
// with edgeBound 0: a whole top-level subtree whose value hull sits further
// than eps from the query envelope is dismissed without reading a single
// node — on value-clustered data this is where most of the tree disappears.
// A child whose persisted hull is empty holds only terminators — its
// suffixes end at the current depth, which this edge's rows already emitted
// — so it is skipped outright. Requires the v3 format (hullOn): older files
// decode the hull fields as zeros, which would falsely claim symbol 0.
//
// Under a band the hull profile also charges the whole query tail (the
// part Theorem 1 cannot see yet). Any answer's warping path must cover
// every query column to reach the final corner; a column matched by a row
// below this node is matched within the band, at a relative depth whose
// persisted segment hulls bound the row's symbol. Distinct columns are
// matched by distinct table cells, so their gaps add. This is where the
// cascade beats Theorem 1 by more than a row: a candidate can track the
// query perfectly for the whole prefix, yet its subtree's depth profile
// already proves it cannot follow where the query goes next — the DP would
// grind through every row until the mismatch accrues; the tail charge sees
// it at the boundary. The segmentation is what gives the charge teeth:
// one whole-subtree hull conflates a near-track prefix with its divergent
// continuations and covers the query everywhere, while per-depth segments
// expose the divergence. An empty segment range even yields an infinite
// charge — every path in the subtree provably ends above the depths that
// column needs, so nothing below can be an answer. Stored profiles only
// cover the first disktree.HullHorizon rows below the node, so the charge
// stops at columns whose band reaches past the horizon; for the engine's
// workloads the horizon exceeds |Q|+w and the clamp rarely bites. Sparse
// trees always filter unconstrained (Window() < 0, see queryctx), so the
// tail charge never applies to shifted candidates — whose row-to-column
// alignment this argument would not survive.
//
//twlint:steady-state
func (s *searcher) pruneChild(c disktree.ChildRef, edgeBound float64) bool {
	if !s.hullOn || s.ix.DisablePruning {
		return false
	}
	if c.MaxSym < c.MinSym {
		s.stats.EnvelopePruned++
		return true
	}
	lo := s.intervals[c.MinSym].Lo
	hi := s.intervals[c.MaxSym].Hi
	elo, ehi := s.env.SuffixAt(s.table.Depth())
	g := dtw.GapInterval(lo, hi, elo, ehi)
	s.stats.LBCells++
	if edgeBound+g > s.eps {
		s.stats.EnvelopePruned++
		return true
	}
	if w := s.env.Window(); w >= 0 {
		d := s.table.Depth()
		n := len(s.q)
		// Per-column charges are only valid while the matching row is inside
		// the hull's horizon: under the band, column x is matched at a row
		// r <= x+w, so the charge stops at x >= d+HullHorizon-w.
		end := n
		if m := d + disktree.HullHorizon - w; m < end {
			end = m
		}
		if d == 0 {
			// No rows yet: an answer under c covers every query column with
			// rows whose symbols sit in c's profile, so the LB_Keogh of the
			// band-reachable segments against the whole query is a lower
			// bound.
			sum := 0.0
			for x := 0; x < end; x++ {
				sum += s.hullGap(&c, 0, x, w)
				s.stats.LBCells++
				if sum > s.eps {
					s.stats.EnvelopePruned++
					return true
				}
			}
			return false
		}
		// Frontier splice: an answer's warping path leaves the last computed
		// row at some column j (cumulative cost row[j]), after which every
		// column right of j is matched by a row below this node — symbols in
		// c's hull — and distinct columns by distinct cells, so their gaps
		// add. min_j (row[j] + tail(j)) therefore lower-bounds every answer
		// below c. This dominates charging the global row minimum: the
		// columns that produce the small minimum are exactly the ones that
		// still owe the whole tail. Scanning j right-to-left accumulates
		// tail(j) incrementally; once the tail alone clears eps no smaller j
		// can come in under it, so the scan stops early.
		row := s.table.LastRow()
		best := dtw.Inf
		tail := 0.0
		for j := n - 1; j >= 0; j-- {
			if v := row[j] + tail; v < best {
				best = v
			}
			if tail > s.eps {
				break
			}
			if j < end {
				tail += s.hullGap(&c, d, j, w)
				s.stats.LBCells++
			}
		}
		if best > s.eps {
			s.stats.EnvelopePruned++
			return true
		}
	}
	return false
}

// hullGap is the tail charge for one query column x, from the current
// table depth d under band half-width w: the gap between q[x] and the
// union of c's segment hulls over the relative depths the band allows a
// matching row to sit at ([x-w-d, x+w-d], clipped to the profile). A row
// below this node that matches column x must lie at one of those depths,
// so its base distance to q[x] is at least this gap. When every reachable
// segment is empty no such row exists in c's subtree at all — empties form
// a suffix of the profile, so every path ends above the needed depth — and
// the charge is infinite: nothing below c can cover column x. Callers
// guarantee the band's upper reach stays inside the horizon (x+w-d <
// HullHorizon) via their end clip.
//
//twlint:steady-state
func (s *searcher) hullGap(c *disktree.ChildRef, d, x, w int) float64 {
	kHi := x + w - d
	if kHi < 0 {
		// The band puts every row that could match column x above this
		// node; a path descending into c can no longer cover x.
		return dtw.Inf
	}
	kLo := x - w - d
	if kLo < 0 {
		kLo = 0
	}
	lo, hi := suffixtree.Symbol(0), suffixtree.Symbol(-1)
	for si := kLo / disktree.HullSegLen; si <= kHi/disktree.HullSegLen; si++ {
		seg := c.Seg[si]
		if seg.Hi < seg.Lo {
			continue
		}
		if hi < lo {
			lo, hi = seg.Lo, seg.Hi
			continue
		}
		if seg.Lo < lo {
			lo = seg.Lo
		}
		if seg.Hi > hi {
			hi = seg.Hi
		}
	}
	if hi < lo {
		return dtw.Inf
	}
	return dtw.BaseInterval(s.q[x], s.intervals[lo].Lo, s.intervals[hi].Hi)
}

// collect emits candidates for every leaf in the subtree rooted at the node
// n (already read), for the current depth d and filter distance dist.
//
//twlint:steady-state
func (s *searcher) collect(n *disktree.Node, d int, dist float64) error {
	if n.Leaf {
		s.emitLeaf(n, d, dist)
		return nil
	}
	return s.collectChildren(n, 0, d, dist)
}

//twlint:steady-state
func (s *searcher) collectChildren(n *disktree.Node, level, d int, dist float64) error {
	for i := range n.Children {
		c := s.collectNode(level)
		if err := s.ix.Tree.ReadNodeInto(n.Children[i].Ptr, c); err != nil {
			return err
		}
		if c.Leaf {
			s.emitLeaf(c, d, dist)
			continue
		}
		if err := s.collectChildren(c, level+1, d, dist); err != nil {
			return err
		}
	}
	return nil
}

// emitLeaf produces the candidate for the stored suffix (pos, pos+d) and,
// on sparse trees, the D_tw-lb2 candidates for the non-stored suffixes
// inside the leaf's leading run (Definition 4: shift j up to
// min(runLen, d) - 1).
//
//twlint:steady-state
func (s *searcher) emitLeaf(leaf *disktree.Node, d int, dist float64) {
	seq := int(leaf.LabelSeq)
	pos := int(leaf.Pos)
	if dist <= s.eps {
		s.candidate(seq, pos, pos+d, dist, s.exactStored)
	}
	if !s.sparse {
		return
	}
	jMax := int(leaf.RunLen)
	if d < jMax {
		jMax = d
	}
	for j := 1; j < jMax; j++ {
		lb2 := dist - float64(j)*s.base0
		if lb2 <= s.eps {
			s.candidate(seq, pos+j, pos+d, lb2, false)
		}
	}
}

// candidate records a filtered subsequence. When the filter distance is
// exact (identity categorization, unshifted suffix) the candidate is an
// answer outright; otherwise it joins its start's pending group for the
// post-processing scan. (No bound-source marker: the summary fixpoint
// infers that lb receives lower bounds from the emitLeaf call sites.)
//
//twlint:steady-state
func (s *searcher) candidate(seq, start, end int, lb float64, exact bool) {
	if end-start < s.ix.minAnswerLen {
		return
	}
	s.stats.Candidates++
	if exact {
		s.emit(Match{
			Ref:      sequence.Ref{Seq: seq, Start: start, End: end},
			Distance: lb,
		})
		return
	}
	s.pend.Add(int32(s.seqOffsets[seq]+start), int32(end))
}

// postProcess verifies the pending groups: one cumulative table per touched
// start, scanned to the group's furthest end with Theorem-1 early abandon.
// Every end with exact distance within eps is emitted. Iterating the sorted
// touched offsets visits only this query's candidates — O(candidates), not
// a scan of the whole database — in the same (seq, start) order the dense
// scan used, since the global offset is monotone in (seq, start).
//
//twlint:steady-state
func (s *searcher) postProcess() {
	seq := 0
	for _, off := range s.pend.Sorted() {
		if s.stopped {
			break
		}
		s.checkCancel()
		if s.stopped {
			break
		}
		for seq+1 < s.ix.Data.Len() && int(off) >= s.seqOffsets[seq+1] {
			seq++
		}
		vals := s.ix.Data.Values(seq)
		start := int(off) - s.seqOffsets[seq]
		maxEnd := int(s.pend.MaxEnd(off))
		s.post.Truncate(0)
		for e := start; e < maxEnd && !s.stopped; e++ {
			dist, minDist := s.post.AddRowValue(vals[e])
			if dist <= s.eps && e+1-start >= s.ix.minAnswerLen {
				s.emit(Match{
					Ref:      sequence.Ref{Seq: seq, Start: start, End: e + 1},
					Distance: dist,
				})
			}
			if minDist > s.eps {
				break
			}
		}
	}
	if s.stats.Candidates >= s.stats.Answers {
		s.stats.FalseAlarms = s.stats.Candidates - s.stats.Answers
	}
}
