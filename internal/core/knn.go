package core

import (
	"context"
	"errors"
	"math"
	"sort"
)

// SearchKNN returns the k subsequences with the smallest time warping
// distance to q (ties broken by position), found by iterative threshold
// expansion: the range search at a threshold ε is complete, so as soon as
// it yields at least k answers the k smallest of them are exactly the k
// nearest neighbors. The threshold starts at the scale of one query step
// and quadruples until enough answers appear.
//
// On a window-constrained or length-filtered index, "nearest" is relative
// to that index's semantics: band-constrained distances, answers no shorter
// than the index's floor. If fewer than k subsequences are reachable at all
// (a narrow band can make every distance infinite), the reachable ones are
// returned.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable k-NN uses SearchKNNCtx
func (ix *Index) SearchKNN(q []float64, k int) ([]Match, SearchStats, error) {
	return ix.SearchKNNCtx(context.Background(), q, k)
}

// SearchKNNCtx is SearchKNN with cancellation: each expansion round runs
// under ctx, so a cancellation aborts mid-round through the range search's
// early-stop path and returns ctx.Err().
func (ix *Index) SearchKNNCtx(ctx context.Context, q []float64, k int) ([]Match, SearchStats, error) {
	return ix.SearchKNNOpts(ctx, q, k, SearchOptions{})
}

// SearchKNNOpts is SearchKNNCtx with execution options: every threshold-
// expansion round runs as one (possibly parallel) range search, so the
// rounds — and therefore the result and the accumulated stats — are
// byte-identical to the serial call at every parallelism level.
func (ix *Index) SearchKNNOpts(ctx context.Context, q []float64, k int, opts SearchOptions) ([]Match, SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, errors.New("core: k must be positive")
	}
	if len(q) == 0 {
		return nil, SearchStats{}, errors.New("core: empty query")
	}

	// Initial threshold: one typical step of the query, so exact occurrences
	// surface in the first round or two.
	eps := 0.0
	for i := 1; i < len(q); i++ {
		eps += math.Abs(q[i] - q[i-1])
	}
	eps = eps/float64(len(q)) + 1e-9

	var total SearchStats
	for {
		matches, stats, err := ix.SearchOpts(ctx, q, eps, opts)
		total.Add(stats)
		if err != nil {
			return nil, total, err
		}
		if len(matches) >= k {
			sort.SliceStable(matches, func(i, j int) bool {
				return matches[i].Distance < matches[j].Distance
			})
			matches = matches[:k]
			sortMatches(matches)
			total.Answers = uint64(len(matches))
			return matches, total, nil
		}
		// Termination: past any plausible distance, everything reachable
		// has been found (window/length constraints can exclude the rest).
		if eps > 1e18 {
			sortMatches(matches)
			total.Answers = uint64(len(matches))
			return matches, total, nil
		}
		eps *= 4
	}
}
