package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"twsearch/internal/disktree"
	"twsearch/internal/dtw"
	"twsearch/internal/suffixtree"
)

// SearchOptions tunes how a single search call executes. The zero value is
// the serial traversal every existing entry point uses.
type SearchOptions struct {
	// Parallelism is the maximum number of worker goroutines one search may
	// use to walk disjoint subtrees concurrently; <= 1 means serial. The
	// engine takes the value as given — callers that want to track the
	// machine pass min(runtime.GOMAXPROCS(0), desired) — because results
	// are byte-identical to serial at any worker count, and tests rely on
	// exercising multi-worker schedules even on small machines.
	Parallelism int
}

// SearchOpts is SearchCtx with execution options; see SearchOptions.
// Results — matches, distances, order, and the machine-independent stats —
// are byte-identical to the serial SearchCtx at every parallelism level.
func (ix *Index) SearchOpts(ctx context.Context, q []float64, eps float64, opts SearchOptions) ([]Match, SearchStats, error) {
	if opts.Parallelism <= 1 {
		return ix.search(ctx, q, eps, nil)
	}
	return ix.searchParallel(ctx, q, eps, nil, opts.Parallelism)
}

// SearchVisitOpts is SearchVisitCtx with execution options. fn is always
// called from the calling goroutine, never concurrently, and sees answers
// in exactly the order the serial traversal would deliver them: filter-pass
// answers in DFS order, then post-processed answers in (seq, start) order.
func (ix *Index) SearchVisitOpts(ctx context.Context, q []float64, eps float64, fn func(Match) bool, opts SearchOptions) (SearchStats, error) {
	if fn == nil {
		return SearchStats{}, errors.New("core: nil visitor")
	}
	if opts.Parallelism <= 1 {
		_, stats, err := ix.search(ctx, q, eps, fn)
		return stats, err
	}
	_, stats, err := ix.searchParallel(ctx, q, eps, fn, opts.Parallelism)
	return stats, err
}

// parTask is one unit of parallel work: a subtree hanging off the frontier,
// plus everything a worker needs to resume the traversal there exactly as
// the serial DFS would have entered it — the forked prefix rows of the
// cumulative table (the paper's R_d sharing cut at the frontier) and the
// leading-run state of the path. Tasks are created in DFS order; a task's
// index is its DFS rank, which the merge uses to reassemble serial order.
type parTask struct {
	ptr    disktree.Ptr
	prefix *dtw.Table // read-only once published; workers CopyFrom it

	runBroken bool
	firstRun  int
	firstSym  suffixtree.Symbol
	base0     float64

	// envSum is the envelope cascade's LB_Keogh prefix sum at the fork
	// depth, and envBase0 its per-shift discount unit — the two scalars a
	// worker needs to resume tier B exactly where the serial descent would
	// have been.
	envSum   float64
	envBase0 float64

	// frontierMark is how many filter-pass matches the frontier expansion
	// had emitted when this task was queued: in serial order, those matches
	// precede this task's subtree.
	frontierMark int
}

// parResult is what one completed task hands back to the merge.
type parResult struct {
	matches []Match
	err     error
}

// frontierRootFanout decides where the task frontier sits: when the root
// already has at least this many children per worker (identity trees, whose
// fanout is the alphabet), splitting at depth 1 gives plenty of tasks;
// otherwise the expansion descends one more level so tasks are grandchild
// subtrees — on a categorized tree that is O(c²) tasks from O(c) cheap
// root edges.
const frontierRootFanout = 4

// searchParallel runs one search across par worker goroutines and merges
// their results back into serial order. The phases:
//
//  1. Frontier expansion (this goroutine): walk the tree down to a shallow
//     frontier exactly like the serial DFS, but queue each subtree below it
//     as a task instead of descending. Each task forks the cumulative
//     table's prefix rows, so the shared-prefix work is done (and counted)
//     exactly once.
//  2. Work stealing: workers pull tasks from an atomic cursor, rebuild the
//     entry state with Table.CopyFrom, and run the unmodified serial
//     processEdge over their subtree. Theorem 1/2/3 pruning decisions are
//     path-local, so every task prunes exactly as serial would.
//  3. Ordered merge (this goroutine): completed tasks are stitched back in
//     DFS-rank order — interleaved with the frontier's own matches at each
//     task's frontierMark — so a visitor sees the serial delivery order.
//     Candidate shards merge onto the driver's pending set (order-
//     independent by construction) before the single ordered exact pass.
func (ix *Index) searchParallel(ctx context.Context, q []float64, eps float64, visit func(Match) bool, par int) ([]Match, SearchStats, error) {
	if len(q) == 0 {
		return nil, SearchStats{}, errors.New("core: empty query")
	}
	if eps < 0 {
		return nil, SearchStats{}, errors.New("core: negative distance threshold")
	}
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	started := time.Now()
	// Pool counters are index-wide: the deltas attribute every concurrent
	// goroutine's traffic, including our own workers'. See SearchStats for
	// which counters stay exact under parallelism.
	poolBefore := ix.Tree.PoolStats()
	pagesBefore := ix.Tree.PagesRead()

	s := ix.queries.acquire(ix, ctx, q, eps, nil)
	defer ix.queries.release(s)

	root := s.node(0)
	if err := ix.Tree.ReadNodeInto(ix.Tree.Root(), root); err != nil {
		return nil, SearchStats{}, err
	}
	s.stats.NodesVisited++

	// Phase 1: frontier expansion.
	if len(root.Children) >= frontierRootFanout*par {
		prefix := s.table.Fork(0)
		for i := range root.Children {
			// Tier A on the fanout frontier: pruned subtrees never become
			// tasks, so serial and parallel visit (and count) identically.
			if s.pruneChild(root.Children[i], 0) {
				continue
			}
			s.tasks = append(s.tasks, parTask{ptr: root.Children[i].Ptr, prefix: prefix})
		}
	} else {
		s.spawnLevel = 1
		for i := range root.Children {
			if s.stopped {
				break
			}
			if s.pruneChild(root.Children[i], 0) {
				continue
			}
			if err := s.processEdge(root.Children[i].Ptr, 1, false, 0); err != nil {
				return nil, SearchStats{}, err
			}
		}
		s.spawnLevel = 0
	}
	tasks := s.tasks

	// Phase 2: workers steal tasks. Searchers are acquired and released by
	// this goroutine so the pool hand-off stays single-owner; the stop flag
	// halts every worker on visitor stop, task error, or cancellation.
	var stop atomic.Bool
	var cursor atomic.Int64
	results := make([]parResult, len(tasks))
	nw := par
	if nw > len(tasks) {
		nw = len(tasks)
	}
	workers := make([]*searcher, nw)
	for i := range workers {
		w := ix.queries.acquire(ix, ctx, q, eps, nil)
		w.extStop = &stop
		w.readAhead = true
		workers[i] = w
	}
	done := make(chan int, len(tasks))
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		w := workers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				k := int(cursor.Add(1)) - 1
				if k >= len(tasks) {
					return
				}
				t := &tasks[k]
				w.table.CopyFrom(t.prefix)
				w.firstSym = t.firstSym
				w.base0 = t.base0
				w.envBase0 = t.envBase0
				w.setEnvSum(w.table.Depth(), t.envSum)
				from := len(w.matches)
				err := w.processEdge(t.ptr, 1, t.runBroken, t.firstRun)
				results[k] = parResult{
					matches: w.matches[from:len(w.matches):len(w.matches)],
					err:     err,
				}
				done <- k
				if err != nil || w.stopped {
					stop.Store(true)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Phase 3a: stitched delivery in DFS-rank order while workers run.
	// deliver never touches stats — filter-pass answers were counted by
	// whichever searcher emitted them.
	var out []Match
	visitorStopped := false
	deliver := func(ms []Match) {
		if visitorStopped {
			return
		}
		for i := range ms {
			if visit == nil {
				out = append(out, ms[i])
				continue
			}
			if !visit(ms[i]) {
				visitorStopped = true
				stop.Store(true)
				return
			}
		}
	}
	frontier := s.matches
	completed := make([]bool, len(tasks))
	nextRank, frontDelivered := 0, 0
	for k := range done { // closed once every worker has exited
		completed[k] = true
		for nextRank < len(tasks) && completed[nextRank] {
			t := &tasks[nextRank]
			deliver(frontier[frontDelivered:t.frontierMark])
			frontDelivered = t.frontierMark
			deliver(results[nextRank].matches)
			nextRank++
		}
	}

	// All workers have exited. Merge their counters and candidate shards,
	// pick the first error in DFS order (what the serial traversal would
	// have hit first), then hand the searchers back.
	var taskErr error
	for k := range results {
		if results[k].err != nil {
			taskErr = results[k].err
			break
		}
	}
	ctxErr := s.ctxErr
	filterCells := s.table.Cells()
	for _, w := range workers {
		if ctxErr == nil {
			ctxErr = w.ctxErr
		}
		filterCells += w.table.Cells()
		s.stats.NodesVisited += w.stats.NodesVisited
		s.stats.Candidates += w.stats.Candidates
		s.stats.Answers += w.stats.Answers
		s.stats.EnvelopePruned += w.stats.EnvelopePruned
		s.stats.LBCells += w.stats.LBCells
		s.pend.MergeFrom(&w.pend)
		ix.queries.release(w)
	}
	if taskErr != nil {
		return nil, SearchStats{}, taskErr
	}

	// Remaining frontier matches follow the last task's subtree in serial
	// order. On cancellation or visitor stop nothing further is delivered,
	// matching the serial early-stop path.
	s.stopped = visitorStopped || ctxErr != nil
	s.ctxErr = ctxErr
	if !s.stopped {
		deliver(frontier[frontDelivered:])
	}

	// Phase 3b: the single ordered exact pass over the merged candidate
	// set, emitting straight to the visitor (serial order) or onto the
	// stitched result slice.
	s.visit = visit
	s.matches = out
	s.postProcess()
	out = s.matches
	if ctxErr == nil {
		ctxErr = s.ctxErr // a cancellation first observed during post-processing
	}

	s.stats.FilterCells = filterCells
	s.stats.PostCells = s.post.Cells()
	poolAfter := ix.Tree.PoolStats()
	s.stats.PoolHits = poolAfter.Hits - poolBefore.Hits
	s.stats.PoolMisses = poolAfter.Misses - poolBefore.Misses
	s.stats.PagesRead = ix.Tree.PagesRead() - pagesBefore
	s.stats.Elapsed = time.Since(started)
	if ctxErr != nil {
		return nil, s.stats, ctxErr
	}
	sortMatches(out)
	s.matches = nil // ownership transfers to the caller; release must not pool it
	return out, s.stats, nil
}

// spawnSubtreeTasks queues every child of n as a parallel task. The prefix
// rows computed so far are forked once and shared read-only by all of n's
// children; each task snapshots the path state a serial descent would carry
// into that child. The envelope tier-A check runs here, on the frontier
// goroutine, so a child the serial traversal would skip never becomes a
// task — keeping counters and answers byte-identical to serial.
func (s *searcher) spawnSubtreeTasks(n *disktree.Node, runBroken bool, firstRun int, edgeBound float64) {
	prefix := s.table.Fork(s.table.Depth())
	var envSum float64
	if s.envOn {
		envSum = s.envSums[s.table.Depth()]
	}
	for i := range n.Children {
		if s.pruneChild(n.Children[i], edgeBound) {
			continue
		}
		s.tasks = append(s.tasks, parTask{
			ptr:          n.Children[i].Ptr,
			prefix:       prefix,
			runBroken:    runBroken,
			firstRun:     firstRun,
			firstSym:     s.firstSym,
			base0:        s.base0,
			envSum:       envSum,
			envBase0:     s.envBase0,
			frontierMark: len(s.matches),
		})
	}
}

// setEnvSum seeds the envelope prefix sum at a parallel task's fork depth;
// shallower entries are never read by the resumed descent, so only the one
// slot matters.
//
//twlint:steady-state
func (s *searcher) setEnvSum(depth int, sum float64) {
	for len(s.envSums) <= depth {
		//lint:ignore steadystate pooled scratch: the prefix-sum slice grows once per context to the deepest fork depth, then every later task reuses the capacity
		s.envSums = append(s.envSums, 0)
	}
	s.envSums[depth] = sum
}
