module twsearch

go 1.22
