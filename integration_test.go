package twsearch_test

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"twsearch/internal/workload"
	"twsearch/seqdb"
)

// TestIntegrationLifecycle drives the full public surface end to end:
// generate → persist → index (all methods) → range search vs scan → kNN →
// parallel search → alignment → reopen → drop.
func TestIntegrationLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := seqdb.Create(dir)
	if err != nil {
		t.Fatal(err)
	}

	data := workload.Stocks(workload.StockConfig{NumSequences: 40, AvgLen: 120, Seed: 71})
	for i := 0; i < data.Len(); i++ {
		if err := db.Add(data.Seq(i).ID, data.Values(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	specs := map[string]seqdb.IndexSpec{
		"exact":    {Method: seqdb.MethodExact},
		"el-dense": {Method: seqdb.MethodEqualLength, Categories: 16},
		"me-sst":   {Method: seqdb.MethodMaxEntropy, Categories: 24, Sparse: true},
		"km-sst":   {Method: seqdb.MethodKMeans, Categories: 12, Sparse: true},
		"windowed": {Method: seqdb.MethodMaxEntropy, Categories: 24, Sparse: true, Window: 15},
	}
	for name, spec := range specs {
		if err := db.BuildIndex(name, spec); err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
	}

	queries := workload.Queries(data, workload.QueryConfig{Count: 6, Seed: 72})
	eps := 6.0

	// Every unwindowed index agrees with the scan; the windowed one is a
	// subset of it (band constraints only remove answers).
	for _, q := range queries {
		want, _, err := db.SeqScan(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"exact", "el-dense", "me-sst", "km-sst"} {
			got, _, err := db.Search(name, q, eps)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !matchSetsEqual(got, want) {
				t.Fatalf("%s: %d matches, scan %d", name, len(got), len(want))
			}
		}
		windowed, _, err := db.Search("windowed", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(windowed) > len(want) {
			t.Fatalf("windowed search found more than unconstrained scan")
		}
	}

	// kNN: for each query, its own location must be the nearest neighbor.
	q := queries[0]
	knn, _, err := db.SearchKNN("me-sst", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(knn) != 3 {
		t.Fatalf("kNN returned %d", len(knn))
	}
	if knn[0].Distance != 0 && knn[1].Distance != 0 && knn[2].Distance != 0 {
		t.Fatalf("query extracted from data has no zero-distance neighbor: %+v", knn)
	}

	// Alignment on the best kNN hit.
	bestIdx := 0
	for i := range knn {
		if knn[i].Distance < knn[bestIdx].Distance {
			bestIdx = i
		}
	}
	dist, steps, err := db.Align(knn[bestIdx], q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist-knn[bestIdx].Distance) > 1e-9 {
		t.Fatalf("alignment distance %v != match distance %v", dist, knn[bestIdx].Distance)
	}
	if len(steps) == 0 {
		t.Fatal("empty alignment")
	}

	// Parallel search equals serial search.
	par, err := db.SearchParallel("me-sst", queries, eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, _, err := db.Search("me-sst", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i], want) {
			t.Fatalf("parallel query %d differs", i)
		}
	}

	// Reopen and re-verify one query per index.
	preClose := map[string][]seqdb.Match{}
	for name := range specs {
		preClose[name], _, err = db.Search(name, q, eps)
		if err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	re, err := seqdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Indexes()) != len(specs) {
		t.Fatalf("reopened %d indexes, want %d", len(re.Indexes()), len(specs))
	}
	for name := range specs {
		got, _, err := re.Search(name, q, eps)
		if err != nil {
			t.Fatalf("%s after reopen: %v", name, err)
		}
		if !reflect.DeepEqual(got, preClose[name]) {
			t.Fatalf("%s: answers changed across reopen", name)
		}
	}

	// Drop everything; adding becomes legal again.
	for name := range specs {
		if err := re.DropIndex(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Add("post-drop", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationArtificialScale runs a mid-sized artificial workload (the
// Figure 4/5 data) through the public API and cross-checks a handful of
// queries.
func TestIntegrationArtificialScale(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-sized workload")
	}
	dir := filepath.Join(t.TempDir(), "db")
	db, err := seqdb.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := workload.Artificial(workload.ArtificialConfig{NumSequences: 120, Len: 150, Seed: 77})
	for i := 0; i < data.Len(); i++ {
		if err := db.Add(data.Seq(i).ID, data.Values(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("sst", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 10, Sparse: true, BatchSize: 16,
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 5; trial++ {
		seqID := fmt.Sprintf("art-%05d", rng.Intn(data.Len()))
		vals := db.Values(seqID)
		start := rng.Intn(len(vals) - 20)
		q := append([]float64(nil), vals[start:start+15]...)
		eps := 3.0 + float64(rng.Intn(10))
		want, _, err := db.SeqScan(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := db.Search("sst", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !matchSetsEqual(got, want) {
			t.Fatalf("trial %d: index %d, scan %d (eps=%v)", trial, len(got), len(want), eps)
		}
		if stats.Answers == 0 {
			t.Fatalf("trial %d: query cut from data found nothing", trial)
		}
	}
}

func matchSetsEqual(a, b []seqdb.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SeqID != b[i].SeqID || a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
		if math.Abs(a[i].Distance-b[i].Distance) > 1e-9 {
			return false
		}
	}
	return true
}
