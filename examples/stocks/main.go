// Stocks: the paper's motivating scenario — find stocks whose price
// movements are similar to a target pattern, even when sampled at different
// rates or stretched over different spans.
//
// The example generates a synthetic S&P-500-like database (the paper's
// workload), plants a half-rate resampled copy of one stock's pattern in
// another stock, and shows that (a) time warping finds it while a
// same-length comparison cannot, and (b) the sparse categorized index
// returns it orders of magnitude cheaper than scanning.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"os"

	"twsearch/internal/workload"
	"twsearch/seqdb"
)

func main() {
	dir, err := os.MkdirTemp("", "twsearch-stocks-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A 150-stock database with the paper's price-band mix.
	data := workload.Stocks(workload.StockConfig{NumSequences: 150, Seed: 11})
	for i := 0; i < data.Len(); i++ {
		must(db.Add(data.Seq(i).ID, data.Values(i)))
	}

	// Take a 30-day pattern from stock-0007 ...
	src := db.Values("stock-0007")
	pattern := src[100:130]

	// ... and plant a HALF-RATE copy (every other day, 15 samples) inside a
	// new sequence. Same shape, different length: Euclidean same-length
	// matching can never align these; time warping can.
	halfRate := make([]float64, 0, len(pattern)/2)
	for i := 0; i < len(pattern); i += 2 {
		halfRate = append(halfRate, pattern[i])
	}
	planted := append(append(append([]float64{}, src[:40]...), halfRate...), src[40:80]...)
	must(db.Add("planted-half-rate", planted))
	must(db.Save())

	must(db.BuildIndex("sst", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 40,
		Sparse:     true,
	}))

	// Search with the 30-day pattern. The planted 15-day copy differs from
	// the pattern only by sampling rate. Warping maps each dropped sample
	// onto a kept neighbor, so the distance is at most the sum of each odd
	// sample's gap to its nearer even neighbor — use that as the threshold.
	eps := 1.0
	for i := 1; i < len(pattern); i += 2 {
		gap := abs(pattern[i] - pattern[i-1])
		if i+1 < len(pattern) {
			if g2 := abs(pattern[i] - pattern[i+1]); g2 < gap {
				gap = g2
			}
		}
		eps += gap
	}
	matches, stats, err := db.Search("sst", pattern, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern of %d days, eps=%.1f: %d similar subsequences in %v\n",
		len(pattern), eps, len(matches), stats.Elapsed)

	// The copy sits at [40, 55) in the planted sequence; accept any match
	// substantially overlapping it.
	found := false
	for _, m := range matches {
		if m.SeqID == "planted-half-rate" && m.Start <= 44 && m.End >= 51 {
			fmt.Printf("  -> found the half-rate copy: %s[%d:%d] at distance %.2f (length %d vs query %d)\n",
				m.SeqID, m.Start, m.End, m.Distance, m.End-m.Start, len(pattern))
			found = true
			break
		}
	}
	if !found {
		log.Fatal("planted half-rate copy not found — this should be impossible")
	}

	// Work comparison against both baselines.
	_, scanStats, err := db.SeqScan(pattern, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index work:  %8d table cells, %d tree nodes, %v\n",
		stats.Cells(), stats.NodesVisited, stats.Elapsed)
	fmt.Printf("scan work:   %8d table cells, %v (Theorem-1 abandoning scan)\n",
		scanStats.Cells(), scanStats.Elapsed)
	fmt.Printf("speedup: %.1fx fewer cells\n",
		float64(scanStats.Cells())/float64(stats.Cells()))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
