// Motifs: the conclusion's "rule discovery" application — find the most
// similar pairs of non-overlapping subsequences (time-series motifs) in a
// stock database, using the index's k-nearest-neighbor search as the inner
// loop instead of a quadratic all-pairs DTW sweep.
//
// Every candidate window slides over the data with a stride; for each, the
// index returns its nearest neighbors, overlapping hits are discarded, and
// the best surviving pairs are reported.
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"twsearch/internal/workload"
	"twsearch/seqdb"
)

const (
	windowLen = 24
	stride    = 12
	topK      = 3
)

type motif struct {
	aID          string
	aStart, aEnd int
	bID          string
	bStart, bEnd int
	distance     float64
}

// overlaps reports whether [s1,e1) and [s2,e2) on the same sequence share
// elements (trivial matches, excluded as in the motif literature).
func overlaps(id1 string, s1, e1 int, id2 string, s2, e2 int) bool {
	return id1 == id2 && s1 < e2 && s2 < e1
}

func main() {
	dir, err := os.MkdirTemp("", "twsearch-motifs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	data := workload.Stocks(workload.StockConfig{NumSequences: 25, AvgLen: 150, SigmaFrac: 0.012, Seed: 31})
	db, err := seqdb.Create(dir + "/db")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < data.Len(); i++ {
		if err := db.Add(data.Seq(i).ID, data.Values(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildIndex("m", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 30,
		Sparse:     true,
		// Motifs compare like-for-like windows: a modest warp bound keeps
		// neighbors at comparable lengths and prunes the search hard.
		Window:       6,
		MinAnswerLen: windowLen - 6,
	}); err != nil {
		log.Fatal(err)
	}

	var motifs []motif
	windows := 0
	for i := 0; i < db.Len(); i++ {
		id := db.SequenceIDs()[i]
		vals := db.Values(id)
		for start := 0; start+windowLen <= len(vals); start += stride {
			windows++
			q := vals[start : start+windowLen]
			// Range search with a moderate radius; self-overlapping hits
			// (trivial matches) are discarded and the closest survivor
			// becomes this window's motif partner.
			matches, _, err := db.Search("m", q, 10)
			if err != nil {
				log.Fatal(err)
			}
			best := motif{distance: -1}
			for _, m := range matches {
				if overlaps(m.SeqID, m.Start, m.End, id, start, start+windowLen) {
					continue
				}
				if best.distance < 0 || m.Distance < best.distance {
					best = motif{
						aID: id, aStart: start, aEnd: start + windowLen,
						bID: m.SeqID, bStart: m.Start, bEnd: m.End,
						distance: m.Distance,
					}
				}
			}
			if best.distance >= 0 {
				motifs = append(motifs, best)
			}
		}
	}
	sort.Slice(motifs, func(i, j int) bool { return motifs[i].distance < motifs[j].distance })

	fmt.Printf("scanned %d windows of %d days across %d stocks\n", windows, windowLen, db.Len())
	fmt.Printf("top %d motif pairs (most similar non-overlapping subsequences):\n", topK)
	seen := map[string]bool{}
	printed := 0
	for _, m := range motifs {
		// Deduplicate symmetric pairs.
		key1 := fmt.Sprintf("%s:%d|%s:%d", m.aID, m.aStart, m.bID, m.bStart)
		key2 := fmt.Sprintf("%s:%d|%s:%d", m.bID, m.bStart, m.aID, m.aStart)
		if seen[key1] || seen[key2] {
			continue
		}
		seen[key1] = true
		fmt.Printf("  %-12s[%3d:%3d]  ~  %-12s[%3d:%3d]  distance %.2f\n",
			m.aID, m.aStart, m.aEnd, m.bID, m.bStart, m.bEnd, m.distance)
		printed++
		if printed == topK {
			break
		}
	}
	if printed == 0 {
		log.Fatal("no motifs found")
	}
}
