// Quickstart: create a database, index it, and run one similarity search.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"twsearch/seqdb"
)

func main() {
	dir, err := os.MkdirTemp("", "twsearch-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Create a database and add some sequences. These are the paper's
	// own examples: S1 is a stock sampled daily, S2 the same movement
	// sampled every other day — different lengths, same shape.
	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Add("daily", []float64{20, 20, 21, 21, 20, 20, 23, 23}))
	must(db.Add("every-other-day", []float64{20, 21, 20, 23}))
	must(db.Add("unrelated", []float64{5, 9, 2, 8, 1, 7, 3}))
	must(db.Save())

	// 2. Build a sparse max-entropy index (the paper's best configuration,
	// SimSearch-SST_C).
	must(db.BuildIndex("main", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 8,
		Sparse:     true,
	}))

	// 3. Search. Under the Euclidean distance these two series can't even
	// be compared (different lengths); under time warping they are
	// identical, so the whole "daily" sequence matches at distance 0.
	query := []float64{20, 21, 20, 23}
	matches, stats, err := db.Search("main", query, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v, eps=1: %d matches in %v\n", query, len(matches), stats.Elapsed)
	for _, m := range matches {
		fmt.Printf("  %-16s values[%d:%d]  distance=%.2f\n", m.SeqID, m.Start, m.End, m.Distance)
	}

	// 4. The guarantee: the index returns exactly what a full scan does.
	scan, _, err := db.SeqScan(query, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential scan agrees: %v (%d matches)\n", len(scan) == len(matches), len(scan))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
