// Tuning: the paper's Section 5.1 category-count selection. "Too many
// categories do not help much to increase the number of common
// subsequences, but likewise, too few categories do not help much to reduce
// the query processing time" — so the paper proposes picking the count that
// minimizes the weighted cost W_t·C_t + W_s·C_s.
//
// This example runs that procedure on a synthetic stock database for two
// different weightings (speed-hungry and space-hungry) and prints the whole
// trade-off curve.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"os"

	"twsearch/internal/workload"
	"twsearch/seqdb"
)

func main() {
	dir, err := os.MkdirTemp("", "twsearch-tuning-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	data := workload.Stocks(workload.StockConfig{NumSequences: 120, Seed: 17})
	for i := 0; i < data.Len(); i++ {
		if err := db.Add(data.Seq(i).ID, data.Values(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}

	// Sample queries drawn from the data (the paper's 20/50/30 band mix).
	queries := workload.Queries(data, workload.QueryConfig{Count: 5, Seed: 18})

	spec := seqdb.IndexSpec{Method: seqdb.MethodMaxEntropy, Sparse: true}
	counts := []int{5, 10, 20, 40, 80, 160}

	// A time-hungry application: a whole gigabyte of index is worth only
	// one second of query time, so the fastest count wins.
	fast, measures, err := db.SelectCategories(spec, counts, queries, 5,
		seqdb.CostModel{Wt: 1.0, Ws: 1.0 / (1024 * 1024)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trade-off curve (avg query seconds vs index KB):")
	for _, m := range measures {
		fmt.Printf("  %3d categories: C_t = %8.5fs   C_s = %7.0f KB\n", m.Count, m.TimeCost, m.SpaceCost)
	}
	fmt.Printf("speed-weighted choice  (Wt=1, Ws=1/GB):  %d categories\n", fast)

	// A space-hungry application (embedded device): a kilobyte of index is
	// worth as much as a millisecond of query time.
	small, _, err := db.SelectCategories(spec, counts, queries, 5,
		seqdb.CostModel{Wt: 1.0, Ws: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space-weighted choice  (Wt=1, Ws=1/KB):  %d categories\n", small)

	// Build the chosen index and prove it behaves.
	if err := db.BuildIndex("tuned", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: fast, Sparse: true,
	}); err != nil {
		log.Fatal(err)
	}
	info, err := db.Index("tuned")
	if err != nil {
		log.Fatal(err)
	}
	matches, stats, err := db.Search("tuned", queries[0], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d KB; first query: %d matches in %v\n",
		info.Name, info.SizeBytes/1024, len(matches), stats.Elapsed)
}
