// Multivariate: the paper's conclusion-section extension — sequences of
// vectors, categorized by a multi-dimensional (MTAH-style) grid, indexed
// with the same suffix-tree machinery, through the public VectorDB API.
//
// The example stores 2-D mouse/gesture trajectories sampled at different
// speeds and retrieves all occurrences of an "L"-shaped stroke regardless
// of how fast it was drawn, then asks for the three nearest strokes.
//
//	go run ./examples/multivariate
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"twsearch/seqdb"
)

// stroke generates an L-shaped 2-D trajectory starting at (x, y): 10 units
// down, then 10 units right — always the same shape, but sampled with n1
// and n2 points per leg. Fewer points = a faster hand drawing the same L.
func stroke(rng *rand.Rand, x, y float64, n1, n2 int, jitter float64) [][]float64 {
	var pts [][]float64
	for i := 1; i <= n1; i++ {
		yy := y - 10*float64(i)/float64(n1)
		pts = append(pts, []float64{x + rng.Float64()*jitter, yy + rng.Float64()*jitter})
	}
	for i := 1; i <= n2; i++ {
		xx := x + 10*float64(i)/float64(n2)
		pts = append(pts, []float64{xx + rng.Float64()*jitter, y - 10 + rng.Float64()*jitter})
	}
	return pts
}

// wander generates an unstructured random walk.
func wander(rng *rand.Rand, n int) [][]float64 {
	x, y := rng.Float64()*20, rng.Float64()*20
	var pts [][]float64
	for i := 0; i < n; i++ {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts = append(pts, []float64{x, y})
	}
	return pts
}

func main() {
	dir, err := os.MkdirTemp("", "twsearch-multivar-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(5))

	db, err := seqdb.CreateVector(filepath.Join(dir, "db"), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Three recordings that contain an L-stroke drawn at different speeds
	// (10+10, 20+20 and 5+5 samples for the same shape), embedded in noise,
	// plus two without.
	withL := map[string]bool{}
	for i, spec := range []struct {
		n1, n2 int
		hasL   bool
	}{
		{10, 10, true}, {20, 20, true}, {5, 5, true}, {0, 0, false}, {0, 0, false},
	} {
		id := fmt.Sprintf("gesture-%d", i)
		pts := wander(rng, 30)
		if spec.hasL {
			pts = append(pts, stroke(rng, 10, 10, spec.n1, spec.n2, 0.1)...)
		}
		pts = append(pts, wander(rng, 30)...)
		if err := db.Add(id, pts); err != nil {
			log.Fatal(err)
		}
		withL[id] = spec.hasL
	}
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}

	if err := db.BuildIndex("gestures", seqdb.VectorIndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		CatsPerDim: 6,
		Sparse:     true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d gestures (2-D, grid-categorized)\n", db.Len())

	// Query: the canonical L at medium speed.
	query := stroke(rand.New(rand.NewSource(99)), 10, 10, 8, 8, 0)

	eps := 16.0
	matches, err := db.Search("gestures", query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L-stroke query (%d points), eps=%.0f: %d matches\n", len(query), eps, len(matches))

	best := map[string]seqdb.VectorMatch{}
	for _, m := range matches {
		if b, ok := best[m.SeqID]; !ok || m.Distance < b.Distance {
			best[m.SeqID] = m
		}
	}
	for i := 0; i < db.Len(); i++ {
		id := fmt.Sprintf("gesture-%d", i)
		if m, ok := best[id]; ok {
			fmt.Printf("  %s (has L: %-5v): best match [%d:%d], distance %.2f\n",
				id, withL[id], m.Start, m.End, m.Distance)
		} else {
			fmt.Printf("  %s (has L: %-5v): no match\n", id, withL[id])
		}
		if _, ok := best[id]; ok != withL[id] {
			log.Fatalf("detection wrong for %s", id)
		}
	}

	// Nearest-neighbor view of the same question: the closest subsequences
	// all live inside the planted strokes.
	knn, err := db.SearchKNN("gestures", query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest subsequences:")
	for _, m := range knn {
		fmt.Printf("  %s[%d:%d] distance %.2f\n", m.SeqID, m.Start, m.End, m.Distance)
	}

	// The guarantee carries over: the index equals the multivariate scan.
	scan, err := db.SeqScan(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential scan agrees: %v (%d matches)\n", len(scan) == len(matches), len(scan))
}
