// CBF: 1-nearest-neighbor classification under time warping on the classic
// Cylinder–Bell–Funnel benchmark — the canonical sanity check for a DTW
// matcher, and a direct use of the library's kNN search.
//
// Instances of one class differ in event onset, duration and amplitude;
// time warping absorbs the onset/duration variation that defeats lock-step
// distances. Each test instance is classified by the label of its nearest
// indexed subsequence.
//
//	go run ./examples/cbf
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"twsearch/internal/workload"
	"twsearch/seqdb"
)

func main() {
	dir, err := os.MkdirTemp("", "twsearch-cbf-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Training set: 20 instances per class, indexed once.
	train, _ := workload.CBF(workload.CBFConfig{PerClass: 20, Seed: 101})
	db, err := seqdb.Create(dir + "/db")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < train.Len(); i++ {
		if err := db.Add(train.Seq(i).ID, train.Values(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildIndex("cbf", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 16,
		Sparse:     true,
		// CBF instances are whole patterns: bound the warp and skip
		// subsequences too short to be a full event.
		Window:       40,
		MinAnswerLen: 100,
	}); err != nil {
		log.Fatal(err)
	}

	// Test set: fresh instances, classified by the nearest indexed
	// subsequence's owning class (recoverable from the sequence id).
	rng := rand.New(rand.NewSource(202))
	classes := []workload.CBFClass{workload.Cylinder, workload.Bell, workload.Funnel}
	correct, total := 0, 0
	confusion := map[string]int{}
	for _, class := range classes {
		for trial := 0; trial < 10; trial++ {
			q := workload.CBFInstance(rng, class, 128, 0.5)
			nn, _, err := db.SearchKNN("cbf", q, 1)
			if err != nil {
				log.Fatal(err)
			}
			if len(nn) == 0 {
				log.Fatalf("no neighbor found for a %s query", class)
			}
			predicted := strings.SplitN(nn[0].SeqID, "-", 2)[0]
			confusion[fmt.Sprintf("%s->%s", class, predicted)]++
			if predicted == class.String() {
				correct++
			}
			total++
		}
	}

	fmt.Printf("1-NN DTW classification on Cylinder-Bell-Funnel: %d/%d correct (%.0f%%)\n",
		correct, total, 100*float64(correct)/float64(total))
	for _, class := range classes {
		fmt.Printf("  %s:", class)
		for _, predicted := range classes {
			if n := confusion[fmt.Sprintf("%s->%s", class, predicted)]; n > 0 {
				fmt.Printf("  %d as %s", n, predicted)
			}
		}
		fmt.Println()
	}
	if correct < total*4/5 {
		log.Fatal("accuracy below 80% — something is wrong with the matcher")
	}
}
