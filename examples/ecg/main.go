// ECG: matching medical signals whose rhythm varies — the paper's other
// motivating domain ("matching of voice, audio and medical signals
// (electrocardiograms)", "patients whose lung lesions have similar
// evolution characteristics").
//
// The example synthesizes ECG-like traces for several patients with
// different and drifting heart rates, then looks for a characteristic
// two-beat arrhythmia pattern. Because each patient's beats are stretched
// differently in time, only a time-warping match can find the episode in
// every trace; the example also shows the warping-window variant that
// bounds how far the rhythm may stretch.
//
//	go run ./examples/ecg
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"twsearch/seqdb"
)

// beat appends one synthetic heartbeat of the given period: a flat baseline
// with a sharp QRS-like spike, plus a slow T-wave bump. amp scales the
// spike (arrhythmic beats are taller here).
func beat(out []float64, period int, amp float64) []float64 {
	for i := 0; i < period; i++ {
		t := float64(i) / float64(period)
		v := 0.0
		switch {
		case t > 0.08 && t < 0.28: // QRS spike
			v = amp * math.Sin((t-0.08)/0.20*math.Pi)
		case t > 0.35 && t < 0.60: // T wave
			v = 0.25 * math.Sin((t-0.35)/0.25*math.Pi)
		}
		out = append(out, math.Round(v*100)/100)
	}
	return out
}

// trace builds a patient's ECG: normal beats at the patient's own (slowly
// drifting) rate, with an arrhythmic double-spike episode in the middle for
// the flagged patients.
func trace(beats, basePeriod int, arrhythmia bool) []float64 {
	var out []float64
	for b := 0; b < beats; b++ {
		period := basePeriod + (b%5 - 2) // rhythm drift
		amp := 1.0
		if arrhythmia && (b == beats/2 || b == beats/2+1) {
			amp = 2.2 // the tall double beat we search for
		}
		out = beat(out, period, amp)
	}
	return out
}

func main() {
	dir, err := os.MkdirTemp("", "twsearch-ecg-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Six patients, heart rates from fast (period 14 samples) to slow (24),
	// three of them with the arrhythmic episode.
	type patient struct {
		id         string
		period     int
		arrhythmia bool
	}
	patients := []patient{
		{"patient-A", 14, true},
		{"patient-B", 17, false},
		{"patient-C", 19, true},
		{"patient-D", 21, false},
		{"patient-E", 24, true},
		{"patient-F", 16, false},
	}
	for _, p := range patients {
		must(db.Add(p.id, trace(40, p.period, p.arrhythmia)))
	}
	must(db.Save())

	must(db.BuildIndex("beats", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 12,
		Sparse:     true,
	}))

	// The query is the arrhythmic double beat at a rate NONE of the
	// patients has (period 18): every true episode is a stretched or
	// compressed version of it.
	query := beat(beat(nil, 18, 2.2), 18, 2.2)

	eps := 4.0
	matches, stats, err := db.Search("beats", query, eps)
	if err != nil {
		log.Fatal(err)
	}

	// Report the best hit per patient.
	best := map[string]seqdb.Match{}
	for _, m := range matches {
		if b, ok := best[m.SeqID]; !ok || m.Distance < b.Distance {
			best[m.SeqID] = m
		}
	}
	fmt.Printf("query: double beat at period 18 (%d samples), eps=%.0f — %d raw matches in %v\n",
		len(query), eps, len(matches), stats.Elapsed)
	for _, p := range patients {
		if m, ok := best[p.id]; ok {
			fmt.Printf("  %s (period %2d, arrhythmia=%-5v): episode at [%d:%d], distance %.2f\n",
				p.id, p.period, p.arrhythmia, m.Start, m.End, m.Distance)
		} else {
			fmt.Printf("  %s (period %2d, arrhythmia=%-5v): no match\n", p.id, p.period, p.arrhythmia)
		}
		if (best[p.id] != seqdb.Match{}) != p.arrhythmia {
			log.Fatalf("detection wrong for %s", p.id)
		}
	}

	// Same search with a warping window: the band bounds how far the
	// rhythm may stretch, so distant rates need a wider band and the
	// constrained search does less work.
	must(db.BuildIndex("beats-windowed", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 12,
		Sparse:     true,
		Window:     10,
	}))
	wMatches, wStats, err := db.Search("beats-windowed", query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with warping window 10: %d matches (was %d), filter cells %d (was %d)\n",
		len(wMatches), len(matches), wStats.FilterCells, stats.FilterCells)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
