package twsearch_test

import (
	"path/filepath"
	"testing"

	"twsearch/internal/benchrun"
	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/dtw"
	"twsearch/internal/workload"
)

// benchScale keeps -bench runs quick; cmd/benchtables runs the same
// harness at the paper's full scale (-scale 1).
const benchScale = 0.06

func benchConfig(b *testing.B) benchrun.Config {
	b.Helper()
	return benchrun.Config{Scale: benchScale, Queries: 2, Dir: b.TempDir(), Seed: 9}
}

// BenchmarkTable1 regenerates Table 1 (index sizes vs category count).
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := benchrun.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.ST.InlineKB), "ST-inline-KB")
			b.ReportMetric(float64(res.Rows[0].SSTcME.InlineKB), "SSTcME10-inline-KB")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (query effort vs category count).
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := benchrun.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ST.FilterCells, "ST-cells/query")
			b.ReportMetric(res.Rows[3].SSTcME.FilterCells, "SSTcME80-cells/query")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (SeqScan vs SimSearch-SSTc by eps).
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := benchrun.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first := rows[0]
			b.ReportMetric(first.ScanFull.Cells(), "scanfull-cells-eps5")
			b.ReportMetric(first.SST80.Cells(), "sst80-cells-eps5")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (effort vs sequence length).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := benchrun.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SST.Cells(), "sst-cells-len1000")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (effort vs sequence count).
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := benchrun.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SST.Cells(), "sst-cells-10k")
		}
	}
}

// BenchmarkAblationSparse compares dense vs sparse trees (DESIGN.md A1).
func BenchmarkAblationSparse(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchrun.AblationSparse(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPruning measures Theorem-1 pruning (A5).
func BenchmarkAblationPruning(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchrun.AblationPruning(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow measures the warping-window extension (A3).
func BenchmarkAblationWindow(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchrun.AblationWindow(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBufferPool measures pool size vs physical reads (A4).
func BenchmarkAblationBufferPool(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchrun.AblationBufferPool(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro benchmarks on the core primitives ---

func benchSeqPair(n, m int) ([]float64, []float64) {
	a := make([]float64, n)
	q := make([]float64, m)
	for i := range a {
		a[i] = float64(i%17) * 0.5
	}
	for i := range q {
		q[i] = float64(i%13) * 0.7
	}
	return a, q
}

// BenchmarkDTWDistance measures the raw O(n*m) dynamic program.
func BenchmarkDTWDistance(b *testing.B) {
	a, q := benchSeqPair(232, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dtw.Distance(a, q)
	}
}

// BenchmarkTableAddRow measures one incremental row append (the unit of
// filter work).
func BenchmarkTableAddRow(b *testing.B) {
	_, q := benchSeqPair(1, 20)
	tab := dtw.NewTable(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.AddRowValue(float64(i % 10))
		if tab.Depth() > 256 {
			tab.Truncate(0)
		}
	}
}

// benchStockIndex builds a small shared index for the search benches.
func benchStockIndex(b *testing.B, sparse bool) (*core.Index, [][]float64) {
	b.Helper()
	data := workload.Stocks(workload.StockConfig{NumSequences: 60, Seed: 21})
	queries := workload.Queries(data, workload.QueryConfig{Count: 8, Seed: 22})
	ix, err := core.Build(data, filepath.Join(b.TempDir(), "bench.twt"), core.Options{
		Kind: categorize.KindMaxEntropy, Categories: 40, Sparse: sparse,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	return ix, queries
}

// BenchmarkSearchSparseEps5 measures a selective SimSearch-SSTc query.
func BenchmarkSearchSparseEps5(b *testing.B) {
	ix, queries := benchStockIndex(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(queries[i%len(queries)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSparseEps30 measures a permissive SimSearch-SSTc query.
func BenchmarkSearchSparseEps30(b *testing.B) {
	ix, queries := benchStockIndex(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(queries[i%len(queries)], 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchDenseEps5 measures the dense SimSearch-STc variant.
func BenchmarkSearchDenseEps5(b *testing.B) {
	ix, queries := benchStockIndex(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(queries[i%len(queries)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeqScanEps5 measures the Theorem-1 abandoning baseline.
func BenchmarkSeqScanEps5(b *testing.B) {
	data := workload.Stocks(workload.StockConfig{NumSequences: 60, Seed: 21})
	queries := workload.Queries(data, workload.QueryConfig{Count: 8, Seed: 22})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SeqScan(data, queries[i%len(queries)], 5, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeqScanFullEps5 measures the paper's no-abandon baseline.
func BenchmarkSeqScanFullEps5(b *testing.B) {
	data := workload.Stocks(workload.StockConfig{NumSequences: 60, Seed: 21})
	queries := workload.Queries(data, workload.QueryConfig{Count: 8, Seed: 22})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SeqScanFull(data, queries[i%len(queries)], 5, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures the full disk construction pipeline.
func BenchmarkIndexBuild(b *testing.B) {
	data := workload.Stocks(workload.StockConfig{NumSequences: 60, Seed: 21})
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := core.Build(data, filepath.Join(dir, "build.twt"), core.Options{
			Kind: categorize.KindMaxEntropy, Categories: 40, Sparse: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ix.RemoveFile()
	}
}
