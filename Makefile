# twsearch developer targets. Everything here is plain Go tooling; the
# Makefile only names the common invocations.

GO ?= go

.PHONY: all build vet lint lint-self lint-wire lint-golden lint-golden-update test race race-concurrency race-parallel race-shard race-mmap race-envelope cover bench bench-concurrency bench-parallel bench-shard bench-mmap bench-envelope fuzz fuzz-ci smoke tables examples check ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (stdlib-only; see HACKING.md "Static
# analysis"). Exits non-zero on any finding without a //lint:ignore reason.
lint:
	$(GO) run ./cmd/twlint ./...

# The linter linting itself: cmd/twlint and internal/lint are not library
# packages, so the strict checks skip them under ./... — this target holds
# the analysis code to the same no-unexplained-findings bar anyway.
lint-self:
	$(GO) run ./cmd/twlint ./cmd/twlint ./internal/lint ./internal/lint/cfg

# Protocol-symmetry gate on the wire codecs alone: the wireconform analyzer
# proves every encoder's field order, widths, loops and version gates are
# mirrored by its decoder, so codec skew fails fast without running the
# whole suite.
lint-wire:
	$(GO) run ./cmd/twlint -only wireconform ./internal/wire

# Golden diff over the bad fixtures: the full suite's JSON finding stream is
# byte-deterministic, so any analyzer change that moves, adds or drops a
# finding shows up as a diff against internal/lint/testdata/golden.jsonl.
lint-golden:
	$(GO) run ./cmd/twlint -json internal/lint/testdata/src/*/bad | diff -u internal/lint/testdata/golden.jsonl -

lint-golden-update:
	-$(GO) run ./cmd/twlint -json internal/lint/testdata/src/*/bad > internal/lint/testdata/golden.jsonl

test:
	$(GO) test ./...

# The documented pre-PR gate: everything that must be green before review.
check: build vet lint test race

# The full CI gate: the pre-PR gate, the shared-handle concurrency suite
# under the race detector, a bounded fuzz pass over the kernel fuzz
# targets, the server smoke drill, the linter over its own sources, the
# fixture golden diff, and the machine-readable lint gate (any finding
# fails the run; the JSON lines feed CI annotations).
ci: check race-concurrency race-parallel race-shard race-mmap race-envelope fuzz-ci smoke lint-self lint-wire lint-golden
	$(GO) run ./cmd/twlint -json ./...

# The concurrent-search suite under -race, run twice: many goroutines on
# one index handle must return byte-identical answers, and the pooled query
# contexts must leak no state between queries. -count=2 reruns with warm
# sync.Pools, the state-reuse case a single pass misses.
race-concurrency:
	$(GO) test -race -count=2 -run 'TestConcurrent|TestQueryCtxReuse|TestPoolConcurrent|TestSetEpochReuse' ./seqdb/ ./internal/core/ ./internal/storage/ ./internal/pending/

# Intra-query parallelism determinism under -race, run twice for warm
# sync.Pools: every worker count must return answers byte-identical to the
# serial traversal, across both engines, the seqdb layer, and the server's
# request-hint path.
race-parallel:
	$(GO) test -race -count=2 -run 'TestParallel|TestMultivarParallel|TestSearchWithDeterministic|TestServerParallelHint' ./internal/core/ ./internal/multivar/ ./seqdb/ ./seqdb/server/

# Horizontal-sharding determinism under -race, run twice: at shard counts
# {1,2,3,5}, range searches, streamed visits, k-NN and scans must return
# answers byte-identical to the unsharded database — in process, through a
# sharded twsearchd mount, through the routing tier (remote and mixed
# legs), and over the v4 batch RPC. Also covers the scatter-gather
# coordinator's partial-failure and merge paths.
race-shard:
	$(GO) test -race -count=2 -run 'TestSharded|TestShardedByteIdentical|TestServerSharded|TestServerBatch|TestRouterThroughDaemons|TestPartialFailure|TestSearch|TestScanMerges|TestManifest' ./internal/shard/ ./seqdb/ ./seqdb/server/

# Storage-backend determinism under -race, run twice: mixed Search/KNN from
# 8 goroutines through the buffer pool, mmap, and auto backends — over both
# node record encodings — must return answers byte-identical to the pool
# baseline, the PageSource contract and view-concurrency suites must hold
# for every backend, and a v1<->v2 rewrite must be lossless.
race-mmap:
	$(GO) test -race -count=2 -run 'TestBackend|TestPageSource|TestMmap|TestViewConcurrent|TestBackingReadAt|TestRewrite|TestEncodingV2' ./seqdb/ ./internal/storage/ ./internal/disktree/

# Envelope-cascade invisibility under -race, run twice for warm pools: the
# cascade (tier-B row gates and tier-A subtree hulls, serial and parallel)
# must change only work counters, never answers, and the v3 hull profiles
# must survive create, build+merge, and rewrite round trips.
race-envelope:
	$(GO) test -race -count=2 -run 'TestEnvelope|TestQuickLowerBoundChain|TestEncodingV3|TestBuildEncodingV3|TestRewriteV3|TestFormatStability' ./internal/dtw/ ./internal/core/ ./internal/disktree/ ./seqdb/

# End-to-end server drill under the race detector: boot twsearchd on an
# ephemeral port, stream matches over concurrent client connections,
# deliver a real SIGTERM, and require a clean drain (zero leaked
# goroutines — the same bar the seqdb/server integration tests enforce).
smoke:
	$(GO) test -race -count=1 -run 'TestDaemonSmoke|TestServer' ./cmd/twsearchd/ ./seqdb/server/

# Bounded fuzzing for CI: the distance-kernel, engine-equivalence and
# wire round-trip targets, 10s each, seeds + corpus only.
fuzz-ci:
	$(GO) test -fuzz FuzzDistanceProperties -fuzztime 10s ./internal/dtw/
	$(GO) test -fuzz FuzzIntervalLowerBound -fuzztime 10s ./internal/dtw/
	$(GO) test -fuzz FuzzSearchMatchesScan -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzFrameRoundTrip -fuzztime 10s ./internal/wire/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Quick benchmark pass (one iteration each); see bench_output.txt for a
# captured run.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# Concurrent-search throughput on one shared handle: queries/sec at 1, 4,
# and GOMAXPROCS workers, written to BENCH_concurrency.json.
bench-concurrency:
	$(GO) run ./cmd/benchconc

# Single-query latency under intra-query parallelism: mean/p99 at 1, 2, 4,
# and GOMAXPROCS workers per search, written to BENCH_parallel_query.json.
# Speedup needs real cores; see the report's gomaxprocs field.
bench-parallel:
	$(GO) run ./cmd/benchpar

# Sharded query throughput and latency: queries/sec plus avg/p50/p95
# per-query latency at 1, 2, 4, and 8 shards against the unsharded
# baseline, written to BENCH_shard.json. Shard fan-out needs real cores;
# see the report's gomaxprocs field.
bench-shard:
	$(GO) run ./cmd/benchshard

# Storage backend and encoding comparison: cold-start latency plus
# steady-state throughput for every (encoding, backend) pair, and bytes per
# node for the v1 and v2 files, written to BENCH_mmap.json.
bench-mmap:
	$(GO) run ./cmd/benchmmap

# Envelope lower-bound cascade scoreboard: FilterCells/NodesVisited with
# the cascade on vs off over every (encoding, backend, parallelism) cell,
# with a byte-identity cross-check of the answers, written to
# BENCH_envelope.json.
bench-envelope:
	$(GO) run ./cmd/benchlb

# Short fuzz session over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzDistanceProperties -fuzztime 10s ./internal/dtw/
	$(GO) test -fuzz FuzzIntervalLowerBound -fuzztime 10s ./internal/dtw/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 10s ./internal/sequence/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 10s ./internal/sequence/
	$(GO) test -fuzz FuzzReadScheme -fuzztime 10s ./internal/categorize/
	$(GO) test -fuzz FuzzFit -fuzztime 10s ./internal/categorize/
	$(GO) test -fuzz FuzzValidateCorruption -fuzztime 10s ./internal/disktree/
	$(GO) test -fuzz FuzzNodeCodecV2 -fuzztime 10s ./internal/disktree/
	$(GO) test -fuzz FuzzNodeCodecV3 -fuzztime 10s ./internal/disktree/
	$(GO) test -fuzz FuzzFrameRoundTrip -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz FuzzSearchMatchesScan -fuzztime 20s ./internal/core/

# Regenerate the paper's tables and figures at full scale (minutes).
tables:
	$(GO) run ./cmd/benchtables -scale 1 -queries 5 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stocks
	$(GO) run ./examples/ecg
	$(GO) run ./examples/multivariate
	$(GO) run ./examples/tuning
	$(GO) run ./examples/cbf
	$(GO) run ./examples/motifs

clean:
	$(GO) clean -testcache
