// Package twsearch reproduces "Efficient Searches for Similar Subsequences
// of Different Lengths in Sequence Databases" (Park, Chu, Yoon, Hsu — ICDE
// 2000): similarity search under the time warping distance over disk-based
// (sparse) suffix trees, with categorization-based lower bounds and no
// false dismissals.
//
// The public API is package seqdb; cmd/seqdbctl is the command-line tool
// and cmd/benchtables regenerates the paper's tables and figures. See
// README.md, DESIGN.md and EXPERIMENTS.md.
package twsearch
