package twsearch_test

import (
	"math"
	"testing"

	"twsearch/internal/dtw"
)

// TestPaperIntroductionClaims verifies the numeric claims of the paper's
// introduction, word for word: "The Euclidean distance between S2 and any
// subsequence of length four of S1 is greater than 1.41. However, if we
// duplicate every element of S2 using time warping, we find that the two
// sequences are identical."
func TestPaperIntroductionClaims(t *testing.T) {
	s1 := []float64{20, 20, 21, 21, 20, 20, 23, 23}
	s2 := []float64{20, 21, 20, 23}

	minEuclid := math.Inf(1)
	for p := 0; p+len(s2) <= len(s1); p++ {
		sum := 0.0
		for i := range s2 {
			d := s1[p+i] - s2[i]
			sum += d * d
		}
		if e := math.Sqrt(sum); e < minEuclid {
			minEuclid = e
		}
	}
	if !(minEuclid > 1.41) {
		t.Fatalf("min Euclidean distance over length-4 windows = %v, paper says > 1.41", minEuclid)
	}

	if d := dtw.Distance(s1, s2); d != 0 {
		t.Fatalf("D_tw(S1, S2) = %v, paper says identical under time warping", d)
	}

	// "if we duplicate every element of S2 ... the two sequences are
	// identical" — check the duplication explicitly.
	doubled := make([]float64, 0, 2*len(s2))
	for _, v := range s2 {
		doubled = append(doubled, v, v)
	}
	for i := range s1 {
		if s1[i] != doubled[i] {
			t.Fatalf("duplicated S2 differs from S1 at %d", i)
		}
	}
}

// TestPaperSection4Complexities spot-checks the cumulative-table sharing
// factor R_d formula of Section 4.3 on a concrete instance: k suffixes with
// a shared prefix of length t cost (sum |a_i|) - t(k-1) rows instead of
// sum |a_i| rows.
func TestPaperSection4SharingFactor(t *testing.T) {
	// Three suffixes sharing a 4-symbol prefix, lengths 10, 8, 6.
	lengths := []int{10, 8, 6}
	shared := 4
	naive := 0
	for _, l := range lengths {
		naive += l
	}
	sharedCost := shared // the prefix rows, computed once
	for _, l := range lengths {
		sharedCost += l - shared
	}
	wantSaved := shared * (len(lengths) - 1)
	if naive-sharedCost != wantSaved {
		t.Fatalf("sharing saves %d rows, formula says %d", naive-sharedCost, wantSaved)
	}
	rd := float64(naive) / float64(sharedCost)
	if rd <= 1 {
		t.Fatalf("R_d = %v, must exceed 1 with a shared prefix", rd)
	}
}
