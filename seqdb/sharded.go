package seqdb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"twsearch/internal/shard"
)

// ShardRange re-exports one shard's slice of the global sequence numbering.
type ShardRange = shard.Range

// PartialError re-exports the scatter-gather partial-failure error: a
// sharded search that lost one or more shards returns it, listing which
// shards answered. errors.Is sees through it to the first shard's cause.
type PartialError = shard.PartialError

// shardDirName names shard i's directory under a sharded database root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// IsSharded reports whether dir is a sharded database root (it holds a
// shard manifest) rather than a plain database directory.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shard.ManifestName))
	return err == nil
}

// ShardedDB is one logical sequence database split across N self-contained
// shards, each a complete DB in its own subdirectory with its own data file
// and indexes. Searches fan out over all shards in parallel and merge back
// into the global (sequence, start, end) order; results are byte-identical
// to the same search on the unsharded database. A ShardedDB is safe for
// concurrent searches; index builds and drops run shard by shard and are
// not atomic across shards.
type ShardedDB struct {
	dir      string
	manifest *shard.Manifest
	shards   []*DB
	coord    *shard.Coordinator
}

// localShard adapts one shard's *DB to the coordinator's Backend interface.
// It reports shard-local sequence numbers; the coordinator rebases them.
type localShard struct{ db *DB }

func (s localShard) Search(ctx context.Context, index string, q []float64, eps float64, opts shard.Options) ([]shard.Match, shard.Stats, error) {
	ms, stats, err := s.db.SearchWith(ctx, index, q, eps, SearchOptions{Parallelism: opts.Parallelism})
	return toShardMatches(ms), stats, err
}

func (s localShard) Scan(ctx context.Context, q []float64, eps float64) ([]shard.Match, shard.Stats, error) {
	ms, stats, err := s.db.SeqScanCtx(ctx, q, eps)
	return toShardMatches(ms), stats, err
}

func toShardMatches(ms []Match) []shard.Match {
	out := make([]shard.Match, len(ms))
	for i, m := range ms {
		out[i] = shard.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
	}
	return out
}

func fromShardMatches(ms []shard.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
	}
	return out
}

// PartitionInto splits the database into shards self-contained shard
// databases under dir: a manifest plus one complete DB per shard, assigned
// by the deterministic contiguous partitioner (so any two runs over the
// same data produce byte-identical shard contents). Each shard must receive
// at least one sequence — an empty shard could never be indexed — so
// shards must not exceed the sequence count. Indexes are not copied; build
// them on the returned ShardedDB.
func (db *DB) PartitionInto(dir string, shards int) (*ShardedDB, error) {
	n := db.Len()
	if shards > n {
		return nil, fmt.Errorf("seqdb: cannot split %d sequences into %d shards (every shard needs at least one sequence)", n, shards)
	}
	m, err := shard.NewContiguous(n, shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ids := db.SequenceIDs()
	for i, r := range m.Ranges {
		sdb, err := Create(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			return nil, fmt.Errorf("seqdb: creating shard %d: %w", i, err)
		}
		for g := r.Start; g < r.End(); g++ {
			if err := sdb.Add(ids[g], db.Values(ids[g])); err != nil {
				return nil, fmt.Errorf("seqdb: filling shard %d: %w", i, err)
			}
		}
		if err := sdb.Save(); err != nil {
			return nil, fmt.Errorf("seqdb: saving shard %d: %w", i, err)
		}
		if err := sdb.Close(); err != nil {
			return nil, fmt.Errorf("seqdb: closing shard %d: %w", i, err)
		}
	}
	if err := m.Write(filepath.Join(dir, shard.ManifestName)); err != nil {
		return nil, err
	}
	return OpenSharded(dir)
}

// OpenSharded opens a sharded database root: it reads and validates the
// manifest, opens every shard, and cross-checks each shard's sequence count
// against its manifest range — a mismatch means the manifest and the shard
// directories have diverged, and searching would silently misnumber (or
// drop) answers, so it is a loud error instead.
func OpenSharded(dir string) (*ShardedDB, error) {
	return OpenShardedWith(dir, OpenOptions{})
}

// OpenShardedWith is OpenSharded with open options — notably the storage
// backend — applied to every shard.
func OpenShardedWith(dir string, opts OpenOptions) (*ShardedDB, error) {
	m, err := shard.ReadManifest(filepath.Join(dir, shard.ManifestName))
	if err != nil {
		return nil, err
	}
	sdb := &ShardedDB{dir: dir, manifest: m}
	for i, r := range m.Ranges {
		d, err := OpenWith(filepath.Join(dir, shardDirName(i)), opts)
		if err != nil {
			sdb.Close()
			return nil, fmt.Errorf("seqdb: opening shard %d: %w", i, err)
		}
		sdb.shards = append(sdb.shards, d)
		if got := d.Len(); got != r.Count {
			sdb.Close()
			return nil, fmt.Errorf("seqdb: shard %d holds %d sequences but the manifest says %d", i, got, r.Count)
		}
	}
	backends := make([]shard.Backend, len(sdb.shards))
	for i, d := range sdb.shards {
		backends[i] = localShard{db: d}
	}
	coord, err := shard.NewCoordinator(backends, m.Ranges)
	if err != nil {
		sdb.Close()
		return nil, err
	}
	sdb.coord = coord
	return sdb, nil
}

// Close closes every shard.
func (s *ShardedDB) Close() error {
	var errs []error
	for i, d := range s.shards {
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Dir returns the sharded database root directory.
func (s *ShardedDB) Dir() string { return s.dir }

// Shards returns the shard count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// ShardRanges returns each shard's slice of the global sequence numbering.
func (s *ShardedDB) ShardRanges() []ShardRange {
	return append([]ShardRange(nil), s.manifest.Ranges...)
}

// ShardRanges reports an unsharded DB's topology: one shard covering the
// whole sequence numbering. It lets a DB and a ShardedDB answer the serving
// tier's topology query uniformly.
func (db *DB) ShardRanges() []ShardRange {
	return []ShardRange{{Start: 0, Count: db.Len()}}
}

// Shard returns the i'th shard's database — read-only access for tools and
// tests; mutating a shard directly desynchronizes it from the manifest.
func (s *ShardedDB) Shard(i int) *DB { return s.shards[i] }

// Len returns the total number of sequences across all shards.
func (s *ShardedDB) Len() int { return s.manifest.Sequences() }

// SequenceIDs returns all sequence ids in global order.
func (s *ShardedDB) SequenceIDs() []string {
	out := make([]string, 0, s.Len())
	for _, d := range s.shards {
		out = append(out, d.SequenceIDs()...)
	}
	return out
}

// Values returns the elements of the sequence with the given id, or nil.
func (s *ShardedDB) Values(id string) []float64 {
	for _, d := range s.shards {
		if v := d.Values(id); v != nil {
			return v
		}
	}
	return nil
}

// BuildIndex builds the named index on every shard, shard by shard. On
// failure the already-built shards keep their index — rerunning after
// fixing the cause fails on the existing ones; DropIndex cleans up.
func (s *ShardedDB) BuildIndex(name string, spec IndexSpec) error {
	for i, d := range s.shards {
		if err := d.BuildIndex(name, spec); err != nil {
			return fmt.Errorf("seqdb: building index %q on shard %d: %w", name, i, err)
		}
	}
	return nil
}

// DropIndex drops the named index from every shard that has it.
func (s *ShardedDB) DropIndex(name string) error {
	var errs []error
	found := false
	for i, d := range s.shards {
		err := d.DropIndex(name)
		switch {
		case err == nil:
			found = true
		case errors.Is(err, ErrNoIndex):
		default:
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if !found {
		return errNoIndex(name)
	}
	return nil
}

// Indexes lists the index names present on shard 0 — the shards are built
// in lockstep, so shard 0 is representative.
func (s *ShardedDB) Indexes() []string { return s.shards[0].Indexes() }

// Index aggregates a named index's metadata across shards: the spec from
// shard 0 and sizes/counts summed over all shards.
func (s *ShardedDB) Index(name string) (IndexInfo, error) {
	info, err := s.shards[0].Index(name)
	if err != nil {
		return IndexInfo{}, err
	}
	for _, d := range s.shards[1:] {
		ii, err := d.Index(name)
		if err != nil {
			return IndexInfo{}, err
		}
		info.SizeBytes += ii.SizeBytes
		info.Leaves += ii.Leaves
		info.Nodes += ii.Nodes
	}
	return info, nil
}

// Stats merges the shards' dataset summaries into the global summary; see
// MergeStats for the recombination argument.
func (s *ShardedDB) Stats() Stats {
	parts := make([]Stats, len(s.shards))
	for i, d := range s.shards {
		parts[i] = d.Stats()
	}
	return MergeStats(parts)
}

// MergeStats combines per-partition dataset summaries into the summary of
// the union. Counts and extrema combine directly; mean and standard
// deviation recombine through the population moments (sums and sums of
// squares), so the result equals a single pass over the union up to
// floating-point rounding. The serving tier uses it to aggregate shard and
// remote-leg statistics.
func MergeStats(parts []Stats) Stats {
	var out Stats
	sum, sumSq := 0.0, 0.0
	first := true
	for _, st := range parts {
		if st.Sequences == 0 {
			continue
		}
		out.Sequences += st.Sequences
		out.TotalElements += st.TotalElements
		if first {
			out.MinLen, out.MaxLen = st.MinLen, st.MaxLen
			out.MinValue, out.MaxValue = st.MinValue, st.MaxValue
			first = false
		} else {
			out.MinLen = min(out.MinLen, st.MinLen)
			out.MaxLen = max(out.MaxLen, st.MaxLen)
			out.MinValue = math.Min(out.MinValue, st.MinValue)
			out.MaxValue = math.Max(out.MaxValue, st.MaxValue)
		}
		n := float64(st.TotalElements)
		sum += st.MeanValue * n
		sumSq += (st.StdDev*st.StdDev + st.MeanValue*st.MeanValue) * n
	}
	if out.Sequences == 0 {
		return out
	}
	out.AvgLen = float64(out.TotalElements) / float64(out.Sequences)
	n := float64(out.TotalElements)
	out.MeanValue = sum / n
	if v := sumSq/n - out.MeanValue*out.MeanValue; v > 0 {
		out.StdDev = math.Sqrt(v)
	}
	return out
}

// PoolStats merges every shard's buffer-pool counters; each entry's Shards
// slice concatenates the pool shards of all database shards in shard order.
func (s *ShardedDB) PoolStats() []IndexPoolStats {
	merged := map[string]*IndexPoolStats{}
	var order []string
	for _, d := range s.shards {
		for _, ps := range d.PoolStats() {
			e, ok := merged[ps.Index]
			if !ok {
				e = &IndexPoolStats{Index: ps.Index}
				merged[ps.Index] = e
				order = append(order, ps.Index)
			}
			e.Shards = append(e.Shards, ps.Shards...)
		}
	}
	out := make([]IndexPoolStats, 0, len(order))
	for _, name := range order {
		out = append(out, *merged[name])
	}
	return out
}

// shardOpts converts public search options to the coordinator's form.
func shardOpts(o SearchOptions) shard.Options { return shard.Options{Parallelism: o.Parallelism} }

// SearchWith runs a sharded range search: every shard in parallel, results
// merged into the global (sequence, start, end) order — byte-identical to
// the unsharded SearchWith over the same data.
func (s *ShardedDB) SearchWith(ctx context.Context, indexName string, q []float64, eps float64, opts SearchOptions) ([]Match, SearchStats, error) {
	ms, stats, err := s.coord.Search(ctx, indexName, q, eps, shardOpts(opts))
	if err != nil {
		return nil, stats, err
	}
	return fromShardMatches(ms), stats, nil
}

// SearchCtx is SearchWith with default options.
func (s *ShardedDB) SearchCtx(ctx context.Context, indexName string, q []float64, eps float64) ([]Match, SearchStats, error) {
	return s.SearchWith(ctx, indexName, q, eps, SearchOptions{})
}

// Search is the context-free compatibility form of SearchCtx.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable searches use SearchCtx
func (s *ShardedDB) Search(indexName string, q []float64, eps float64) ([]Match, SearchStats, error) {
	return s.SearchCtx(context.Background(), indexName, q, eps)
}

// SearchVisitWith streams answers to fn in global (sequence, start, end)
// order — shard i's answers are delivered as soon as shards 0..i have
// completed, while later shards are still searching. Returning false stops
// the search and cancels the remaining shards. Note the unsharded
// SearchVisit delivers in the index's traversal order, which is NOT the
// global position order; the sharded stream is the sorted order, identical
// to what SearchWith materializes.
func (s *ShardedDB) SearchVisitWith(ctx context.Context, indexName string, q []float64, eps float64, fn func(Match) bool, opts SearchOptions) (SearchStats, error) {
	if fn == nil {
		return SearchStats{}, fmt.Errorf("seqdb: nil visitor")
	}
	return s.coord.SearchVisit(ctx, indexName, q, eps, func(m shard.Match) bool {
		return fn(Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance})
	}, shardOpts(opts))
}

// SearchVisitCtx is SearchVisitWith with default options.
func (s *ShardedDB) SearchVisitCtx(ctx context.Context, indexName string, q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	return s.SearchVisitWith(ctx, indexName, q, eps, fn, SearchOptions{})
}

// SearchVisit is the context-free compatibility form of SearchVisitCtx.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable streaming uses SearchVisitCtx
func (s *ShardedDB) SearchVisit(indexName string, q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	return s.SearchVisitCtx(context.Background(), indexName, q, eps, fn)
}

// SearchKNNWith returns the k globally nearest subsequences, byte-identical
// to the unsharded SearchKNNWith: every shard expands its threshold
// concurrently while a bounded merge heap of the k best candidates so far
// tightens the stopping bound across shards.
func (s *ShardedDB) SearchKNNWith(ctx context.Context, indexName string, q []float64, k int, opts SearchOptions) ([]Match, SearchStats, error) {
	ms, stats, err := s.coord.SearchKNN(ctx, indexName, q, k, shardOpts(opts))
	if err != nil {
		return nil, stats, err
	}
	return fromShardMatches(ms), stats, nil
}

// SearchKNNCtx is SearchKNNWith with default options.
func (s *ShardedDB) SearchKNNCtx(ctx context.Context, indexName string, q []float64, k int) ([]Match, SearchStats, error) {
	return s.SearchKNNWith(ctx, indexName, q, k, SearchOptions{})
}

// SearchKNN is the context-free compatibility form of SearchKNNCtx.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable k-NN uses SearchKNNCtx
func (s *ShardedDB) SearchKNN(indexName string, q []float64, k int) ([]Match, SearchStats, error) {
	return s.SearchKNNCtx(context.Background(), indexName, q, k)
}

// SeqScanCtx fans the exhaustive baseline out over the shards.
func (s *ShardedDB) SeqScanCtx(ctx context.Context, q []float64, eps float64) ([]Match, SearchStats, error) {
	ms, stats, err := s.coord.Scan(ctx, q, eps)
	if err != nil {
		return nil, stats, err
	}
	return fromShardMatches(ms), stats, nil
}

// SeqScan is the context-free compatibility form of SeqScanCtx.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable scans use SeqScanCtx
func (s *ShardedDB) SeqScan(q []float64, eps float64) ([]Match, SearchStats, error) {
	return s.SeqScanCtx(context.Background(), q, eps)
}
